file(REMOVE_RECURSE
  "CMakeFiles/dst_test.dir/dst_test.cc.o"
  "CMakeFiles/dst_test.dir/dst_test.cc.o.d"
  "dst_test"
  "dst_test.pdb"
  "dst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
