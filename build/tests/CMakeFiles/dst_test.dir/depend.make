# Empty dependencies file for dst_test.
# This may be replaced when dependencies are built.
