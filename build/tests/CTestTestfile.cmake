# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/hmm_test[1]_include.cmake")
include("/root/repo/build/tests/dst_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/datasets_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
