# Empty dependencies file for bench_e7_backward_time.
# This may be replaced when dependencies are built.
