file(REMOVE_RECURSE
  "../bench/bench_e7_backward_time"
  "../bench/bench_e7_backward_time.pdb"
  "CMakeFiles/bench_e7_backward_time.dir/e7_backward_time.cc.o"
  "CMakeFiles/bench_e7_backward_time.dir/e7_backward_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_backward_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
