# Empty dependencies file for bench_e8_vs_hmm.
# This may be replaced when dependencies are built.
