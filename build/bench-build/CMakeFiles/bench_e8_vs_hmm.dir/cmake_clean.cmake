file(REMOVE_RECURSE
  "../bench/bench_e8_vs_hmm"
  "../bench/bench_e8_vs_hmm.pdb"
  "CMakeFiles/bench_e8_vs_hmm.dir/e8_vs_hmm.cc.o"
  "CMakeFiles/bench_e8_vs_hmm.dir/e8_vs_hmm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_vs_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
