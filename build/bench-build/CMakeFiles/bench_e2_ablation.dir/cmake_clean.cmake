file(REMOVE_RECURSE
  "../bench/bench_e2_ablation"
  "../bench/bench_e2_ablation.pdb"
  "CMakeFiles/bench_e2_ablation.dir/e2_ablation.cc.o"
  "CMakeFiles/bench_e2_ablation.dir/e2_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
