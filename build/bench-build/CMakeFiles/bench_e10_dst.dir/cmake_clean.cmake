file(REMOVE_RECURSE
  "../bench/bench_e10_dst"
  "../bench/bench_e10_dst.pdb"
  "CMakeFiles/bench_e10_dst.dir/e10_dst.cc.o"
  "CMakeFiles/bench_e10_dst.dir/e10_dst.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_dst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
