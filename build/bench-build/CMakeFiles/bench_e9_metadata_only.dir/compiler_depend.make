# Empty compiler generated dependencies file for bench_e9_metadata_only.
# This may be replaced when dependencies are built.
