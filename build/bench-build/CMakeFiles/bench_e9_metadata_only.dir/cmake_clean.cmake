file(REMOVE_RECURSE
  "../bench/bench_e9_metadata_only"
  "../bench/bench_e9_metadata_only.pdb"
  "CMakeFiles/bench_e9_metadata_only.dir/e9_metadata_only.cc.o"
  "CMakeFiles/bench_e9_metadata_only.dir/e9_metadata_only.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_metadata_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
