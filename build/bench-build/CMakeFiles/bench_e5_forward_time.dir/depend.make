# Empty dependencies file for bench_e5_forward_time.
# This may be replaced when dependencies are built.
