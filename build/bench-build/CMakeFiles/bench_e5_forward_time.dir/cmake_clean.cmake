file(REMOVE_RECURSE
  "../bench/bench_e5_forward_time"
  "../bench/bench_e5_forward_time.pdb"
  "CMakeFiles/bench_e5_forward_time.dir/e5_forward_time.cc.o"
  "CMakeFiles/bench_e5_forward_time.dir/e5_forward_time.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_forward_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
