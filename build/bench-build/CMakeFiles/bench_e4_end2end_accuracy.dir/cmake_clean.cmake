file(REMOVE_RECURSE
  "../bench/bench_e4_end2end_accuracy"
  "../bench/bench_e4_end2end_accuracy.pdb"
  "CMakeFiles/bench_e4_end2end_accuracy.dir/e4_end2end_accuracy.cc.o"
  "CMakeFiles/bench_e4_end2end_accuracy.dir/e4_end2end_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_end2end_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
