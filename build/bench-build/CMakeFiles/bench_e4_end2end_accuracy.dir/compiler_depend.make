# Empty compiler generated dependencies file for bench_e4_end2end_accuracy.
# This may be replaced when dependencies are built.
