file(REMOVE_RECURSE
  "../bench/bench_e3_interpretation_accuracy"
  "../bench/bench_e3_interpretation_accuracy.pdb"
  "CMakeFiles/bench_e3_interpretation_accuracy.dir/e3_interpretation_accuracy.cc.o"
  "CMakeFiles/bench_e3_interpretation_accuracy.dir/e3_interpretation_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_interpretation_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
