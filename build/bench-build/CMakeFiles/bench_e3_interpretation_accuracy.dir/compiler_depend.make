# Empty compiler generated dependencies file for bench_e3_interpretation_accuracy.
# This may be replaced when dependencies are built.
