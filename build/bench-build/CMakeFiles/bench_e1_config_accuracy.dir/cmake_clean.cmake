file(REMOVE_RECURSE
  "../bench/bench_e1_config_accuracy"
  "../bench/bench_e1_config_accuracy.pdb"
  "CMakeFiles/bench_e1_config_accuracy.dir/e1_config_accuracy.cc.o"
  "CMakeFiles/bench_e1_config_accuracy.dir/e1_config_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_config_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
