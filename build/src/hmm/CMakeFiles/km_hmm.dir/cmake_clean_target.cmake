file(REMOVE_RECURSE
  "libkm_hmm.a"
)
