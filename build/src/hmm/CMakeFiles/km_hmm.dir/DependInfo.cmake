
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hmm/hmm.cc" "src/hmm/CMakeFiles/km_hmm.dir/hmm.cc.o" "gcc" "src/hmm/CMakeFiles/km_hmm.dir/hmm.cc.o.d"
  "/root/repo/src/hmm/model_builder.cc" "src/hmm/CMakeFiles/km_hmm.dir/model_builder.cc.o" "gcc" "src/hmm/CMakeFiles/km_hmm.dir/model_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metadata/CMakeFiles/km_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/km_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/km_text.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/km_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
