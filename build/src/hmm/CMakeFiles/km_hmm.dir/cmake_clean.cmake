file(REMOVE_RECURSE
  "CMakeFiles/km_hmm.dir/hmm.cc.o"
  "CMakeFiles/km_hmm.dir/hmm.cc.o.d"
  "CMakeFiles/km_hmm.dir/model_builder.cc.o"
  "CMakeFiles/km_hmm.dir/model_builder.cc.o.d"
  "libkm_hmm.a"
  "libkm_hmm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_hmm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
