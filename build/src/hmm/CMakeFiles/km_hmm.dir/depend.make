# Empty dependencies file for km_hmm.
# This may be replaced when dependencies are built.
