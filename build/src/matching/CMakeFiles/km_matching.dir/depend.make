# Empty dependencies file for km_matching.
# This may be replaced when dependencies are built.
