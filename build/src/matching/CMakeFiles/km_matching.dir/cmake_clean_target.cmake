file(REMOVE_RECURSE
  "libkm_matching.a"
)
