file(REMOVE_RECURSE
  "CMakeFiles/km_matching.dir/config_gen.cc.o"
  "CMakeFiles/km_matching.dir/config_gen.cc.o.d"
  "CMakeFiles/km_matching.dir/munkres.cc.o"
  "CMakeFiles/km_matching.dir/munkres.cc.o.d"
  "CMakeFiles/km_matching.dir/murty.cc.o"
  "CMakeFiles/km_matching.dir/murty.cc.o.d"
  "libkm_matching.a"
  "libkm_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
