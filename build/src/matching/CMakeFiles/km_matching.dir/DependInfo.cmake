
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matching/config_gen.cc" "src/matching/CMakeFiles/km_matching.dir/config_gen.cc.o" "gcc" "src/matching/CMakeFiles/km_matching.dir/config_gen.cc.o.d"
  "/root/repo/src/matching/munkres.cc" "src/matching/CMakeFiles/km_matching.dir/munkres.cc.o" "gcc" "src/matching/CMakeFiles/km_matching.dir/munkres.cc.o.d"
  "/root/repo/src/matching/murty.cc" "src/matching/CMakeFiles/km_matching.dir/murty.cc.o" "gcc" "src/matching/CMakeFiles/km_matching.dir/murty.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metadata/CMakeFiles/km_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/km_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/km_text.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/km_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
