file(REMOVE_RECURSE
  "libkm_metadata.a"
)
