file(REMOVE_RECURSE
  "CMakeFiles/km_metadata.dir/configuration.cc.o"
  "CMakeFiles/km_metadata.dir/configuration.cc.o.d"
  "CMakeFiles/km_metadata.dir/contextualize.cc.o"
  "CMakeFiles/km_metadata.dir/contextualize.cc.o.d"
  "CMakeFiles/km_metadata.dir/term.cc.o"
  "CMakeFiles/km_metadata.dir/term.cc.o.d"
  "CMakeFiles/km_metadata.dir/weights.cc.o"
  "CMakeFiles/km_metadata.dir/weights.cc.o.d"
  "libkm_metadata.a"
  "libkm_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
