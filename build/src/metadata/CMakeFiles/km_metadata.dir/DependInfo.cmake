
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metadata/configuration.cc" "src/metadata/CMakeFiles/km_metadata.dir/configuration.cc.o" "gcc" "src/metadata/CMakeFiles/km_metadata.dir/configuration.cc.o.d"
  "/root/repo/src/metadata/contextualize.cc" "src/metadata/CMakeFiles/km_metadata.dir/contextualize.cc.o" "gcc" "src/metadata/CMakeFiles/km_metadata.dir/contextualize.cc.o.d"
  "/root/repo/src/metadata/term.cc" "src/metadata/CMakeFiles/km_metadata.dir/term.cc.o" "gcc" "src/metadata/CMakeFiles/km_metadata.dir/term.cc.o.d"
  "/root/repo/src/metadata/weights.cc" "src/metadata/CMakeFiles/km_metadata.dir/weights.cc.o" "gcc" "src/metadata/CMakeFiles/km_metadata.dir/weights.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/km_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/km_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/km_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
