# Empty compiler generated dependencies file for km_metadata.
# This may be replaced when dependencies are built.
