# Empty dependencies file for km_workload.
# This may be replaced when dependencies are built.
