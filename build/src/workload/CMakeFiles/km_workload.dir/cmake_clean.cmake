file(REMOVE_RECURSE
  "CMakeFiles/km_workload.dir/metrics.cc.o"
  "CMakeFiles/km_workload.dir/metrics.cc.o.d"
  "CMakeFiles/km_workload.dir/workload.cc.o"
  "CMakeFiles/km_workload.dir/workload.cc.o.d"
  "libkm_workload.a"
  "libkm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
