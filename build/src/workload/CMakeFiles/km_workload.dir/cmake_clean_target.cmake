file(REMOVE_RECURSE
  "libkm_workload.a"
)
