file(REMOVE_RECURSE
  "CMakeFiles/km_core.dir/feedback.cc.o"
  "CMakeFiles/km_core.dir/feedback.cc.o.d"
  "CMakeFiles/km_core.dir/keymantic.cc.o"
  "CMakeFiles/km_core.dir/keymantic.cc.o.d"
  "CMakeFiles/km_core.dir/translate.cc.o"
  "CMakeFiles/km_core.dir/translate.cc.o.d"
  "libkm_core.a"
  "libkm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
