
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feedback.cc" "src/core/CMakeFiles/km_core.dir/feedback.cc.o" "gcc" "src/core/CMakeFiles/km_core.dir/feedback.cc.o.d"
  "/root/repo/src/core/keymantic.cc" "src/core/CMakeFiles/km_core.dir/keymantic.cc.o" "gcc" "src/core/CMakeFiles/km_core.dir/keymantic.cc.o.d"
  "/root/repo/src/core/translate.cc" "src/core/CMakeFiles/km_core.dir/translate.cc.o" "gcc" "src/core/CMakeFiles/km_core.dir/translate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/matching/CMakeFiles/km_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/km_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hmm/CMakeFiles/km_hmm.dir/DependInfo.cmake"
  "/root/repo/build/src/dst/CMakeFiles/km_dst.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/km_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/km_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/km_text.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/km_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/km_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
