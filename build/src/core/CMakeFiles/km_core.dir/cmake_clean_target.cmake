file(REMOVE_RECURSE
  "libkm_core.a"
)
