# Empty compiler generated dependencies file for km_core.
# This may be replaced when dependencies are built.
