# Empty compiler generated dependencies file for km_relational.
# This may be replaced when dependencies are built.
