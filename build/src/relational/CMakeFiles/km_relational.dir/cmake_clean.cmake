file(REMOVE_RECURSE
  "CMakeFiles/km_relational.dir/csv.cc.o"
  "CMakeFiles/km_relational.dir/csv.cc.o.d"
  "CMakeFiles/km_relational.dir/database.cc.o"
  "CMakeFiles/km_relational.dir/database.cc.o.d"
  "CMakeFiles/km_relational.dir/schema.cc.o"
  "CMakeFiles/km_relational.dir/schema.cc.o.d"
  "CMakeFiles/km_relational.dir/table.cc.o"
  "CMakeFiles/km_relational.dir/table.cc.o.d"
  "CMakeFiles/km_relational.dir/value.cc.o"
  "CMakeFiles/km_relational.dir/value.cc.o.d"
  "libkm_relational.a"
  "libkm_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
