file(REMOVE_RECURSE
  "libkm_relational.a"
)
