file(REMOVE_RECURSE
  "libkm_dst.a"
)
