file(REMOVE_RECURSE
  "CMakeFiles/km_dst.dir/dst.cc.o"
  "CMakeFiles/km_dst.dir/dst.cc.o.d"
  "libkm_dst.a"
  "libkm_dst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_dst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
