# Empty dependencies file for km_dst.
# This may be replaced when dependencies are built.
