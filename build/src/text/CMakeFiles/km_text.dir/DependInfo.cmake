
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/gazetteer.cc" "src/text/CMakeFiles/km_text.dir/gazetteer.cc.o" "gcc" "src/text/CMakeFiles/km_text.dir/gazetteer.cc.o.d"
  "/root/repo/src/text/recognizers.cc" "src/text/CMakeFiles/km_text.dir/recognizers.cc.o" "gcc" "src/text/CMakeFiles/km_text.dir/recognizers.cc.o.d"
  "/root/repo/src/text/similarity.cc" "src/text/CMakeFiles/km_text.dir/similarity.cc.o" "gcc" "src/text/CMakeFiles/km_text.dir/similarity.cc.o.d"
  "/root/repo/src/text/stemmer.cc" "src/text/CMakeFiles/km_text.dir/stemmer.cc.o" "gcc" "src/text/CMakeFiles/km_text.dir/stemmer.cc.o.d"
  "/root/repo/src/text/thesaurus.cc" "src/text/CMakeFiles/km_text.dir/thesaurus.cc.o" "gcc" "src/text/CMakeFiles/km_text.dir/thesaurus.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/km_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/km_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/km_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/km_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
