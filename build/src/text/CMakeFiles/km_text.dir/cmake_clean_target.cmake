file(REMOVE_RECURSE
  "libkm_text.a"
)
