# Empty compiler generated dependencies file for km_text.
# This may be replaced when dependencies are built.
