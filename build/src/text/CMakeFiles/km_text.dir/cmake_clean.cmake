file(REMOVE_RECURSE
  "CMakeFiles/km_text.dir/gazetteer.cc.o"
  "CMakeFiles/km_text.dir/gazetteer.cc.o.d"
  "CMakeFiles/km_text.dir/recognizers.cc.o"
  "CMakeFiles/km_text.dir/recognizers.cc.o.d"
  "CMakeFiles/km_text.dir/similarity.cc.o"
  "CMakeFiles/km_text.dir/similarity.cc.o.d"
  "CMakeFiles/km_text.dir/stemmer.cc.o"
  "CMakeFiles/km_text.dir/stemmer.cc.o.d"
  "CMakeFiles/km_text.dir/thesaurus.cc.o"
  "CMakeFiles/km_text.dir/thesaurus.cc.o.d"
  "CMakeFiles/km_text.dir/tokenizer.cc.o"
  "CMakeFiles/km_text.dir/tokenizer.cc.o.d"
  "libkm_text.a"
  "libkm_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
