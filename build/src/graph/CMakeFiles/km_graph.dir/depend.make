# Empty dependencies file for km_graph.
# This may be replaced when dependencies are built.
