
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/interpretation.cc" "src/graph/CMakeFiles/km_graph.dir/interpretation.cc.o" "gcc" "src/graph/CMakeFiles/km_graph.dir/interpretation.cc.o.d"
  "/root/repo/src/graph/mi.cc" "src/graph/CMakeFiles/km_graph.dir/mi.cc.o" "gcc" "src/graph/CMakeFiles/km_graph.dir/mi.cc.o.d"
  "/root/repo/src/graph/schema_graph.cc" "src/graph/CMakeFiles/km_graph.dir/schema_graph.cc.o" "gcc" "src/graph/CMakeFiles/km_graph.dir/schema_graph.cc.o.d"
  "/root/repo/src/graph/summary.cc" "src/graph/CMakeFiles/km_graph.dir/summary.cc.o" "gcc" "src/graph/CMakeFiles/km_graph.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metadata/CMakeFiles/km_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/km_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/km_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/km_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
