file(REMOVE_RECURSE
  "libkm_graph.a"
)
