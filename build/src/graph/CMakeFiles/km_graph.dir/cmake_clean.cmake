file(REMOVE_RECURSE
  "CMakeFiles/km_graph.dir/interpretation.cc.o"
  "CMakeFiles/km_graph.dir/interpretation.cc.o.d"
  "CMakeFiles/km_graph.dir/mi.cc.o"
  "CMakeFiles/km_graph.dir/mi.cc.o.d"
  "CMakeFiles/km_graph.dir/schema_graph.cc.o"
  "CMakeFiles/km_graph.dir/schema_graph.cc.o.d"
  "CMakeFiles/km_graph.dir/summary.cc.o"
  "CMakeFiles/km_graph.dir/summary.cc.o.d"
  "libkm_graph.a"
  "libkm_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
