file(REMOVE_RECURSE
  "CMakeFiles/km_engine.dir/executor.cc.o"
  "CMakeFiles/km_engine.dir/executor.cc.o.d"
  "CMakeFiles/km_engine.dir/query.cc.o"
  "CMakeFiles/km_engine.dir/query.cc.o.d"
  "libkm_engine.a"
  "libkm_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
