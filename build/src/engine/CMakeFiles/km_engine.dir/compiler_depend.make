# Empty compiler generated dependencies file for km_engine.
# This may be replaced when dependencies are built.
