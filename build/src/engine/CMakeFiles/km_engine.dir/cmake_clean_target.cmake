file(REMOVE_RECURSE
  "libkm_engine.a"
)
