
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datasets/dblp.cc" "src/datasets/CMakeFiles/km_datasets.dir/dblp.cc.o" "gcc" "src/datasets/CMakeFiles/km_datasets.dir/dblp.cc.o.d"
  "/root/repo/src/datasets/imdb.cc" "src/datasets/CMakeFiles/km_datasets.dir/imdb.cc.o" "gcc" "src/datasets/CMakeFiles/km_datasets.dir/imdb.cc.o.d"
  "/root/repo/src/datasets/mondial.cc" "src/datasets/CMakeFiles/km_datasets.dir/mondial.cc.o" "gcc" "src/datasets/CMakeFiles/km_datasets.dir/mondial.cc.o.d"
  "/root/repo/src/datasets/namepools.cc" "src/datasets/CMakeFiles/km_datasets.dir/namepools.cc.o" "gcc" "src/datasets/CMakeFiles/km_datasets.dir/namepools.cc.o.d"
  "/root/repo/src/datasets/scaling.cc" "src/datasets/CMakeFiles/km_datasets.dir/scaling.cc.o" "gcc" "src/datasets/CMakeFiles/km_datasets.dir/scaling.cc.o.d"
  "/root/repo/src/datasets/university.cc" "src/datasets/CMakeFiles/km_datasets.dir/university.cc.o" "gcc" "src/datasets/CMakeFiles/km_datasets.dir/university.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/km_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/km_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
