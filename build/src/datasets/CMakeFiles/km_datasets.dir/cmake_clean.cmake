file(REMOVE_RECURSE
  "CMakeFiles/km_datasets.dir/dblp.cc.o"
  "CMakeFiles/km_datasets.dir/dblp.cc.o.d"
  "CMakeFiles/km_datasets.dir/imdb.cc.o"
  "CMakeFiles/km_datasets.dir/imdb.cc.o.d"
  "CMakeFiles/km_datasets.dir/mondial.cc.o"
  "CMakeFiles/km_datasets.dir/mondial.cc.o.d"
  "CMakeFiles/km_datasets.dir/namepools.cc.o"
  "CMakeFiles/km_datasets.dir/namepools.cc.o.d"
  "CMakeFiles/km_datasets.dir/scaling.cc.o"
  "CMakeFiles/km_datasets.dir/scaling.cc.o.d"
  "CMakeFiles/km_datasets.dir/university.cc.o"
  "CMakeFiles/km_datasets.dir/university.cc.o.d"
  "libkm_datasets.a"
  "libkm_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
