# Empty dependencies file for km_datasets.
# This may be replaced when dependencies are built.
