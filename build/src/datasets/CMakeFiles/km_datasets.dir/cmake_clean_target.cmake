file(REMOVE_RECURSE
  "libkm_datasets.a"
)
