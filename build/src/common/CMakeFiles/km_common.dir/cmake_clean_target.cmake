file(REMOVE_RECURSE
  "libkm_common.a"
)
