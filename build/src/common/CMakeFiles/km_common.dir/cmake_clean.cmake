file(REMOVE_RECURSE
  "CMakeFiles/km_common.dir/status.cc.o"
  "CMakeFiles/km_common.dir/status.cc.o.d"
  "CMakeFiles/km_common.dir/strings.cc.o"
  "CMakeFiles/km_common.dir/strings.cc.o.d"
  "libkm_common.a"
  "libkm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/km_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
