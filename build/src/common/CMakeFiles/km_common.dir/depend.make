# Empty dependencies file for km_common.
# This may be replaced when dependencies are built.
