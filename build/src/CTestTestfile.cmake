# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("relational")
subdirs("engine")
subdirs("text")
subdirs("metadata")
subdirs("matching")
subdirs("graph")
subdirs("hmm")
subdirs("dst")
subdirs("core")
subdirs("datasets")
subdirs("workload")
