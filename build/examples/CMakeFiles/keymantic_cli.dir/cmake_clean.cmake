file(REMOVE_RECURSE
  "CMakeFiles/keymantic_cli.dir/keymantic_cli.cpp.o"
  "CMakeFiles/keymantic_cli.dir/keymantic_cli.cpp.o.d"
  "keymantic_cli"
  "keymantic_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keymantic_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
