# Empty dependencies file for keymantic_cli.
# This may be replaced when dependencies are built.
