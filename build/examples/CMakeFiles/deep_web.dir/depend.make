# Empty dependencies file for deep_web.
# This may be replaced when dependencies are built.
