file(REMOVE_RECURSE
  "CMakeFiles/deep_web.dir/deep_web.cpp.o"
  "CMakeFiles/deep_web.dir/deep_web.cpp.o.d"
  "deep_web"
  "deep_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
