# Empty dependencies file for mondial_explorer.
# This may be replaced when dependencies are built.
