file(REMOVE_RECURSE
  "CMakeFiles/mondial_explorer.dir/mondial_explorer.cpp.o"
  "CMakeFiles/mondial_explorer.dir/mondial_explorer.cpp.o.d"
  "mondial_explorer"
  "mondial_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mondial_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
