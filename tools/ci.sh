#!/usr/bin/env bash
# Runs the CI jobs locally (mirrors .github/workflows/ci.yml):
#
#   1. release    — Release build (warnings-as-errors) + full ctest suite
#   2. sanitize   — ASan+UBSan build + full ctest suite (includes the
#                   net protocol fuzz at full 500-iteration depth)
#   3. tsan       — TSan build + the concurrency/pool/cache/net suites
#   4. failpoints — ASan build with KM_FAILPOINTS=ON + resilience, snapshot
#                   and net/tenant suites (incl. bounded corruption- and
#                   protocol-fuzz smokes)
#   5. bench      — Release bench smoke: e5 forward-kernel comparison,
#                   e6 candidate distribution, e11 throughput, e12
#                   overload, e13 coldstart and e14 multi-tenant fairness
#                   emit the BENCH JSON baseline (bench-baseline.json
#                   artifact in CI)
#   6. soak       — ASan + KM_FAILPOINTS=ON run of the e12 overload smoke:
#                   admission control sheds under 2x saturation and the
#                   executor circuit breaker trips, fails fast, and
#                   recovers, all under the leak/UB checker (~30s)
#   7. lint       — clang-tidy over src/, bench/ and examples/ (skips
#                   cleanly when not installed)
#   8. coverage   — gcc --coverage build + full suite, gates src/common and
#                   src/core on 80% line coverage (gcovr when installed,
#                   tools/coverage_gate.py over raw gcov otherwise) and
#                   writes the coverage-html/ artifact
#   9. kmlint     — tools/km_lint.py project-rule linter (lock discipline,
#                   checkpointed loops, failpoint/metric/snapshot-section
#                   naming); writes the km-lint-report.txt artifact. Pure
#                   Python, runs everywhere.
#  10. threadsafety — clang build with -Werror=thread-safety
#                   (KM_THREAD_SAFETY=ON) + full suite, then the
#                   negative-compilation harness (tools/negative_compile.sh)
#                   proving the annotations reject seeded violations.
#                   Skips cleanly when clang is not installed.
#
# Usage: tools/ci.sh [release|sanitize|tsan|failpoints|bench|soak|lint|coverage|kmlint|threadsafety]...
# (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=("$@")
if [[ ${#JOBS[@]} -eq 0 ]]; then
  JOBS=(release sanitize tsan failpoints bench soak lint coverage kmlint
        threadsafety)
fi

run_release() {
  echo "=== CI job: release (KM_WERROR=ON) ==="
  cmake --preset ci
  cmake --build --preset ci -j "$(nproc)"
  ctest --preset ci -j "$(nproc)"
}

run_sanitize() {
  echo "=== CI job: sanitize (ASan + UBSan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan -j "$(nproc)"
}

run_tsan() {
  echo "=== CI job: tsan (ThreadSanitizer) ==="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  # The concurrency suite is the TSan payload (pool, caches, AnswerBatch
  # under raw threads); Core and Murty cover the stages the pool touches.
  # TraceGolden pins span-tree determinism under the pool — the exact
  # property a data race in the tracer would break. The serve suites
  # (admission queue, AIMD limiter, EngineServer, breaker, retry budget)
  # hammer the new overload-protection layer from raw threads. The
  # SnapshotReload suite races ReloadSnapshot's RCU engine swap against
  # concurrent Submit traffic; EngineServer now also covers the
  # reload-vs-shutdown race. NetProtocol/NetServer run the poll-loop front
  # end and its client under raw threads; Tenant covers the registry's
  # cross-tenant isolation from concurrent submitters. NetChaos runs a
  # reduced-depth chaos soak — drains, reloads and hostile peers racing the
  # poll loop are exactly the interleavings TSan exists to check.
  KM_NET_CHAOS_ITERS="${KM_NET_CHAOS_ITERS:-60}" \
    ctest --preset tsan -j "$(nproc)" \
      -R "ThreadPool|LruCache|Concurrency|EngineConcurrency|Murty|Core|TraceGolden|Admission|Aimd|EngineServer|Retry|CircuitBreaker|Mutex|CondVar|SnapshotReload|KernelEquivalence|RandomVocabulary|NetProtocol|NetServer|NetChaos|Tenant"
}

run_bench() {
  echo "=== CI job: bench (e5 kernel + e6 candidates + e11 throughput + e12 overload + e13 coldstart + e14 multitenant smoke + BENCH baseline) ==="
  cmake --preset release
  cmake --build --preset release -j "$(nproc)" \
    --target bench_e5_forward_time --target bench_e6_scaling \
    --target bench_e11_throughput --target bench_e12_overload \
    --target bench_e13_coldstart --target bench_e14_multitenant
  # e5 --smoke also cross-checks the pruned kernel against the scalar
  # baseline cell-by-cell and fails on any mismatch.
  build/release/bench/bench_e5_forward_time --smoke | tee /tmp/e5_smoke.out
  build/release/bench/bench_e6_scaling --smoke | tee /tmp/e6_smoke.out
  build/release/bench/bench_e11_throughput --smoke | tee /tmp/e11_smoke.out
  build/release/bench/bench_e12_overload --smoke | tee /tmp/e12_smoke.out
  build/release/bench/bench_e13_coldstart --smoke | tee /tmp/e13_smoke.out
  # e14 drives mixed multi-tenant traffic over real loopback sockets and
  # fails loudly if the abusive tenant perturbs its neighbors.
  build/release/bench/bench_e14_multitenant --smoke | tee /tmp/e14_smoke.out
  # The machine-readable baseline: one JSON object per line.
  grep -h '^BENCH ' /tmp/e5_smoke.out /tmp/e6_smoke.out /tmp/e11_smoke.out \
    /tmp/e12_smoke.out /tmp/e13_smoke.out /tmp/e14_smoke.out \
    | sed 's/^BENCH //' > bench-baseline.json
  echo "wrote $(wc -l < bench-baseline.json) baseline rows to bench-baseline.json"
}

run_failpoints() {
  echo "=== CI job: failpoints (ASan + KM_FAILPOINTS=ON) ==="
  cmake --preset failpoints
  cmake --build --preset failpoints -j "$(nproc)"
  # The resilience suite exercises every compiled-in failpoint site; the
  # matching/engine suites cover the budget plumbing they share.
  # ServeBreaker drives the executor circuit breaker off the same sites.
  # The Snapshot suites need failpoints for the crash-before-rename /
  # short-read / bit-flip / validate-fail injection paths, and the
  # corruption fuzz runs a bounded smoke here (full depth locally via
  # KM_SNAPSHOT_FUZZ_ITERS). EngineServer includes the pinned
  # reload-vs-destruction race (needs the validate-gate site); Net/Tenant
  # run the wire-protocol fuzz (bounded via KM_NET_FUZZ_ITERS) and the
  # tenant-isolation regression under ASan.
  KM_SNAPSHOT_FUZZ_ITERS="${KM_SNAPSHOT_FUZZ_ITERS:-120}" \
  KM_NET_FUZZ_ITERS="${KM_NET_FUZZ_ITERS:-120}" \
  KM_NET_CHAOS_ITERS="${KM_NET_CHAOS_ITERS:-120}" \
    ctest --preset failpoints -j "$(nproc)" \
      -R "Resilience|Murty|Core|ServeBreaker|Snapshot|EngineServer|Net|Tenant"
}

run_soak() {
  echo "=== CI job: soak (ASan + KM_FAILPOINTS=ON, e12 overload + net chaos) ==="
  cmake --preset failpoints
  cmake --build --preset failpoints -j "$(nproc)" --target bench_e12_overload \
    --target net_chaos_test
  # With failpoints compiled in, the e12 smoke runs the full acceptance
  # loop under ASan: shedding at 2x+ saturation with a bounded queue,
  # retry-budget amplification, and the breaker trip/fail-fast/recover
  # cycle against the executor.join.fail site. The binary exits non-zero
  # if any CHECK is violated.
  build/failpoints/bench/bench_e12_overload --smoke
  # The connection-lifecycle chaos soak: seeded hostile peers, snapshot
  # reloads and drains under ASan with the write-path failpoints armed at
  # random. 200 iterations here; 500 locally by default.
  KM_NET_CHAOS_ITERS="${KM_NET_CHAOS_ITERS:-200}" \
    ctest --preset failpoints -R "NetChaos" --output-on-failure
}

run_lint() {
  echo "=== CI job: lint (clang-tidy) ==="
  tools/lint.sh
}

run_kmlint() {
  echo "=== CI job: kmlint (project-rule linter) ==="
  python3 tools/km_lint.py --report km-lint-report.txt
}

run_threadsafety() {
  echo "=== CI job: threadsafety (clang -Werror=thread-safety) ==="
  if ! command -v clang++ > /dev/null 2>&1; then
    echo "threadsafety: clang++ not found; skipping the annotated build" \
         "(install clang to enable — the macros are inert under GCC)"
  else
    cmake --preset thread-safety
    cmake --build --preset thread-safety -j "$(nproc)"
    ctest --preset thread-safety -j "$(nproc)"
  fi
  tools/negative_compile.sh
}

run_coverage() {
  echo "=== CI job: coverage (gcov, 80% line gate on src/common + src/core) ==="
  cmake --preset coverage
  cmake --build --preset coverage -j "$(nproc)"
  ctest --preset coverage -j "$(nproc)"
  if command -v gcovr >/dev/null 2>&1; then
    mkdir -p coverage-html
    gcovr --root . build/coverage \
      --filter 'src/common/' --filter 'src/core/' \
      --fail-under-line 80 \
      --print-summary \
      --html-details coverage-html/index.html
  else
    echo "gcovr not installed; gating with tools/coverage_gate.py (raw gcov)"
    python3 tools/coverage_gate.py \
      --build-dir build/coverage --repo-root . --fail-under 80 \
      --html coverage-html/index.html \
      src/common src/core
  fi
}

for job in "${JOBS[@]}"; do
  case "${job}" in
    release)    run_release ;;
    sanitize)   run_sanitize ;;
    tsan)       run_tsan ;;
    failpoints) run_failpoints ;;
    bench)      run_bench ;;
    soak)       run_soak ;;
    lint)       run_lint ;;
    coverage)   run_coverage ;;
    kmlint)     run_kmlint ;;
    threadsafety) run_threadsafety ;;
    *) echo "unknown CI job: ${job} (expected release|sanitize|tsan|failpoints|bench|soak|lint|coverage|kmlint|threadsafety)" >&2
       exit 2 ;;
  esac
done
echo "=== CI: all requested jobs passed ==="
