#!/usr/bin/env bash
# Runs the three CI jobs locally (mirrors .github/workflows/ci.yml):
#
#   1. release    — Release build (warnings-as-errors) + full ctest suite
#   2. sanitize   — ASan+UBSan build + full ctest suite
#   3. failpoints — ASan build with KM_FAILPOINTS=ON + resilience suite
#   4. lint       — clang-tidy over src/ (skips cleanly when not installed)
#
# Usage: tools/ci.sh [release|sanitize|failpoints|lint]...   (default: all)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=("$@")
if [[ ${#JOBS[@]} -eq 0 ]]; then
  JOBS=(release sanitize failpoints lint)
fi

run_release() {
  echo "=== CI job: release (KM_WERROR=ON) ==="
  cmake --preset ci
  cmake --build --preset ci -j "$(nproc)"
  ctest --preset ci -j "$(nproc)"
}

run_sanitize() {
  echo "=== CI job: sanitize (ASan + UBSan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan -j "$(nproc)"
}

run_failpoints() {
  echo "=== CI job: failpoints (ASan + KM_FAILPOINTS=ON) ==="
  cmake --preset failpoints
  cmake --build --preset failpoints -j "$(nproc)"
  # The resilience suite exercises every compiled-in failpoint site; the
  # matching/engine suites cover the budget plumbing they share.
  ctest --preset failpoints -j "$(nproc)" -R "Resilience|Murty|Core"
}

run_lint() {
  echo "=== CI job: lint (clang-tidy) ==="
  tools/lint.sh
}

for job in "${JOBS[@]}"; do
  case "${job}" in
    release)    run_release ;;
    sanitize)   run_sanitize ;;
    failpoints) run_failpoints ;;
    lint)       run_lint ;;
    *) echo "unknown CI job: ${job} (expected release|sanitize|failpoints|lint)" >&2
       exit 2 ;;
  esac
done
echo "=== CI: all requested jobs passed ==="
