#!/usr/bin/env bash
# Runs the three CI jobs locally (mirrors .github/workflows/ci.yml):
#
#   1. release  — Release build (warnings-as-errors) + full ctest suite
#   2. sanitize — ASan+UBSan build + full ctest suite
#   3. lint     — clang-tidy over src/ (skips cleanly when not installed)
#
# Usage: tools/ci.sh [release|sanitize|lint]...   (default: all three)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=("$@")
if [[ ${#JOBS[@]} -eq 0 ]]; then
  JOBS=(release sanitize lint)
fi

run_release() {
  echo "=== CI job: release (KM_WERROR=ON) ==="
  cmake --preset ci
  cmake --build --preset ci -j "$(nproc)"
  ctest --preset ci -j "$(nproc)"
}

run_sanitize() {
  echo "=== CI job: sanitize (ASan + UBSan) ==="
  cmake --preset asan
  cmake --build --preset asan -j "$(nproc)"
  ctest --preset asan -j "$(nproc)"
}

run_lint() {
  echo "=== CI job: lint (clang-tidy) ==="
  tools/lint.sh
}

for job in "${JOBS[@]}"; do
  case "${job}" in
    release)  run_release ;;
    sanitize) run_sanitize ;;
    lint)     run_lint ;;
    *) echo "unknown CI job: ${job} (expected release|sanitize|lint)" >&2
       exit 2 ;;
  esac
done
echo "=== CI: all requested jobs passed ==="
