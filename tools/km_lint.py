#!/usr/bin/env python3
"""Project-rule linter for invariants the compiler cannot see.

Checks, lexically (no compiler needed, works on any toolchain):

  R1  No raw standard-library synchronization (std::mutex, std::lock_guard,
      std::condition_variable, ...) outside src/common/mutex.h. Everything
      locks through km::Mutex/MutexLock/CondVar so Clang Thread Safety
      Analysis sees every critical section (see common/mutex.h).
  R2  No km::MutexLock held across ThreadPool::ParallelFor or Run():
      a task scheduled from inside a critical section that then needs the
      same lock deadlocks the pool.
  R3  Unbounded loops (while / do-while / for(;;)) in src/core and
      src/matching poll QueryContext::CheckPoint, or carry an explicit
      `// km-lint: bounded` marker stating why they terminate — keyword
      queries must stay responsive to deadlines and cancellation inside
      the combinatorial stages.
  R4  Failpoint names follow `<stage>.<component>.<fault>` and are declared
      in the kFailpointSites catalog (common/failpoint.cc).
  R5  Metric names passed to MetricsRegistry / MetricsSnapshot are
      registered in common/metric_names.h (full name or declared prefix).
  R6  Snapshot section tags passed to BeginSection/FindSection/HasSection
      are registered in the kSnapshotSectionTags catalog
      (snapshot/snapshot_format.h) and are exactly 4 chars of [A-Z0-9] —
      the on-disk format is append-only and the catalog is its single
      registration point.
  R7  Wire-protocol frame type tags passed to MakeFrame/FrameIs are
      registered in the kFrameTypeTags catalog (net/protocol.h) and are
      exactly 4 chars of [A-Z0-9] — the frame format is versioned and the
      catalog is its single registration point (the decoder rejects
      uncataloged tags at runtime; this catches them at review time).

Usage:
  tools/km_lint.py [--root DIR] [--report FILE]

Exits 0 with no findings, 1 when any rule fires, 2 on internal errors.
Output format: path:line: R<n>: message
"""

import argparse
import os
import re
import sys

CODE_SUFFIXES = (".h", ".cc", ".cpp")

# R1: token → why it is banned outside common/mutex.h.
RAW_SYNC_TOKENS = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::condition_variable",
    "std::condition_variable_any",
]

FAILPOINT_NAME_RE = re.compile(
    r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$")

BOUNDED_MARKER = "km-lint: bounded"


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def strip_comments(text, keep_strings):
    """Blanks comments (and optionally string/char literals) while keeping
    the line structure, so findings can report real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"' if keep_strings else " ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("\\" + nxt if keep_strings else "  ")
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c if (keep_strings or c == "\n") else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def iter_files(root, subdirs):
    for sub in subdirs:
        base = os.path.join(root, sub)
        if not os.path.isdir(base):
            continue
        for dirpath, _, files in os.walk(base):
            for name in sorted(files):
                if name.endswith(CODE_SUFFIXES):
                    yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root)


# ----------------------------------------------------------------- rule R1

def check_raw_sync(root, findings):
    for path in iter_files(root, ["src", "bench", "examples", "tests"]):
        rel = relpath(root, path)
        if rel == os.path.join("src", "common", "mutex.h"):
            continue
        code = strip_comments(open(path).read(), keep_strings=False)
        for token in RAW_SYNC_TOKENS:
            for m in re.finditer(re.escape(token) + r"\b", code):
                findings.append(Finding(
                    rel, line_of(code, m.start()), "R1",
                    f"raw {token} — use km::Mutex/MutexLock/CondVar from "
                    "common/mutex.h so thread-safety analysis sees the "
                    "critical section"))


# ----------------------------------------------------------------- rule R2

LOCK_DECL_RE = re.compile(r"\bMutexLock\s+\w+\s*[({]")
POOL_CALL_RE = re.compile(r"\bParallelFor\s*\(|(?:\.|->)Run\s*\(")


def check_lock_across_pool(root, findings):
    for path in iter_files(root, ["src", "bench", "examples", "tests"]):
        rel = relpath(root, path)
        code = strip_comments(open(path).read(), keep_strings=False)
        # One pass tracking brace depth; a MutexLock is live from its
        # declaration until its scope's closing brace.
        events = []  # (offset, kind, payload)
        for m in re.finditer(r"[{}]", code):
            events.append((m.start(), code[m.start()]))
        for m in LOCK_DECL_RE.finditer(code):
            events.append((m.start(), "lock"))
        for m in POOL_CALL_RE.finditer(code):
            events.append((m.start(), "pool"))
        events.sort(key=lambda e: e[0])
        depth = 0
        live_locks = []  # depths at which a MutexLock was declared
        for offset, kind in events:
            if kind == "{":
                depth += 1
            elif kind == "}":
                depth -= 1
                while live_locks and live_locks[-1] > depth:
                    live_locks.pop()
            elif kind == "lock":
                live_locks.append(depth)
            elif kind == "pool" and live_locks:
                findings.append(Finding(
                    rel, line_of(code, offset), "R2",
                    "ThreadPool::ParallelFor/Run called while a MutexLock "
                    "is held — a pool task needing the same lock deadlocks; "
                    "release the lock before scheduling work"))


# ----------------------------------------------------------------- rule R3

LOOP_RE = re.compile(
    r"(?P<do>\bdo\s*\{)|(?P<forever>\bfor\s*\(\s*;\s*;\s*\))|"
    r"(?P<while>(?<![}])\s\bwhile\s*\()")


def find_matching_brace(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(code) - 1


def check_checkpoint_loops(root, findings):
    for path in iter_files(root, ["src/core", "src/matching"]):
        if not path.endswith((".cc", ".cpp")):
            continue
        rel = relpath(root, path)
        raw = open(path).read()
        raw_lines = raw.splitlines()
        code = strip_comments(raw, keep_strings=False)
        for m in LOOP_RE.finditer(code):
            start = m.start()
            line = line_of(code, start)
            # `} while (...)` tails of do-while loops are not loop heads.
            if m.lastgroup == "while":
                prefix = code[:m.start()].rstrip()
                if prefix.endswith("}"):
                    continue
            # An explicit bounded marker on the loop line or in the up-to-
            # three lines above (a short comment block) acknowledges the
            # loop terminates without polling.
            context = raw_lines[max(0, line - 4):line]
            if any(BOUNDED_MARKER in l for l in context):
                continue
            open_idx = code.find("{", start)
            if open_idx == -1:
                body = code[start:start + 400]
            else:
                body = code[open_idx:find_matching_brace(code, open_idx) + 1]
            if "CheckPoint" in body:
                continue
            findings.append(Finding(
                rel, line, "R3",
                "unbounded loop without QueryContext::CheckPoint — poll the "
                "context so deadlines/cancellation reach this stage, or mark "
                f"the loop `// {BOUNDED_MARKER}: <why it terminates>`"))


# ----------------------------------------------------------------- rule R4

FAILPOINT_USE_RE = re.compile(
    r"\bKM_FAILPOINT(?:_CTX|_VISIT)?\s*\(\s*\"([^\"]*)\"")
FAILPOINT_ENABLE_RE = re.compile(
    r"\b(?:Enable|EnableError|EnableExpire|EnableCallback|Disable|HitCount)"
    r"\s*\(\s*\"([^\"]*)\"")


def parse_failpoint_catalog(root):
    path = os.path.join(root, "src", "common", "failpoint.cc")
    if not os.path.isfile(path):
        return None
    code = strip_comments(open(path).read(), keep_strings=True)
    m = re.search(r"kFailpointSites\[\]\s*=\s*\{(.*?)\};", code, re.S)
    if not m:
        return None
    return set(re.findall(r"\"([^\"]*)\"", m.group(1)))


def check_failpoint_names(root, findings):
    catalog = parse_failpoint_catalog(root)
    for path in iter_files(root, ["src"]):
        rel = relpath(root, path)
        code = strip_comments(open(path).read(), keep_strings=True)
        for m in FAILPOINT_USE_RE.finditer(code):
            name = m.group(1)
            line = line_of(code, m.start())
            if not FAILPOINT_NAME_RE.match(name):
                findings.append(Finding(
                    rel, line, "R4",
                    f"failpoint name '{name}' does not match "
                    "<stage>.<component>.<fault>"))
            elif catalog is not None and name not in catalog:
                findings.append(Finding(
                    rel, line, "R4",
                    f"failpoint '{name}' is not declared in kFailpointSites "
                    "(common/failpoint.cc) — the resilience suite iterates "
                    "that catalog"))
    if catalog is not None:
        for name in sorted(catalog):
            if not FAILPOINT_NAME_RE.match(name):
                findings.append(Finding(
                    os.path.join("src", "common", "failpoint.cc"), 1, "R4",
                    f"cataloged failpoint '{name}' does not match "
                    "<stage>.<component>.<fault>"))


# ----------------------------------------------------------------- rule R5

METRIC_CALL_RE = re.compile(
    r"\b(?:CounterRef|GaugeRef|HistogramRef|AddCounter|AddGauge)\s*\(\s*"
    r"(?:std::string\s*\(\s*)?\"([^\"]*)\"")


def parse_metric_catalog(root):
    path = os.path.join(root, "src", "common", "metric_names.h")
    if not os.path.isfile(path):
        return None, None
    code = strip_comments(open(path).read(), keep_strings=True)
    names_m = re.search(r"kMetricNames\[\]\s*=\s*\{(.*?)\};", code, re.S)
    prefixes_m = re.search(r"kMetricNamePrefixes\[\]\s*=\s*\{(.*?)\};",
                           code, re.S)
    names = set(re.findall(r"\"([^\"]*)\"", names_m.group(1))) if names_m else set()
    prefixes = (set(re.findall(r"\"([^\"]*)\"", prefixes_m.group(1)))
                if prefixes_m else set())
    return names, prefixes


def check_metric_names(root, findings):
    names, prefixes = parse_metric_catalog(root)
    if names is None:
        findings.append(Finding(
            os.path.join("src", "common", "metric_names.h"), 1, "R5",
            "metric catalog missing — metric names must be registered in "
            "common/metric_names.h"))
        return
    for path in iter_files(root, ["src"]):
        rel = relpath(root, path)
        if rel == os.path.join("src", "common", "metric_names.h"):
            continue
        code = strip_comments(open(path).read(), keep_strings=True)
        for m in METRIC_CALL_RE.finditer(code):
            literal = m.group(1)
            if not literal.startswith("km."):
                continue  # non-km names (tests, examples) are out of scope
            line = line_of(code, m.start())
            if literal in names or literal in prefixes:
                continue
            # A trailing-dot literal is a composition stem ("km.serve." +
            # what); accept it when every registered expansion exists.
            if literal.endswith(".") and any(
                    full.startswith(literal) for full in names):
                continue
            findings.append(Finding(
                rel, line, "R5",
                f"metric '{literal}' is not registered in "
                "common/metric_names.h (kMetricNames/kMetricNamePrefixes)"))


# ----------------------------------------------------------------- rule R6

SECTION_TAG_RE = re.compile(r"^[A-Z0-9]{4}$")
SECTION_CALL_RE = re.compile(
    r"\b(?:BeginSection|FindSection|HasSection)\s*\(\s*\"([^\"]*)\"")


def parse_section_catalog(root):
    path = os.path.join(root, "src", "snapshot", "snapshot_format.h")
    if not os.path.isfile(path):
        return None
    code = strip_comments(open(path).read(), keep_strings=True)
    m = re.search(r"kSnapshotSectionTags\[\]\s*=\s*\{(.*?)\};", code, re.S)
    if not m:
        return None
    return set(re.findall(r"\"([^\"]*)\"", m.group(1)))


def check_section_tags(root, findings):
    catalog = parse_section_catalog(root)
    if catalog is None:
        # No snapshot subsystem in this tree — nothing to check.
        return
    for path in iter_files(root, ["src"]):
        rel = relpath(root, path)
        code = strip_comments(open(path).read(), keep_strings=True)
        for m in SECTION_CALL_RE.finditer(code):
            tag = m.group(1)
            line = line_of(code, m.start())
            if not SECTION_TAG_RE.match(tag):
                findings.append(Finding(
                    rel, line, "R6",
                    f"snapshot section tag '{tag}' must be exactly 4 "
                    "characters of [A-Z0-9]"))
            elif tag not in catalog:
                findings.append(Finding(
                    rel, line, "R6",
                    f"snapshot section tag '{tag}' is not registered in "
                    "kSnapshotSectionTags (snapshot/snapshot_format.h) — "
                    "the format catalog is the single registration point"))
    for tag in sorted(catalog):
        if not SECTION_TAG_RE.match(tag):
            findings.append(Finding(
                os.path.join("src", "snapshot", "snapshot_format.h"), 1,
                "R6",
                f"cataloged section tag '{tag}' must be exactly 4 "
                "characters of [A-Z0-9]"))


# ----------------------------------------------------------------- rule R7

FRAME_TAG_RE = re.compile(r"^[A-Z0-9]{4}$")
# MakeFrame("TAG", ...) and FrameIs(frame_expr, "TAG"); the frame argument
# of FrameIs never contains a comma at this nesting level in practice.
FRAME_CALL_RE = re.compile(
    r"\bMakeFrame\s*\(\s*\"([^\"]*)\"|\bFrameIs\s*\([^,()]*,\s*\"([^\"]*)\"")


def parse_frame_tag_catalog(root):
    path = os.path.join(root, "src", "net", "protocol.h")
    if not os.path.isfile(path):
        return None
    code = strip_comments(open(path).read(), keep_strings=True)
    m = re.search(r"kFrameTypeTags\[\]\s*=\s*\{(.*?)\};", code, re.S)
    if not m:
        return None
    return set(re.findall(r"\"([^\"]*)\"", m.group(1)))


def check_frame_tags(root, findings):
    catalog = parse_frame_tag_catalog(root)
    if catalog is None:
        # No network subsystem in this tree — nothing to check.
        return
    for path in iter_files(root, ["src", "bench", "examples", "tests"]):
        rel = relpath(root, path)
        code = strip_comments(open(path).read(), keep_strings=True)
        for m in FRAME_CALL_RE.finditer(code):
            tag = m.group(1) if m.group(1) is not None else m.group(2)
            line = line_of(code, m.start())
            if not FRAME_TAG_RE.match(tag):
                findings.append(Finding(
                    rel, line, "R7",
                    f"frame type tag '{tag}' must be exactly 4 characters "
                    "of [A-Z0-9]"))
            elif tag not in catalog:
                findings.append(Finding(
                    rel, line, "R7",
                    f"frame type tag '{tag}' is not registered in "
                    "kFrameTypeTags (net/protocol.h) — the protocol catalog "
                    "is the single registration point for wire frame types"))
    for tag in sorted(catalog):
        if not FRAME_TAG_RE.match(tag):
            findings.append(Finding(
                os.path.join("src", "net", "protocol.h"), 1, "R7",
                f"cataloged frame tag '{tag}' must be exactly 4 characters "
                "of [A-Z0-9]"))


# ------------------------------------------------------------------- main

def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--report", default=None,
                        help="also write findings to this file")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    findings = []
    check_raw_sync(root, findings)
    check_lock_across_pool(root, findings)
    check_checkpoint_loops(root, findings)
    check_failpoint_names(root, findings)
    check_metric_names(root, findings)
    check_section_tags(root, findings)
    check_frame_tags(root, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    lines = [str(f) for f in findings]
    summary = (f"km_lint: {len(findings)} violation(s)"
               if findings else "km_lint: clean")
    output = "\n".join(lines + [summary])
    print(output)
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(output + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
