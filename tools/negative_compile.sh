#!/usr/bin/env bash
# Negative-compilation harness for the thread-safety annotations.
#
# Compiles each tests/negative_compile/ts_violation_*.cc under
# `clang++ -Wthread-safety -Werror=thread-safety` and asserts the compile
# FAILS with a thread-safety diagnostic; ts_clean_baseline.cc must compile
# cleanly (proving the flags don't reject everything). Together these pin
# that the KM_* macros in common/thread_annotations.h actually reach the
# compiler — a refactor that silently neuters them breaks this harness,
# not production.
#
# Usage: tools/negative_compile.sh
#
# Exits 0 when clang++ is unavailable: GCC has no thread-safety analysis
# (the macros expand to nothing there), so the harness degrades to a skip
# on GCC-only machines — the same policy as tools/lint.sh. CI installs
# clang explicitly and always runs the real harness.

set -euo pipefail
cd "$(dirname "$0")/.."

CLANGXX="${CLANGXX:-}"
if [[ -z "${CLANGXX}" ]]; then
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                   clang++-15 clang++-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      CLANGXX="${candidate}"
      break
    fi
  done
fi
if [[ -z "${CLANGXX}" ]]; then
  echo "negative_compile: clang++ not found; skipping (GCC has no" \
       "thread-safety analysis — install clang or set CLANGXX to enable)"
  exit 0
fi

FLAGS=(-std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror=thread-safety)
WORKDIR="$(mktemp -d)"
trap 'rm -rf "${WORKDIR}"' EXIT

echo "negative_compile: ${CLANGXX} ${FLAGS[*]}"

caught=0
status=0

# The baseline must compile cleanly; otherwise the failures below would
# prove nothing (the flags might reject correct code too).
baseline="tests/negative_compile/ts_clean_baseline.cc"
if "${CLANGXX}" "${FLAGS[@]}" "${baseline}" 2> "${WORKDIR}/baseline.err"; then
  echo "  PASS  ${baseline} (clean code accepted)"
else
  echo "  FAIL  ${baseline} should compile cleanly but did not:"
  sed 's/^/        /' "${WORKDIR}/baseline.err"
  status=1
fi

for src in tests/negative_compile/ts_violation_*.cc; do
  if "${CLANGXX}" "${FLAGS[@]}" "${src}" 2> "${WORKDIR}/err"; then
    echo "  FAIL  ${src} compiled but must be rejected (annotations inert?)"
    status=1
  elif grep -q "thread-safety" "${WORKDIR}/err"; then
    echo "  PASS  ${src} (rejected with a thread-safety diagnostic)"
    caught=$((caught + 1))
  else
    echo "  FAIL  ${src} failed for a non-thread-safety reason:"
    sed 's/^/        /' "${WORKDIR}/err"
    status=1
  fi
done

# The ISSUE acceptance floor: the harness must demonstrate at least two
# distinct seeded violations being caught.
if [[ ${caught} -lt 2 ]]; then
  echo "negative_compile: only ${caught} violation(s) caught (need >= 2)"
  status=1
fi

if [[ ${status} -eq 0 ]]; then
  echo "negative_compile: OK (${caught} seeded violations caught)"
else
  echo "negative_compile: FAILED"
fi
exit ${status}
