#!/usr/bin/env bash
# clang-tidy driver: lints every .cc/.cpp under src/, bench/ and examples/
# with the repo's .clang-tidy (per-directory configs under src/common and
# src/serve tighten it further via InheritParentConfig).
#
# Usage: tools/lint.sh [build-dir]
#
# The build dir must hold a compile_commands.json (any CMake configure of
# this repo produces one; CMAKE_EXPORT_COMPILE_COMMANDS is set globally).
# When no build dir is given, one is configured at build/lint.
#
# Exits 0 when clang-tidy is unavailable: the container image for this repo
# ships only the GCC toolchain, so the lint job degrades to a skip instead
# of failing every environment that cannot install clang. CI installs
# clang-tidy explicitly and therefore always runs the real lint.

set -euo pipefail
cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-}"
if [[ -z "${TIDY}" ]]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      TIDY="${candidate}"
      break
    fi
  done
fi
if [[ -z "${TIDY}" ]]; then
  echo "lint: clang-tidy not found; skipping (install clang-tidy or set" \
       "CLANG_TIDY to enable)"
  exit 0
fi

BUILD_DIR="${1:-build/lint}"
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "lint: configuring ${BUILD_DIR} for compile_commands.json"
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
fi

mapfile -t SOURCES < <(find src bench examples \( -name '*.cc' -o -name '*.cpp' \) | sort)
echo "lint: ${TIDY} over ${#SOURCES[@]} files (config: .clang-tidy)"

STATUS=0
for src in "${SOURCES[@]}"; do
  if ! "${TIDY}" -p "${BUILD_DIR}" --quiet "${src}"; then
    STATUS=1
  fi
done

if [[ ${STATUS} -ne 0 ]]; then
  echo "lint: FAILED (see diagnostics above)"
else
  echo "lint: clean"
fi
exit ${STATUS}
