#!/usr/bin/env python3
"""Line-coverage gate over gcov JSON output — the gcovr fallback.

Used by `tools/ci.sh coverage` on machines without gcovr: walks a build
tree for .gcda files, runs `gcov --json-format --stdout` on each, merges
the per-line execution counts of every translation unit (a line counts as
covered when ANY unit executed it), and gates the aggregate line coverage
of the requested source prefixes. Also emits a minimal per-file HTML
report, the artifact the CI job uploads.

Usage:
  coverage_gate.py --build-dir build/coverage --fail-under 80 \
      --html coverage-html/index.html src/common src/core
"""

import argparse
import gzip
import html
import json
import os
import subprocess
import sys


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda):
    """All gcov JSON documents for one .gcda (one per source file)."""
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        capture_output=True,
        check=False,
    )
    if proc.returncode != 0:
        return
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            # Depending on the gcov version --stdout may still gzip.
            if line[:1] != b"{":
                line = gzip.decompress(line)
            yield json.loads(line)
        except (ValueError, OSError):
            continue


def relative_source(path, repo_root):
    path = os.path.normpath(os.path.join(repo_root, path) if not os.path.isabs(path) else path)
    try:
        return os.path.relpath(path, repo_root)
    except ValueError:
        return path


def collect(build_dir, repo_root, prefixes):
    # file -> line number -> max execution count across translation units.
    lines = {}
    for gcda in find_gcda(build_dir):
        for doc in gcov_json(gcda):
            for f in doc.get("files", []):
                rel = relative_source(f.get("file", ""), repo_root)
                if not any(rel.startswith(p.rstrip("/") + "/") for p in prefixes):
                    continue
                per_file = lines.setdefault(rel, {})
                for ln in f.get("lines", []):
                    num = ln.get("line_number")
                    count = ln.get("count", 0)
                    if num is None:
                        continue
                    per_file[num] = max(per_file.get(num, 0), count)
    return lines


def write_html(lines, path):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    rows = []
    for rel in sorted(lines):
        per_file = lines[rel]
        total = len(per_file)
        covered = sum(1 for c in per_file.values() if c > 0)
        pct = 100.0 * covered / total if total else 100.0
        rows.append(
            "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.1f%%</td></tr>"
            % (html.escape(rel), covered, total, pct)
        )
    with open(path, "w") as out:
        out.write(
            "<html><head><title>line coverage</title></head><body>"
            "<h1>Line coverage (gcov fallback report)</h1>"
            "<table border=1 cellpadding=4>"
            "<tr><th>file</th><th>covered</th><th>lines</th><th>%</th></tr>"
            + "".join(rows)
            + "</table></body></html>\n"
        )


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--repo-root", default=".")
    parser.add_argument("--fail-under", type=float, default=80.0)
    parser.add_argument("--html", default="")
    parser.add_argument("prefixes", nargs="+")
    args = parser.parse_args()

    repo_root = os.path.abspath(args.repo_root)
    lines = collect(args.build_dir, repo_root, args.prefixes)
    if not lines:
        print("coverage_gate: no coverage data found under", args.build_dir)
        return 2

    total = sum(len(per_file) for per_file in lines.values())
    covered = sum(
        sum(1 for c in per_file.values() if c > 0) for per_file in lines.values()
    )
    pct = 100.0 * covered / total if total else 100.0

    for rel in sorted(lines):
        per_file = lines[rel]
        file_total = len(per_file)
        file_covered = sum(1 for c in per_file.values() if c > 0)
        print(
            "  %-48s %5d/%5d  %5.1f%%"
            % (rel, file_covered, file_total, 100.0 * file_covered / file_total)
        )
    print(
        "coverage_gate: %d/%d lines covered (%.2f%%), threshold %.1f%%"
        % (covered, total, pct, args.fail_under)
    )
    if args.html:
        write_html(lines, args.html)
        print("coverage_gate: HTML report at", args.html)
    return 0 if pct >= args.fail_under else 1


if __name__ == "__main__":
    sys.exit(main())
