// Tests for km_relational: values, schemas, tables, databases.

#include <gtest/gtest.h>

#include <sstream>

#include "relational/csv.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"

namespace km {
namespace {

// ----------------------------------------------------------------- Value

TEST(ValueTest, NullProperties) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(v.ToSqlLiteral(), "NULL");
  EXPECT_TRUE(v.CompatibleWith(DataType::kInt));
  EXPECT_TRUE(v.CompatibleWith(DataType::kText));
}

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Real(3.5).is_real());
  EXPECT_TRUE(Value::Text("x").is_text());
  EXPECT_TRUE(Value::Bool(true).is_bool());
  EXPECT_TRUE(Value::Date("2020-01-01").is_date());
  EXPECT_TRUE(Value::Date("2020-01-01").is_text());  // stored as text
  EXPECT_FALSE(Value::Text("x").is_date());
}

TEST(ValueTest, Compatibility) {
  EXPECT_TRUE(Value::Int(3).CompatibleWith(DataType::kInt));
  EXPECT_TRUE(Value::Int(3).CompatibleWith(DataType::kReal));  // widening
  EXPECT_FALSE(Value::Real(3.5).CompatibleWith(DataType::kInt));
  EXPECT_FALSE(Value::Text("x").CompatibleWith(DataType::kInt));
  EXPECT_TRUE(Value::Date("2020-01-01").CompatibleWith(DataType::kDate));
  EXPECT_FALSE(Value::Text("x").CompatibleWith(DataType::kDate));
  EXPECT_FALSE(Value::Date("2020-01-01").CompatibleWith(DataType::kText));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Int(-7).ToString(), "-7");
  EXPECT_EQ(Value::Text("abc").ToString(), "abc");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Date("2012-04-05").ToString(), "2012-04-05");
}

TEST(ValueTest, SqlLiteralEscapesQuotes) {
  EXPECT_EQ(Value::Text("O'Brien").ToSqlLiteral(), "'O''Brien'");
  EXPECT_EQ(Value::Int(5).ToSqlLiteral(), "5");
}

TEST(ValueTest, ParseInt) {
  auto v = Value::Parse("42", DataType::kInt);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 42);
  EXPECT_FALSE(Value::Parse("4x", DataType::kInt).ok());
  EXPECT_FALSE(Value::Parse("4.5", DataType::kInt).ok());
}

TEST(ValueTest, ParseReal) {
  auto v = Value::Parse("-2.25", DataType::kReal);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsReal(), -2.25);
  EXPECT_FALSE(Value::Parse("abc", DataType::kReal).ok());
}

TEST(ValueTest, ParseBool) {
  EXPECT_TRUE(Value::Parse("true", DataType::kBool)->AsBool());
  EXPECT_TRUE(Value::Parse("T", DataType::kBool)->AsBool());
  EXPECT_FALSE(Value::Parse("0", DataType::kBool)->AsBool());
  EXPECT_FALSE(Value::Parse("yes", DataType::kBool).ok());
}

TEST(ValueTest, ParseEmptyIsNull) {
  auto v = Value::Parse("", DataType::kInt);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ValueTest, OrderingAcrossNumerics) {
  EXPECT_TRUE(Value::Int(2) < Value::Real(2.5));
  EXPECT_TRUE(Value::Real(1.5) < Value::Int(2));
  EXPECT_TRUE(Value::Int(2) == Value::Real(2.0));
}

TEST(ValueTest, NullSortsFirstAndEqualsNull) {
  EXPECT_TRUE(Value::Null() < Value::Int(0));
  EXPECT_TRUE(Value::Null() == Value::Null());
  EXPECT_FALSE(Value::Null() == Value::Int(0));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(2).Hash(), Value::Real(2.0).Hash());
  EXPECT_EQ(Value::Text("ab").Hash(), Value::Text("ab").Hash());
}

// ---------------------------------------------------------------- Schema

RelationSchema PeopleSchema() {
  return RelationSchema("PEOPLE",
                        {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                         {"Name", DataType::kText, DomainTag::kPersonName},
                         {"Age", DataType::kInt, DomainTag::kQuantity}});
}

TEST(RelationSchemaTest, BasicAccessors) {
  RelationSchema rs = PeopleSchema();
  EXPECT_EQ(rs.name(), "PEOPLE");
  EXPECT_EQ(rs.arity(), 3u);
  EXPECT_EQ(rs.AttributeIndex("Name"), 1u);
  EXPECT_FALSE(rs.AttributeIndex("Missing").has_value());
  ASSERT_TRUE(rs.PrimaryKeyIndex().has_value());
  EXPECT_EQ(*rs.PrimaryKeyIndex(), 0u);
}

TEST(RelationSchemaTest, NoPrimaryKey) {
  RelationSchema rs("LINK", {{"A", DataType::kText, DomainTag::kNone},
                             {"B", DataType::kText, DomainTag::kNone}});
  EXPECT_FALSE(rs.PrimaryKeyIndex().has_value());
}

TEST(DatabaseSchemaTest, AddRelationRejectsDuplicates) {
  DatabaseSchema schema;
  EXPECT_TRUE(schema.AddRelation(PeopleSchema()).ok());
  Status dup = schema.AddRelation(PeopleSchema());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseSchemaTest, AddRelationRejectsDuplicateAttributes) {
  DatabaseSchema schema;
  RelationSchema bad("R", {{"A", DataType::kText, DomainTag::kNone},
                           {"A", DataType::kInt, DomainTag::kNone}});
  EXPECT_EQ(schema.AddRelation(bad).code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseSchemaTest, AddRelationRejectsEmptyNames) {
  DatabaseSchema schema;
  EXPECT_EQ(schema.AddRelation(RelationSchema("", {})).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseSchemaTest, ForeignKeyValidation) {
  DatabaseSchema schema;
  ASSERT_TRUE(schema.AddRelation(PeopleSchema()).ok());
  ASSERT_TRUE(schema
                  .AddRelation(RelationSchema(
                      "DEPT", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                               {"Head", DataType::kText, DomainTag::kIdentifier}}))
                  .ok());
  // Valid FK.
  EXPECT_TRUE(schema.AddForeignKey({"DEPT", "Head", "PEOPLE", "Id"}).ok());
  // Duplicate FK.
  EXPECT_EQ(schema.AddForeignKey({"DEPT", "Head", "PEOPLE", "Id"}).code(),
            StatusCode::kAlreadyExists);
  // Missing source relation.
  EXPECT_EQ(schema.AddForeignKey({"NOPE", "Head", "PEOPLE", "Id"}).code(),
            StatusCode::kNotFound);
  // Missing target attribute.
  EXPECT_EQ(schema.AddForeignKey({"DEPT", "Head", "PEOPLE", "Zip"}).code(),
            StatusCode::kNotFound);
  // Target is not a primary key.
  EXPECT_EQ(schema.AddForeignKey({"DEPT", "Head", "PEOPLE", "Name"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseSchemaTest, TerminologySizeFormula) {
  DatabaseSchema schema;
  ASSERT_TRUE(schema.AddRelation(PeopleSchema()).ok());  // 1 + 2*3 = 7
  ASSERT_TRUE(schema
                  .AddRelation(RelationSchema(
                      "X", {{"A", DataType::kText, DomainTag::kNone}}))
                  .ok());  // 1 + 2*1 = 3
  EXPECT_EQ(schema.TerminologySize(), 10u);
}

TEST(DatabaseSchemaTest, DirectlyJoinable) {
  DatabaseSchema schema;
  ASSERT_TRUE(schema.AddRelation(PeopleSchema()).ok());
  ASSERT_TRUE(schema
                  .AddRelation(RelationSchema(
                      "DEPT", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                               {"Head", DataType::kText, DomainTag::kIdentifier}}))
                  .ok());
  EXPECT_FALSE(schema.DirectlyJoinable("DEPT", "PEOPLE"));
  ASSERT_TRUE(schema.AddForeignKey({"DEPT", "Head", "PEOPLE", "Id"}).ok());
  EXPECT_TRUE(schema.DirectlyJoinable("DEPT", "PEOPLE"));
  EXPECT_TRUE(schema.DirectlyJoinable("PEOPLE", "DEPT"));  // symmetric
}

// ----------------------------------------------------------------- Table

TEST(TableTest, InsertChecksArity) {
  Table t(PeopleSchema());
  Status s = t.Insert({Value::Text("p1"), Value::Text("Ann")});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertChecksTypes) {
  Table t(PeopleSchema());
  Status s = t.Insert({Value::Text("p1"), Value::Text("Ann"), Value::Text("old")});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertEnforcesPrimaryKey) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value::Text("p1"), Value::Text("Ann"), Value::Int(30)}).ok());
  EXPECT_EQ(t.Insert({Value::Text("p1"), Value::Text("Bob"), Value::Int(31)}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(t.Insert({Value::Null(), Value::Text("Bob"), Value::Int(31)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TableTest, LookupByKey) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value::Text("p1"), Value::Text("Ann"), Value::Int(30)}).ok());
  ASSERT_TRUE(t.Insert({Value::Text("p2"), Value::Text("Bob"), Value::Int(40)}).ok());
  ASSERT_TRUE(t.LookupByKey(Value::Text("p2")).has_value());
  EXPECT_EQ(*t.LookupByKey(Value::Text("p2")), 1u);
  EXPECT_FALSE(t.LookupByKey(Value::Text("zz")).has_value());
}

TEST(TableTest, DistinctValuesSkipsNullsAndDuplicates) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value::Text("p1"), Value::Text("Ann"), Value::Int(30)}).ok());
  ASSERT_TRUE(t.Insert({Value::Text("p2"), Value::Text("Ann"), Value::Null()}).ok());
  ASSERT_TRUE(t.Insert({Value::Text("p3"), Value::Null(), Value::Int(30)}).ok());
  EXPECT_EQ(t.DistinctValues(1).size(), 1u);  // "Ann"
  EXPECT_EQ(t.DistinctValues(2).size(), 1u);  // 30
}

TEST(TableTest, ContainsValue) {
  Table t(PeopleSchema());
  ASSERT_TRUE(t.Insert({Value::Text("p1"), Value::Text("Ann"), Value::Int(30)}).ok());
  EXPECT_TRUE(t.ContainsValue(1, Value::Text("Ann")));
  EXPECT_FALSE(t.ContainsValue(1, Value::Text("Bob")));
}

// -------------------------------------------------------------- Database

Database MakeDb() {
  Database db("test");
  EXPECT_TRUE(db.CreateRelation(PeopleSchema()).ok());
  EXPECT_TRUE(db.CreateRelation(RelationSchema(
                                    "DEPT",
                                    {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                                     {"Head", DataType::kText, DomainTag::kIdentifier}}))
                  .ok());
  EXPECT_TRUE(db.AddForeignKey({"DEPT", "Head", "PEOPLE", "Id"}).ok());
  return db;
}

TEST(DatabaseTest, InsertIntoMissingRelationFails) {
  Database db = MakeDb();
  EXPECT_EQ(db.Insert("NOPE", {}).code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, IntegrityDetectsDanglingForeignKey) {
  Database db = MakeDb();
  ASSERT_TRUE(db.Insert("PEOPLE", {Value::Text("p1"), Value::Text("Ann"),
                                   Value::Int(30)})
                  .ok());
  ASSERT_TRUE(db.Insert("DEPT", {Value::Text("d1"), Value::Text("p1")}).ok());
  EXPECT_TRUE(db.CheckIntegrity().ok());
  ASSERT_TRUE(db.Insert("DEPT", {Value::Text("d2"), Value::Text("zz")}).ok());
  EXPECT_EQ(db.CheckIntegrity().code(), StatusCode::kFailedPrecondition);
}

TEST(DatabaseTest, IntegrityAllowsNullForeignKey) {
  Database db = MakeDb();
  ASSERT_TRUE(db.Insert("DEPT", {Value::Text("d1"), Value::Null()}).ok());
  EXPECT_TRUE(db.CheckIntegrity().ok());
}

TEST(DatabaseTest, VocabularyCollectsLoweredTextValues) {
  Database db = MakeDb();
  ASSERT_TRUE(db.Insert("PEOPLE", {Value::Text("p1"), Value::Text("Ann Lee"),
                                   Value::Int(30)})
                  .ok());
  auto vocab = db.BuildVocabulary();
  ASSERT_EQ(vocab.count("ann lee"), 1u);
  EXPECT_EQ(vocab["ann lee"][0].relation, "PEOPLE");
  EXPECT_EQ(vocab["ann lee"][0].attribute, "Name");
  // Integers are not vocabulary.
  EXPECT_EQ(vocab.count("30"), 0u);
}

TEST(DatabaseTest, TotalRows) {
  Database db = MakeDb();
  EXPECT_EQ(db.TotalRows(), 0u);
  ASSERT_TRUE(db.Insert("PEOPLE", {Value::Text("p1"), Value::Text("Ann"),
                                   Value::Int(30)})
                  .ok());
  EXPECT_EQ(db.TotalRows(), 1u);
}

TEST(DatabaseTest, FindTable) {
  Database db = MakeDb();
  EXPECT_NE(db.FindTable("PEOPLE"), nullptr);
  EXPECT_EQ(db.FindTable("NOPE"), nullptr);
}


// ------------------------------------------------------------------- CSV

TEST(CsvTest, EscapeRules) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape(""), "\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, ParseLineBasics) {
  std::vector<bool> quoted;
  auto fields = ParseCsvLine("a,b,,d", &quoted);
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "", "d"}));
  EXPECT_EQ(quoted, (std::vector<bool>{false, false, false, false}));
}

TEST(CsvTest, ParseLineQuoting) {
  std::vector<bool> quoted;
  auto fields = ParseCsvLine("\"a,b\",\"say \"\"hi\"\"\",\"\"", &quoted);
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a,b", "say \"hi\"", ""}));
  EXPECT_EQ(quoted, (std::vector<bool>{true, true, true}));
}

TEST(CsvTest, ParseLineErrors) {
  EXPECT_FALSE(ParseCsvLine("\"unterminated", nullptr).ok());
  EXPECT_FALSE(ParseCsvLine("ab\"cd", nullptr).ok());
}

TEST(CsvTest, RoundTripPreservesValuesAndNulls) {
  Database db = MakeDb();
  ASSERT_TRUE(db.Insert("PEOPLE", {Value::Text("p1"), Value::Text("Ann, \"Jr\""),
                                   Value::Int(30)})
                  .ok());
  ASSERT_TRUE(db.Insert("PEOPLE", {Value::Text("p2"), Value::Null(), Value::Null()})
                  .ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteTableCsv(*db.FindTable("PEOPLE"), &out).ok());

  Database db2 = MakeDb();
  std::istringstream in(out.str());
  ASSERT_TRUE(LoadTableCsv(&db2, "PEOPLE", &in).ok());
  const Table* t = db2.FindTable("PEOPLE");
  ASSERT_EQ(t->size(), 2u);
  EXPECT_EQ(t->rows()[0][1], Value::Text("Ann, \"Jr\""));
  EXPECT_EQ(t->rows()[0][2], Value::Int(30));
  EXPECT_TRUE(t->rows()[1][1].is_null());
  EXPECT_TRUE(t->rows()[1][2].is_null());
}

TEST(CsvTest, LoadReordersColumnsByHeader) {
  Database db = MakeDb();
  std::istringstream in("Age,Id,Name\n41,p9,Zoe\n");
  ASSERT_TRUE(LoadTableCsv(&db, "PEOPLE", &in).ok());
  const Table* t = db.FindTable("PEOPLE");
  ASSERT_EQ(t->size(), 1u);
  EXPECT_EQ(t->rows()[0][0], Value::Text("p9"));
  EXPECT_EQ(t->rows()[0][1], Value::Text("Zoe"));
  EXPECT_EQ(t->rows()[0][2], Value::Int(41));
}

TEST(CsvTest, LoadRejectsBadInput) {
  Database db = MakeDb();
  std::istringstream missing_header("");
  EXPECT_FALSE(LoadTableCsv(&db, "PEOPLE", &missing_header).ok());
  std::istringstream bad_column("Id,Wat\np1,x\n");
  EXPECT_FALSE(LoadTableCsv(&db, "PEOPLE", &bad_column).ok());
  std::istringstream bad_arity("Id,Name,Age\np1,x\n");
  EXPECT_FALSE(LoadTableCsv(&db, "PEOPLE", &bad_arity).ok());
  std::istringstream bad_type("Id,Name,Age\np1,x,old\n");
  EXPECT_FALSE(LoadTableCsv(&db, "PEOPLE", &bad_type).ok());
  std::istringstream no_table("Id\np1\n");
  EXPECT_FALSE(LoadTableCsv(&db, "NOPE", &no_table).ok());
}

}  // namespace
}  // namespace km
