// Tests for km_metadata: terminology, weight matrices, contextualization,
// configurations.

#include <gtest/gtest.h>

#include "datasets/university.h"
#include "metadata/configuration.h"
#include "metadata/contextualize.h"
#include "metadata/term.h"
#include "metadata/weights.h"

namespace km {
namespace {

class MetadataTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniversityOptions opts;
    opts.extra_people = 10;
    opts.extra_departments = 2;
    opts.extra_universities = 2;
    opts.extra_projects = 2;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    terminology_ = new Terminology(db_->schema());
  }
  static void TearDownTestSuite() {
    delete terminology_;
    delete db_;
    terminology_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static Terminology* terminology_;
};

Database* MetadataTest::db_ = nullptr;
Terminology* MetadataTest::terminology_ = nullptr;

// ----------------------------------------------------------- Terminology

TEST_F(MetadataTest, TerminologySizeMatchesFormula) {
  EXPECT_EQ(terminology_->size(), db_->schema().TerminologySize());
}

TEST_F(MetadataTest, TermLookups) {
  auto rel = terminology_->RelationTerm("PEOPLE");
  ASSERT_TRUE(rel.has_value());
  EXPECT_EQ(terminology_->term(*rel).kind, TermKind::kRelation);
  EXPECT_EQ(terminology_->term(*rel).ToString(), "PEOPLE");

  auto attr = terminology_->AttributeTerm("PEOPLE", "Name");
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(terminology_->term(*attr).ToString(), "PEOPLE.Name");
  EXPECT_TRUE(terminology_->term(*attr).is_schema_term());

  auto dom = terminology_->DomainTerm("PEOPLE", "Name");
  ASSERT_TRUE(dom.has_value());
  EXPECT_EQ(terminology_->term(*dom).ToString(), "Dom(PEOPLE.Name)");
  EXPECT_TRUE(terminology_->term(*dom).is_value_term());

  EXPECT_FALSE(terminology_->RelationTerm("NOPE").has_value());
  EXPECT_FALSE(terminology_->AttributeTerm("PEOPLE", "Nope").has_value());
}

TEST_F(MetadataTest, PairedTermLinksAttributeAndDomain) {
  auto attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto dom = terminology_->DomainTerm("PEOPLE", "Name");
  ASSERT_TRUE(attr && dom);
  EXPECT_EQ(terminology_->PairedTerm(*attr), *dom);
  EXPECT_EQ(terminology_->PairedTerm(*dom), *attr);
  auto rel = terminology_->RelationTerm("PEOPLE");
  EXPECT_FALSE(terminology_->PairedTerm(*rel).has_value());
}

TEST_F(MetadataTest, TermsOfRelationCoversAllKinds) {
  auto terms = terminology_->TermsOfRelation("UNIVERSITY");
  // UNIVERSITY(Name, City, Country): 1 relation + 3 attrs + 3 domains = 7.
  EXPECT_EQ(terms.size(), 7u);
}

TEST_F(MetadataTest, DomainTermsCarryTypeAndTag) {
  auto dom = terminology_->DomainTerm("PEOPLE", "Phone");
  ASSERT_TRUE(dom.has_value());
  EXPECT_EQ(terminology_->term(*dom).type, DataType::kText);
  EXPECT_EQ(terminology_->term(*dom).tag, DomainTag::kPhone);
}

// --------------------------------------------------------------- Weights

TEST_F(MetadataTest, ExactSchemaNameGetsTopWeight) {
  WeightMatrixBuilder builder(*terminology_, db_);
  auto rel = terminology_->RelationTerm("PEOPLE");
  EXPECT_DOUBLE_EQ(builder.Weight("people", terminology_->term(*rel)), 1.0);
}

TEST_F(MetadataTest, SynonymGetsHighSchemaWeight) {
  WeightMatrixBuilder builder(*terminology_, db_);
  auto rel = terminology_->RelationTerm("PEOPLE");
  // "person" is a synonym of "people" in the builtin thesaurus; after the
  // floor rescaling the synonym score 0.9 maps to (0.9-f)/(1-f).
  WeightOptions defaults;
  double expected =
      (Thesaurus::kSynonymScore - defaults.sw_floor) / (1.0 - defaults.sw_floor);
  EXPECT_GE(builder.Weight("person", terminology_->term(*rel)), expected - 1e-9);
}

TEST_F(MetadataTest, SynonymsDisabledDropsTheBoost) {
  WeightOptions opts;
  opts.use_synonyms = false;
  WeightMatrixBuilder builder(*terminology_, db_, opts);
  auto rel = terminology_->RelationTerm("PEOPLE");
  double w = builder.Weight("individual", terminology_->term(*rel));
  EXPECT_LT(w, 0.5);  // string similarity alone cannot link these
}

TEST_F(MetadataTest, ShortKeywordsRequireExactSchemaMatch) {
  WeightMatrixBuilder builder(*terminology_, db_);
  auto id_attr = terminology_->AttributeTerm("PEOPLE", "Id");
  ASSERT_TRUE(id_attr.has_value());
  EXPECT_DOUBLE_EQ(builder.Weight("IT", terminology_->term(*id_attr)), 0.0);
  EXPECT_DOUBLE_EQ(builder.Weight("id", terminology_->term(*id_attr)), 1.0);
}

TEST_F(MetadataTest, InstanceHitDominatesValueWeight) {
  WeightMatrixBuilder builder(*terminology_, db_);
  auto dom = terminology_->DomainTerm("PEOPLE", "Name");
  // "Vokram" is an actual PEOPLE.Name value.
  EXPECT_GE(builder.Weight("Vokram", terminology_->term(*dom)), 0.9);
  // Case-insensitive.
  EXPECT_GE(builder.Weight("vokram", terminology_->term(*dom)), 0.9);
}

TEST_F(MetadataTest, MetadataOnlyModeStillScoresShapes) {
  WeightOptions opts;
  opts.use_instance_vocabulary = false;
  WeightMatrixBuilder builder(*terminology_, db_, opts);
  auto phone_dom = terminology_->DomainTerm("PEOPLE", "Phone");
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  double phone_w = builder.Weight("4631234", terminology_->term(*phone_dom));
  double name_w = builder.Weight("4631234", terminology_->term(*name_dom));
  EXPECT_GT(phone_w, name_w);  // shape recognizers still work
}

TEST_F(MetadataTest, TypeMismatchZeroesValueWeight) {
  WeightMatrixBuilder builder(*terminology_, db_);
  auto year_dom = terminology_->DomainTerm("AFFILIATED", "Year");
  EXPECT_DOUBLE_EQ(builder.Weight("Vokram", terminology_->term(*year_dom)), 0.0);
}

TEST_F(MetadataTest, BuildProducesFullMatrix) {
  WeightMatrixBuilder builder(*terminology_, db_);
  Matrix m = builder.Build({"Vokram", "IT"});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), terminology_->size());
  // All weights in [0,1].
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      EXPECT_GE(m.At(r, c), 0.0);
      EXPECT_LE(m.At(r, c), 1.0);
    }
  }
}

TEST_F(MetadataTest, DomainPatternsDisabledFlattensVW) {
  WeightOptions opts;
  opts.use_domain_patterns = false;
  opts.use_instance_vocabulary = false;
  WeightMatrixBuilder builder(*terminology_, db_, opts);
  auto phone_dom = terminology_->DomainTerm("PEOPLE", "Phone");
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  EXPECT_DOUBLE_EQ(builder.Weight("4631234", terminology_->term(*phone_dom)),
                   builder.Weight("4631234", terminology_->term(*name_dom)));
}

// -------------------------------------------------------- Contextualizer

TEST_F(MetadataTest, AttributeAssignmentBoostsAdjacentDomain) {
  Contextualizer ctx(*terminology_, db_->schema());
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  Matrix f(2, terminology_->size(), 1.0);
  ctx.Apply(/*assigned_keyword=*/0, *name_attr, {1}, &f);
  EXPECT_GT(f.At(1, *name_dom), 1.0);
  // The attribute's own domain gets the strongest boost of the row.
  for (size_t c = 0; c < f.cols(); ++c) {
    EXPECT_LE(f.At(1, c), f.At(1, *name_dom));
  }
}

TEST_F(MetadataTest, NonAdjacentKeywordIsLeftUntouched) {
  Contextualizer ctx(*terminology_, db_->schema());
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  Matrix f(3, terminology_->size(), 1.0);
  ctx.Apply(0, *name_attr, {2}, &f);  // keyword 2 is not adjacent to 0
  // The proximity gate keeps all of keyword 2's factors neutral.
  for (size_t c = 0; c < f.cols(); ++c) EXPECT_DOUBLE_EQ(f.At(2, c), 1.0);
}

TEST_F(MetadataTest, ZeroIntrinsicWeightsAreNeverResurrected) {
  // Contextualized weight = intrinsic × factor, so an impossible (zero)
  // match stays zero regardless of boosts.
  Contextualizer ctx(*terminology_, db_->schema());
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  Matrix intrinsic(2, terminology_->size(), 0.0);
  intrinsic.At(0, *name_attr) = 1.0;
  double score = ctx.ScoreSequence(intrinsic, {*name_attr, *name_dom});
  EXPECT_DOUBLE_EQ(score, 1.0);  // second keyword contributes 0 × factor
}

TEST_F(MetadataTest, TotalBoostIsCapped) {
  Contextualizer ctx(*terminology_, db_->schema());
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  Matrix f(3, terminology_->size(), 1.0);
  // Two assignments in the same relation both boost row 1's factors; the
  // accumulated factor must not exceed the cap.
  ctx.Apply(0, *name_attr, {1}, &f);
  ctx.Apply(2, *terminology_->AttributeTerm("PEOPLE", "Phone"), {1}, &f);
  EXPECT_LE(f.At(1, *name_dom), ctx.options().max_total_boost + 1e-12);
}

TEST_F(MetadataTest, DisabledContextualizerIsNoOp) {
  ContextualizeOptions opts;
  opts.enabled = false;
  Contextualizer ctx(*terminology_, db_->schema(), opts);
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  Matrix f(2, terminology_->size(), 1.0);
  ctx.Apply(0, *name_attr, {1}, &f);
  for (size_t c = 0; c < f.cols(); ++c) {
    EXPECT_DOUBLE_EQ(f.At(1, c), 1.0);
  }
}

TEST_F(MetadataTest, ValueAssignmentBoostsCoherentRelationsSymmetrically) {
  Contextualizer ctx(*terminology_, db_->schema());
  auto name_dom_people = terminology_->DomainTerm("PEOPLE", "Name");
  auto phone_dom_people = terminology_->DomainTerm("PEOPLE", "Phone");
  auto aff_year = terminology_->DomainTerm("AFFILIATED", "Year");
  auto uni_city = terminology_->DomainTerm("UNIVERSITY", "City");
  Matrix f(2, terminology_->size(), 1.0);
  ctx.Apply(0, *name_dom_people, {1}, &f);
  // AFFILIATED is FK-adjacent to PEOPLE; UNIVERSITY is two hops away
  // (through DEPARTMENT). A *value* assignment treats same-relation and
  // FK-adjacent coherence equally and reaches two hops at a decayed rate.
  EXPECT_GT(f.At(1, *aff_year), 1.0);
  EXPECT_DOUBLE_EQ(f.At(1, *phone_dom_people), f.At(1, *aff_year));
  EXPECT_NEAR(f.At(1, *uni_city), ctx.options().value_coherence_2hop, 1e-9);
  EXPECT_LT(f.At(1, *uni_city), f.At(1, *aff_year));
  // The assigned term itself is never boosted for other keywords: the
  // mapping is injective, so reusing it is impossible anyway.
  EXPECT_DOUBLE_EQ(f.At(1, *name_dom_people), 1.0);
}

TEST_F(MetadataTest, SchemaAssignmentPrefersSameRelationOverFkAdjacent) {
  Contextualizer ctx(*terminology_, db_->schema());
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto phone_dom_people = terminology_->DomainTerm("PEOPLE", "Phone");
  auto aff_year = terminology_->DomainTerm("AFFILIATED", "Year");
  Matrix f(2, terminology_->size(), 1.0);
  ctx.Apply(0, *name_attr, {1}, &f);
  EXPECT_GT(f.At(1, *phone_dom_people), f.At(1, *aff_year));
  EXPECT_GT(f.At(1, *aff_year), 1.0);
}

TEST_F(MetadataTest, ScoreSequenceExceedsIntrinsicSumWhenCoherent) {
  Contextualizer ctx(*terminology_, db_->schema());
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  Matrix w(2, terminology_->size(), 0.5);
  double coherent = ctx.ScoreSequence(w, {*name_attr, *name_dom});
  // An incoherent assignment (unrelated relations) gets no boost.
  auto uni_city = terminology_->DomainTerm("UNIVERSITY", "City");
  double incoherent = ctx.ScoreSequence(w, {*name_attr, *uni_city});
  EXPECT_GT(coherent, incoherent);
  EXPECT_DOUBLE_EQ(incoherent, 1.0);  // 0.5 + 0.5, no boosts apply
}

// ---------------------------------------------------------- Configuration

TEST_F(MetadataTest, ConfigurationInjectivity) {
  Configuration c;
  c.term_for_keyword = {1, 2, 3};
  EXPECT_TRUE(c.IsInjective());
  c.term_for_keyword = {1, 2, 1};
  EXPECT_FALSE(c.IsInjective());
}

TEST_F(MetadataTest, ConfigurationToString) {
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  auto country_dom = terminology_->DomainTerm("UNIVERSITY", "Country");
  Configuration c;
  c.term_for_keyword = {*name_dom, *country_dom};
  std::string s = c.ToString({"Vokram", "IT"}, *terminology_);
  EXPECT_NE(s.find("Vokram→Dom(PEOPLE.Name)"), std::string::npos);
  EXPECT_NE(s.find("IT→Dom(UNIVERSITY.Country)"), std::string::npos);
}

TEST_F(MetadataTest, ConfigurationEqualityIgnoresScore) {
  Configuration a, b;
  a.term_for_keyword = {1, 2};
  a.score = 0.5;
  b.term_for_keyword = {1, 2};
  b.score = 0.9;
  EXPECT_TRUE(a == b);
}


// ---------------------------------------------------- newer weight rules


TEST_F(MetadataTest, ForeignKeyAttributesAreDiscounted) {
  WeightMatrixBuilder builder(*terminology_, db_);
  // AFFILIATED.IdPrs is a foreign key to PEOPLE.Id; a keyword matching the
  // value "p1" must score higher on the referenced key's domain than on the
  // referencing column's domain.
  auto fk_dom = terminology_->DomainTerm("AFFILIATED", "IdPrs");
  auto pk_dom = terminology_->DomainTerm("PEOPLE", "Id");
  ASSERT_TRUE(fk_dom && pk_dom);
  double fk_w = builder.Weight("p1", terminology_->term(*fk_dom));
  double pk_w = builder.Weight("p1", terminology_->term(*pk_dom));
  EXPECT_GT(pk_w, fk_w);
  EXPECT_GT(fk_w, 0.0);
}

TEST_F(MetadataTest, InstanceMissPenalizesPatternScore) {
  // "Zanzibar" is capitalized (name-shaped) but absent from the instance;
  // with full access its PersonName-domain score must drop well below an
  // actual instance value's score, and below the metadata-only score.
  WeightMatrixBuilder full(*terminology_, db_);
  WeightOptions meta_opts;
  meta_opts.use_instance_vocabulary = false;
  WeightMatrixBuilder meta(*terminology_, db_, meta_opts);
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  double full_missing = full.Weight("Zanzibar", terminology_->term(*name_dom));
  double meta_missing = meta.Weight("Zanzibar", terminology_->term(*name_dom));
  double full_hit = full.Weight("Vokram", terminology_->term(*name_dom));
  EXPECT_LT(full_missing, meta_missing);
  EXPECT_LT(full_missing, full_hit / 3);
}

TEST_F(MetadataTest, FrequencyBonusBreaksTiesTowardCommonValues) {
  // "IT" appears multiple times in PEOPLE.Country and UNIVERSITY.Country;
  // the weight of the more frequent column must be at least as high, and
  // both must exceed plain instance_hit_weight only through the bonus.
  WeightMatrixBuilder builder(*terminology_, db_);
  auto people_c = terminology_->DomainTerm("PEOPLE", "Country");
  auto uni_c = terminology_->DomainTerm("UNIVERSITY", "Country");
  double wp = builder.Weight("IT", terminology_->term(*people_c));
  double wu = builder.Weight("IT", terminology_->term(*uni_c));
  WeightOptions defaults;
  EXPECT_GE(wp, defaults.instance_hit_weight);
  EXPECT_GE(wu, defaults.instance_hit_weight);
  EXPECT_LE(wp, 0.99);
  EXPECT_LE(wu, 0.99);
}

TEST_F(MetadataTest, HitWeightConfiguredAtOneSurvivesFrequencyBonus) {
  // Regression: the 0.99 cap used to apply to base + bonus together, so a
  // hit weight configured at 1.0 ("an exact hit is certain") was silently
  // pulled down to 0.99. The cap must bound only the frequency bonus.
  WeightOptions opts;
  opts.instance_hit_weight = 1.0;
  WeightMatrixBuilder builder(*terminology_, db_, opts);
  auto dom = terminology_->DomainTerm("PEOPLE", "Name");
  ASSERT_TRUE(dom.has_value());
  // "Vokram" is an actual PEOPLE.Name value; PEOPLE.Name is not an FK.
  EXPECT_DOUBLE_EQ(builder.ValueWeight("Vokram", terminology_->term(*dom)),
                   1.0);
}

TEST_F(MetadataTest, HitWeightAtCapBoundaryIsExact) {
  // Option boundary: exactly at the cap the bonus is a no-op, not a
  // perturbation — 0.99 in, 0.99 out.
  WeightOptions opts;
  opts.instance_hit_weight = 0.99;
  WeightMatrixBuilder builder(*terminology_, db_, opts);
  auto dom = terminology_->DomainTerm("PEOPLE", "Name");
  EXPECT_DOUBLE_EQ(builder.ValueWeight("Vokram", terminology_->term(*dom)),
                   0.99);
}

TEST_F(MetadataTest, SubstringValuesGetPartialWeight) {
  WeightMatrixBuilder builder(*terminology_, db_);
  auto email_dom = terminology_->DomainTerm("PEOPLE", "Email");
  // "vokram" is a substring of "vokram@univ.edu" (>=4 chars → partial hit).
  double w = builder.Weight("vokram", terminology_->term(*email_dom));
  WeightOptions defaults;
  EXPECT_GE(w, defaults.instance_partial_weight - 1e-9);
}

TEST_F(MetadataTest, SwFloorZeroesWeakMatches) {
  WeightMatrixBuilder builder(*terminology_, db_);
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  // A random-ish token should not get any schema weight against "Name".
  EXPECT_DOUBLE_EQ(builder.Weight("xylophone", terminology_->term(*name_attr)), 0.0);
}

}  // namespace
}  // namespace km
