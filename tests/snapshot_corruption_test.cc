// Corruption fuzz harness for the snapshot loader (satellite of the
// crash-safe snapshot PR): hundreds of random single-byte flips and
// truncations of a valid snapshot, each fed to LoadSnapshot. The contract
// under test: every iteration either loads cleanly (impossible here — the
// format covers every byte with a checksum) or returns one of the three
// typed snapshot errors. Never a crash, never an abort, never an ASan
// report (the CI asan job runs this suite).
//
// Iteration count: 500 by default; KM_SNAPSHOT_FUZZ_ITERS overrides it
// (the failpoints CI job runs a bounded smoke, local soak runs can go
// higher). The mt19937 seed is fixed, so a failure reproduces exactly.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <random>
#include <sstream>
#include <string>

#include "common/status.h"
#include "core/prepared_state.h"
#include "datasets/university.h"
#include "snapshot/snapshot.h"

namespace km {
namespace {

size_t FuzzIterations() {
  const char* env = std::getenv("KM_SNAPSHOT_FUZZ_ITERS");
  if (env != nullptr) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 500;
}

bool IsTypedSnapshotError(StatusCode code) {
  return code == StatusCode::kSnapshotTruncated ||
         code == StatusCode::kSnapshotChecksumMismatch ||
         code == StatusCode::kSnapshotVersionSkew;
}

class SnapshotCorruptionTest : public testing::Test {
 protected:
  void SetUp() override {
    UniversityOptions opts;
    opts.extra_people = 10;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
    auto state = PreparedState::Build(*db_, PrepareOptions{});
    // Suffixed with the pid: ctest runs each test of this suite as its own
    // process, concurrently under -j, and two processes mutating the same
    // scratch file SIGBUS each other mid-mmap.
    path_ = testing::TempDir() + "km_fuzz_base." + std::to_string(getpid()) +
            ".snap";
    ASSERT_TRUE(SaveSnapshot(*state, path_).ok());
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes_ = buf.str();
    ASSERT_GT(bytes_.size(), 0u);
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(corrupt_path_.c_str());
  }

  /// Writes `bytes` to the scratch path and loads it, asserting the typed
  /// error contract. `what` labels the failure for reproduction.
  void ExpectTypedFailure(const std::string& bytes, const std::string& what) {
    {
      std::ofstream out(corrupt_path_, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      ASSERT_TRUE(out.good());
    }
    auto loaded = LoadSnapshot(corrupt_path_);
    ASSERT_FALSE(loaded.ok()) << what << ": corrupted snapshot loaded cleanly";
    EXPECT_TRUE(IsTypedSnapshotError(loaded.status().code()))
        << what << ": untyped error " << loaded.status().ToString();
  }

  std::unique_ptr<Database> db_;
  std::string path_;
  std::string corrupt_path_ = testing::TempDir() + "km_fuzz_corrupt." +
                              std::to_string(getpid()) + ".snap";
  std::string bytes_;
};

TEST_F(SnapshotCorruptionTest, RandomSingleByteFlipsAlwaysFailTyped) {
  // Every byte of the file is covered by exactly one checksum, so any
  // single-byte change must be detected — there is no "harmless" offset.
  std::mt19937 rng(0x5eed5a9u);
  std::uniform_int_distribution<size_t> offset_dist(0, bytes_.size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);
  const size_t iterations = FuzzIterations();
  for (size_t i = 0; i < iterations; ++i) {
    const size_t offset = offset_dist(rng);
    const int bit = bit_dist(rng);
    std::string corrupt = bytes_;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ (1 << bit));
    ExpectTypedFailure(corrupt, "iter " + std::to_string(i) + ": flip bit " +
                                    std::to_string(bit) + " at offset " +
                                    std::to_string(offset));
  }
}

TEST_F(SnapshotCorruptionTest, RandomTruncationsAlwaysFailTyped) {
  std::mt19937 rng(0xdecafu);
  std::uniform_int_distribution<size_t> length_dist(0, bytes_.size() - 1);
  const size_t iterations = FuzzIterations();
  for (size_t i = 0; i < iterations; ++i) {
    const size_t length = length_dist(rng);
    ExpectTypedFailure(bytes_.substr(0, length),
                       "iter " + std::to_string(i) + ": truncate to " +
                           std::to_string(length) + " bytes");
  }
}

TEST_F(SnapshotCorruptionTest, RandomGarbageFilesAlwaysFailTyped) {
  std::mt19937 rng(0xba5eba11u);
  std::uniform_int_distribution<size_t> length_dist(0, 4096);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  // Bounded: pure-garbage inputs mostly die at the magic check; a smaller
  // round still proves the path never crashes.
  const size_t iterations = FuzzIterations() / 5;
  for (size_t i = 0; i < iterations; ++i) {
    std::string garbage(length_dist(rng), '\0');
    for (char& c : garbage) c = static_cast<char>(byte_dist(rng));
    ExpectTypedFailure(garbage, "iter " + std::to_string(i) + ": garbage of " +
                                    std::to_string(garbage.size()) + " bytes");
  }
}

}  // namespace
}  // namespace km
