// Resilience tests: deadlines, work budgets, cooperative cancellation, the
// degradation ladder, hostile input, and the deterministic fault-injection
// harness. The common assertion everywhere: the engine never aborts — it
// either degrades to a ranked partial answer or returns a clean Status.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/matrix.h"
#include "common/query_context.h"
#include "core/keymantic.h"
#include "datasets/university.h"
#include "engine/executor.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/engine_server.h"
#include "serve/tenant.h"
#include "snapshot/snapshot.h"

namespace km {
namespace {

class ResilienceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniversityOptions opts;
    opts.extra_people = 20;
    opts.extra_departments = 3;
    opts.extra_universities = 2;
    opts.extra_projects = 3;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  void TearDown() override { failpoints::Reset(); }

  static KeymanticEngine MakeEngine(ForwardMode fw, BackwardMode bw) {
    EngineOptions options;
    options.forward_mode = fw;
    options.backward_mode = bw;
    return KeymanticEngine(*db_, options);
  }

  static Database* db_;
};

Database* ResilienceTest::db_ = nullptr;

// ------------------------------------------------------------- deadlines

// A query whose deadline expired before it even started must still return
// a ranked, non-empty answer via the degradation floors — for every
// forward/backward mode combination.
TEST_F(ResilienceTest, ZeroDeadlineStillAnswersInEveryMode) {
  const ForwardMode forward_modes[] = {ForwardMode::kHungarian,
                                       ForwardMode::kHmmApriori,
                                       ForwardMode::kHmmTrained,
                                       ForwardMode::kCombinedDst};
  const BackwardMode backward_modes[] = {BackwardMode::kFullGraph,
                                         BackwardMode::kSummary};
  for (ForwardMode fw : forward_modes) {
    for (BackwardMode bw : backward_modes) {
      KeymanticEngine engine = MakeEngine(fw, bw);
      QueryLimits limits;
      limits.deadline_ms = 0.0001;  // effectively already expired
      QueryContext ctx(limits);
      auto result = engine.Answer("Vokram IT", 5, &ctx);
      std::string where = "forward=" + std::to_string(static_cast<int>(fw)) +
                          " backward=" + std::to_string(static_cast<int>(bw));
      ASSERT_TRUE(result.ok()) << where << ": " << result.status().ToString();
      EXPECT_FALSE(result->explanations.empty()) << where;
      EXPECT_NE(result->quality, ResultQuality::kComplete) << where;
      // Bounded time: the floors are all polynomial — far below a second
      // on this schema even under sanitizers.
      EXPECT_LT(ctx.ElapsedMillis(), 10'000.0) << where;
      // Ranked means non-increasing scores.
      const auto& ex = result->explanations;
      for (size_t i = 1; i < ex.size(); ++i) {
        EXPECT_GE(ex[i - 1].score + 1e-12, ex[i].score) << where;
      }
    }
  }
}

TEST_F(ResilienceTest, UnlimitedContextReportsComplete) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  QueryContext ctx;  // no deadline, no budgets
  auto result = engine.Answer("Vokram IT", 5, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_EQ(result->quality, ResultQuality::kComplete);
  // Spend was recorded for the combinatorial stages.
  EXPECT_GT(result->stats.stage_spend[static_cast<size_t>(QueryStage::kForward)],
            0u);
  EXPECT_GT(result->stats.stage_spend[static_cast<size_t>(QueryStage::kBackward)],
            0u);
}

TEST_F(ResilienceTest, AnswerMatchesSearchWithoutBudget) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  auto via_answer = engine.Answer("Vokram IT", 5);
  auto via_search = engine.Search("Vokram IT", 5);
  ASSERT_TRUE(via_answer.ok());
  ASSERT_TRUE(via_search.ok());
  ASSERT_EQ(via_answer->explanations.size(), via_search->size());
  for (size_t i = 0; i < via_search->size(); ++i) {
    EXPECT_EQ(via_answer->explanations[i].sql.CanonicalSignature(),
              (*via_search)[i].sql.CanonicalSignature());
  }
  EXPECT_EQ(via_answer->quality, ResultQuality::kComplete);
}

TEST_F(ResilienceTest, WorkBudgetYieldsPartialNotError) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  QueryLimits limits;
  limits.max_forward_work = 2;
  limits.max_backward_work = 2;
  QueryContext ctx(limits);
  auto result = engine.Answer("Vokram IT", 5, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_NE(result->quality, ResultQuality::kComplete);
  EXPECT_TRUE(ctx.work_budget_hit());
}

TEST_F(ResilienceTest, CancellationIsObservedAndTagged) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  QueryContext ctx;
  ctx.RequestCancel();  // cancelled before the query even starts
  auto result = engine.Answer("Vokram IT", 5, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_EQ(result->quality, ResultQuality::kDeadlineExceeded);
}

// --------------------------------------------------------- hostile input

TEST_F(ResilienceTest, EmptyQueryIsInvalidArgument) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  for (const char* q : {"", "   ", "\t\n"}) {
    auto result = engine.Answer(q, 5);
    ASSERT_FALSE(result.ok()) << "query '" << q << "'";
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(ResilienceTest, StopwordOnlyQueryIsInvalidArgument) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  auto result = engine.Answer("the of and", 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResilienceTest, UnterminatedQuoteIsInvalidArgument) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  auto result = engine.Answer("\"Vokram IT", 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResilienceTest, NonUtf8QueryIsInvalidArgument) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  // Overlong encoding, stray continuation byte, truncated sequence.
  for (const std::string& q :
       {std::string("Vokram \xC0\xAF"), std::string("\x80 oops"),
        std::string("tail \xE2\x82")}) {
    auto result = engine.Answer(q, 5);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(ResilienceTest, TooManyKeywordsIsInvalidArgument) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  std::vector<std::string> keywords;
  for (size_t i = 0; i < kMaxQueryKeywords + 1; ++i) {
    keywords.push_back("kw" + std::to_string(i));
  }
  auto result = engine.AnswerKeywords(keywords, 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // The same flood as raw text is rejected too (after tokenization).
  std::string big;
  for (const std::string& kw : keywords) big += kw + " ";
  auto via_text = engine.Answer(big, 5);
  ASSERT_FALSE(via_text.ok());
  EXPECT_EQ(via_text.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResilienceTest, EmptyOrMalformedKeywordsAreInvalidArgument) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  auto with_empty = engine.AnswerKeywords({"Vokram", ""}, 5);
  ASSERT_FALSE(with_empty.ok());
  EXPECT_EQ(with_empty.status().code(), StatusCode::kInvalidArgument);

  auto with_binary = engine.AnswerKeywords({"Vokram", "\xFF\xFE"}, 5);
  ASSERT_FALSE(with_binary.ok());
  EXPECT_EQ(with_binary.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResilienceTest, ValidateQueryTextDirectly) {
  EXPECT_TRUE(ValidateQueryText("Vokram \"IT dept\" 2012").ok());
  EXPECT_FALSE(ValidateQueryText("").ok());
  EXPECT_FALSE(ValidateQueryText("unbalanced \"quote").ok());
  EXPECT_FALSE(ValidateQueryText("bad \xF5\x80\x80\x80 byte").ok());
}

TEST_F(ResilienceTest, ControlCharactersAreInvalidArgument) {
  // Terminal-escape smuggling and NUL injection are rejected up front;
  // ordinary whitespace control characters are not.
  EXPECT_TRUE(ValidateQueryText("Vokram\tIT\n2012").ok());
  EXPECT_FALSE(ValidateQueryText(std::string("Vokram\x1b[31mIT")).ok());
  EXPECT_FALSE(ValidateQueryText(std::string("Vok\0ram", 7)).ok());
  EXPECT_FALSE(ValidateQueryText("del\x7f" "char").ok());

  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  auto via_text = engine.Answer("Vokram \x01 IT", 5);
  ASSERT_FALSE(via_text.ok());
  EXPECT_EQ(via_text.status().code(), StatusCode::kInvalidArgument);
  // Pre-tokenized keywords are checked too (they bypass ValidateQueryText).
  auto via_keywords = engine.AnswerKeywords({"Vokram", "\x1b[2J"}, 5);
  ASSERT_FALSE(via_keywords.ok());
  EXPECT_EQ(via_keywords.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ResilienceTest, OverlongKeywordIsInvalidArgument) {
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  const std::string giant(kMaxKeywordLength + 1, 'x');
  EXPECT_FALSE(ValidateQueryText("Vokram " + giant).ok());

  auto via_text = engine.Answer("Vokram " + giant, 5);
  ASSERT_FALSE(via_text.ok());
  EXPECT_EQ(via_text.status().code(), StatusCode::kInvalidArgument);

  // A quoted phrase with internal spaces dodges the raw-text run check but
  // becomes a single oversized keyword — the engine entry point catches it.
  std::string quoted = "\"";
  for (size_t i = 0; i < kMaxKeywordLength / 2; ++i) quoted += "ab ";
  quoted += "\"";
  auto via_quote = engine.Answer("Vokram " + quoted, 5);
  ASSERT_FALSE(via_quote.ok());
  EXPECT_EQ(via_quote.status().code(), StatusCode::kInvalidArgument);

  auto via_keywords = engine.AnswerKeywords({"Vokram", giant}, 5);
  ASSERT_FALSE(via_keywords.ok());
  EXPECT_EQ(via_keywords.status().code(), StatusCode::kInvalidArgument);

  // Right at the cap is legal input, not an error.
  const std::string at_cap(kMaxKeywordLength, 'x');
  EXPECT_TRUE(ValidateQueryText("Vokram " + at_cap).ok());
}

// --------------------------------------------------- batch cancellation

// Cancelling the shared context before the batch starts: every entry is
// in flight from the batch's point of view, and every single one must
// come back ranked with a degraded-family quality tag — not an error, not
// kComplete, for every answer in the batch.
TEST_F(ResilienceTest, CancelledBatchTagsEveryEntry) {
  EngineOptions options;
  options.threads = 2;
  KeymanticEngine engine(*db_, options);
  std::vector<std::string> queries = {"Vokram IT", "name person", "2012",
                                      "department city", "IT 2012",
                                      "Vokram department"};
  QueryContext ctx;
  ctx.RequestCancel();
  std::vector<StatusOr<AnswerResult>> results =
      engine.AnswerBatch(queries, 3, &ctx);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << "query " << i << ": " << results[i].status().ToString();
    EXPECT_FALSE(results[i]->explanations.empty()) << "query " << i;
    EXPECT_NE(results[i]->quality, ResultQuality::kComplete) << "query " << i;
    EXPECT_TRUE(results[i]->quality == ResultQuality::kDegraded ||
                results[i]->quality == ResultQuality::kPartial ||
                results[i]->quality == ResultQuality::kDeadlineExceeded)
        << "query " << i << ": quality "
        << static_cast<int>(results[i]->quality);
  }
}

// Cancelling from another thread mid-batch: no crash, one result per
// query, and each is either a clean ranked answer or a tagged partial —
// never a torn state. (The cancel lands at an arbitrary point, so some
// entries may legitimately have finished complete.)
TEST_F(ResilienceTest, MidBatchCancelLeavesEveryEntryWellFormed) {
  EngineOptions options;
  options.threads = 2;
  KeymanticEngine engine(*db_, options);
  std::vector<std::string> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(i % 2 == 0 ? "Vokram IT 2012" : "person department city");
  }
  QueryContext ctx;
  std::thread canceller([&ctx] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ctx.RequestCancel();
  });
  std::vector<StatusOr<AnswerResult>> results =
      engine.AnswerBatch(queries, 3, &ctx);
  canceller.join();
  ASSERT_TRUE(ctx.cancel_requested());
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok())
        << "query " << i << ": " << results[i].status().ToString();
    EXPECT_FALSE(results[i]->explanations.empty()) << "query " << i;
    const auto& ex = results[i]->explanations;
    for (size_t j = 1; j < ex.size(); ++j) {
      EXPECT_GE(ex[j - 1].score + 1e-12, ex[j].score)
          << "query " << i << " not ranked";
    }
  }
}

// ------------------------------------------------------------ failpoints

#define SKIP_WITHOUT_FAILPOINTS()                                      \
  do {                                                                 \
    if (!failpoints::Enabled()) {                                      \
      GTEST_SKIP() << "failpoint sites compiled out (KM_FAILPOINTS)";  \
    }                                                                  \
  } while (0)

TEST_F(ResilienceTest, TokenizeFailpointReturnsInjectedError) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  failpoints::EnableError("engine.tokenize.fail",
                          Status::Internal("injected tokenizer fault"));
  auto result = engine.Answer("Vokram IT", 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_GE(failpoints::HitCount("engine.tokenize.fail"), 1u);
}

TEST_F(ResilienceTest, WeightCorruptionIsSanitizedAway) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  failpoints::EnableCallback("weights.build.corrupt", [](void* payload) {
    auto* m = static_cast<Matrix*>(payload);
    if (m->rows() > 0 && m->cols() > 0) {
      m->At(0, 0) = std::numeric_limits<double>::quiet_NaN();
      if (m->cols() > 1) m->At(0, 1) = -7.0;
    }
  });
  auto result = engine.Answer("Vokram IT", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_GE(failpoints::HitCount("weights.build.corrupt"), 1u);
}

TEST_F(ResilienceTest, MurtyAllocFailureFallsToHungarianFloor) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  failpoints::EnableError("forward.murty.alloc",
                          Status::ResourceExhausted("injected alloc failure"));
  auto result = engine.Answer("Vokram IT", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_NE(result->quality, ResultQuality::kComplete);
  EXPECT_TRUE(result->stats.forward_degraded);
  EXPECT_GE(failpoints::HitCount("forward.murty.alloc"), 1u);
}

TEST_F(ResilienceTest, MurtyTimeoutExpiresContextAndDegrades) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  failpoints::EnableExpire("forward.murty.timeout");
  QueryContext ctx;
  auto result = engine.Answer("Vokram IT", 5, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_NE(result->quality, ResultQuality::kComplete);
  EXPECT_GE(failpoints::HitCount("forward.murty.timeout"), 1u);
}

TEST_F(ResilienceTest, RerankFailureSurfacesAsCleanError) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  failpoints::EnableError("forward.rerank.fail",
                          Status::Internal("injected rerank fault"));
  auto result = engine.Answer("Vokram IT", 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_GE(failpoints::HitCount("forward.rerank.fail"), 1u);
}

TEST_F(ResilienceTest, SteinerFailureFallsToSummaryRung) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  failpoints::EnableError("backward.steiner.node_missing",
                          Status::Internal("injected node-missing fault"));
  auto result = engine.Answer("Vokram IT", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_NE(result->quality, ResultQuality::kComplete);
  EXPECT_TRUE(result->stats.backward_degraded);
  EXPECT_GE(failpoints::HitCount("backward.steiner.node_missing"), 1u);
}

TEST_F(ResilienceTest, SteinerTimeoutFallsDownTheLadder) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  failpoints::EnableExpire("backward.steiner.timeout");
  QueryContext ctx;
  auto result = engine.Answer("Vokram IT", 5, &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_NE(result->quality, ResultQuality::kComplete);
  EXPECT_GE(failpoints::HitCount("backward.steiner.timeout"), 1u);
}

TEST_F(ResilienceTest, SummaryFailureFallsToShortestPathFloor) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kSummary);
  failpoints::EnableError("backward.summary.fail",
                          Status::Internal("injected summary fault"));
  auto result = engine.Answer("Vokram IT", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_NE(result->quality, ResultQuality::kComplete);
  EXPECT_TRUE(result->stats.backward_degraded);
  EXPECT_GE(failpoints::HitCount("backward.summary.fail"), 1u);
}

TEST_F(ResilienceTest, TranslateFailureSkipsOnlyTheFailedCandidate) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  failpoints::Action action;
  action.kind = failpoints::ActionKind::kError;
  action.error = Status::Internal("injected translate fault");
  action.limit = 1;  // only the first translation fails
  failpoints::Enable("engine.translate.fail", action);
  auto result = engine.Answer("Vokram IT", 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->explanations.empty());
  EXPECT_GE(failpoints::HitCount("engine.translate.fail"), 1u);
}

TEST_F(ResilienceTest, TranslateFailureOnEveryCandidateIsCleanNotFound) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  failpoints::EnableError("engine.translate.fail",
                          Status::Internal("injected translate fault"));
  auto result = engine.Answer("Vokram IT", 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ResilienceTest, ExecutorJoinFailureReturnsInjectedError) {
  SKIP_WITHOUT_FAILPOINTS();
  KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                      BackwardMode::kFullGraph);
  auto answer = engine.Answer("Vokram IT", 1);
  ASSERT_TRUE(answer.ok());
  ASSERT_FALSE(answer->explanations.empty());
  failpoints::EnableError("executor.join.fail",
                          Status::Internal("injected join fault"));
  Executor exec(*db_);
  auto rs = exec.Execute(answer->explanations[0].sql);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kInternal);
  EXPECT_GE(failpoints::HitCount("executor.join.fail"), 1u);
}

// A single unarmed sweep through the pipeline must visit every canonical
// failpoint site: the list in failpoint.cc and the KM_FAILPOINT sites in
// the code cannot drift apart without this test noticing.
TEST_F(ResilienceTest, EverySiteIsVisitedByTheUnarmedPipeline) {
  SKIP_WITHOUT_FAILPOINTS();
  failpoints::Reset();
  {
    KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                        BackwardMode::kFullGraph);
    auto full = engine.Answer("Vokram IT", 5);
    ASSERT_TRUE(full.ok());
    ASSERT_FALSE(full->explanations.empty());
    Executor exec(*db_);
    ASSERT_TRUE(exec.Execute(full->explanations[0].sql).ok());
  }
  {
    KeymanticEngine engine = MakeEngine(ForwardMode::kHungarian,
                                        BackwardMode::kSummary);
    ASSERT_TRUE(engine.Answer("Vokram IT", 5).ok());
  }
  {
    // The snapshot sites: save, load, and a hot-swap through the serving
    // layer (which passes the validation gate).
    auto engine = std::make_shared<const KeymanticEngine>(*db_);
    const std::string path = testing::TempDir() + "km_resilience_sweep.snap";
    ASSERT_TRUE(SaveSnapshot(*engine->prepared_state(), path).ok());
    ASSERT_TRUE(LoadSnapshot(path).ok());
    EngineServer server(engine);
    ASSERT_TRUE(server.ReloadSnapshot(path).ok());
    server.Shutdown();
    std::remove(path.c_str());
  }
  {
    // The network sites: accept_fail is visited on every accept, and the
    // write sites on every reply flush, so one real-TCP exchange covers
    // all three unarmed.
    auto engine = std::make_shared<const KeymanticEngine>(*db_);
    TenantRegistry tenants;
    ASSERT_TRUE(tenants.AddTenant("uni", engine).ok());
    net::NetServer server(tenants, net::NetServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    auto client = net::NetClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Hello("uni").ok());
    ASSERT_TRUE((*client)->Ask(1, "Vokram IT", 3, 0).ok());
    (*client)->Close();
    server.Shutdown();
  }
  std::vector<std::string> visited = failpoints::VisitedSites();
  for (size_t i = 0; i < failpoints::kNumFailpointSites; ++i) {
    const std::string site = failpoints::kFailpointSites[i];
    EXPECT_NE(std::find(visited.begin(), visited.end(), site), visited.end())
        << "site never visited: " << site;
  }
}

}  // namespace
}  // namespace km
