// Tests for km_dst: mass functions and Dempster's rule of combination.

#include <gtest/gtest.h>

#include "dst/dst.h"

namespace km {
namespace {

TEST(MassFunctionTest, EmptyEvidenceIsVacuous) {
  MassFunction m = MassFunction::FromScores({}, 0.8);
  EXPECT_DOUBLE_EQ(m.uncertainty(), 1.0);
  EXPECT_TRUE(m.FocalIds().empty());
  EXPECT_NEAR(m.TotalMass(), 1.0, 1e-12);
}

TEST(MassFunctionTest, FromScoresNormalizesAndScales) {
  MassFunction m = MassFunction::FromScores({{1, 3.0}, {2, 1.0}}, 0.8);
  EXPECT_NEAR(m.MassOf(1), 0.6, 1e-12);
  EXPECT_NEAR(m.MassOf(2), 0.2, 1e-12);
  EXPECT_NEAR(m.uncertainty(), 0.2, 1e-12);
  EXPECT_NEAR(m.TotalMass(), 1.0, 1e-12);
}

TEST(MassFunctionTest, NegativeScoresAreShifted) {
  // Log-probability-style scores.
  MassFunction m = MassFunction::FromScores({{1, -1.0}, {2, -3.0}}, 1.0);
  EXPECT_GT(m.MassOf(1), m.MassOf(2));
  EXPECT_NEAR(m.TotalMass(), 1.0, 1e-12);
  // The worst element gets zero mass after shifting.
  EXPECT_DOUBLE_EQ(m.MassOf(2), 0.0);
}

TEST(MassFunctionTest, AllEqualScoresSplitUniformly) {
  MassFunction m = MassFunction::FromScores({{1, 0.0}, {2, 0.0}}, 0.6);
  EXPECT_NEAR(m.MassOf(1), 0.3, 1e-12);
  EXPECT_NEAR(m.MassOf(2), 0.3, 1e-12);
  EXPECT_NEAR(m.uncertainty(), 0.4, 1e-12);
}

TEST(MassFunctionTest, ZeroConfidenceIsVacuous) {
  MassFunction m = MassFunction::FromScores({{1, 5.0}}, 0.0);
  EXPECT_DOUBLE_EQ(m.MassOf(1), 0.0);
  EXPECT_DOUBLE_EQ(m.uncertainty(), 1.0);
}

TEST(MassFunctionTest, DuplicateIdsAccumulate) {
  MassFunction m = MassFunction::FromScores({{1, 1.0}, {1, 1.0}}, 1.0);
  EXPECT_NEAR(m.MassOf(1), 1.0, 1e-12);
}

TEST(CombineTest, VacuousIsNeutralElement) {
  MassFunction m = MassFunction::FromScores({{1, 2.0}, {2, 1.0}}, 0.9);
  MassFunction vac = MassFunction::FromScores({}, 0.5);
  auto combined = MassFunction::Combine(m, vac);
  ASSERT_TRUE(combined.ok());
  EXPECT_NEAR(combined->MassOf(1), m.MassOf(1), 1e-12);
  EXPECT_NEAR(combined->MassOf(2), m.MassOf(2), 1e-12);
  EXPECT_NEAR(combined->uncertainty(), m.uncertainty(), 1e-12);
}

TEST(CombineTest, AgreementReinforces) {
  MassFunction a = MassFunction::FromScores({{1, 1.0}}, 0.6);
  MassFunction b = MassFunction::FromScores({{1, 1.0}}, 0.6);
  auto c = MassFunction::Combine(a, b);
  ASSERT_TRUE(c.ok());
  // Two independent 0.6 beliefs combine to 0.84.
  EXPECT_NEAR(c->MassOf(1), 0.84, 1e-12);
  EXPECT_NEAR(c->uncertainty(), 0.16, 1e-12);
}

TEST(CombineTest, ConflictIsRenormalized) {
  // Zadeh-style example with singletons + uncertainty.
  MassFunction a = MassFunction::FromScores({{1, 1.0}}, 0.8);
  MassFunction b = MassFunction::FromScores({{2, 1.0}}, 0.8);
  double k = MassFunction::ConflictMass(a, b);
  EXPECT_NEAR(k, 0.64, 1e-12);
  auto c = MassFunction::Combine(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(c->TotalMass(), 1.0, 1e-12);
  // Symmetric conflict: equal masses survive.
  EXPECT_NEAR(c->MassOf(1), c->MassOf(2), 1e-12);
}

TEST(CombineTest, TotalConflictFails) {
  MassFunction a = MassFunction::FromScores({{1, 1.0}}, 1.0);
  MassFunction b = MassFunction::FromScores({{2, 1.0}}, 1.0);
  EXPECT_EQ(MassFunction::Combine(a, b).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CombineTest, HigherConfidenceSourceDominates) {
  MassFunction strong = MassFunction::FromScores({{1, 1.0}}, 0.9);
  MassFunction weak = MassFunction::FromScores({{2, 1.0}}, 0.3);
  auto c = MassFunction::Combine(strong, weak);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(c->MassOf(1), c->MassOf(2));
}

TEST(CombineTest, CombinationIsCommutative) {
  MassFunction a = MassFunction::FromScores({{1, 2.0}, {2, 1.0}}, 0.7);
  MassFunction b = MassFunction::FromScores({{2, 3.0}, {3, 1.0}}, 0.5);
  auto ab = MassFunction::Combine(a, b);
  auto ba = MassFunction::Combine(b, a);
  ASSERT_TRUE(ab.ok() && ba.ok());
  for (size_t id : {1u, 2u, 3u}) {
    EXPECT_NEAR(ab->MassOf(id), ba->MassOf(id), 1e-12);
  }
}

TEST(RankedTest, SortsByMassThenId) {
  MassFunction m = MassFunction::FromScores({{5, 1.0}, {2, 3.0}, {9, 1.0}}, 1.0);
  auto ranked = m.Ranked();
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0].first, 2u);
  EXPECT_EQ(ranked[1].first, 5u);  // ties broken by id
  EXPECT_EQ(ranked[2].first, 9u);
}

TEST(RankedTest, CombinationReordersByEvidence) {
  // Source 1 slightly prefers A; source 2 strongly prefers B.
  MassFunction a = MassFunction::FromScores({{1, 1.1}, {2, 1.0}}, 0.4);
  MassFunction b = MassFunction::FromScores({{2, 5.0}, {1, 1.0}}, 0.8);
  auto c = MassFunction::Combine(a, b);
  ASSERT_TRUE(c.ok());
  auto ranked = c->Ranked();
  EXPECT_EQ(ranked[0].first, 2u);
}

}  // namespace
}  // namespace km
