// Byte-exact equivalence of the weight builds: the serial scalar path,
// the pooled row-parallel path and the pruned batched kernel must all
// produce bit-identical matrices on every bundled dataset, and the
// kernel's pruning must be lossless — every name it skips is provably
// below the floor under the scalar reference as well. This suite is the
// enforcement arm of the contract documented in text/similarity_batch.h;
// it also runs under asan and tsan in CI.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "datasets/dblp.h"
#include "datasets/imdb.h"
#include "datasets/mondial.h"
#include "datasets/university.h"
#include "metadata/term.h"
#include "metadata/weights.h"
#include "relational/database.h"
#include "text/similarity.h"
#include "text/similarity_batch.h"

namespace km {
namespace {

// Keywords chosen to exercise every scoring channel: exact schema names,
// case variants, synonyms, abbreviations, near-misses, short keywords
// (exact-only path), multi-word keywords, instance values and garbage.
const std::vector<std::string>& ChannelKeywords() {
  static const std::vector<std::string> kKeywords = {
      "name",       "Name",     "person",     "people",    "dept",
      "department", "universty", "id",        "db",        "title",
      "publisher",  "year",     "1998",       "comedy",    "rating",
      "population", "river",    "country",    "professor name",
      "journal",    "Vokram",   "xqzzt",      "a",         "",
  };
  return kKeywords;
}

struct DatasetCase {
  const char* name;
  StatusOr<Database> (*build)();
};

StatusOr<Database> University() { return BuildUniversityDatabase({}); }
StatusOr<Database> Mondial() { return BuildMondialDatabase({}); }
StatusOr<Database> Dblp() { return BuildDblpDatabase({}); }
StatusOr<Database> Imdb() { return BuildImdbDatabase({}); }

class KernelEquivalenceTest : public ::testing::TestWithParam<DatasetCase> {};

// Bit-exact matrix comparison: memcmp over the raw doubles, so even a
// sign-of-zero or last-ulp divergence between the paths fails loudly.
void ExpectBitIdentical(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      double x = a(r, c), y = b(r, c);
      EXPECT_EQ(std::memcmp(&x, &y, sizeof(double)), 0)
          << what << ": cell (" << r << ", " << c << ") " << x << " vs " << y;
    }
  }
}

TEST_P(KernelEquivalenceTest, SerialPooledAndPrunedBuildsAreBitIdentical) {
  auto db = GetParam().build();
  ASSERT_TRUE(db.ok()) << GetParam().name;
  Terminology terminology(db->schema());
  auto index = TermPruneIndex::Build(terminology);

  WeightOptions scalar_opts;
  scalar_opts.use_prune_index = false;
  scalar_opts.keyword_row_cache_capacity = 0;
  WeightMatrixBuilder scalar(terminology, &*db, scalar_opts);
  ASSERT_FALSE(scalar.UsesPrunedKernel());

  WeightOptions pruned_opts;
  pruned_opts.keyword_row_cache_capacity = 0;
  WeightMatrixBuilder pruned(terminology, &*db, pruned_opts);
  pruned.SetPruneIndex(index);
  ASSERT_TRUE(pruned.UsesPrunedKernel());

  ThreadPool pool(4);
  WeightOptions pooled_opts = pruned_opts;
  pooled_opts.pool = &pool;
  WeightMatrixBuilder pooled(terminology, &*db, pooled_opts);
  pooled.SetPruneIndex(index);
  ASSERT_TRUE(pooled.UsesPrunedKernel());

  Matrix reference = scalar.Build(ChannelKeywords());
  Matrix pruned_m = pruned.Build(ChannelKeywords());
  Matrix pooled_m = pooled.Build(ChannelKeywords());
  ExpectBitIdentical(reference, pruned_m, "scalar vs pruned");
  ExpectBitIdentical(reference, pooled_m, "scalar vs pooled+pruned");
}

// A non-default measure must force the scalar path (the prune bounds are
// specific to the composite measure) and still honor the configuration.
TEST_P(KernelEquivalenceTest, NonCompositeMeasureForcesScalarPath) {
  auto db = GetParam().build();
  ASSERT_TRUE(db.ok());
  Terminology terminology(db->schema());
  WeightOptions opts;
  opts.similarity_measure = "monge_elkan";
  WeightMatrixBuilder builder(terminology, &*db, opts);
  builder.SetPruneIndex(TermPruneIndex::Build(terminology));
  EXPECT_FALSE(builder.UsesPrunedKernel());
  (void)builder.Build({"department", "name"});  // must not crash
}

// Exhaustive losslessness on real terminology names: every name the
// kernel prunes must score strictly below its floor under the scalar
// reference, and every survivor must carry the bit-exact scalar score.
TEST_P(KernelEquivalenceTest, PruningIsLosslessAgainstAllPairsReference) {
  auto db = GetParam().build();
  ASSERT_TRUE(db.ok());
  Terminology terminology(db->schema());
  TermPruneIndex index(terminology);

  // Reconstruct the indexed name list the way the index builder does:
  // per entry, the plain or qualified name of the mapped term.
  std::vector<std::string> names(index.names.name_count());
  for (size_t e = 0; e < names.size(); ++e) {
    const DatabaseTerm& t = terminology.term(index.entry_term[e]);
    names[e] = index.entry_qualified[e] ? t.relation + " " + t.attribute
                                        : (t.kind == TermKind::kRelation
                                               ? t.relation
                                               : t.attribute);
  }

  WeightOptions defaults;
  for (double floor : {defaults.sw_floor, defaults.sw_floor / 0.9, 0.0}) {
    std::vector<double> floors(names.size(), floor);
    std::vector<double> scores;
    std::vector<uint8_t> survived;
    NameMatchStats stats;
    for (const std::string& kw :
         {std::string("department"), std::string("person name"),
          std::string("universty"), std::string("pop"), std::string("xq")}) {
      index.names.Match(kw, floors, &scores, &survived, &stats);
      ASSERT_EQ(scores.size(), names.size());
      for (size_t e = 0; e < names.size(); ++e) {
        double ref = NameSimilarity(kw, names[e]);
        if (survived[e]) {
          EXPECT_EQ(std::memcmp(&scores[e], &ref, sizeof(double)), 0)
              << "'" << kw << "' vs '" << names[e] << "': " << scores[e]
              << " != " << ref;
        } else {
          EXPECT_LT(ref, floor) << "'" << kw << "' vs '" << names[e]
                                << "' pruned but scores " << ref;
          EXPECT_DOUBLE_EQ(scores[e], 0.0);
        }
      }
    }
    if (floor <= 0.0) {
      // Floor 0 disables pruning entirely.
      EXPECT_EQ(stats.pruned, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, KernelEquivalenceTest,
    ::testing::Values(DatasetCase{"university", &University},
                      DatasetCase{"mondial", &Mondial},
                      DatasetCase{"dblp", &Dblp}, DatasetCase{"imdb", &Imdb}),
    [](const ::testing::TestParamInfo<DatasetCase>& info) {
      return info.param.name;
    });

// Randomized vocabularies: identifier-shaped names (camelCase,
// snake_case, digits) with adversarial fragments, cross-checked
// exhaustively against the scalar reference.
class RandomVocabularyTest : public ::testing::TestWithParam<uint64_t> {};

std::string RandomWord(Rng* rng) {
  static const char* kFragments[] = {"name", "dept", "person", "id",  "uni",
                                     "pop",  "data", "x",      "pro", "fee"};
  std::string w;
  size_t pieces = 1 + rng->Uniform(3);
  for (size_t i = 0; i < pieces; ++i) {
    if (rng->Bernoulli(0.6)) {
      w += kFragments[rng->Uniform(10)];
    } else {
      size_t len = 1 + rng->Uniform(6);
      for (size_t j = 0; j < len; ++j) {
        w += static_cast<char>('a' + rng->Uniform(26));
      }
    }
  }
  // Random casing / separators to exercise the identifier splitter.
  if (rng->Bernoulli(0.3)) w[0] = static_cast<char>(w[0] - 'a' + 'A');
  if (w.size() > 3 && rng->Bernoulli(0.3)) {
    w.insert(w.size() / 2, rng->Bernoulli(0.5) ? "_" : "9");
  }
  return w;
}

TEST_P(RandomVocabularyTest, PruningIsLosslessOnRandomNames) {
  Rng rng(GetParam() * 0x9E3779B97F4A7C15ull + 1);
  std::vector<std::string> names;
  size_t n = 20 + rng.Uniform(60);
  for (size_t i = 0; i < n; ++i) names.push_back(RandomWord(&rng));
  NameMatchIndex index(names);
  ASSERT_EQ(index.name_count(), names.size());

  std::vector<double> floors(names.size());
  for (double& f : floors) {
    f = rng.Bernoulli(0.2) ? 0.0 : 0.15 + 0.5 * rng.UniformDouble();
  }
  std::vector<double> scores;
  std::vector<uint8_t> survived;
  for (int q = 0; q < 8; ++q) {
    std::string kw = RandomWord(&rng);
    if (rng.Bernoulli(0.25)) kw += " " + RandomWord(&rng);
    index.Match(kw, floors, &scores, &survived, nullptr);
    for (size_t e = 0; e < names.size(); ++e) {
      double ref = NameSimilarity(kw, names[e]);
      if (survived[e]) {
        EXPECT_EQ(std::memcmp(&scores[e], &ref, sizeof(double)), 0)
            << "'" << kw << "' vs '" << names[e] << "'";
      } else {
        EXPECT_LT(ref, floors[e])
            << "'" << kw << "' vs '" << names[e] << "' wrongly pruned";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, RandomVocabularyTest,
                         ::testing::Range<uint64_t>(1, 31));

}  // namespace
}  // namespace km
