// End-to-end chaos soak for the network serving stack (the capstone of the
// connection-lifecycle hardening work): hundreds of seeded iterations, each
// standing up a fresh tenant registry + poll server and throwing a random
// mix of peers at it —
//
//   * compliant closed-loop clients (HELO, a few Asks, GBYE),
//   * bursty open-loop clients that stop reading mid-stream and hang up
//     with replies still in flight,
//   * mid-frame disconnects (a QURY cut at a random byte offset),
//   * pre-HELO garbage streams,
//
// interleaved with snapshot hot-reloads, injected clock jumps, optional
// write-path failpoints (when compiled in), and a graceful Drain() racing
// the traffic. The invariants, every iteration:
//
//   * no crash, no hang: every client call returns, the drain completes;
//   * no lost in-flight work: a compliant client's Ask never times out —
//     it gets its RESP, a typed RTRY/ERRR, or a GBYE-bounded disconnect;
//   * exactly one terminal frame per accepted query (client-side dedupe
//     check and the server-side `queries == replies + queries_dropped`
//     reconciliation);
//   * no fd leak: /proc/self/fd census is identical before and after
//     every iteration.
//
// Iteration count: 500 by default; KM_NET_CHAOS_ITERS overrides it (CI
// smoke jobs run fewer). Fixed seeds, so any failure reproduces exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/status.h"
#include "core/keymantic.h"
#include "datasets/university.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net_harness.h"
#include "serve/tenant.h"
#include "snapshot/snapshot.h"

namespace km::net {
namespace {

// Belt and braces: the per-iteration census below is the real check; this
// listener additionally covers the whole test.
FdCensusRegistrar fd_census_registrar;

size_t ChaosIterations() {
  const char* env = std::getenv("KM_NET_CHAOS_ITERS");
  if (env != nullptr) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 500;
}

const char* const kQueryTexts[] = {
    "Vokram IT",     "Vokram IT department", "professor database",
    "Wilson course", "department university",
};
constexpr size_t kNumQueryTexts = sizeof(kQueryTexts) / sizeof(kQueryTexts[0]);

class NetChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = BuildUniversityDatabase();
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    engine_ = std::make_shared<KeymanticEngine>(*db_);
    snapshot_path_ =
        new std::string(testing::TempDir() + "km_net_chaos.snap");
    ASSERT_TRUE(SaveSnapshot(*engine_->prepared_state(), *snapshot_path_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(snapshot_path_->c_str());
    delete snapshot_path_;
    snapshot_path_ = nullptr;
    engine_.reset();
    delete db_;
    db_ = nullptr;
  }
  void TearDown() override { failpoints::Reset(); }

  static Database* db_;
  static std::shared_ptr<KeymanticEngine> engine_;
  static std::string* snapshot_path_;
};

Database* NetChaosTest::db_ = nullptr;
std::shared_ptr<KeymanticEngine> NetChaosTest::engine_;
std::string* NetChaosTest::snapshot_path_ = nullptr;

// --------------------------------------------------------- peer behaviors

/// Well-behaved closed-loop peer. `lost` counts Asks that timed out — a
/// routed query whose terminal frame never came, the one unforgivable
/// outcome. Typed rejections and GBYE-bounded disconnects are all fine.
void CompliantClient(std::unique_ptr<NetClient> client, uint64_t seed,
                     std::atomic<int>& lost) {
  std::mt19937 rng(seed);
  if (!client->Hello("uni", 20000).ok()) return;  // drain raced the HELO
  const int queries = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < queries; ++i) {
    auto reply = client->Ask(static_cast<uint64_t>(i) + 1,
                             kQueryTexts[rng() % kNumQueryTexts],
                             1 + static_cast<uint32_t>(rng() % 5), 0, 20000);
    if (!reply.ok()) {
      if (reply.status().code() == StatusCode::kDeadlineExceeded) ++lost;
      return;  // typed rejection or disconnect: the stream is done
    }
  }
  (void)!client->SendFrame(MakeFrame("GBYE", 0, std::string())).ok();
  (void)client->ReadFrame(2000);
}

/// Open-loop peer: bursts queries, reads only part of the reply stream
/// (slowly), then hangs up with data still in flight — the shape that
/// exercises write-side backpressure and the EPIPE paths.
void BurstyHalfReader(std::unique_ptr<NetClient> client, uint64_t seed) {
  std::mt19937 rng(seed);
  if (!client->Hello("uni", 20000).ok()) return;
  const int queries = 4 + static_cast<int>(rng() % 12);
  for (int i = 0; i < queries; ++i) {
    if (!client
             ->SendQuery(1000 + static_cast<uint64_t>(i),
                         kQueryTexts[rng() % kNumQueryTexts],
                         1 + static_cast<uint32_t>(rng() % 5), 0)
             .ok()) {
      break;
    }
  }
  std::set<uint64_t> seen;
  const int reads = static_cast<int>(rng() % (queries + 2));
  for (int i = 0; i < reads; ++i) {
    auto frame = client->ReadFrame(50);
    if (!frame.ok()) {
      if (frame.status().code() != StatusCode::kDeadlineExceeded) break;
      continue;
    }
    if (FrameIs(*frame, "RESP") || FrameIs(*frame, "ERRR") ||
        FrameIs(*frame, "RTRY")) {
      EXPECT_TRUE(seen.insert(frame->request_id).second)
          << "duplicate terminal frame for request " << frame->request_id;
    }
    if (rng() % 3 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Destructor closes with replies possibly still queued server-side.
}

/// Hostile peer: a QURY frame cut at a random byte offset, then gone.
void MidFrameDisconnect(std::unique_ptr<NetClient> client, uint64_t seed) {
  std::mt19937 rng(seed);
  if (rng() % 2 == 0 && !client->Hello("uni", 20000).ok()) return;
  QueryRequest query;
  query.k = 3;
  query.text = kQueryTexts[rng() % kNumQueryTexts];
  const std::string wire =
      EncodeFrame(MakeFrame("QURY", 7, EncodeQueryRequest(query)));
  const size_t cut = 1 + rng() % (wire.size() - 1);
  (void)!client->SendBytes(wire.data(), cut).ok();
  std::this_thread::sleep_for(std::chrono::milliseconds(rng() % 3));
}

/// Hostile peer: pure garbage before any HELO.
void GarbagePeer(std::unique_ptr<NetClient> client, uint64_t seed) {
  std::mt19937 rng(seed);
  std::string junk(64 + rng() % 512, '\0');
  for (char& c : junk) c = static_cast<char>(rng() & 0xff);
  (void)!client->SendBytes(junk.data(), junk.size()).ok();
  (void)client->ReadFrame(100);
}

// --------------------------------------------------------- one iteration

void RunIteration(uint64_t seed, TenantRegistry& tenants,
                  const std::string& snapshot_path) {
  std::mt19937 rng(seed);

  NetServerOptions options;
  const size_t caps[] = {2048, 8192, size_t{1} << 20};
  options.max_write_buffer_bytes = caps[rng() % 3];
  const size_t pendings[] = {2, 8, 32};
  options.max_pending_per_connection = pendings[rng() % 3];
  options.so_sndbuf = (rng() % 2 == 0) ? 4096 : 0;
  NetHarness harness(tenants, options);

  // Optional write-path fault injection (failpoint builds only).
  if (failpoints::Enabled()) {
    if (rng() % 4 == 0) {
      failpoints::Action dribble;
      dribble.kind = failpoints::ActionKind::kCallback;
      const size_t cap = 1 + rng() % 7;
      dribble.callback = [cap](void* payload) {
        *static_cast<size_t*>(payload) = cap;
      };
      dribble.limit = 200;
      failpoints::Enable("net.server.short_write", dribble);
    } else if (rng() % 4 == 0) {
      failpoints::Action kill;
      kill.kind = failpoints::ActionKind::kCallback;
      kill.callback = [](void* payload) {
        *static_cast<bool*>(payload) = true;
      };
      kill.skip = static_cast<int>(rng() % 5);
      kill.limit = 1;
      failpoints::Enable("net.server.write_error", kill);
    }
  }

  // All connections are adopted before any drain can begin.
  std::atomic<int> lost_queries{0};
  std::vector<std::thread> peers;
  const size_t num_peers = 2 + rng() % 3;
  for (size_t i = 0; i < num_peers; ++i) {
    auto client = harness.NewClient();
    const uint64_t peer_seed = seed * 1315423911u + i;
    switch (rng() % 8) {
      case 0:
        peers.emplace_back(MidFrameDisconnect, std::move(client), peer_seed);
        break;
      case 1:
        peers.emplace_back(GarbagePeer, std::move(client), peer_seed);
        break;
      case 2:
      case 3:
        peers.emplace_back(BurstyHalfReader, std::move(client), peer_seed);
        break;
      default:
        peers.emplace_back(CompliantClient, std::move(client), peer_seed,
                           std::ref(lost_queries));
        break;
    }
  }

  // Operator actions racing the traffic: a snapshot hot-reload, a clock
  // jump (hello/idle bookkeeping), and — half the time — the drain itself.
  if (rng() % 3 == 0) {
    (void)tenants.ReloadTenantSnapshot("uni", snapshot_path);
  }
  if (rng() % 4 == 0) harness.clock().AdvanceMs(15'000);

  const bool drain_mid_traffic = rng() % 2 == 0;
  const bool skip_drain = rng() % 8 == 0;  // plain Shutdown path
  DrainReport report;
  Status drain_status = Status::OK();
  std::thread drainer;
  if (!skip_drain && drain_mid_traffic) {
    drainer = std::thread(
        [&] { drain_status = harness.server().Drain(1e9, &report); });
  }
  for (std::thread& peer : peers) peer.join();
  if (!skip_drain && !drain_mid_traffic) {
    drain_status = harness.server().Drain(1e9, &report);
  }
  if (drainer.joinable()) drainer.join();

  if (!skip_drain) {
    EXPECT_TRUE(drain_status.ok()) << drain_status.ToString();
    EXPECT_TRUE(report.completed)
        << "every peer closed its socket, so the drain must complete";
    EXPECT_EQ(harness.server().lifecycle(), ServerLifecycle::kClosed);
  } else {
    harness.server().Shutdown();
  }

  const NetServerStats stats = harness.server().Stats();
  EXPECT_EQ(stats.open_connections, 0u);
  EXPECT_EQ(stats.queries, stats.replies + stats.queries_dropped)
      << "terminal-frame accounting must reconcile: queries=" << stats.queries
      << " replies=" << stats.replies
      << " dropped=" << stats.queries_dropped;
  EXPECT_EQ(lost_queries.load(), 0)
      << "a compliant client's Ask timed out: in-flight work was lost";
  failpoints::Reset();
}

TEST_F(NetChaosTest, SeededSoakSurvivesHostilePeersReloadsAndDrains) {
  const size_t iterations = ChaosIterations();
  for (size_t iter = 0; iter < iterations; ++iter) {
    const int fds_before = CountOpenFds();
    {
      TenantRegistry tenants;
      TenantOptions tenant_options;
      tenant_options.server.workers = 1 + iter % 2;
      ASSERT_TRUE(tenants.AddTenant("uni", engine_, tenant_options).ok());
      RunIteration(0xC0FFEEu + iter, tenants, *snapshot_path_);
      if (HasFatalFailure()) return;
    }
    const int fds_after = CountOpenFds();
    ASSERT_EQ(fds_before, fds_after)
        << "fd leak in iteration " << iter << ": " << fds_before << " -> "
        << fds_after;
    if (HasNonfatalFailure()) {
      ADD_FAILURE() << "first failing iteration: " << iter
                    << " (seed " << (0xC0FFEEu + iter) << ")";
      return;
    }
  }
}

}  // namespace
}  // namespace km::net
