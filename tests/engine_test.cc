// Tests for km_engine: SPJ queries, SQL rendering, canonical signatures,
// and the in-memory executor.

#include <gtest/gtest.h>

#include <algorithm>

#include "engine/executor.h"
#include "engine/query.h"
#include "relational/database.h"

namespace km {
namespace {

// A small two-table database with a foreign key.
Database MakeDb() {
  Database db("test");
  EXPECT_TRUE(db.CreateRelation(RelationSchema(
                                    "PEOPLE",
                                    {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                                     {"Name", DataType::kText, DomainTag::kPersonName},
                                     {"Age", DataType::kInt, DomainTag::kQuantity}}))
                  .ok());
  EXPECT_TRUE(db.CreateRelation(RelationSchema(
                                    "DEPT",
                                    {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                                     {"Name", DataType::kText, DomainTag::kProperNoun},
                                     {"Head", DataType::kText, DomainTag::kIdentifier}}))
                  .ok());
  EXPECT_TRUE(db.AddForeignKey({"DEPT", "Head", "PEOPLE", "Id"}).ok());
  auto T = [](const char* s) { return Value::Text(s); };
  EXPECT_TRUE(db.Insert("PEOPLE", {T("p1"), T("Ann"), Value::Int(30)}).ok());
  EXPECT_TRUE(db.Insert("PEOPLE", {T("p2"), T("Bob"), Value::Int(45)}).ok());
  EXPECT_TRUE(db.Insert("PEOPLE", {T("p3"), T("Cara"), Value::Int(28)}).ok());
  EXPECT_TRUE(db.Insert("DEPT", {T("d1"), T("CS"), T("p1")}).ok());
  EXPECT_TRUE(db.Insert("DEPT", {T("d2"), T("EE"), T("p2")}).ok());
  return db;
}

// ----------------------------------------------------------- PredicateOp

struct PredCase {
  Value value;
  PredicateOp op;
  Value literal;
  bool expected;
};

class EvalPredicateOpTest : public ::testing::TestWithParam<PredCase> {};

TEST_P(EvalPredicateOpTest, Evaluates) {
  const PredCase& c = GetParam();
  EXPECT_EQ(EvalPredicateOp(c.value, c.op, c.literal), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EvalPredicateOpTest,
    ::testing::Values(
        PredCase{Value::Int(3), PredicateOp::kEq, Value::Int(3), true},
        PredCase{Value::Int(3), PredicateOp::kEq, Value::Int(4), false},
        PredCase{Value::Text("Ann"), PredicateOp::kEq, Value::Text("ann"), true},
        PredCase{Value::Int(3), PredicateOp::kNe, Value::Int(4), true},
        PredCase{Value::Int(3), PredicateOp::kLt, Value::Int(4), true},
        PredCase{Value::Int(4), PredicateOp::kLt, Value::Int(4), false},
        PredCase{Value::Int(4), PredicateOp::kLe, Value::Int(4), true},
        PredCase{Value::Int(5), PredicateOp::kGt, Value::Int(4), true},
        PredCase{Value::Int(4), PredicateOp::kGe, Value::Int(4), true},
        PredCase{Value::Int(3), PredicateOp::kGe, Value::Int(4), false},
        PredCase{Value::Text("Hello World"), PredicateOp::kContains,
                 Value::Text("lo wo"), true},
        PredCase{Value::Text("Hello"), PredicateOp::kContains, Value::Text("xyz"),
                 false},
        // NULL never matches anything (SQL semantics).
        PredCase{Value::Null(), PredicateOp::kEq, Value::Null(), false},
        PredCase{Value::Null(), PredicateOp::kNe, Value::Int(1), false},
        // Cross numeric comparison.
        PredCase{Value::Real(2.5), PredicateOp::kGt, Value::Int(2), true}));

// ------------------------------------------------------------- SpjQuery

TEST(SpjQueryTest, ToSqlSingleRelation) {
  SpjQuery q;
  q.relations = {"PEOPLE"};
  q.predicates = {{{"PEOPLE", "Name"}, PredicateOp::kEq, Value::Text("Ann")}};
  std::string sql = q.ToSql();
  EXPECT_NE(sql.find("SELECT PEOPLE.*"), std::string::npos);
  EXPECT_NE(sql.find("FROM PEOPLE"), std::string::npos);
  EXPECT_NE(sql.find("WHERE PEOPLE.Name = 'Ann'"), std::string::npos);
}

TEST(SpjQueryTest, ToSqlRendersJoins) {
  SpjQuery q;
  q.relations = {"DEPT", "PEOPLE"};
  q.joins = {{{"DEPT", "Head"}, {"PEOPLE", "Id"}}};
  std::string sql = q.ToSql();
  EXPECT_NE(sql.find("JOIN"), std::string::npos);
  EXPECT_NE(sql.find("DEPT.Head = PEOPLE.Id"), std::string::npos);
}

TEST(SpjQueryTest, ToSqlContainsBecomesLike) {
  SpjQuery q;
  q.relations = {"PEOPLE"};
  q.predicates = {{{"PEOPLE", "Name"}, PredicateOp::kContains, Value::Text("nn")}};
  std::string sql = q.ToSql();
  EXPECT_NE(sql.find("LIKE '%nn%'"), std::string::npos);
}

TEST(SpjQueryTest, CanonicalSignatureOrderInsensitive) {
  SpjQuery a, b;
  a.relations = {"PEOPLE", "DEPT"};
  b.relations = {"DEPT", "PEOPLE"};
  a.joins = {{{"DEPT", "Head"}, {"PEOPLE", "Id"}}};
  b.joins = {{{"PEOPLE", "Id"}, {"DEPT", "Head"}}};  // flipped
  a.predicates = {{{"PEOPLE", "Name"}, PredicateOp::kEq, Value::Text("Ann")},
                  {{"DEPT", "Name"}, PredicateOp::kEq, Value::Text("CS")}};
  b.predicates = {{{"DEPT", "Name"}, PredicateOp::kEq, Value::Text("CS")},
                  {{"PEOPLE", "Name"}, PredicateOp::kEq, Value::Text("ann")}};
  EXPECT_EQ(a.CanonicalSignature(), b.CanonicalSignature());
  EXPECT_TRUE(a.EquivalentTo(b));
}

TEST(SpjQueryTest, CanonicalSignatureDistinguishesQueries) {
  SpjQuery a, b;
  a.relations = {"PEOPLE"};
  b.relations = {"DEPT"};
  EXPECT_NE(a.CanonicalSignature(), b.CanonicalSignature());
}

// -------------------------------------------------------------- Executor

TEST(ExecutorTest, ScanAll) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"PEOPLE"};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 3u);
  EXPECT_EQ(rs->header.size(), 3u);
}

TEST(ExecutorTest, ScanWithPredicate) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"PEOPLE"};
  q.predicates = {{{"PEOPLE", "Age"}, PredicateOp::kGt, Value::Int(29)}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 2u);  // Ann(30), Bob(45)
}

TEST(ExecutorTest, CaseInsensitiveTextEquality) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"PEOPLE"};
  q.predicates = {{{"PEOPLE", "Name"}, PredicateOp::kEq, Value::Text("ann")}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 1u);
}

TEST(ExecutorTest, HashJoin) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"DEPT", "PEOPLE"};
  q.joins = {{{"DEPT", "Head"}, {"PEOPLE", "Id"}}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 2u);  // two departments, each with its head
  // Check the joined values line up.
  auto head = rs->ColumnIndex("DEPT", "Head");
  auto id = rs->ColumnIndex("PEOPLE", "Id");
  ASSERT_TRUE(head && id);
  for (const Row& row : rs->rows) EXPECT_EQ(row[*head], row[*id]);
}

TEST(ExecutorTest, JoinWithSelectionPushdown) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"DEPT", "PEOPLE"};
  q.joins = {{{"DEPT", "Head"}, {"PEOPLE", "Id"}}};
  q.predicates = {{{"PEOPLE", "Name"}, PredicateOp::kEq, Value::Text("Ann")}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs->size(), 1u);
  auto dept = rs->ColumnIndex("DEPT", "Name");
  ASSERT_TRUE(dept.has_value());
  EXPECT_EQ(rs->rows[0][*dept], Value::Text("CS"));
}

TEST(ExecutorTest, Projection) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"PEOPLE"};
  q.select = {{"PEOPLE", "Name"}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->header.size(), 1u);
  EXPECT_EQ(rs->rows[0].size(), 1u);
}

TEST(ExecutorTest, DisconnectedRelationsCrossJoin) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"PEOPLE", "DEPT"};  // no join edges
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 6u);  // 3 × 2
}

TEST(ExecutorTest, CountMatchesExecute) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"DEPT", "PEOPLE"};
  q.joins = {{{"DEPT", "Head"}, {"PEOPLE", "Id"}}};
  auto n = exec.Count(q);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
}

TEST(ExecutorTest, EmptyResultIsOk) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"PEOPLE"};
  q.predicates = {{{"PEOPLE", "Name"}, PredicateOp::kEq, Value::Text("Nobody")}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->empty());
}

TEST(ExecutorTest, ErrorsOnUnknownRelation) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"NOPE"};
  EXPECT_EQ(exec.Execute(q).status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, ErrorsOnUnknownAttribute) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"PEOPLE"};
  q.predicates = {{{"PEOPLE", "Salary"}, PredicateOp::kEq, Value::Int(1)}};
  EXPECT_EQ(exec.Execute(q).status().code(), StatusCode::kNotFound);
}

TEST(ExecutorTest, ErrorsOnDuplicateRelation) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"PEOPLE", "PEOPLE"};
  EXPECT_EQ(exec.Execute(q).status().code(), StatusCode::kInvalidArgument);
}

TEST(ExecutorTest, ErrorsOnEmptyQuery) {
  Database db = MakeDb();
  Executor exec(db);
  EXPECT_EQ(exec.Execute(SpjQuery{}).status().code(), StatusCode::kInvalidArgument);
}

TEST(ExecutorTest, NullsNeverJoin) {
  Database db("t");
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "A", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"Ref", DataType::kText, DomainTag::kNone}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "B", {{"Id", DataType::kText, DomainTag::kNone, true}}))
                  .ok());
  ASSERT_TRUE(db.Insert("A", {Value::Text("a1"), Value::Null()}).ok());
  ASSERT_TRUE(db.Insert("B", {Value::Text("b1")}).ok());
  Executor exec(db);
  SpjQuery q;
  q.relations = {"A", "B"};
  q.joins = {{{"A", "Ref"}, {"B", "Id"}}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->empty());
}

TEST(ExecutorTest, ThreeWayJoinChain) {
  Database db("t");
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "A", {{"Id", DataType::kText, DomainTag::kNone, true}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "B", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"A", DataType::kText, DomainTag::kNone}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "C", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"B", DataType::kText, DomainTag::kNone}}))
                  .ok());
  ASSERT_TRUE(db.Insert("A", {Value::Text("a1")}).ok());
  ASSERT_TRUE(db.Insert("B", {Value::Text("b1"), Value::Text("a1")}).ok());
  ASSERT_TRUE(db.Insert("B", {Value::Text("b2"), Value::Text("a1")}).ok());
  ASSERT_TRUE(db.Insert("C", {Value::Text("c1"), Value::Text("b1")}).ok());
  Executor exec(db);
  SpjQuery q;
  q.relations = {"A", "B", "C"};
  q.joins = {{{"B", "A"}, {"A", "Id"}}, {{"C", "B"}, {"B", "Id"}}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), 1u);
}


TEST(SpjQueryTest, ToSqlCycleJoinFallsBackToWhere) {
  // Two join edges over the same pair of relations: the second closes a
  // cycle and must be rendered as a WHERE condition.
  SpjQuery q;
  q.relations = {"A", "B"};
  q.joins = {{{"A", "X"}, {"B", "X"}}, {{"A", "Y"}, {"B", "Y"}}};
  std::string sql = q.ToSql();
  EXPECT_NE(sql.find("JOIN B"), std::string::npos);
  EXPECT_NE(sql.find("WHERE"), std::string::npos);
  EXPECT_NE(sql.find("A.Y = B.Y"), std::string::npos);
}

TEST(SpjQueryTest, ToSqlCrossJoinForDisconnectedRelations) {
  SpjQuery q;
  q.relations = {"A", "B", "C"};
  q.joins = {{{"A", "X"}, {"B", "X"}}};  // C unreachable by joins
  std::string sql = q.ToSql();
  EXPECT_NE(sql.find("CROSS JOIN C"), std::string::npos);
}

TEST(SpjQueryTest, EmptyFromRendersPlaceholder) {
  SpjQuery q;
  EXPECT_NE(q.ToSql().find("<empty>"), std::string::npos);
}

TEST(ExecutorTest, ExecutesCycleJoins) {
  Database db("t");
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "A", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"X", DataType::kInt, DomainTag::kNone},
                                          {"Y", DataType::kInt, DomainTag::kNone}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "B", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"X", DataType::kInt, DomainTag::kNone},
                                          {"Y", DataType::kInt, DomainTag::kNone}}))
                  .ok());
  ASSERT_TRUE(db.Insert("A", {Value::Text("a1"), Value::Int(1), Value::Int(1)}).ok());
  ASSERT_TRUE(db.Insert("A", {Value::Text("a2"), Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(db.Insert("B", {Value::Text("b1"), Value::Int(1), Value::Int(1)}).ok());
  Executor exec(db);
  SpjQuery q;
  q.relations = {"A", "B"};
  q.joins = {{{"A", "X"}, {"B", "X"}}, {{"A", "Y"}, {"B", "Y"}}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  // Only (a1, b1) satisfies both join conditions.
  EXPECT_EQ(rs->size(), 1u);
}

TEST(ExecutorTest, SelectivityAwareOrderHandlesStarJoins) {
  // One hub joined by two satellites; whatever the declaration order, the
  // result must be correct.
  Database db("t");
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "HUB", {{"Id", DataType::kText, DomainTag::kNone, true}}))
                  .ok());
  for (const char* sat : {"S1", "S2"}) {
    ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                      sat, {{"Id", DataType::kText, DomainTag::kNone, true},
                                            {"Hub", DataType::kText, DomainTag::kNone}}))
                    .ok());
  }
  ASSERT_TRUE(db.Insert("HUB", {Value::Text("h1")}).ok());
  ASSERT_TRUE(db.Insert("HUB", {Value::Text("h2")}).ok());
  ASSERT_TRUE(db.Insert("S1", {Value::Text("s1a"), Value::Text("h1")}).ok());
  ASSERT_TRUE(db.Insert("S1", {Value::Text("s1b"), Value::Text("h2")}).ok());
  ASSERT_TRUE(db.Insert("S2", {Value::Text("s2a"), Value::Text("h1")}).ok());
  Executor exec(db);
  SpjQuery q;
  q.relations = {"S1", "HUB", "S2"};
  q.joins = {{{"S1", "Hub"}, {"HUB", "Id"}}, {{"S2", "Hub"}, {"HUB", "Id"}}};
  auto n = exec.Count(q);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);  // only h1 has both satellites
}

TEST(ExecutorTest, ProjectionOfJoinedColumns) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"DEPT", "PEOPLE"};
  q.joins = {{{"DEPT", "Head"}, {"PEOPLE", "Id"}}};
  q.select = {{"DEPT", "Name"}, {"PEOPLE", "Name"}};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->header.size(), 2u);
  for (const Row& row : rs->rows) EXPECT_EQ(row.size(), 2u);
}

TEST(ResultSetTest, ColumnIndexLookup) {
  Database db = MakeDb();
  Executor exec(db);
  SpjQuery q;
  q.relations = {"PEOPLE"};
  auto rs = exec.Execute(q);
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->ColumnIndex("PEOPLE", "Age").has_value());
  EXPECT_FALSE(rs->ColumnIndex("PEOPLE", "Nope").has_value());
  EXPECT_FALSE(rs->ColumnIndex("DEPT", "Age").has_value());
}

}  // namespace
}  // namespace km
