// Tests for km_common: Status/StatusOr, string utilities, Rng, Matrix.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "common/check.h"
#include "common/matrix.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/trace.h"

namespace km {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("missing relation").ToString(),
            "NotFound: missing relation");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  KM_ASSIGN_OR_RETURN(int h, Half(x));
  KM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnMacroPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto bad = Quarter(6);  // 6/2=3 is odd
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------- strings

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC12"), "abc12");
  EXPECT_EQ(ToUpper("AbC12"), "ABC12");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitWhitespaceDropsEmpties) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringsTest, StartsEndsContains) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("lo", "hello"));
  EXPECT_TRUE(Contains("hello", "ell"));
  EXPECT_FALSE(Contains("hello", "xyz"));
}

struct IdentCase {
  const char* input;
  std::vector<std::string> expected;
};

class SplitIdentifierWordsTest : public ::testing::TestWithParam<IdentCase> {};

TEST_P(SplitIdentifierWordsTest, SplitsAsExpected) {
  EXPECT_EQ(SplitIdentifierWords(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SplitIdentifierWordsTest,
    ::testing::Values(
        IdentCase{"personName", {"person", "name"}},
        IdentCase{"person_name", {"person", "name"}},
        IdentCase{"Person-Name", {"person", "name"}},
        IdentCase{"PEOPLE", {"people"}},
        IdentCase{"HTTPServer", {"http", "server"}},
        IdentCase{"author_inproceedings", {"author", "inproceedings"}},
        IdentCase{"IdPrs", {"id", "prs"}},
        IdentCase{"a", {"a"}},
        IdentCase{"", {}},
        IdentCase{"GDP", {"gdp"}},
        IdentCase{"some.dotted.name", {"some", "dotted", "name"}}));

TEST(StringsTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("-12"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformIntRespectsRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ZipfSamplerTest, SkewsTowardLowRanks) {
  Rng rng(17);
  ZipfSampler zipf(100, 1.2);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (zipf.Sample(&rng) < 10) ++low;
  }
  // With s=1.2 the first 10 of 100 ranks should get well over a third.
  EXPECT_GT(low, total / 3);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniformish) {
  Rng rng(19);
  ZipfSampler zipf(10, 0.0);
  std::vector<size_t> counts(10, 0);
  for (size_t i = 0; i < 10000; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t c : counts) {
    EXPECT_GT(c, 700u);
    EXPECT_LT(c, 1300u);
  }
}

// ---------------------------------------------------------------- Matrix

TEST(MatrixTest, FillAndAccess) {
  Matrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 0.5);
  m.At(0, 1) = 2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

TEST(MatrixTest, MaxOverEntries) {
  Matrix m(2, 2);
  m.At(0, 0) = -1;
  m.At(1, 1) = 3;
  EXPECT_DOUBLE_EQ(m.Max(), 3.0);
  EXPECT_DOUBLE_EQ(Matrix().Max(), 0.0);
}

// Regression: Max() used to seed its accumulator with 0 and therefore
// reported 0 for matrices whose entries are all negative.
TEST(MatrixTest, MaxOfAllNegativeEntriesIsNegative) {
  Matrix m(2, 2, -5.0);
  m.At(0, 1) = -2.5;
  EXPECT_DOUBLE_EQ(m.Max(), -2.5);
}

TEST(MatrixTest, NormalizeRows) {
  Matrix m(2, 2);
  m.At(0, 0) = 1;
  m.At(0, 1) = 3;
  // Row 1 is all zeros and must stay zero.
  m.NormalizeRows();
  EXPECT_DOUBLE_EQ(m.At(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.At(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(m.At(1, 0), 0.0);
}

// ---------------------------------------------------------------- Check

// Test handler: converts contract violations into exceptions so the test
// binary can observe them without dying.
[[noreturn]] void ThrowingCheckHandler(const CheckFailure& failure) {
  throw std::runtime_error(failure.ToString());
}

class CheckHandlerScope {
 public:
  CheckHandlerScope() : previous_(SetCheckFailureHandler(&ThrowingCheckHandler)) {}
  ~CheckHandlerScope() { SetCheckFailureHandler(previous_); }

 private:
  CheckFailureHandler previous_;
};

TEST(CheckTest, PassingChecksAreSilent) {
  CheckHandlerScope scope;
  KM_CHECK(1 + 1 == 2);
  KM_CHECK_EQ(3, 3);
  KM_CHECK_NE(3, 4);
  KM_CHECK_LT(3, 4);
  KM_CHECK_LE(4, 4);
  KM_CHECK_GT(5, 4);
  KM_CHECK_GE(5, 5);
  KM_BOUNDS(size_t{2}, size_t{3});
  KM_CHECK_OK(Status::OK());
}

TEST(CheckTest, FailingCheckInvokesInstalledHandler) {
  CheckHandlerScope scope;
  EXPECT_THROW(KM_CHECK(false), std::runtime_error);
  EXPECT_THROW(KM_CHECK_EQ(1, 2), std::runtime_error);
  EXPECT_THROW(KM_BOUNDS(size_t{3}, size_t{3}), std::runtime_error);
  EXPECT_THROW(KM_CHECK_OK(Status::Internal("boom")), std::runtime_error);
}

TEST(CheckTest, FailureMessageNamesConditionAndValues) {
  CheckHandlerScope scope;
  try {
    KM_CHECK_LT(7, 3);
    FAIL() << "KM_CHECK_LT(7, 3) did not fail";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("7 < 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("7 vs 3"), std::string::npos);
  }
}

TEST(CheckTest, DcheckCompilesOutInReleaseBuilds) {
  CheckHandlerScope scope;
  bool evaluated = false;
  auto fails_and_marks = [&evaluated] {
    evaluated = true;
    return false;
  };
#ifndef NDEBUG
  EXPECT_THROW(KM_DCHECK(fails_and_marks()), std::runtime_error);
  EXPECT_TRUE(evaluated);
#else
  KM_DCHECK(fails_and_marks());
  EXPECT_FALSE(evaluated);
#endif
}

namespace check_ensure {
Status EnsurePositive(int x) {
  KM_ENSURE(x > 0, "x must be positive");
  return Status::OK();
}
}  // namespace check_ensure

TEST(CheckTest, EnsureReturnsInternalStatusAtBoundaries) {
  EXPECT_TRUE(check_ensure::EnsurePositive(1).ok());
  Status s = check_ensure::EnsurePositive(-1);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("x > 0"), std::string::npos);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  sw.Reset();
  EXPECT_GE(sw.ElapsedMicros(), 0.0);
}

// ------------------------------------------------------------------ tracing

TEST(TraceTest, NullParentSpansAreCompleteNoOps) {
  KM_SPAN(span, nullptr, "disabled");
  EXPECT_EQ(span.get(), nullptr);
  EXPECT_FALSE(span);
  span.Add("counter");  // must be safe
  span.End();
}

TEST(TraceTest, TreeRecordsNamesNestingAndCounters) {
  auto root = TraceNode::Root("answer");
  {
    KM_SPAN(fwd, root.get(), "forward");
    fwd.Add("configurations", 3);
    { KM_SPAN(murty, fwd.get(), "forward.murty"); murty.Add("nodes_popped", 7); }
  }
  { KM_SPAN(bwd, root.get(), "backward"); }
  root->End();

  EXPECT_EQ(root->SpanCount(), 4u);
  ASSERT_EQ(root->children().size(), 2u);
  EXPECT_EQ(root->children()[0]->name(), "forward");
  EXPECT_EQ(root->children()[1]->name(), "backward");
  EXPECT_EQ(root->children()[0]->counter("configurations"), 3u);
  EXPECT_EQ(root->children()[0]->children()[0]->counter("nodes_popped"), 7u);
  EXPECT_GE(root->wall_ms(), root->children()[0]->wall_ms());

  const std::string shape = root->ShapeString();
  EXPECT_EQ(shape,
            "answer\n"
            "  forward [configurations]\n"
            "    forward.murty [nodes_popped]\n"
            "  backward\n");
  // Timed rendering carries the same structure plus wall/cpu columns.
  EXPECT_NE(root->TreeString().find("forward  wall="), std::string::npos);
}

TEST(TraceTest, ExplicitSlotsOrderChildrenDeterministically) {
  auto root = TraceNode::Root("answer");
  // Reverse creation order; slots must win.
  { KM_SPAN_SLOT(c, root.get(), "config", 2); }
  { KM_SPAN_SLOT(b, root.get(), "config", 1); }
  { KM_SPAN_SLOT(a, root.get(), "config", 0); }
  root->End();
  ASSERT_EQ(root->children().size(), 3u);
  EXPECT_EQ(root->children()[0]->slot(), 0u);
  EXPECT_EQ(root->children()[1]->slot(), 1u);
  EXPECT_EQ(root->children()[2]->slot(), 2u);
}

TEST(TraceTest, ChromeJsonHasOneCompleteEventPerSpan) {
  auto root = TraceNode::Root("answer");
  { KM_SPAN(child, root.get(), "stage \"quoted\""); child.Add("items", 2); }
  root->End();
  const std::string json = root->ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("stage \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("\"items\":2"), std::string::npos);
}

// ------------------------------------------------------------------ metrics

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  Counter c;
  c.Increment();
  c.Increment(4);
  EXPECT_EQ(c.Value(), 5u);

  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);

  Histogram h({1.0, 10.0});
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(100.0);  // overflow bucket
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_NEAR(h.Sum(), 105.5, 1e-3);
  const std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
}

TEST(MetricsTest, RegistryReturnsStableReferencesAndSnapshots) {
  MetricsRegistry registry;
  Counter& c = registry.CounterRef("test.counter");
  Counter& c2 = registry.CounterRef("test.counter");
  EXPECT_EQ(&c, &c2);
  c.Increment(3);
  registry.GaugeRef("test.gauge").Set(-4);
  registry.HistogramRef("test.hist", {1.0, 2.0}).Observe(1.5);

  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_TRUE(snap.has("test.counter"));
  EXPECT_EQ(snap.value("test.counter"), 3.0);
  EXPECT_EQ(snap.value("test.gauge"), -4.0);
  EXPECT_EQ(snap.values().at("test.hist").count, 1u);

  const std::string text = snap.ToText();
  EXPECT_NE(text.find("test.counter 3"), std::string::npos);
  EXPECT_NE(text.find("test.gauge -4"), std::string::npos);
  EXPECT_NE(text.find("le="), std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"test.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);
}

TEST(MetricsTest, CollectorsAddIntoSnapshotsSoInstancesCompose) {
  MetricsRegistry registry;
  // Two "engines" publishing the same gauge name: values must add, the
  // way the real cache collectors compose across live engines.
  int64_t id1 = registry.AddCollector(
      [](MetricsSnapshot* snap) { snap->AddGauge("test.cache.entries", 5); });
  int64_t id2 = registry.AddCollector(
      [](MetricsSnapshot* snap) { snap->AddGauge("test.cache.entries", 7); });
  EXPECT_EQ(registry.Snapshot().value("test.cache.entries"), 12.0);
  registry.RemoveCollector(id1);
  EXPECT_EQ(registry.Snapshot().value("test.cache.entries"), 7.0);
  registry.RemoveCollector(id2);
  EXPECT_FALSE(registry.Snapshot().has("test.cache.entries"));
}

TEST(MetricsTest, ResetForTestZeroesButKeepsReferences) {
  MetricsRegistry registry;
  Counter& c = registry.CounterRef("test.reset");
  c.Increment(9);
  registry.ResetForTest();
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  EXPECT_EQ(registry.Snapshot().value("test.reset"), 1.0);
}

}  // namespace
}  // namespace km
