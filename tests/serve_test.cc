// Serving-layer tests: retry/backoff determinism and budget caps, the
// executor circuit breaker (manual clock), the admission queue and AIMD
// limiter, the EngineServer facade, and concurrency stresses meant to run
// under TSan. The common assertion: overload produces typed, retryable
// statuses and bounded queues — never unbounded waiting or a crash.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <cstdio>

#include "common/failpoint.h"
#include "common/query_context.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/keymantic.h"
#include "datasets/university.h"
#include "serve/admission.h"
#include "serve/circuit_breaker.h"
#include "serve/engine_server.h"
#include "serve/tenant.h"
#include "snapshot/snapshot.h"

namespace km {
namespace {

// ------------------------------------------------------------------ retry

TEST(RetryTest, StatusHelpersRoundTripTheRetryAfterHint) {
  Status shed = OverloadedStatus("queue full", 123.0);
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_DOUBLE_EQ(SuggestedRetryAfterMs(shed), 123.0);

  Status open = UnavailableStatus("circuit open", 250.0);
  EXPECT_EQ(open.code(), StatusCode::kUnavailable);
  EXPECT_DOUBLE_EQ(SuggestedRetryAfterMs(open), 250.0);

  EXPECT_DOUBLE_EQ(SuggestedRetryAfterMs(Status::Internal("boom")), 0.0);
  EXPECT_DOUBLE_EQ(SuggestedRetryAfterMs(Status::OK()), 0.0);
}

TEST(RetryTest, OnlyTransientServerConditionsAreRetryable) {
  EXPECT_TRUE(IsRetryableStatus(OverloadedStatus("shed", 1)));
  EXPECT_TRUE(IsRetryableStatus(UnavailableStatus("open", 1)));
  EXPECT_FALSE(IsRetryableStatus(Status::OK()));
  EXPECT_FALSE(IsRetryableStatus(Status::InvalidArgument("bad query")));
  EXPECT_FALSE(IsRetryableStatus(Status::DeadlineExceeded("own budget")));
  EXPECT_FALSE(IsRetryableStatus(Status::Internal("bug")));
}

TEST(RetryTest, BackoffScheduleIsReproducibleFromSeedAndRequestId) {
  RetryOptions options;
  options.seed = 42;
  RetrySchedule a(options, 7);
  RetrySchedule b(options, 7);
  RetrySchedule other(options, 8);
  bool any_difference = false;
  for (int i = 0; i < 8; ++i) {
    double delay_a = a.NextBackoffMs();
    EXPECT_DOUBLE_EQ(delay_a, b.NextBackoffMs()) << "step " << i;
    EXPECT_GE(delay_a, options.base_backoff_ms);
    EXPECT_LE(delay_a, options.max_backoff_ms);
    if (delay_a != other.NextBackoffMs()) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "request ids must decorrelate the streams";
}

TEST(RetryTest, BackoffHonorsServerHintAsFloor) {
  RetryOptions options;
  options.base_backoff_ms = 1.0;
  options.max_backoff_ms = 10'000.0;
  RetrySchedule schedule(options, 1);
  EXPECT_GE(schedule.NextBackoffMs(500.0), 500.0);
}

// The anti-amplification property: with every request failing retryably,
// total retries stay bounded by budget_cap + budget_ratio·requests — the
// attempted-retry count goes *flat* once the bucket drains, no matter how
// many attempts each request is individually allowed.
TEST(RetryTest, BudgetCapsRetryAmplificationDuringOutage) {
  RetryOptions options;
  options.max_attempts = 4;
  options.budget_ratio = 0.1;
  options.budget_cap = 5.0;
  RetryPolicy policy(options);

  const int kRequests = 300;
  int total_retries = 0;
  int last_hundred_retries = 0;
  for (int r = 0; r < kRequests; ++r) {
    policy.OnRequest();
    int attempts = 1;  // the first attempt failed
    while (policy.ShouldRetry(OverloadedStatus("outage", 1), attempts)) {
      ++attempts;
      ++total_retries;
      if (r >= kRequests - 100) ++last_hundred_retries;
    }
  }
  double bound = options.budget_cap + options.budget_ratio * kRequests + 1;
  EXPECT_LE(total_retries, static_cast<int>(bound));
  // Steady state: deposits of 0.1/request afford at most ~1 retry per 10
  // requests; far below the 3-per-request the attempt cap would allow.
  EXPECT_LE(last_hundred_retries, 15);
  EXPECT_GT(total_retries, 0);
}

TEST(RetryTest, AttemptCapStopsRetriesEvenWithBudget) {
  RetryOptions options;
  options.max_attempts = 3;
  options.budget_cap = 100.0;
  options.budget_ratio = 1.0;
  RetryPolicy policy(options);
  policy.OnRequest();
  EXPECT_TRUE(policy.ShouldRetry(OverloadedStatus("x", 1), 1));
  EXPECT_TRUE(policy.ShouldRetry(OverloadedStatus("x", 1), 2));
  EXPECT_FALSE(policy.ShouldRetry(OverloadedStatus("x", 1), 3));
}

// -------------------------------------------------------- circuit breaker

class CircuitBreakerTest : public ::testing::Test {
 protected:
  CircuitBreakerOptions TightOptions() {
    CircuitBreakerOptions options;
    options.consecutive_failures = 3;
    options.failure_ratio = 0.5;
    options.window = 8;
    options.open_cooldown_ms = 100.0;
    options.half_open_probes = 1;
    options.close_after_successes = 2;
    return options;
  }
  double now_ = 0.0;
  std::function<double()> Clock() {
    return [this] { return now_; };
  }
};

TEST_F(CircuitBreakerTest, TripsFailsFastAndRecoversThroughHalfOpen) {
  CircuitBreaker breaker("t1", TightOptions(), Clock());
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.Record(Status::Internal("backend down"));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);

  // OPEN fails fast with a retry-after hint while the cooldown runs.
  now_ = 50.0;
  Status rejected = breaker.Admit();
  ASSERT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_GT(SuggestedRetryAfterMs(rejected), 0.0);
  EXPECT_GE(breaker.rejections(), 1u);

  // Cooldown elapses: exactly one probe is admitted (half_open_probes=1).
  now_ = 150.0;
  ASSERT_TRUE(breaker.Admit().ok());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.Admit().code(), StatusCode::kUnavailable);

  // Enough probe successes close the circuit.
  breaker.Record(Status::OK());
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.Record(Status::OK());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Admit().ok());
}

TEST_F(CircuitBreakerTest, HalfOpenProbeFailureReopens) {
  CircuitBreaker breaker("t2", TightOptions(), Clock());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.Record(Status::Internal("down"));
  }
  now_ = 200.0;
  ASSERT_TRUE(breaker.Admit().ok());  // half-open probe
  breaker.Record(Status::Internal("still down"));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  // The fresh OPEN period fails fast again.
  now_ = 250.0;
  EXPECT_EQ(breaker.Admit().code(), StatusCode::kUnavailable);
}

TEST_F(CircuitBreakerTest, FailureRatioTripsWithoutConsecutiveRun) {
  CircuitBreakerOptions options = TightOptions();
  options.consecutive_failures = 100;  // only the ratio can trip
  CircuitBreaker breaker("t3", options, Clock());
  // Pattern S F F S F F... : 2/3 failures, max consecutive run of 2.
  for (int i = 0; breaker.state() == BreakerState::kClosed && i < 30; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.Record(i % 3 == 0 ? Status::OK() : Status::Internal("flaky"));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST_F(CircuitBreakerTest, ClientErrorsAndBudgetExhaustionDoNotTrip) {
  CircuitBreaker breaker("t4", TightOptions(), Clock());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.Record(i % 2 == 0 ? Status::InvalidArgument("bad sql")
                              : Status::ResourceExhausted("query budget"));
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

// Regression: a slow call admitted before a trip must not have its late
// outcome charged to the half-open epoch. Before ticketed admission, such
// a stale success could close the circuit (counting as a probe success)
// and free a probe slot it never held, over-admitting probes.
TEST_F(CircuitBreakerTest, StaleOutcomeFromDeadEpochIsIgnored) {
  CircuitBreakerOptions options = TightOptions();
  options.consecutive_failures = 1;
  options.half_open_probes = 1;
  options.close_after_successes = 1;
  CircuitBreaker breaker("t5", options, Clock());

  // A slow call is admitted while CLOSED and will finish much later.
  auto slow_ticket = breaker.AdmitTicket();
  ASSERT_TRUE(slow_ticket.ok());

  // Meanwhile a failure trips the circuit.
  auto failing_ticket = breaker.AdmitTicket();
  ASSERT_TRUE(failing_ticket.ok());
  breaker.RecordOutcome(*failing_ticket, Status::Internal("backend down"));
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  // Cooldown elapses; the single half-open probe slot is taken.
  now_ = 150.0;
  auto probe_ticket = breaker.AdmitTicket();
  ASSERT_TRUE(probe_ticket.ok());
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);

  // The slow pre-trip call finally succeeds. Its epoch is dead: the
  // success must neither close the circuit nor free the probe slot.
  breaker.RecordOutcome(*slow_ticket, Status::OK());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(breaker.stale_outcomes(), 1u);
  EXPECT_EQ(breaker.AdmitTicket().status().code(), StatusCode::kUnavailable)
      << "stale success freed a probe slot it never held";

  // The real probe's success still closes the circuit.
  breaker.RecordOutcome(*probe_ticket, Status::OK());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

// A gate implementing only the legacy Admit()/Record() pair still works
// through the ticketed entry points the executor uses (default methods
// delegate), so existing ExecutionGate implementations keep functioning.
TEST(ExecutionGateTest, DefaultTicketedMethodsDelegateToLegacyPair) {
  struct LegacyGate : ExecutionGate {
    int admits = 0;
    int records = 0;
    Status Admit() override {
      ++admits;
      return Status::OK();
    }
    void Record(const Status&) override { ++records; }
  };
  LegacyGate gate;
  auto ticket = gate.AdmitTicket();
  ASSERT_TRUE(ticket.ok());
  gate.RecordOutcome(*ticket, Status::OK());
  EXPECT_EQ(gate.admits, 1);
  EXPECT_EQ(gate.records, 1);
}

// -------------------------------------------------------- admission queue

TEST(AdmissionQueueTest, ShedsWithRetryAfterWhenFull) {
  AdmissionOptions options;
  options.max_queue = 2;
  options.min_retry_after_ms = 10.0;
  AdmissionQueue queue(options);
  EXPECT_TRUE(queue.Offer({}, 0).ok());
  EXPECT_TRUE(queue.Offer({}, 0).ok());
  Status shed = queue.Offer({}, 0);
  ASSERT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_GE(SuggestedRetryAfterMs(shed), options.min_retry_after_ms);
  EXPECT_EQ(queue.shed_full(), 1u);
  EXPECT_EQ(queue.admitted(), 2u);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(AdmissionQueueTest, ShedsWhenPredictedWaitExceedsDeadline) {
  AdmissionQueue queue;
  AdmissionQueue::Item item;
  item.remaining_deadline_ms = 10.0;
  Status shed = queue.Offer(std::move(item), /*estimated_wait_ms=*/50.0);
  ASSERT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_EQ(queue.shed_deadline(), 1u);
  // Without a deadline the same wait estimate is admitted.
  EXPECT_TRUE(queue.Offer({}, 50.0).ok());
}

TEST(AdmissionQueueTest, ShutdownRejectsNewButDrainsQueued) {
  AdmissionQueue queue;
  AdmissionQueue::Item a;
  a.id = 1;
  AdmissionQueue::Item b;
  b.id = 2;
  ASSERT_TRUE(queue.Offer(std::move(a), 0).ok());
  ASSERT_TRUE(queue.Offer(std::move(b), 0).ok());
  queue.Shutdown();
  EXPECT_EQ(queue.Offer({}, 0).code(), StatusCode::kUnavailable);
  EXPECT_EQ(queue.shed_shutdown(), 1u);

  auto first = queue.Take();
  auto second = queue.Take();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->id, 1u);  // FIFO preserved through shutdown
  EXPECT_EQ(second->id, 2u);
  EXPECT_FALSE(queue.Take().has_value());  // drained → worker exit signal
}

TEST(AdmissionQueueTest, TakeBlocksUntilAnOfferArrives) {
  AdmissionQueue queue;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    AdmissionQueue::Item item;
    item.id = 99;
    (void)queue.Offer(std::move(item), 0);
  });
  auto item = queue.Take();  // must block, not return empty
  producer.join();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->id, 99u);
  EXPECT_GT(item->enqueued_ns, 0);
}

// ----------------------------------------------------------- aimd limiter

TEST(AimdLimiterTest, AdditiveIncreaseUnderTargetLatency) {
  AimdOptions options;
  options.initial_limit = 2.0;
  options.increase = 1.0;
  options.max_limit = 4.0;
  options.latency_target_ms = 100.0;
  AimdLimiter limiter(options);
  limiter.Acquire();
  limiter.Release(/*latency_ms=*/1.0);
  EXPECT_DOUBLE_EQ(limiter.limit(), 3.0);
  limiter.Acquire();
  limiter.Release(1.0);
  limiter.Acquire();
  limiter.Release(1.0);
  EXPECT_DOUBLE_EQ(limiter.limit(), 4.0);  // clamped at max
}

TEST(AimdLimiterTest, MultiplicativeDecreaseIsCooldownLimited) {
  AimdOptions options;
  options.initial_limit = 8.0;
  options.min_limit = 1.0;
  options.decrease_factor = 0.5;
  options.latency_target_ms = 10.0;
  options.decrease_cooldown_ms = 100.0;
  double now = 0.0;
  AimdLimiter limiter(options, [&] { return now; });

  limiter.Acquire();
  limiter.Release(/*latency_ms=*/50.0);  // over target → decrease
  EXPECT_DOUBLE_EQ(limiter.limit(), 4.0);
  EXPECT_EQ(limiter.decreases(), 1u);

  limiter.Acquire();
  limiter.Release(50.0);  // within cooldown → one congestion event, no cut
  EXPECT_DOUBLE_EQ(limiter.limit(), 4.0);

  now = 200.0;
  limiter.OnOverload();  // cooldown over → cut again
  EXPECT_DOUBLE_EQ(limiter.limit(), 2.0);
  EXPECT_EQ(limiter.decreases(), 2u);

  now = 400.0;
  limiter.OnOverload();
  now = 600.0;
  limiter.OnOverload();
  EXPECT_DOUBLE_EQ(limiter.limit(), 1.0);  // floored at min_limit
}

TEST(AimdLimiterTest, TryAcquireRespectsTheLimit) {
  AimdOptions options;
  options.initial_limit = 1.0;
  options.min_limit = 1.0;
  options.max_limit = 1.0;
  AimdLimiter limiter(options);
  EXPECT_TRUE(limiter.TryAcquire());
  EXPECT_FALSE(limiter.TryAcquire());
  EXPECT_EQ(limiter.inflight(), 1u);
  limiter.Release(1.0);
  EXPECT_TRUE(limiter.TryAcquire());
}

// Regression: a request whose deadline expired while it waited on the
// limiter never executed, so returning its slot must not feed the AIMD
// controller a latency sample — a Release(0) there would read as a fast
// completion and grow the limit on the strength of work never done.
TEST(AimdLimiterTest, ReleaseWithoutSampleFreesSlotWithoutGrowingLimit) {
  AimdOptions options;
  options.initial_limit = 2.0;
  options.max_limit = 8.0;
  options.increase = 1.0;
  AimdLimiter limiter(options);
  limiter.Acquire();
  const double before = limiter.limit();
  limiter.ReleaseWithoutSample();
  EXPECT_EQ(limiter.inflight(), 0u);
  EXPECT_DOUBLE_EQ(limiter.limit(), before);
  // Contrast: a sampled release under target grows the limit additively.
  limiter.Acquire();
  limiter.Release(0.0);
  EXPECT_DOUBLE_EQ(limiter.limit(), before + options.increase);
}

// Regression: the wait prediction must divide by the concurrency that can
// actually drain the queue. Dividing by the raw AIMD limit (64) with one
// worker under-predicted the wait 64×, admitting requests that could only
// expire in the queue — the opposite of the shed-at-the-door design.
TEST(PredictQueueWaitTest, EffectiveConcurrencyIsLimitCappedByWorkers) {
  // 8 queued × 10ms each, one worker: 80ms, regardless of a huge limit.
  EXPECT_DOUBLE_EQ(PredictQueueWaitMs(8, 10.0, 64.0, 1), 80.0);
  // Four workers drain four at a time.
  EXPECT_DOUBLE_EQ(PredictQueueWaitMs(8, 10.0, 64.0, 4), 20.0);
  // A depressed limit below the worker count is the binding constraint.
  EXPECT_DOUBLE_EQ(PredictQueueWaitMs(8, 10.0, 2.0, 4), 40.0);
  // Degenerate inputs stay sane: a zero limit still divides by ≥ 1.
  EXPECT_DOUBLE_EQ(PredictQueueWaitMs(8, 10.0, 0.0, 4), 80.0);
  // Uncalibrated (no completion yet): admit optimistically.
  EXPECT_DOUBLE_EQ(PredictQueueWaitMs(8, 0.0, 64.0, 1), 0.0);
}

// ----------------------------------------------------------- engine server

class EngineServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = BuildUniversityDatabase();
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    engine_ = new KeymanticEngine(*db_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static KeymanticEngine* engine_;
};

Database* EngineServerTest::db_ = nullptr;
KeymanticEngine* EngineServerTest::engine_ = nullptr;

TEST_F(EngineServerTest, SubmittedAnswerMatchesDirectCall) {
  EngineServer server(*engine_);
  auto via_server = server.Submit("Vokram IT", 5).get();
  ASSERT_TRUE(via_server.ok()) << via_server.status().ToString();
  auto direct = engine_->Answer("Vokram IT", 5);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(via_server->explanations.size(), direct->explanations.size());
  for (size_t i = 0; i < direct->explanations.size(); ++i) {
    EXPECT_EQ(via_server->explanations[i].sql.CanonicalSignature(),
              direct->explanations[i].sql.CanonicalSignature());
  }
  server.Shutdown();
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.shed, 0u);
}

TEST_F(EngineServerTest, ShedDeliversOverloadedThroughTheFuture) {
  EngineServerOptions options;
  options.admission.max_queue = 0;  // every submit sheds, deterministically
  EngineServer server(*engine_, options);
  auto result = server.Submit("Vokram IT", 5).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverloaded);
  EXPECT_GT(SuggestedRetryAfterMs(result.status()), 0.0);
  EXPECT_EQ(server.state(), OverloadState::kShedding);
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.submitted, 1u);
}

TEST_F(EngineServerTest, QueueWaitBurnsTheRequestDeadline) {
  EngineServer server(*engine_);
  // An already-expired deadline: the worker must report queue expiry, not
  // run the engine.
  auto result = server.Submit("Vokram IT", 5, /*deadline_ms=*/0.0001).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  server.Drain();
  EXPECT_EQ(server.Stats().expired_in_queue, 1u);
}

TEST_F(EngineServerTest, DrainWaitsForAllAdmittedRequests) {
  EngineServerOptions options;
  options.workers = 2;
  EngineServer server(*engine_, options);
  std::vector<std::future<StatusOr<AnswerResult>>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(server.Submit("Vokram IT", 3));
  server.Drain();
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    auto result = f.get();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result->explanations.empty());
  }
  ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, 6u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_LE(stats.max_queue_depth, options.admission.max_queue);
}

TEST_F(EngineServerTest, ShutdownRejectsNewSubmitsAndIsIdempotent) {
  EngineServer server(*engine_);
  server.Shutdown();
  server.Shutdown();  // idempotent
  auto result = server.Submit("Vokram IT", 5).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------- concurrency (TSan)

// Producers, consumers, and a mid-stream shutdown all racing on one queue:
// every admitted item is handed out exactly once, nothing deadlocks, and
// the counters reconcile. Run under TSan by the concurrency CI job.
TEST(ServeConcurrencyTest, AdmissionQueueSurvivesProducerDrainShutdownRace) {
  AdmissionOptions options;
  options.max_queue = 32;
  AdmissionQueue queue(options);
  const int kProducers = 4, kPerProducer = 200;
  std::atomic<uint64_t> taken{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (queue.Take().has_value()) {
        taken.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        AdmissionQueue::Item item;
        item.id = static_cast<uint64_t>(p) * kPerProducer + i;
        item.payload = std::make_shared<int>(i);
        (void)queue.Offer(std::move(item), 0);  // sheds are fine
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Shutdown();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(taken.load(), queue.admitted());
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_LE(queue.max_depth_seen(), options.max_queue);
  EXPECT_EQ(queue.admitted() + queue.shed_full(),
            static_cast<uint64_t>(kProducers) * kPerProducer);
}

TEST(ServeConcurrencyTest, ConcurrentSubmittersReconcileWithServerCounters) {
  auto db = BuildUniversityDatabase();
  ASSERT_TRUE(db.ok());
  KeymanticEngine engine(*db);
  EngineServerOptions options;
  options.workers = 3;
  options.admission.max_queue = 8;
  EngineServer server(engine, options);

  const int kThreads = 4, kPerThread = 8;
  std::atomic<uint64_t> ok_count{0}, shed_count{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        auto result = server.Submit("Vokram IT", 3).get();
        if (result.ok()) {
          ok_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_TRUE(IsRetryableStatus(result.status()))
              << result.status().ToString();
          shed_count.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : submitters) t.join();
  server.Drain();
  server.Shutdown();

  ServerStats stats = server.Stats();
  EXPECT_EQ(ok_count.load() + shed_count.load(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.completed + stats.shed + stats.expired_in_queue,
            stats.submitted);
  EXPECT_LE(stats.max_queue_depth, options.admission.max_queue);
}

// ------------------------------------------------- breaker × failpoints

#define SKIP_WITHOUT_FAILPOINTS()                                      \
  do {                                                                 \
    if (!failpoints::Enabled()) {                                      \
      GTEST_SKIP() << "failpoint sites compiled out (KM_FAILPOINTS)";  \
    }                                                                  \
  } while (0)

// End-to-end trip: a failing backend (executor.join.fail) trips the
// breaker during penalize_empty_results probing, after which the engine
// stops touching the backend entirely — the failpoint hit count goes flat
// while the circuit is open, and answers still come back ranked.
TEST(ServeBreakerFailpointTest, OpenBreakerStopsExecutorProbing) {
  SKIP_WITHOUT_FAILPOINTS();
  failpoints::Reset();
  auto db = BuildUniversityDatabase();
  ASSERT_TRUE(db.ok());

  // Thresholds of 1 keep the test independent of how many explanations
  // (probes) the query happens to produce.
  CircuitBreakerOptions breaker_options;
  breaker_options.consecutive_failures = 1;
  breaker_options.close_after_successes = 1;
  breaker_options.open_cooldown_ms = 1'000'000.0;  // stays open for the test
  double now = 0.0;
  CircuitBreaker breaker("probe", breaker_options, [&] { return now; });

  EngineOptions options;
  options.penalize_empty_results = true;
  options.execution_gate = &breaker;
  KeymanticEngine engine(*db, options);

  failpoints::EnableError("executor.join.fail",
                          Status::Internal("injected backend outage"));
  auto first = engine.Answer("Vokram IT", 5);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->explanations.empty());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(first->stats.execution_truncated);

  // While open, further answers never reach the backend: fail-fast, flat.
  uint64_t hits_at_trip = failpoints::HitCount("executor.join.fail");
  ASSERT_GE(hits_at_trip, 1u);
  for (int i = 0; i < 3; ++i) {
    auto again = engine.Answer("Vokram IT", 5);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_FALSE(again->explanations.empty());
    EXPECT_TRUE(again->stats.execution_truncated);
  }
  EXPECT_EQ(failpoints::HitCount("executor.join.fail"), hits_at_trip);
  EXPECT_GE(breaker.rejections(), 3u);

  // Heal the backend, let the cooldown elapse: half-open probes succeed
  // and the circuit closes — probing resumes.
  failpoints::Reset();
  now = 2'000'000.0;
  auto healed = engine.Answer("Vokram IT", 5);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_GT(failpoints::HitCount("executor.join.fail"), 0u);  // visited again
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_FALSE(healed->stats.execution_truncated);
}

// ------------------------------------------------------ tenant registry

class TenantRegistryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = BuildUniversityDatabase();
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    engine_ = std::make_shared<const KeymanticEngine>(*db_);
  }
  static void TearDownTestSuite() {
    engine_.reset();
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static std::shared_ptr<const KeymanticEngine> engine_;
};

Database* TenantRegistryTest::db_ = nullptr;
std::shared_ptr<const KeymanticEngine> TenantRegistryTest::engine_;

TEST_F(TenantRegistryTest, LifecycleAddRemoveShutdown) {
  TenantRegistry tenants;
  ASSERT_TRUE(tenants.AddTenant("alpha", engine_).ok());
  EXPECT_TRUE(tenants.HasTenant("alpha"));
  EXPECT_EQ(tenants.AddTenant("alpha", engine_).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(tenants.AddTenant("", engine_).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tenants.AddTenant("evil\nid", engine_).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(tenants.AddTenant("beta", engine_).ok());
  EXPECT_EQ(tenants.TenantIds().size(), 2u);

  auto answered = tenants.Submit("alpha", "Vokram IT", 3).get();
  ASSERT_TRUE(answered.ok()) << answered.status().ToString();
  EXPECT_FALSE(answered->explanations.empty());

  auto missing = tenants.Submit("nobody", "Vokram IT", 3).get();
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(tenants.RemoveTenant("beta").ok());
  EXPECT_FALSE(tenants.HasTenant("beta"));
  EXPECT_EQ(tenants.RemoveTenant("beta").code(), StatusCode::kNotFound);

  tenants.Shutdown();
  EXPECT_EQ(tenants.AddTenant("late", engine_).code(),
            StatusCode::kFailedPrecondition);
  // Shutdown evicts every tenant, so routing fails as "not registered".
  auto refused = tenants.Submit("alpha", "Vokram IT", 3).get();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kNotFound);
}

// The isolation regression the multi-tenant layer exists for: two tenants
// share a registry; one is saturated far past its quota while the other
// runs a sequential workload. The quiet tenant's answers must be
// byte-identical to a single-tenant run — same SQL signatures, same
// scores, same order — and it must shed nothing, while the abusive
// tenant's quota visibly sheds.
TEST_F(TenantRegistryTest, AbusiveTenantCannotPerturbQuietTenantsAnswers) {
  const std::vector<std::string> workload = {"Vokram IT", "professor Vokram",
                                             "Vokram IT", "IT department"};

  // One quiet query → its exact answer bytes (signature, score) in order.
  auto run_quiet = [&](TenantRegistry& tenants) {
    std::vector<std::pair<std::string, double>> answers;
    for (const std::string& query : workload) {
      auto result = tenants.Submit("quiet", query, 5).get();
      if (!result.ok()) {
        answers.emplace_back("status:" + result.status().ToString(), 0.0);
        continue;
      }
      for (const Explanation& explanation : result->explanations) {
        answers.emplace_back(explanation.sql.CanonicalSignature(),
                             explanation.score);
      }
    }
    return answers;
  };

  // Baseline: the quiet tenant alone.
  std::vector<std::pair<std::string, double>> baseline;
  {
    TenantRegistry tenants;
    ASSERT_TRUE(tenants.AddTenant("quiet", engine_).ok());
    baseline = run_quiet(tenants);
    tenants.Shutdown();
  }
  ASSERT_FALSE(baseline.empty());

  // Mixed: add an abusive tenant with a tiny quota and flood it 10x past
  // capacity while the quiet workload runs.
  TenantRegistry tenants;
  ASSERT_TRUE(tenants.AddTenant("quiet", engine_).ok());
  TenantOptions abusive;
  abusive.server.workers = 1;
  abusive.server.admission.max_queue = 1;
  ASSERT_TRUE(tenants.AddTenant("abusive", engine_, abusive).ok());

  std::atomic<bool> flooding{true};
  std::vector<std::future<StatusOr<AnswerResult>>> flood;
  std::thread abuser([&] {
    for (int i = 0; i < 48 && flooding.load(); ++i) {
      flood.push_back(tenants.Submit("abusive", "Vokram IT", 5));
    }
  });
  const auto mixed = run_quiet(tenants);
  flooding.store(false);
  abuser.join();

  uint64_t flood_ok = 0, flood_shed = 0;
  for (auto& f : flood) {
    auto result = f.get();
    if (result.ok()) {
      ++flood_ok;
    } else {
      ASSERT_TRUE(IsRetryableStatus(result.status()))
          << result.status().ToString();
      ++flood_shed;
    }
  }

  EXPECT_EQ(mixed, baseline) << "quiet tenant's answers drifted under "
                                "another tenant's overload";
  auto quiet_stats = tenants.StatsFor("quiet");
  ASSERT_TRUE(quiet_stats.ok());
  EXPECT_EQ(quiet_stats->shed, 0u);
  auto abusive_stats = tenants.StatsFor("abusive");
  ASSERT_TRUE(abusive_stats.ok());
  EXPECT_GT(abusive_stats->shed, 0u) << "flood never tripped the quota — "
                                        "the test lost its teeth";
  EXPECT_EQ(abusive_stats->shed, flood_shed);
  EXPECT_EQ(abusive_stats->completed, flood_ok);
  tenants.Shutdown();
}

// -------------------------------------- reload vs shutdown (TSan + ASan)

class EngineServerReloadShutdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto db = BuildUniversityDatabase();
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
    engine_ = std::make_shared<const KeymanticEngine>(*db_);
    path_ = testing::TempDir() + "km_serve_reload.snap";
    ASSERT_TRUE(SaveSnapshot(*engine_->prepared_state(), path_).ok());
  }
  void TearDown() override {
    std::remove(path_.c_str());
    failpoints::DisableAll();
  }

  std::unique_ptr<Database> db_;
  std::shared_ptr<const KeymanticEngine> engine_;
  std::string path_;
};

TEST_F(EngineServerReloadShutdownTest, ReloadAfterShutdownIsRefusedTyped) {
  EngineServer server(engine_);
  server.Shutdown();
  ReloadReport report;
  Status reloaded = server.ReloadSnapshot(path_, false, &report);
  ASSERT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(report.rung, ReloadRung::kKeptCurrent);
}

// Submitters, good reloads, forced rebuilds, and a mid-flight Shutdown all
// racing on one server. Every outcome must be typed; the destructor runs
// only after the threads are joined, so TSan sees the full interleaving of
// Shutdown against reloads still holding the engine. Run under TSan by the
// concurrency CI job (suite name matches its filter).
TEST_F(EngineServerReloadShutdownTest, ConcurrentSubmitReloadShutdownIsRaceFree) {
  for (int round = 0; round < 3; ++round) {
    EngineServerOptions options;
    options.workers = 2;
    auto server = std::make_unique<EngineServer>(engine_, options);

    std::vector<std::thread> threads;
    threads.emplace_back([&] {
      for (int i = 0; i < 8; ++i) {
        auto result = server->Submit("Vokram IT", 3).get();
        if (!result.ok()) {
          // Shedding / shutdown refusals are the only acceptable failures.
          EXPECT_TRUE(IsRetryableStatus(result.status()))
              << result.status().ToString();
        }
      }
    });
    threads.emplace_back([&] {
      for (int i = 0; i < 4; ++i) {
        ReloadReport report;
        Status reloaded = server->ReloadSnapshot(path_, false, &report);
        // OK (swapped) or refused because shutdown won the race.
        if (!reloaded.ok()) {
          EXPECT_EQ(reloaded.code(), StatusCode::kUnavailable)
              << reloaded.ToString();
        }
      }
    });
    threads.emplace_back([&] {
      // Missing snapshot + require_swap drives the rebuild rung while the
      // shutdown races it.
      ReloadReport report;
      Status reloaded = server->ReloadSnapshot(
          testing::TempDir() + "km_no_such.snap", true, &report);
      EXPECT_FALSE(reloaded.ok());
    });
    threads.emplace_back([&, round] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2 * round));
      server->Shutdown();
    });
    for (std::thread& t : threads) t.join();
    server->Shutdown();  // idempotent after the race
    server.reset();
  }
}

// Deterministic pin of the PR-fix scenario: a reload is held mid-validate
// by a failpoint while the server is destroyed. The destructor's Shutdown
// must wait for the in-flight reload (pre-fix this was a use-after-free —
// ASan catches any regression), and the pinned reload must observe the
// shutdown and drop its swap instead of publishing into a dead server.
TEST_F(EngineServerReloadShutdownTest, DestructionWaitsForPinnedReload) {
  SKIP_WITHOUT_FAILPOINTS();
  failpoints::Reset();

  auto server = std::make_unique<EngineServer>(engine_);
  std::atomic<bool> reload_entered{false};
  failpoints::EnableCallback("snapshot.swap.validate_fail", [&](void*) {
    reload_entered.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  });

  Status reloaded = Status::OK();
  ReloadReport report;
  std::thread reloader([&] {
    reloaded = server->ReloadSnapshot(path_, false, &report);
  });
  // Wait until the reload is provably inside validation, then destroy the
  // server out from under it.
  for (int i = 0; i < 5000 && !reload_entered.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(reload_entered.load());
  server.reset();  // must block until the reload releases its pin
  reloader.join();

  ASSERT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(report.rung, ReloadRung::kKeptCurrent);
  failpoints::Reset();
}

}  // namespace
}  // namespace km
