// Tests for km_matching: Hungarian assignment, Murty top-k enumeration,
// configuration generation. Includes randomized property tests against
// brute-force enumeration.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "common/rng.h"
#include "datasets/university.h"
#include "matching/config_gen.h"
#include "matching/munkres.h"
#include "matching/murty.h"

namespace km {
namespace {

// Brute-force best assignment by permutation enumeration (rows <= cols).
double BruteForceBest(const Matrix& w) {
  std::vector<size_t> cols(w.cols());
  for (size_t i = 0; i < w.cols(); ++i) cols[i] = i;
  double best = -1e30;
  // Enumerate injective mappings rows -> cols via permutations of column
  // subsets (fine for tiny matrices).
  std::vector<size_t> pick(w.rows());
  std::vector<bool> used(w.cols(), false);
  double current = 0;
  std::function<void(size_t)> rec = [&](size_t row) {
    if (row == w.rows()) {
      best = std::max(best, current);
      return;
    }
    for (size_t c = 0; c < w.cols(); ++c) {
      if (used[c] || w.At(row, c) <= kForbidden) continue;
      used[c] = true;
      current += w.At(row, c);
      rec(row + 1);
      current -= w.At(row, c);
      used[c] = false;
    }
  };
  rec(0);
  return best;
}

// All complete assignment weights, sorted descending.
std::vector<double> BruteForceAll(const Matrix& w) {
  std::vector<double> out;
  std::vector<bool> used(w.cols(), false);
  double current = 0;
  std::function<void(size_t)> rec = [&](size_t row) {
    if (row == w.rows()) {
      out.push_back(current);
      return;
    }
    for (size_t c = 0; c < w.cols(); ++c) {
      if (used[c] || w.At(row, c) <= kForbidden) continue;
      used[c] = true;
      current += w.At(row, c);
      rec(row + 1);
      current -= w.At(row, c);
      used[c] = false;
    }
  };
  rec(0);
  std::sort(out.rbegin(), out.rend());
  return out;
}

// -------------------------------------------------------------- Munkres

TEST(MunkresTest, SimpleDiagonal) {
  Matrix w(2, 2);
  w.At(0, 0) = 5;
  w.At(0, 1) = 1;
  w.At(1, 0) = 1;
  w.At(1, 1) = 5;
  auto a = MaxWeightAssignment(w);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->col_for_row, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(a->total_weight, 10.0);
}

TEST(MunkresTest, ChoosesCrossWhenBetter) {
  Matrix w(2, 2);
  w.At(0, 0) = 1;
  w.At(0, 1) = 5;
  w.At(1, 0) = 5;
  w.At(1, 1) = 1;
  auto a = MaxWeightAssignment(w);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->col_for_row, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(a->total_weight, 10.0);
}

TEST(MunkresTest, RectangularUsesBestColumns) {
  Matrix w(1, 4);
  w.At(0, 2) = 0.9;
  auto a = MaxWeightAssignment(w);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->col_for_row[0], 2);
}

TEST(MunkresTest, RejectsMoreRowsThanCols) {
  Matrix w(3, 2, 1.0);
  EXPECT_EQ(MaxWeightAssignment(w).status().code(), StatusCode::kInvalidArgument);
}

TEST(MunkresTest, RejectsEmpty) {
  EXPECT_FALSE(MaxWeightAssignment(Matrix()).ok());
}

TEST(MunkresTest, ForbiddenPairsAreAvoided) {
  Matrix w(2, 2);
  w.At(0, 0) = kForbidden;
  w.At(0, 1) = 0.2;
  w.At(1, 0) = 0.3;
  w.At(1, 1) = 0.9;  // tempting but forces row 0 onto forbidden
  auto a = MaxWeightAssignment(w);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->col_for_row, (std::vector<int>{1, 0}));
}

TEST(MunkresTest, IncompleteWhenRowFullyForbidden) {
  Matrix w(2, 2, kForbidden);
  w.At(1, 0) = 1.0;
  auto a = MaxWeightAssignment(w);
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(a->complete());
  EXPECT_EQ(a->col_for_row[1], 0);
  EXPECT_EQ(a->col_for_row[0], -1);
}

class MunkresPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MunkresPropertyTest, MatchesBruteForceOptimum) {
  Rng rng(GetParam());
  size_t rows = 1 + rng.Uniform(5);
  size_t cols = rows + rng.Uniform(4);
  Matrix w(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) w.At(r, c) = rng.UniformDouble();
  }
  auto a = MaxWeightAssignment(w);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(a->complete());
  EXPECT_NEAR(a->total_weight, BruteForceBest(w), 1e-9);
  // Injectivity.
  std::set<int> used(a->col_for_row.begin(), a->col_for_row.end());
  EXPECT_EQ(used.size(), rows);
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, MunkresPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

// ---------------------------------------------------------------- Murty

TEST(MurtyTest, EnumeratesAllPermutationsInOrder) {
  Matrix w(2, 2);
  w.At(0, 0) = 5;
  w.At(0, 1) = 1;
  w.At(1, 0) = 2;
  w.At(1, 1) = 4;
  auto top = TopKAssignments(w, 10);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 2u);  // only two complete assignments exist
  EXPECT_DOUBLE_EQ((*top)[0].total_weight, 9.0);
  EXPECT_DOUBLE_EQ((*top)[1].total_weight, 3.0);
  // k exceeded the feasible count: not an error, just a flagged short list.
  EXPECT_TRUE(top->truncated);
  EXPECT_FALSE(top->budget_exhausted);
}

TEST(MurtyTest, KZeroReturnsEmpty) {
  Matrix w(1, 1, 1.0);
  auto top = TopKAssignments(w, 0);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->empty());
}

TEST(MurtyTest, NoFeasibleAssignment) {
  Matrix w(1, 1, kForbidden);
  auto top = TopKAssignments(w, 3);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->empty());
  EXPECT_TRUE(top->truncated);
}

TEST(MurtyTest, ResultsAreDistinct) {
  Matrix w(3, 4, 0.5);
  auto top = TopKAssignments(w, 24);
  ASSERT_TRUE(top.ok());
  std::set<std::vector<int>> seen;
  for (const auto& a : *top) EXPECT_TRUE(seen.insert(a.col_for_row).second);
  EXPECT_EQ(top->size(), 24u);  // 4P3 = 24 injective assignments
  EXPECT_FALSE(top->truncated);  // exactly k feasible assignments exist
}

TEST(MurtyTest, BudgetExhaustionReturnsPrefix) {
  Matrix w(3, 3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) w.At(r, c) = 1.0 + static_cast<double>(r + c);
  }
  QueryLimits limits;
  limits.max_forward_work = 1;  // enough for the root solve only
  QueryContext ctx(limits);
  auto top = TopKAssignments(w, 6, &ctx);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(top->budget_exhausted);
  EXPECT_TRUE(top->truncated);
  EXPECT_FALSE(top->empty());  // the best assignment still comes back
  auto full = TopKAssignments(w, 6);
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ((*top)[0].total_weight, (*full)[0].total_weight);
}

class MurtyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MurtyPropertyTest, TopKMatchesBruteForceOrder) {
  Rng rng(GetParam() * 977);
  size_t rows = 1 + rng.Uniform(4);
  size_t cols = rows + rng.Uniform(3);
  Matrix w(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) w.At(r, c) = rng.UniformDouble();
  }
  size_t k = 1 + rng.Uniform(8);
  auto top = TopKAssignments(w, k);
  ASSERT_TRUE(top.ok());
  std::vector<double> expected = BruteForceAll(w);
  size_t expect_count = std::min(k, expected.size());
  ASSERT_EQ(top->size(), expect_count);
  for (size_t i = 0; i < expect_count; ++i) {
    EXPECT_NEAR((*top)[i].total_weight, expected[i], 1e-9) << "rank " << i;
  }
  // Non-increasing order.
  for (size_t i = 1; i < top->size(); ++i) {
    EXPECT_GE((*top)[i - 1].total_weight + 1e-12, (*top)[i].total_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, MurtyPropertyTest,
                         ::testing::Range<uint64_t>(1, 26));

// ----------------------------------------------------- ConfigurationGen

class ConfigGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniversityOptions opts;
    opts.extra_people = 5;
    opts.extra_departments = 1;
    opts.extra_universities = 1;
    opts.extra_projects = 1;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    terminology_ = new Terminology(db_->schema());
    weights_ = new WeightMatrixBuilder(*terminology_, db_);
  }
  static void TearDownTestSuite() {
    delete weights_;
    delete terminology_;
    delete db_;
  }

  static Database* db_;
  static Terminology* terminology_;
  static WeightMatrixBuilder* weights_;
};

Database* ConfigGenTest::db_ = nullptr;
Terminology* ConfigGenTest::terminology_ = nullptr;
WeightMatrixBuilder* ConfigGenTest::weights_ = nullptr;

TEST_F(ConfigGenTest, GeneratesInjectiveRankedConfigurations) {
  ConfigurationGenerator gen(*terminology_, db_->schema(), *weights_);
  auto configs = gen.Generate({"Vokram", "IT"}, 10);
  ASSERT_TRUE(configs.ok());
  ASSERT_FALSE(configs->empty());
  for (size_t i = 0; i < configs->size(); ++i) {
    EXPECT_TRUE((*configs)[i].IsInjective());
    EXPECT_EQ((*configs)[i].term_for_keyword.size(), 2u);
    if (i > 0) {
      EXPECT_GE((*configs)[i - 1].score + 1e-12, (*configs)[i].score);
    }
  }
}

TEST_F(ConfigGenTest, RunningExampleTopConfiguration) {
  ConfigurationGenerator gen(*terminology_, db_->schema(), *weights_);
  auto configs = gen.Generate({"Vokram", "IT"}, 5);
  ASSERT_TRUE(configs.ok());
  ASSERT_FALSE(configs->empty());
  // The best configuration must map Vokram to Dom(PEOPLE.Name); IT must go
  // to a country domain (PEOPLE.Country or UNIVERSITY.Country).
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  EXPECT_EQ((*configs)[0].term_for_keyword[0], *name_dom);
  const DatabaseTerm& it_term =
      terminology_->term((*configs)[0].term_for_keyword[1]);
  EXPECT_EQ(it_term.attribute, "Country");
  EXPECT_EQ(it_term.kind, TermKind::kDomain);
}

TEST_F(ConfigGenTest, SchemaKeywordMapsToSchemaTerm) {
  ConfigurationGenerator gen(*terminology_, db_->schema(), *weights_);
  auto configs = gen.Generate({"department", "EE"}, 5);
  ASSERT_TRUE(configs.ok());
  ASSERT_FALSE(configs->empty());
  const DatabaseTerm& t0 = terminology_->term((*configs)[0].term_for_keyword[0]);
  EXPECT_EQ(t0.relation, "DEPARTMENT");
}

TEST_F(ConfigGenTest, EmptyQueryRejected) {
  ConfigurationGenerator gen(*terminology_, db_->schema(), *weights_);
  EXPECT_EQ(gen.Generate({}, 5).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ConfigGenTest, KZeroYieldsEmpty) {
  ConfigurationGenerator gen(*terminology_, db_->schema(), *weights_);
  auto configs = gen.Generate({"Vokram"}, 0);
  ASSERT_TRUE(configs.ok());
  EXPECT_TRUE(configs->empty());
}

TEST_F(ConfigGenTest, IntrinsicModeSkipsContextualization) {
  ConfigGenOptions opts;
  opts.mode = ConfigGenMode::kIntrinsicOnly;
  ConfigurationGenerator gen(*terminology_, db_->schema(), *weights_, opts);
  auto configs = gen.Generate({"Vokram", "IT"}, 5);
  ASSERT_TRUE(configs.ok());
  EXPECT_FALSE(configs->empty());
}

TEST_F(ConfigGenTest, GreedyExtendedModeProducesResults) {
  ConfigGenOptions opts;
  opts.mode = ConfigGenMode::kGreedyExtended;
  ConfigurationGenerator gen(*terminology_, db_->schema(), *weights_, opts);
  auto configs = gen.Generate({"Vokram", "IT"}, 5);
  ASSERT_TRUE(configs.ok());
  ASSERT_FALSE(configs->empty());
  for (const Configuration& c : *configs) EXPECT_TRUE(c.IsInjective());
}

TEST_F(ConfigGenTest, ContextualizationImprovesCoherence) {
  // With contextualization, the top config for "Name Vokram" should place
  // both keywords in PEOPLE (attribute + its domain).
  ConfigurationGenerator gen(*terminology_, db_->schema(), *weights_);
  auto configs = gen.Generate({"Name", "Vokram"}, 3);
  ASSERT_TRUE(configs.ok());
  ASSERT_FALSE(configs->empty());
  const DatabaseTerm& t0 = terminology_->term((*configs)[0].term_for_keyword[0]);
  const DatabaseTerm& t1 = terminology_->term((*configs)[0].term_for_keyword[1]);
  EXPECT_EQ(t0.attribute, "Name");
  EXPECT_EQ(t1.ToString(), "Dom(PEOPLE.Name)");
}

TEST_F(ConfigGenTest, MoreKeywordsThanTermsRejected) {
  ConfigurationGenerator gen(*terminology_, db_->schema(), *weights_);
  std::vector<std::string> too_many(terminology_->size() + 1, "x");
  EXPECT_EQ(gen.Generate(too_many, 1).status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace km
