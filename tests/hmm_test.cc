// Tests for km_hmm: Viterbi decoding, List Viterbi, a-priori model
// construction, HITS initial distribution and training.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "datasets/university.h"
#include "hmm/hmm.h"
#include "hmm/model_builder.h"

namespace km {
namespace {

// A classic 2-state weather HMM used as a decoding ground truth.
//   states: 0 = Rainy, 1 = Sunny
Hmm WeatherHmm() {
  Matrix a(2, 2);
  a.At(0, 0) = 0.7;
  a.At(0, 1) = 0.3;
  a.At(1, 0) = 0.4;
  a.At(1, 1) = 0.6;
  return Hmm(std::move(a), {0.6, 0.4});
}

// Observations: walk, shop, clean with the textbook emissions.
Matrix WeatherEmissions(const std::vector<int>& obs) {
  // emission[state][symbol]: rainy {walk .1, shop .4, clean .5},
  //                          sunny {walk .6, shop .3, clean .1}
  const double e[2][3] = {{0.1, 0.4, 0.5}, {0.6, 0.3, 0.1}};
  Matrix m(obs.size(), 2);
  for (size_t t = 0; t < obs.size(); ++t) {
    m.At(t, 0) = e[0][obs[t]];
    m.At(t, 1) = e[1][obs[t]];
  }
  return m;
}

TEST(HmmTest, ViterbiTextbookExample) {
  Hmm hmm = WeatherHmm();
  // walk, shop, clean → the standard answer is Sunny, Rainy, Rainy.
  auto path = hmm.Viterbi(WeatherEmissions({0, 1, 2}));
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->states, (std::vector<size_t>{1, 0, 0}));
  EXPECT_NEAR(std::exp(path->log_prob), 0.01344, 1e-5);
}

TEST(HmmTest, ListViterbiOrderedAndDistinctPaths) {
  Hmm hmm = WeatherHmm();
  auto paths = hmm.ListViterbi(WeatherEmissions({0, 1, 2}), 8,
                               /*distinct_states=*/false);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 8u);  // 2^3 possible paths
  std::set<std::vector<size_t>> seen;
  double prev = 1e9;
  double total = 0;
  for (const HmmPath& p : *paths) {
    EXPECT_TRUE(seen.insert(p.states).second);
    EXPECT_LE(p.log_prob, prev + 1e-12);
    prev = p.log_prob;
    total += std::exp(p.log_prob);
  }
  // All paths together account for the full observation probability.
  EXPECT_NEAR(total, 0.0336 + 0.0, 0.15);  // loose: just a sanity bound
}

TEST(HmmTest, ListViterbiTopOneMatchesViterbi) {
  Hmm hmm = WeatherHmm();
  Matrix e = WeatherEmissions({2, 0, 1});
  auto best = hmm.Viterbi(e);
  auto list = hmm.ListViterbi(e, 3, /*distinct_states=*/false);
  ASSERT_TRUE(best.ok() && list.ok());
  ASSERT_FALSE(list->empty());
  EXPECT_EQ(best->states, (*list)[0].states);
  EXPECT_NEAR(best->log_prob, (*list)[0].log_prob, 1e-12);
}

TEST(HmmTest, DistinctStatesFiltersRevisits) {
  Hmm hmm = WeatherHmm();
  auto paths = hmm.ListViterbi(WeatherEmissions({0, 1}), 10,
                               /*distinct_states=*/true);
  ASSERT_TRUE(paths.ok());
  for (const HmmPath& p : *paths) {
    std::set<size_t> s(p.states.begin(), p.states.end());
    EXPECT_EQ(s.size(), p.states.size());
  }
  EXPECT_EQ(paths->size(), 2u);  // only (0,1) and (1,0) are injective
}

TEST(HmmTest, EmptyObservationRejected) {
  Hmm hmm = WeatherHmm();
  EXPECT_EQ(hmm.Viterbi(Matrix(0, 2)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HmmTest, WrongEmissionWidthRejected) {
  Hmm hmm = WeatherHmm();
  EXPECT_EQ(hmm.ListViterbi(Matrix(2, 3, 0.5), 2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HmmTest, ZeroEmissionStateIsUnreachable) {
  Hmm hmm = WeatherHmm();
  Matrix e(2, 2);
  e.At(0, 0) = 1.0;  // state 1 impossible at t=0
  e.At(1, 1) = 1.0;  // state 0 impossible at t=1
  auto paths = hmm.ListViterbi(e, 4, false);
  ASSERT_TRUE(paths.ok());
  ASSERT_EQ(paths->size(), 1u);
  EXPECT_EQ((*paths)[0].states, (std::vector<size_t>{0, 1}));
}

TEST(EmissionTest, RowsNormalizeToOne) {
  Matrix sim(2, 3);
  sim.At(0, 0) = 2;
  sim.At(0, 1) = 2;
  sim.At(1, 2) = 5;
  Matrix e = EmissionFromSimilarity(sim);
  EXPECT_DOUBLE_EQ(e.At(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(e.At(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(e.At(1, 2), 1.0);
}

// ----------------------------------------------------------- model builder

class HmmModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniversityOptions opts;
    opts.extra_people = 5;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    terminology_ = new Terminology(db_->schema());
  }
  static void TearDownTestSuite() {
    delete terminology_;
    delete db_;
  }
  static Database* db_;
  static Terminology* terminology_;
};

Database* HmmModelTest::db_ = nullptr;
Terminology* HmmModelTest::terminology_ = nullptr;

TEST_F(HmmModelTest, AprioriRowsAreStochastic) {
  Hmm hmm = BuildAprioriHmm(*terminology_, db_->schema());
  const Matrix& a = hmm.transition();
  for (size_t i = 0; i < a.rows(); ++i) {
    double sum = 0;
    for (size_t j = 0; j < a.cols(); ++j) sum += a.At(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(a.At(i, i), 0.0);  // no self transitions
  }
  double pi_sum = 0;
  for (double p : hmm.initial()) pi_sum += p;
  EXPECT_NEAR(pi_sum, 1.0, 1e-9);
}

TEST_F(HmmModelTest, AprioriHeuristicOrdering) {
  Hmm hmm = BuildAprioriHmm(*terminology_, db_->schema());
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  auto phone_attr = terminology_->AttributeTerm("PEOPLE", "Phone");
  auto aff_year = terminology_->DomainTerm("AFFILIATED", "Year");
  auto uni_city = terminology_->DomainTerm("UNIVERSITY", "City");
  const Matrix& a = hmm.transition();
  // attribute→own domain > same relation > FK adjacent > unrelated.
  EXPECT_GT(a.At(*name_attr, *name_dom), a.At(*name_attr, *phone_attr));
  EXPECT_GT(a.At(*name_attr, *phone_attr), a.At(*name_attr, *aff_year));
  EXPECT_GT(a.At(*name_attr, *aff_year), a.At(*name_attr, *uni_city));
}

TEST_F(HmmModelTest, UniformHmmIsUniform) {
  Hmm hmm = BuildUniformHmm(*terminology_);
  const Matrix& a = hmm.transition();
  double expected = 1.0 / static_cast<double>(terminology_->size() - 1);
  EXPECT_NEAR(a.At(0, 1), expected, 1e-12);
  EXPECT_DOUBLE_EQ(a.At(0, 0), 0.0);
}

TEST_F(HmmModelTest, TrainerLearnsObservedTransitions) {
  HmmTrainer trainer(*terminology_, db_->schema(), AprioriParams{},
                     /*prior_strength=*/1.0);
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto uni_city = terminology_->DomainTerm("UNIVERSITY", "City");
  // Feed many sequences with an "unusual" transition (unrelated tables).
  for (int i = 0; i < 50; ++i) trainer.AddSequence({*name_attr, *uni_city});
  EXPECT_EQ(trainer.sequence_count(), 50u);
  Hmm trained = trainer.Train();
  Hmm apriori = BuildAprioriHmm(*terminology_, db_->schema());
  EXPECT_GT(trained.transition().At(*name_attr, *uni_city),
            apriori.transition().At(*name_attr, *uni_city));
  // The trained initial distribution should favor the observed start state.
  EXPECT_GT(trained.initial()[*name_attr], apriori.initial()[*name_attr]);
}

TEST_F(HmmModelTest, TrainedRowsRemainStochastic) {
  HmmTrainer trainer(*terminology_, db_->schema());
  trainer.AddSequence({0, 1, 2});
  trainer.AddSequence({2, 1});
  Hmm trained = trainer.Train();
  const Matrix& a = trained.transition();
  for (size_t i = 0; i < a.rows(); ++i) {
    double sum = 0;
    for (size_t j = 0; j < a.cols(); ++j) sum += a.At(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST_F(HmmModelTest, SelfLabelledTrainingConsumesEmissions) {
  HmmTrainer trainer(*terminology_, db_->schema());
  Matrix emission(2, terminology_->size());
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  emission.At(0, *name_attr) = 1.0;
  emission.At(1, *name_dom) = 1.0;
  EXPECT_TRUE(trainer.AddSelfLabelled(emission));
  EXPECT_EQ(trainer.sequence_count(), 1u);
}

TEST_F(HmmModelTest, DecodingWithAprioriPrefersCoherentSequences) {
  Hmm hmm = BuildAprioriHmm(*terminology_, db_->schema());
  auto name_attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  auto uni_city_dom = terminology_->DomainTerm("UNIVERSITY", "City");
  // Keyword 0 clearly the Name attribute; keyword 1 equally plausible as
  // Dom(PEOPLE.Name) or Dom(UNIVERSITY.City) by emission alone — the
  // transition prior must break the tie toward the same relation.
  Matrix emission(2, terminology_->size());
  emission.At(0, *name_attr) = 1.0;
  emission.At(1, *name_dom) = 0.5;
  emission.At(1, *uni_city_dom) = 0.5;
  auto path = hmm.Viterbi(emission);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->states[1], *name_dom);
}


TEST(HmmTest, KLargerThanPathCountReturnsAll) {
  Hmm hmm = WeatherHmm();
  auto paths = hmm.ListViterbi(WeatherEmissions({0}), 50, false);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 2u);  // only two states exist at T=1
}

TEST(HmmTest, KZeroReturnsEmpty) {
  Hmm hmm = WeatherHmm();
  auto paths = hmm.ListViterbi(WeatherEmissions({0, 1}), 0, false);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths->empty());
}

TEST(HmmTest, AllZeroEmissionYieldsNoPaths) {
  Hmm hmm = WeatherHmm();
  Matrix e(2, 2, 0.0);
  auto paths = hmm.ListViterbi(e, 3, false);
  ASSERT_TRUE(paths.ok());
  EXPECT_TRUE(paths->empty());
}

TEST_F(HmmModelTest, TwoHopTierSitsBetweenAdjacentAndUnrelated) {
  Hmm hmm = BuildAprioriHmm(*terminology_, db_->schema());
  const Matrix& a = hmm.transition();
  auto people_name = terminology_->DomainTerm("PEOPLE", "Name");
  auto aff_year = terminology_->DomainTerm("AFFILIATED", "Year");      // 1 hop
  auto uni_city = terminology_->DomainTerm("UNIVERSITY", "City");      // 2 hops
  // PEOPLE—AFFILIATED direct; PEOPLE—UNIVERSITY via DEPARTMENT (2 hops).
  EXPECT_GT(a.At(*people_name, *aff_year), a.At(*people_name, *uni_city));
  EXPECT_GT(a.At(*people_name, *uni_city), 0.0);
}

TEST_F(HmmModelTest, InitialDistributionIsSmoothedMixture) {
  Hmm hmm = BuildAprioriHmm(*terminology_, db_->schema());
  // No state's prior may be zero: the uniform mixture guarantees a floor.
  AprioriParams defaults;
  double uniform_part =
      (1.0 - defaults.hits_mixture) / static_cast<double>(terminology_->size());
  for (double p : hmm.initial()) EXPECT_GE(p, uniform_part - 1e-12);
}

}  // namespace
}  // namespace km
