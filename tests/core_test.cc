// End-to-end tests for km_core: the KeymanticEngine pipeline and the SQL
// translation (Definition 3.1).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "core/feedback.h"
#include "core/keymantic.h"
#include "core/translate.h"
#include "datasets/university.h"
#include "engine/executor.h"

namespace km {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniversityOptions opts;
    opts.extra_people = 20;
    opts.extra_departments = 3;
    opts.extra_universities = 2;
    opts.extra_projects = 3;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    engine_ = new KeymanticEngine(*db_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
  }
  static Database* db_;
  static KeymanticEngine* engine_;
};

Database* CoreTest::db_ = nullptr;
KeymanticEngine* CoreTest::engine_ = nullptr;

// --------------------------------------------------------------- Search

TEST_F(CoreTest, RunningExampleTopExplanation) {
  auto results = engine_->Search("Vokram IT", 5);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  const Explanation& top = (*results)[0];
  // Vokram must be a PEOPLE.Name predicate; IT a country predicate.
  bool has_name_pred = false, has_country_pred = false;
  for (const Predicate& p : top.sql.predicates) {
    if (p.attr.attribute == "Name" && p.value == Value::Text("Vokram")) {
      has_name_pred = true;
    }
    if (p.attr.attribute == "Country" && p.value == Value::Text("IT")) {
      has_country_pred = true;
    }
  }
  EXPECT_TRUE(has_name_pred) << top.sql.ToSql();
  EXPECT_TRUE(has_country_pred) << top.sql.ToSql();
}

TEST_F(CoreTest, ResultsAreRankedAndDeduplicated) {
  auto results = engine_->Search("Vokram IT", 10);
  ASSERT_TRUE(results.ok());
  std::set<std::string> sigs;
  for (size_t i = 0; i < results->size(); ++i) {
    EXPECT_TRUE(sigs.insert((*results)[i].sql.CanonicalSignature()).second);
    if (i > 0) {
      EXPECT_GE((*results)[i - 1].score + 1e-12, (*results)[i].score);
    }
  }
}

TEST_F(CoreTest, AllExplanationsAreExecutable) {
  auto results = engine_->Search("Reniets EE 2012", 8);
  ASSERT_TRUE(results.ok());
  Executor exec(*db_);
  for (const Explanation& ex : *results) {
    auto rs = exec.Execute(ex.sql);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString() << "\n" << ex.sql.ToSql();
  }
}

TEST_F(CoreTest, SingleKeywordQueries) {
  auto results = engine_->Search("Vokram", 3);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  const Explanation& top = (*results)[0];
  EXPECT_EQ(top.sql.relations.size(), 1u);
  EXPECT_EQ(top.sql.relations[0], "PEOPLE");
}

TEST_F(CoreTest, EmptyQueryRejected) {
  EXPECT_EQ(engine_->Search("", 5).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine_->Search("   ", 5).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CoreTest, MultiWordValueFoldsViaPhraseVocabulary) {
  // "Search it!" is a PROJECT.Name value containing a space; the engine's
  // tokenizer learned it from the instance.
  std::vector<std::string> keywords =
      Tokenize("Search it!", engine_->tokenizer_options());
  ASSERT_EQ(keywords.size(), 1u);
  EXPECT_EQ(km::ToLower(keywords[0]), "search it");
}

TEST_F(CoreTest, SearchKeywordsMatchesSearch) {
  auto a = engine_->Search("Vokram IT", 3);
  auto b = engine_->SearchKeywords({"Vokram", "IT"}, 3);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].sql.CanonicalSignature(), (*b)[i].sql.CanonicalSignature());
  }
}

TEST_F(CoreTest, ScoresAreNormalizedComponents) {
  auto results = engine_->Search("Vokram IT", 5);
  ASSERT_TRUE(results.ok());
  for (const Explanation& ex : *results) {
    EXPECT_GE(ex.forward_score, 0.0);
    EXPECT_LE(ex.forward_score, 1.0);
    EXPECT_GE(ex.backward_score, 0.0);
    EXPECT_LE(ex.backward_score, 1.0);
    EXPECT_GE(ex.score, 0.0);
  }
}

// -------------------------------------------------------- Forward modes

TEST_F(CoreTest, HmmAprioriModeWorks) {
  EngineOptions opts;
  opts.forward_mode = ForwardMode::kHmmApriori;
  KeymanticEngine hmm_engine(*db_, opts);
  auto results = hmm_engine.Search("Vokram IT", 5);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

TEST_F(CoreTest, CombinedDstModeWorks) {
  EngineOptions opts;
  opts.forward_mode = ForwardMode::kCombinedDst;
  KeymanticEngine comb_engine(*db_, opts);
  auto results = comb_engine.Search("Vokram IT", 5);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

TEST_F(CoreTest, TrainedModeFallsBackToApriori) {
  EngineOptions opts;
  opts.forward_mode = ForwardMode::kHmmTrained;
  KeymanticEngine e(*db_, opts);  // no trained model installed
  auto results = e.Search("Vokram", 3);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results->empty());
}

// -------------------------------------------------------- Combine modes

TEST_F(CoreTest, CombineModesAllProduceResults) {
  for (CombineMode mode : {CombineMode::kDst, CombineMode::kLinear,
                           CombineMode::kForwardOnly, CombineMode::kBackwardOnly}) {
    EngineOptions opts;
    opts.combine_mode = mode;
    KeymanticEngine e(*db_, opts);
    auto results = e.Search("Vokram IT", 3);
    ASSERT_TRUE(results.ok()) << static_cast<int>(mode);
    EXPECT_FALSE(results->empty()) << static_cast<int>(mode);
  }
}

TEST_F(CoreTest, BackwardOnlyPrefersShorterTrees) {
  EngineOptions opts;
  opts.combine_mode = CombineMode::kBackwardOnly;
  KeymanticEngine e(*db_, opts);
  auto results = e.Search("Vokram IT", 10);
  ASSERT_TRUE(results.ok());
  ASSERT_GT(results->size(), 1u);
  for (size_t i = 1; i < results->size(); ++i) {
    EXPECT_LE((*results)[i - 1].interpretation.cost,
              (*results)[i].interpretation.cost + 1e-9);
  }
}

// -------------------------------------------------------- Deep-web mode

TEST_F(CoreTest, MetadataOnlyModeStillAnswers) {
  EngineOptions opts;
  opts.weights.use_instance_vocabulary = false;
  opts.use_mi_weights = false;
  opts.build_phrase_vocabulary = false;
  KeymanticEngine deep_web(*db_, opts);
  auto results = deep_web.Search("Vokram IT", 5);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  // The shape recognizers alone should still put IT on a country column
  // somewhere in the top-5.
  bool country_found = false;
  for (const Explanation& ex : *results) {
    for (const Predicate& p : ex.sql.predicates) {
      if (p.attr.attribute == "Country") country_found = true;
    }
  }
  EXPECT_TRUE(country_found);
}

// ------------------------------------------------------------- Translate

TEST_F(CoreTest, TranslateRunningExampleConfigurationA1) {
  // Configuration A: Vokram→Dom(PEOPLE.Name), IT→Dom(UNIVERSITY.Country);
  // interpretation [A.1] connects them through DEPARTMENT (director).
  const Terminology& t = engine_->terminology();
  Configuration config;
  config.term_for_keyword = {*t.DomainTerm("PEOPLE", "Name"),
                             *t.DomainTerm("UNIVERSITY", "Country")};
  auto interps = engine_->Interpretations(config, 5);
  ASSERT_TRUE(interps.ok());
  ASSERT_FALSE(interps->empty());
  // Find an interpretation that uses DEPARTMENT.
  const Interpretation* dep_interp = nullptr;
  for (const Interpretation& i : *interps) {
    for (size_t n : i.nodes) {
      if (t.term(n).relation == "DEPARTMENT") {
        dep_interp = &i;
        break;
      }
    }
    if (dep_interp != nullptr) break;
  }
  ASSERT_NE(dep_interp, nullptr);
  auto sql = engine_->Translate({"Vokram", "IT"}, config, *dep_interp);
  ASSERT_TRUE(sql.ok());
  // FROM must contain PEOPLE, DEPARTMENT, UNIVERSITY.
  for (const char* rel : {"PEOPLE", "DEPARTMENT", "UNIVERSITY"}) {
    EXPECT_NE(std::find(sql->relations.begin(), sql->relations.end(), rel),
              sql->relations.end());
  }
  // WHERE must bind both keywords.
  EXPECT_EQ(sql->predicates.size(), 2u);
  // It must be executable.
  Executor exec(*db_);
  EXPECT_TRUE(exec.Execute(*sql).ok());
}

TEST_F(CoreTest, TranslateAddsJoinPerFkEdge) {
  const Terminology& t = engine_->terminology();
  Configuration config;
  config.term_for_keyword = {*t.DomainTerm("PEOPLE", "Name"),
                             *t.DomainTerm("PROJECT", "Name")};
  auto interps = engine_->Interpretations(config, 1);
  ASSERT_TRUE(interps.ok());
  ASSERT_FALSE(interps->empty());
  auto sql = engine_->Translate({"Vokram", "Search it!"}, config, (*interps)[0]);
  ASSERT_TRUE(sql.ok());
  size_t fk_edges = 0;
  for (size_t e : (*interps)[0].edges) {
    if (engine_->graph().edges()[e].kind == EdgeKind::kForeignKey) ++fk_edges;
  }
  EXPECT_EQ(sql->joins.size(), fk_edges);
  EXPECT_GE(fk_edges, 2u);  // PEOPLE–MEMBEROF–PROJECT at least
}

TEST_F(CoreTest, TranslateRejectsArityMismatch) {
  Configuration config;
  config.term_for_keyword = {0, 1};
  Interpretation interp;
  interp.nodes = {0};
  EXPECT_EQ(engine_->Translate({"one"}, config, interp).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CoreTest, RelationKeywordSelectsItsAttributes) {
  const Terminology& t = engine_->terminology();
  Configuration config;
  config.term_for_keyword = {*t.RelationTerm("PEOPLE"),
                             *t.DomainTerm("PEOPLE", "Country")};
  auto interps = engine_->Interpretations(config, 1);
  ASSERT_TRUE(interps.ok());
  ASSERT_FALSE(interps->empty());
  auto sql = engine_->Translate({"people", "IT"}, config, (*interps)[0]);
  ASSERT_TRUE(sql.ok());
  // The relation term PEOPLE is in the tree → its attributes are selected.
  EXPECT_FALSE(sql->select.empty());
  for (const AttributeRef& a : sql->select) EXPECT_EQ(a.relation, "PEOPLE");
}

TEST_F(CoreTest, ExplanationToStringMentionsSqlAndScores) {
  auto results = engine_->Search("Vokram IT", 1);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  std::string s =
      (*results)[0].ToString({"Vokram", "IT"}, engine_->terminology());
  EXPECT_NE(s.find("SELECT"), std::string::npos);
  EXPECT_NE(s.find("configuration:"), std::string::npos);
  EXPECT_NE(s.find("score="), std::string::npos);
}

// ---------------------------------------------------------- Other paths

TEST_F(CoreTest, PenalizeEmptyResultsDowngradesEmptySql) {
  EngineOptions opts;
  opts.penalize_empty_results = true;
  KeymanticEngine e(*db_, opts);
  // "Vokram" is from the US in the figure data; "Vokram IT" explanations
  // over PEOPLE alone return zero tuples and should sink.
  auto results = e.Search("Vokram US", 5);
  ASSERT_TRUE(results.ok());
  ASSERT_FALSE(results->empty());
  Executor exec(*db_);
  auto top_count = exec.Count((*results)[0].sql);
  ASSERT_TRUE(top_count.ok());
  EXPECT_GT(*top_count, 0u);
}

TEST_F(CoreTest, ConfigurationsEndpointExposesForwardStep) {
  auto configs = engine_->Configurations({"Vokram", "IT"}, 5);
  ASSERT_TRUE(configs.ok());
  ASSERT_FALSE(configs->empty());
  for (const Configuration& c : *configs) {
    EXPECT_TRUE(c.IsInjective());
    EXPECT_EQ(c.term_for_keyword.size(), 2u);
  }
}



TEST_F(CoreTest, SummaryBackwardModeAnswersEquivalently) {
  EngineOptions opts;
  opts.backward_mode = BackwardMode::kSummary;
  KeymanticEngine summary_engine(*db_, opts);
  auto full = engine_->Search("Vokram IT", 3);
  auto condensed = summary_engine.Search("Vokram IT", 3);
  ASSERT_TRUE(full.ok() && condensed.ok());
  ASSERT_FALSE(condensed->empty());
  // The top answer must agree between the two backward modes.
  EXPECT_EQ((*full)[0].sql.CanonicalSignature(),
            (*condensed)[0].sql.CanonicalSignature());
  // And every summary-mode explanation must be executable.
  Executor exec(*db_);
  for (const Explanation& ex : *condensed) {
    EXPECT_TRUE(exec.Execute(ex.sql).ok()) << ex.sql.ToSql();
  }
}


TEST_F(CoreTest, ExplainKeywordRanksAndLimits) {
  auto matches = engine_->ExplainKeyword("Vokram", 5);
  ASSERT_FALSE(matches.empty());
  EXPECT_LE(matches.size(), 5u);
  // Best match must be the actual home of the value.
  EXPECT_EQ(engine_->terminology().term(matches[0].term_index).ToString(),
            "Dom(PEOPLE.Name)");
  for (size_t i = 1; i < matches.size(); ++i) {
    EXPECT_GE(matches[i - 1].weight + 1e-12, matches[i].weight);
  }
  for (const auto& m : matches) EXPECT_GT(m.weight, 0.0);
}

TEST_F(CoreTest, ExplainKeywordSchemaWord) {
  auto matches = engine_->ExplainKeyword("people", 3);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(engine_->terminology().term(matches[0].term_index).ToString(), "PEOPLE");
}

// ------------------------------------------------------------- Feedback

TEST_F(CoreTest, FeedbackConfidenceGrowsAndSaturates) {
  Terminology terminology(db_->schema());
  FeedbackManager fm(terminology, db_->schema());
  double start = fm.ConfidenceFeedback();
  Configuration c;
  c.term_for_keyword = {*terminology.DomainTerm("PEOPLE", "Name")};
  for (int i = 0; i < 100; ++i) fm.Accept(c);
  double grown = fm.ConfidenceFeedback();
  EXPECT_GT(grown, start);
  FeedbackOptions defaults;
  EXPECT_LE(grown, defaults.max_confidence + 1e-12);
  EXPECT_NEAR(fm.ConfidenceApriori(), 1.0 - grown, 1e-12);
}

TEST_F(CoreTest, FeedbackRejectionsLowerConfidence) {
  Terminology terminology(db_->schema());
  FeedbackManager fm(terminology, db_->schema());
  Configuration c;
  c.term_for_keyword = {*terminology.DomainTerm("PEOPLE", "Name")};
  for (int i = 0; i < 20; ++i) fm.Accept(c);
  double before = fm.ConfidenceFeedback();
  fm.Reject();
  fm.Reject();
  EXPECT_LT(fm.ConfidenceFeedback(), before);
  EXPECT_EQ(fm.rejected(), 2u);
}

TEST_F(CoreTest, FeedbackConfigureSwitchesModeAtThreshold) {
  Terminology terminology(db_->schema());
  FeedbackOptions fopts;
  fopts.combination_threshold = 3;
  FeedbackManager fm(terminology, db_->schema(), fopts);
  EngineOptions opts;
  fm.Configure(&opts);
  EXPECT_EQ(opts.forward_mode, ForwardMode::kHungarian);  // cold start
  Configuration c;
  c.term_for_keyword = {*terminology.DomainTerm("PEOPLE", "Name")};
  for (int i = 0; i < 3; ++i) fm.Accept(c);
  fm.Configure(&opts);
  EXPECT_EQ(opts.forward_mode, ForwardMode::kCombinedDst);
  EXPECT_NEAR(opts.conf_hmm + opts.conf_hungarian, 1.0, 1e-12);
}

TEST_F(CoreTest, FeedbackTrainedModelImprovesDecodingOfSeenPattern) {
  // Teach the trainer an unusual mapping repeatedly; the trained HMM must
  // assign it a higher probability than the untrained a-priori model.
  Terminology terminology(db_->schema());
  FeedbackManager fm(terminology, db_->schema());
  size_t name_attr = *terminology.AttributeTerm("PEOPLE", "Name");
  size_t uni_city = *terminology.DomainTerm("UNIVERSITY", "City");
  Configuration c;
  c.term_for_keyword = {name_attr, uni_city};
  for (int i = 0; i < 50; ++i) fm.Accept(c);
  Hmm trained = fm.TrainedModel();
  Hmm apriori = BuildAprioriHmm(terminology, db_->schema());
  EXPECT_GT(trained.transition().At(name_attr, uni_city),
            apriori.transition().At(name_attr, uni_city));
}

}  // namespace
}  // namespace km
