// Hostile-input fuzz harness for the wire protocol (mirror of
// snapshot_corruption_test.cc): hundreds of random bit-flips, truncations,
// oversized length prefixes, and pure-garbage streams, each pushed through
// the incremental FrameDecoder — and a bounded round through a live
// socketpair server. The contract under test: every input yields complete
// frames, a typed kProtocolError, or "need more bytes" — never a crash,
// never an abort, never unbounded allocation (buffered bytes stay bounded
// by what was fed, and a hostile length prefix is rejected from its four
// bytes alone). The CI asan job runs this suite at full depth.
//
// Iteration count: 500 by default; KM_NET_FUZZ_ITERS overrides it. Fixed
// mt19937 seeds, so any failure reproduces exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/keymantic.h"
#include "datasets/university.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net_harness.h"
#include "serve/tenant.h"

namespace km::net {
namespace {

// Every fuzz case must give back each fd it opened.
FdCensusRegistrar fd_census_registrar;

size_t FuzzIterations() {
  const char* env = std::getenv("KM_NET_FUZZ_ITERS");
  if (env != nullptr) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 500;
}

/// A representative multi-frame stream exercising every catalog tag.
std::string BaseStream() {
  std::string wire;
  wire += EncodeFrame(MakeFrame("HELO", 1, EncodeHello("tenant-a")));
  wire += EncodeFrame(
      MakeFrame("QURY", 2, EncodeQueryRequest({5, 250.0, "professor dept"})));
  AnswerReply reply;
  reply.quality = 1;
  reply.answers.push_back({0.9, "SELECT x FROM y"});
  reply.answers.push_back({0.4, "SELECT a FROM b, c"});
  wire += EncodeFrame(MakeFrame("RESP", 2, EncodeAnswerReply(reply)));
  wire += EncodeFrame(
      MakeFrame("RTRY", 3, EncodeErrorReply({11, 100.0, "queue full"})));
  wire += EncodeFrame(
      MakeFrame("ERRR", 4, EncodeErrorReply({1, 0.0, "bad query"})));
  wire += EncodeFrame(MakeFrame("GBYE", 5, std::string()));
  return wire;
}

/// Feeds `bytes` to a fresh decoder in random-sized chunks, draining
/// frames as they complete. Asserts the full contract along the way:
/// outcomes are frames / need-more / typed kProtocolError, errors are
/// sticky, and buffering never exceeds what was fed. Payloads of decoded
/// frames are pushed through their codecs, which must also return cleanly.
void DriveDecoder(const std::string& bytes, std::mt19937& rng,
                  const std::string& what) {
  FrameDecoder decoder;
  std::uniform_int_distribution<size_t> chunk_dist(1, 97);
  size_t fed = 0;
  bool failed = false;
  while (fed < bytes.size() && !failed) {
    const size_t n = std::min(chunk_dist(rng), bytes.size() - fed);
    const Status fed_status = decoder.Feed(bytes.data() + fed, n);
    fed += n;
    ASSERT_LE(decoder.buffered(), fed) << what;
    if (!fed_status.ok()) {
      ASSERT_EQ(fed_status.code(), StatusCode::kProtocolError)
          << what << ": untyped error " << fed_status.ToString();
      failed = true;
      break;
    }
    while (true) {
      Frame frame;
      StatusOr<bool> got = decoder.Next(&frame);
      if (!got.ok()) {
        ASSERT_EQ(got.status().code(), StatusCode::kProtocolError)
            << what << ": untyped error " << got.status().ToString();
        failed = true;
        break;
      }
      if (!*got) break;
      // A structurally valid frame may still carry a mangled payload; the
      // codecs must fail typed, never crash or over-read.
      if (FrameIs(frame, "HELO")) {
        auto decoded = DecodeHello(frame.payload);
        if (!decoded.ok()) {
          EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
        }
      } else if (FrameIs(frame, "QURY")) {
        auto decoded = DecodeQueryRequest(frame.payload);
        if (!decoded.ok()) {
          EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
        }
      } else if (FrameIs(frame, "RESP")) {
        auto decoded = DecodeAnswerReply(frame.payload);
        if (!decoded.ok()) {
          EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
        }
      } else if (FrameIs(frame, "ERRR") || FrameIs(frame, "RTRY")) {
        auto decoded = DecodeErrorReply(frame.payload);
        if (!decoded.ok()) {
          EXPECT_EQ(decoded.status().code(), StatusCode::kProtocolError);
        }
      }
    }
  }
  if (failed) {
    // Sticky: once the stream is condemned, it stays condemned and the
    // decoder buffers nothing further.
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame).status().code(),
              StatusCode::kProtocolError)
        << what;
    EXPECT_EQ(decoder.Feed("x", 1).code(), StatusCode::kProtocolError)
        << what;
    EXPECT_EQ(decoder.buffered(), 0u) << what;
  }
}

TEST(NetFuzzTest, RandomBitFlipsNeverCrashTheDecoder) {
  const std::string base = BaseStream();
  std::mt19937 rng(0xf1a9f00du);
  std::uniform_int_distribution<size_t> offset_dist(0, base.size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);
  const size_t iterations = FuzzIterations();
  for (size_t i = 0; i < iterations; ++i) {
    const size_t offset = offset_dist(rng);
    const int bit = bit_dist(rng);
    std::string corrupt = base;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ (1 << bit));
    DriveDecoder(corrupt, rng,
                 "iter " + std::to_string(i) + ": flip bit " +
                     std::to_string(bit) + " at offset " +
                     std::to_string(offset));
  }
}

TEST(NetFuzzTest, RandomTruncationsLeaveTheDecoderWaitingOrFailedTyped) {
  const std::string base = BaseStream();
  std::mt19937 rng(0x7bacca7eu);
  std::uniform_int_distribution<size_t> length_dist(0, base.size() - 1);
  const size_t iterations = FuzzIterations();
  for (size_t i = 0; i < iterations; ++i) {
    const size_t length = length_dist(rng);
    DriveDecoder(base.substr(0, length), rng,
                 "iter " + std::to_string(i) + ": truncate to " +
                     std::to_string(length) + " bytes");
  }
}

TEST(NetFuzzTest, OversizedLengthPrefixesAreRejectedWithoutAllocation) {
  std::mt19937 rng(0xb16b00b5u);
  const uint32_t cap =
      static_cast<uint32_t>(kFrameFixedBodyBytes + kDefaultMaxFramePayload);
  std::uniform_int_distribution<uint32_t> len_dist(cap + 1, 0xffffffffu);
  const size_t iterations = FuzzIterations();
  for (size_t i = 0; i < iterations; ++i) {
    const uint32_t body_len = len_dist(rng);
    char prefix[4] = {static_cast<char>(body_len & 0xff),
                      static_cast<char>((body_len >> 8) & 0xff),
                      static_cast<char>((body_len >> 16) & 0xff),
                      static_cast<char>((body_len >> 24) & 0xff)};
    FrameDecoder decoder;
    EXPECT_EQ(decoder.Feed(prefix, sizeof(prefix)).code(),
              StatusCode::kProtocolError)
        << "iter " << i << ": body_len " << body_len;
    EXPECT_EQ(decoder.buffered(), 0u)
        << "iter " << i << ": hostile length must never be buffered";
  }
}

TEST(NetFuzzTest, RandomGarbageStreamsNeverCrash) {
  std::mt19937 rng(0xdeadbea7u);
  std::uniform_int_distribution<size_t> length_dist(0, 4096);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  // Bounded: garbage mostly dies on the first header; a smaller round
  // still proves the path never crashes or over-buffers.
  const size_t iterations = FuzzIterations() / 5;
  for (size_t i = 0; i < iterations; ++i) {
    std::string garbage(length_dist(rng), '\0');
    for (char& c : garbage) c = static_cast<char>(byte_dist(rng));
    DriveDecoder(garbage, rng,
                 "iter " + std::to_string(i) + ": garbage of " +
                     std::to_string(garbage.size()) + " bytes");
  }
}

// A live server must convert hostile streams into a best-effort ERRR and
// a clean disconnect — the loop thread survives to serve the next
// connection. Bounded (engine-backed), but every connection is hostile.
TEST(NetFuzzTest, LiveServerSurvivesGarbageConnections) {
  auto db = BuildUniversityDatabase();
  ASSERT_TRUE(db.ok());
  auto engine = std::make_shared<KeymanticEngine>(*db);
  TenantRegistry tenants;
  ASSERT_TRUE(tenants.AddTenant("uni", engine).ok());
  NetHarness harness(tenants);

  std::mt19937 rng(0x0ddba11u);
  std::uniform_int_distribution<size_t> length_dist(1, 512);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const size_t connections = std::max<size_t>(8, FuzzIterations() / 25);
  for (size_t i = 0; i < connections; ++i) {
    auto client = harness.NewClient();
    std::string garbage(length_dist(rng), '\0');
    for (char& c : garbage) c = static_cast<char>(byte_dist(rng));
    ASSERT_TRUE(client->SendBytes(garbage.data(), garbage.size()).ok());
    // Outcome: an ERRR frame then EOF, a bare EOF, or — when the garbage
    // happens to be a valid partial frame — a quiet server awaiting more
    // bytes. All are in contract; crashing or wedging the loop is not.
    auto frame = client->ReadFrame(500);
    if (frame.ok()) {
      EXPECT_TRUE(FrameIs(*frame, "ERRR")) << "conn " << i;
      auto eof = client->ReadFrame(2000);
      EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable)
          << "conn " << i;
    }
  }
  // The loop is still alive and serves a well-formed connection.
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  auto reply = client->Ask(1, "Vokram IT", 3, 0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->answers.empty());
}

}  // namespace
}  // namespace km::net
