// Tests for km_datasets: the three databases plus the scaling generator.

#include <gtest/gtest.h>

#include "datasets/dblp.h"
#include "datasets/imdb.h"
#include "datasets/mondial.h"
#include "datasets/namepools.h"
#include "datasets/scaling.h"
#include "datasets/university.h"

namespace km {
namespace {

// ------------------------------------------------------------ namepools

TEST(NamePoolsTest, PoolsAreNonTrivial) {
  EXPECT_GE(Countries().size(), 50u);
  EXPECT_GE(FirstNames().size(), 60u);
  EXPECT_GE(LastNames().size(), 100u);
  EXPECT_GE(RealCities().size(), 60u);
  EXPECT_GE(ConferenceAcronyms().size(), 15u);
}

TEST(NamePoolsTest, CountryCodesAreTwoLetters) {
  for (const CountryInfo& c : Countries()) {
    EXPECT_EQ(std::string(c.code).size(), 2u) << c.name;
  }
}

TEST(NamePoolsTest, GeneratorsAreDeterministic) {
  Rng a(5), b(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(MakePersonName(&a), MakePersonName(&b));
    EXPECT_EQ(MakePlaceName(&a), MakePlaceName(&b));
    EXPECT_EQ(MakePaperTitle(&a), MakePaperTitle(&b));
  }
}

TEST(NamePoolsTest, PhoneIsSevenDigits) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    std::string p = MakePhone(&rng);
    EXPECT_EQ(p.size(), 7u);
    for (char c : p) EXPECT_TRUE(isdigit(static_cast<unsigned char>(c)));
  }
}

TEST(NamePoolsTest, EmailLooksValid) {
  Rng rng(2);
  std::string e = MakeEmail("Ann Lee", &rng);
  EXPECT_NE(e.find('@'), std::string::npos);
  EXPECT_EQ(e.find(' '), std::string::npos);
}

// ----------------------------------------------------------- university

TEST(UniversityTest, ContainsFigureTuples) {
  auto db = BuildUniversityDatabase();
  ASSERT_TRUE(db.ok());
  const Table* people = db->FindTable("PEOPLE");
  ASSERT_NE(people, nullptr);
  EXPECT_TRUE(people->LookupByKey(Value::Text("p1")).has_value());
  EXPECT_TRUE(people->ContainsValue(1, Value::Text("Vokram")));
  const Table* uni = db->FindTable("UNIVERSITY");
  EXPECT_TRUE(uni->LookupByKey(Value::Text("MIT")).has_value());
  EXPECT_TRUE(uni->LookupByKey(Value::Text("UTN")).has_value());
  const Table* dept = db->FindTable("DEPARTMENT");
  EXPECT_TRUE(dept->LookupByKey(Value::Text("x123")).has_value());
}

TEST(UniversityTest, IntegrityHolds) {
  auto db = BuildUniversityDatabase();
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->CheckIntegrity().ok());
}

TEST(UniversityTest, SevenRelationsEightForeignKeys) {
  auto db = BuildUniversityDatabase();
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->schema().relations().size(), 7u);
  EXPECT_EQ(db->schema().foreign_keys().size(), 8u);
}

TEST(UniversityTest, ScalingKnobsGrowTheInstance) {
  UniversityOptions small;
  small.extra_people = 0;
  small.extra_departments = 0;
  small.extra_universities = 0;
  small.extra_projects = 0;
  UniversityOptions large;
  large.extra_people = 100;
  auto s = BuildUniversityDatabase(small);
  auto l = BuildUniversityDatabase(large);
  ASSERT_TRUE(s.ok() && l.ok());
  EXPECT_GT(l->TotalRows(), s->TotalRows() + 100);
}

TEST(UniversityTest, DeterministicForSameSeed) {
  auto a = BuildUniversityDatabase();
  auto b = BuildUniversityDatabase();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->TotalRows(), b->TotalRows());
  const Table* ta = a->FindTable("PEOPLE");
  const Table* tb = b->FindTable("PEOPLE");
  ASSERT_EQ(ta->size(), tb->size());
  for (size_t i = 0; i < ta->size(); ++i) EXPECT_EQ(ta->rows()[i], tb->rows()[i]);
}

// -------------------------------------------------------------- mondial

class MondialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = BuildMondialDatabase();
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
  }
  static void TearDownTestSuite() { delete db_; }
  static Database* db_;
};

Database* MondialTest::db_ = nullptr;

TEST_F(MondialTest, HasComplexSchema) {
  EXPECT_GE(db_->schema().relations().size(), 20u);
  EXPECT_GE(db_->schema().foreign_keys().size(), 25u);
}

TEST_F(MondialTest, IntegrityHolds) { EXPECT_TRUE(db_->CheckIntegrity().ok()); }

TEST_F(MondialTest, CountriesUseRealCodes) {
  const Table* country = db_->FindTable("COUNTRY");
  ASSERT_NE(country, nullptr);
  EXPECT_EQ(country->size(), Countries().size());
  EXPECT_TRUE(country->LookupByKey(Value::Text("IT")).has_value());
  EXPECT_TRUE(country->LookupByKey(Value::Text("US")).has_value());
}

TEST_F(MondialTest, CitiesPopulated) {
  const Table* city = db_->FindTable("CITY");
  ASSERT_NE(city, nullptr);
  EXPECT_GT(city->size(), 100u);
}

TEST_F(MondialTest, BordersStayWithinContinent) {
  // Construction property: borders only between same-continent countries.
  const Table* borders = db_->FindTable("BORDERS");
  ASSERT_NE(borders, nullptr);
  EXPECT_GT(borders->size(), 10u);
}

// ----------------------------------------------------------------- dblp

class DblpTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DblpOptions opts;
    opts.persons = 300;
    opts.articles = 400;
    opts.inproceedings = 500;
    opts.phd_theses = 30;
    auto db = BuildDblpDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
  }
  static void TearDownTestSuite() { delete db_; }
  static Database* db_;
};

Database* DblpTest::db_ = nullptr;

TEST_F(DblpTest, HasFlatSchema) {
  EXPECT_EQ(db_->schema().relations().size(), 13u);
  EXPECT_GE(db_->schema().foreign_keys().size(), 13u);
}

TEST_F(DblpTest, IntegrityHolds) { EXPECT_TRUE(db_->CheckIntegrity().ok()); }

TEST_F(DblpTest, SizesMatchOptions) {
  EXPECT_EQ(db_->FindTable("PERSON")->size(), 300u);
  EXPECT_EQ(db_->FindTable("ARTICLE")->size(), 400u);
  EXPECT_EQ(db_->FindTable("INPROCEEDINGS")->size(), 500u);
}

TEST_F(DblpTest, EveryPaperHasAnAuthor) {
  const Table* aa = db_->FindTable("AUTHOR_ARTICLE");
  const Table* ai = db_->FindTable("AUTHOR_INPROCEEDINGS");
  EXPECT_GE(aa->size(), db_->FindTable("ARTICLE")->size());
  EXPECT_GE(ai->size(), db_->FindTable("INPROCEEDINGS")->size());
}

TEST_F(DblpTest, InproceedingsYearMatchesProceedings) {
  const Table* inp = db_->FindTable("INPROCEEDINGS");
  const Table* proc = db_->FindTable("PROCEEDINGS");
  auto proc_col = inp->schema().AttributeIndex("Proceedings");
  auto year_col = inp->schema().AttributeIndex("Year");
  auto pyear_col = proc->schema().AttributeIndex("Year");
  ASSERT_TRUE(proc_col && year_col && pyear_col);
  for (size_t i = 0; i < std::min<size_t>(inp->size(), 100); ++i) {
    const Row& row = inp->rows()[i];
    auto p = proc->LookupByKey(row[*proc_col]);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(row[*year_col], proc->rows()[*p][*pyear_col]);
  }
}

TEST_F(DblpTest, PersonNamesAreUnique) {
  const Table* person = db_->FindTable("PERSON");
  auto name_col = person->schema().AttributeIndex("Name");
  ASSERT_TRUE(name_col.has_value());
  EXPECT_EQ(person->DistinctValues(*name_col).size(), person->size());
}


// ----------------------------------------------------------------- imdb

class ImdbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ImdbOptions opts;
    opts.movies = 200;
    opts.persons = 300;
    auto db = BuildImdbDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
  }
  static void TearDownTestSuite() { delete db_; }
  static Database* db_;
};

Database* ImdbTest::db_ = nullptr;

TEST_F(ImdbTest, SchemaShape) {
  EXPECT_EQ(db_->schema().relations().size(), 11u);
  EXPECT_EQ(db_->schema().foreign_keys().size(), 11u);
}

TEST_F(ImdbTest, IntegrityHolds) { EXPECT_TRUE(db_->CheckIntegrity().ok()); }

TEST_F(ImdbTest, EveryMovieHasCastDirectorAndRating) {
  EXPECT_EQ(db_->FindTable("MOVIE")->size(), 200u);
  EXPECT_GE(db_->FindTable("CASTING")->size(), 200u);
  EXPECT_EQ(db_->FindTable("DIRECTS")->size(), 200u);
  EXPECT_EQ(db_->FindTable("RATING")->size(), 200u);
  EXPECT_EQ(db_->FindTable("PRODUCED_BY")->size(), 200u);
}

TEST_F(ImdbTest, GenresAreFixedVocabulary) {
  const Table* genre = db_->FindTable("GENRE");
  EXPECT_EQ(genre->size(), 12u);
  EXPECT_TRUE(genre->ContainsValue(1, Value::Text("Drama")));
}

TEST_F(ImdbTest, DeterministicForSameSeed) {
  ImdbOptions opts;
  opts.movies = 50;
  opts.persons = 80;
  auto a = BuildImdbDatabase(opts);
  auto b = BuildImdbDatabase(opts);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->TotalRows(), b->TotalRows());
}

// -------------------------------------------------------------- scaling

TEST(ScalingTest, TerminologySizeFormula) {
  ScalingOptions opts;
  opts.num_relations = 8;
  opts.attributes_per_relation = 4;
  opts.extra_fk_fraction = 0.0;
  auto db = BuildScalingDatabase(opts);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->schema().TerminologySize(), 8u * (1 + 2 * 4));
}

TEST(ScalingTest, ChainIsConnected) {
  ScalingOptions opts;
  opts.num_relations = 6;
  auto db = BuildScalingDatabase(opts);
  ASSERT_TRUE(db.ok());
  EXPECT_GE(db->schema().foreign_keys().size(), 5u);
  EXPECT_TRUE(db->CheckIntegrity().ok());
}

TEST(ScalingTest, ChordsAddJoinPaths) {
  ScalingOptions with, without;
  with.num_relations = 10;
  with.extra_fk_fraction = 0.5;
  without.num_relations = 10;
  without.extra_fk_fraction = 0.0;
  auto a = BuildScalingDatabase(with);
  auto b = BuildScalingDatabase(without);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_GT(a->schema().foreign_keys().size(), b->schema().foreign_keys().size());
}

TEST(ScalingTest, RejectsDegenerateOptions) {
  ScalingOptions opts;
  opts.num_relations = 0;
  EXPECT_FALSE(BuildScalingDatabase(opts).ok());
  opts.num_relations = 3;
  opts.attributes_per_relation = 1;
  EXPECT_FALSE(BuildScalingDatabase(opts).ok());
}

}  // namespace
}  // namespace km
