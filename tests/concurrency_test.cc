// Concurrency-layer tests: ThreadPool/ParallelFor, the sharded LRU caches,
// and the engine-level guarantees that ride on them — parallel answers
// byte-identical to serial ones, cache hits that never change results, and
// cooperative cancellation stopping a whole AnswerBatch.
//
// The cache and pool stress tests are intentionally racy-by-construction
// (many threads, shared state, no external ordering): they are the payload
// of the TSan CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/lru_cache.h"
#include "common/query_context.h"
#include "common/thread_pool.h"
#include "core/keymantic.h"
#include "datasets/dblp.h"
#include "datasets/imdb.h"
#include "datasets/mondial.h"
#include "datasets/university.h"
#include "graph/schema_graph.h"
#include "metadata/term.h"
#include "workload/workload.h"

namespace km {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  // The destructor drains the queue before joining.
  {
    ThreadPool scoped(2);
    for (int i = 0; i < 50; ++i) {
      scoped.Run([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  // After the scoped pool joined, its 50 tasks are definitely done; wait
  // for the outer pool by destroying it too.
  while (count.load(std::memory_order_relaxed) < 150) {
    std::this_thread::yield();
  }
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, kN, [&hits](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForNullPoolAndTinyRangesRunSerially) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&order](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  ParallelFor(nullptr, 0, [](size_t) { FAIL() << "n=0 must not invoke fn"; });
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(&pool, 1, [&ran](size_t i) {
    EXPECT_EQ(i, 0u);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Workers issuing their own ParallelFor on the same pool must finish even
  // when every pool thread is busy: the caller always participates.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  ParallelFor(&pool, 8, [&pool, &total](size_t) {
    ParallelFor(&pool, 8, [&total](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCheckpointsSharedContextSafely) {
  // Many workers hammering one QueryContext: the per-stage counters are
  // atomics, so the total spend is exact.
  ThreadPool pool(4);
  QueryContext ctx;
  constexpr size_t kN = 5000;
  ParallelFor(&pool, kN, [&ctx](size_t) {
    (void)ctx.CheckPoint(QueryStage::kForward);
  });
  EXPECT_EQ(ctx.Spend(QueryStage::kForward), kN);
}

// -------------------------------------------------------------- LruCache

TEST(LruCacheTest, HitMissEvictionCounters) {
  // One shard per entry would defeat LRU order; use a capacity that gives
  // each shard a small but non-zero budget.
  LruCache<int, int> cache(16);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, std::make_shared<const int>(10));
  auto v = cache.Get(1);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 10);
  CacheCounters c = cache.Counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_DOUBLE_EQ(c.HitRate(), 0.5);
  // Overfill well past capacity: evictions must fire and the entry count
  // must stay bounded by the configured capacity.
  for (int i = 0; i < 1000; ++i) cache.Put(i, std::make_shared<const int>(i));
  c = cache.Counters();
  EXPECT_GT(c.evictions, 0u);
  EXPECT_LE(c.entries, 16u);
}

TEST(LruCacheTest, ZeroCapacityDisablesCaching) {
  LruCache<int, int> cache(0);
  cache.Put(7, std::make_shared<const int>(7));
  EXPECT_EQ(cache.Get(7), nullptr);
  EXPECT_EQ(cache.Counters().entries, 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsedWithinShard) {
  // Single-shard capacity behaviour is easiest to pin down with a cache
  // whose keys all land in one shard: identical hash forces that.
  struct OneShardHash {
    size_t operator()(int) const { return 0; }
  };
  LruCache<int, int, OneShardHash> cache(16);  // 8 shards → 2 slots in the hot one
  cache.Put(1, std::make_shared<const int>(1));
  cache.Put(2, std::make_shared<const int>(2));
  // Touch 1 so 2 becomes the LRU entry, then overflow the shard.
  (void)cache.Get(1);
  cache.Put(3, std::make_shared<const int>(3));
  EXPECT_EQ(cache.Counters().evictions, 1u);
  EXPECT_NE(cache.Get(1), nullptr);  // recently used: survived
  EXPECT_EQ(cache.Get(2), nullptr);  // LRU: evicted
  EXPECT_NE(cache.Get(3), nullptr);
}

TEST(LruCacheTest, ConcurrentMixedWorkloadIsRaceFree) {
  // TSan payload: many threads doing interleaved Get/Put on overlapping
  // keys. Values are shared_ptr<const int>, so readers may hold a value
  // while another thread evicts it.
  LruCache<int, int> cache(64);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        int key = (t * 31 + i * 7) % 200;
        auto v = cache.Get(key);
        if (v != nullptr) {
          // Read through the pointer: stale values must stay valid.
          EXPECT_EQ(*v % 200, key);
        } else {
          cache.Put(key, std::make_shared<const int>(key + 200 * (i % 3)));
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  CacheCounters c = cache.Counters();
  EXPECT_EQ(c.hits + c.misses, static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_LE(c.entries, 64u);
}

// ------------------------------------------- engine-level determinism

struct NamedDb {
  std::string name;
  std::unique_ptr<Database> db;
  std::vector<QueryTemplate> templates;
};

std::vector<NamedDb> BuildAllDbs() {
  std::vector<NamedDb> dbs;
  {
    UniversityOptions opts;
    opts.extra_people = 20;
    opts.extra_departments = 3;
    opts.extra_universities = 2;
    opts.extra_projects = 3;
    auto db = BuildUniversityDatabase(opts);
    EXPECT_TRUE(db.ok());
    dbs.push_back({"university", std::make_unique<Database>(std::move(*db)),
                   UniversityTemplates()});
  }
  {
    auto db = BuildMondialDatabase();
    EXPECT_TRUE(db.ok());
    dbs.push_back(
        {"mondial", std::make_unique<Database>(std::move(*db)), MondialTemplates()});
  }
  {
    DblpOptions opts;
    opts.persons = 150;
    opts.articles = 200;
    opts.inproceedings = 300;
    opts.phd_theses = 20;
    auto db = BuildDblpDatabase(opts);
    EXPECT_TRUE(db.ok());
    dbs.push_back({"dblp", std::make_unique<Database>(std::move(*db)), DblpTemplates()});
  }
  {
    auto db = BuildImdbDatabase();
    EXPECT_TRUE(db.ok());
    dbs.push_back({"imdb", std::make_unique<Database>(std::move(*db)), ImdbTemplates()});
  }
  return dbs;
}

std::vector<WorkloadQuery> SampleQueries(const Database& db,
                                         const std::vector<QueryTemplate>& templates,
                                         size_t limit) {
  Terminology terminology(db.schema());
  SchemaGraph unit_graph(terminology, db.schema());
  WorkloadOptions opts;
  opts.queries_per_template = 1;
  opts.seed = 77;
  WorkloadGenerator gen(db, terminology, unit_graph, opts);
  auto queries = gen.Generate(templates);
  EXPECT_TRUE(queries.ok());
  if (!queries.ok()) return {};
  if (queries->size() > limit) queries->resize(limit);
  return std::move(*queries);
}

void ExpectSameExplanations(const std::vector<Explanation>& a,
                            const std::vector<Explanation>& b,
                            const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].sql.ToSql(), b[i].sql.ToSql()) << label << " rank " << i;
    // Bit-identical, not approximately equal: the parallel merge replays
    // the serial arithmetic in the same order.
    EXPECT_EQ(a[i].score, b[i].score) << label << " rank " << i;
    EXPECT_EQ(a[i].forward_score, b[i].forward_score) << label << " rank " << i;
    EXPECT_EQ(a[i].backward_score, b[i].backward_score) << label << " rank " << i;
  }
}

TEST(ConcurrencyDeterminismTest, ParallelEngineMatchesSerialOnAllDatasets) {
  for (NamedDb& eval : BuildAllDbs()) {
    EngineOptions serial_opts;
    serial_opts.threads = 0;
    EngineOptions parallel_opts;
    parallel_opts.threads = 4;
    KeymanticEngine serial(*eval.db, serial_opts);
    KeymanticEngine parallel(*eval.db, parallel_opts);
    auto queries = SampleQueries(*eval.db, eval.templates, 5);
    ASSERT_FALSE(queries.empty()) << eval.name;
    for (const WorkloadQuery& q : queries) {
      auto a = serial.AnswerKeywords(q.keywords, 5);
      auto b = parallel.AnswerKeywords(q.keywords, 5);
      ASSERT_EQ(a.ok(), b.ok()) << eval.name;
      if (!a.ok()) continue;  // both failed identically (e.g. disconnected)
      EXPECT_EQ(a->quality, b->quality) << eval.name;
      ExpectSameExplanations(a->explanations, b->explanations, eval.name);
    }
  }
}

TEST(ConcurrencyDeterminismTest, AnswerBatchMatchesSequentialAnswers) {
  for (NamedDb& eval : BuildAllDbs()) {
    EngineOptions opts;
    opts.threads = 4;
    KeymanticEngine engine(*eval.db, opts);
    auto queries = SampleQueries(*eval.db, eval.templates, 4);
    ASSERT_FALSE(queries.empty()) << eval.name;
    std::vector<std::string> texts;
    for (const WorkloadQuery& q : queries) {
      std::string text;
      for (const std::string& kw : q.keywords) {
        if (!text.empty()) text += ' ';
        // Keywords with spaces (phrase values) need quoting to survive
        // re-tokenization as one unit.
        if (kw.find(' ') != std::string::npos) {
          text += '"' + kw + '"';
        } else {
          text += kw;
        }
      }
      texts.push_back(std::move(text));
    }
    // Duplicate a query so batch answering also exercises warm caches.
    texts.push_back(texts[0]);
    auto batch = engine.AnswerBatch(texts, 5);
    ASSERT_EQ(batch.size(), texts.size());
    for (size_t i = 0; i < texts.size(); ++i) {
      auto solo = engine.Answer(texts[i], 5);
      ASSERT_EQ(batch[i].ok(), solo.ok()) << eval.name << " query " << i;
      if (!solo.ok()) continue;
      EXPECT_EQ(batch[i]->quality, solo->quality) << eval.name << " query " << i;
      ExpectSameExplanations(batch[i]->explanations, solo->explanations,
                             eval.name + " query " + std::to_string(i));
    }
  }
}

// ------------------------------------------------------ caches in anger

class EngineConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniversityOptions opts;
    opts.extra_people = 20;
    opts.extra_departments = 3;
    opts.extra_universities = 2;
    opts.extra_projects = 3;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    EngineOptions eopts;
    eopts.threads = 4;
    engine_ = new KeymanticEngine(*db_, eopts);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete db_;
  }
  static Database* db_;
  static KeymanticEngine* engine_;
};

Database* EngineConcurrencyTest::db_ = nullptr;
KeymanticEngine* EngineConcurrencyTest::engine_ = nullptr;

TEST_F(EngineConcurrencyTest, RepeatedBatchesHitBothCaches) {
  // A skewed workload (few distinct queries, many repetitions) must be
  // served increasingly from the keyword-row and Steiner caches, and the
  // stats must surface that.
  std::vector<std::string> queries;
  for (int rep = 0; rep < 6; ++rep) {
    queries.push_back("Vokram IT");
    queries.push_back("Reniets EE 2012");
    queries.push_back("department university");
  }
  auto first = engine_->Answer(queries[0], 5);
  ASSERT_TRUE(first.ok());
  auto batch = engine_->AnswerBatch(queries, 5);
  ASSERT_EQ(batch.size(), queries.size());
  for (const auto& r : batch) ASSERT_TRUE(r.ok());
  const AnswerStats& stats = batch.back()->stats;
  EXPECT_GT(stats.keyword_row_cache.hits, 0u);
  EXPECT_GT(stats.steiner_cache.hits, 0u);
  EXPECT_GT(stats.keyword_row_cache.HitRate(), 0.0);
  // Warm answers replay the cold answer exactly.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (queries[i] != queries[0]) continue;
    ExpectSameExplanations(first->explanations, batch[i]->explanations,
                           "warm query " + std::to_string(i));
  }
}

TEST_F(EngineConcurrencyTest, ManyThreadsHammeringTheEngineStayConsistent) {
  // TSan payload: raw threads (not the engine pool) answering overlapping
  // queries concurrently; each answer must match the single-threaded one.
  auto golden = engine_->Answer("Vokram IT", 5);
  ASSERT_TRUE(golden.ok());
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &golden, &failures] {
      for (int i = 0; i < 4; ++i) {
        auto r = engine_->Answer(t % 2 == 0 ? "Vokram IT" : "Reniets EE 2012", 5);
        if (!r.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (t % 2 == 0 &&
            (r->explanations.size() != golden->explanations.size() ||
             r->explanations[0].sql.ToSql() != golden->explanations[0].sql.ToSql())) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

// -------------------------------------------------------- cancellation

TEST_F(EngineConcurrencyTest, CancelledContextStopsAllBatchWorkers) {
  QueryContext ctx;
  ctx.RequestCancel();
  std::vector<std::string> queries(8, "Vokram IT");
  auto batch = engine_->AnswerBatch(queries, 5, &ctx);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    // The degradation ladder still produces a floor answer, but every
    // worker must observe the cancel and tag its result accordingly.
    ASSERT_TRUE(batch[i].ok()) << "query " << i << ": "
                               << batch[i].status().ToString();
    EXPECT_EQ(batch[i]->quality, ResultQuality::kDeadlineExceeded) << "query " << i;
  }
}

TEST_F(EngineConcurrencyTest, MidFlightCancelIsObservedByTheWholeBatch) {
  // Cancel from outside while the batch runs: whatever each worker had in
  // flight degrades; nothing hangs. The timing is inherently racy, so the
  // assertion is only that the batch returns and every result is either
  // complete (finished before the cancel) or tagged as cut short.
  QueryContext ctx;
  std::vector<std::string> queries(12, "Reniets EE 2012");
  std::thread canceller([&ctx] { ctx.RequestCancel(); });
  auto batch = engine_->AnswerBatch(queries, 5, &ctx);
  canceller.join();
  ASSERT_EQ(batch.size(), queries.size());
  for (const auto& r : batch) {
    ASSERT_TRUE(r.ok());
  }
  EXPECT_TRUE(ctx.cancel_requested());
}

TEST_F(EngineConcurrencyTest, ExpiredDeadlineStillYieldsFloorAnswers) {
  QueryLimits limits;
  limits.deadline_ms = 0.0001;  // expires essentially immediately
  QueryContext ctx(limits);
  std::vector<std::string> queries(4, "Vokram IT");
  auto batch = engine_->AnswerBatch(queries, 5, &ctx);
  for (const auto& r : batch) {
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->explanations.empty());
    EXPECT_EQ(r->quality, ResultQuality::kDeadlineExceeded);
  }
}

}  // namespace
}  // namespace km
