// Unit and stress tests for the annotated synchronization wrappers in
// common/mutex.h: Mutex/TryLock, the MutexLock RAII guard, and CondVar's
// adopt/release dance around std::condition_variable. The stress cases are
// sized to be meaningful under TSan (tools/ci.sh runs this binary in the
// tsan job) — they exercise real contention, not just the API surface.
//
// The *compile-time* half of the story — that `-Werror=thread-safety`
// rejects ill-disciplined code — lives in tests/negative_compile/ and runs
// through tools/negative_compile.sh, since an expected-to-fail compile
// can't be a gtest.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace km {
namespace {

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock()) << "TryLock acquired an already-held mutex";
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsAScope) {
  Mutex mu;
  {
    MutexLock lock(mu);
    EXPECT_FALSE(mu.TryLock());
  }
  // The guard released at scope exit.
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, GuardedCounterSurvivesContention) {
  struct Counter {
    Mutex mu;
    int value KM_GUARDED_BY(mu) = 0;
  } counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(counter.mu);
        ++counter.value;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(counter.mu);
  EXPECT_EQ(counter.value, kThreads * kIncrements);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, WaitForMsTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  // Nobody will notify: the timed wait must return (false = timeout) and
  // must return with the mutex re-held (the TryLock below fails).
  bool signaled = cv.WaitForMs(mu, 5.0);
  EXPECT_FALSE(signaled);
  EXPECT_FALSE(mu.TryLock());
}

// Producer/consumer ping-pong across a bounded slot: exercises the
// explicit `while (!cond) cv.Wait(mu)` idiom the codebase standardizes on
// (thread-safety analysis cannot see through predicate lambdas) under real
// scheduling, in both directions.
TEST(CondVarTest, ProducerConsumerPingPong) {
  struct Slot {
    Mutex mu;
    CondVar cv;
    bool full KM_GUARDED_BY(mu) = false;
    int produced KM_GUARDED_BY(mu) = 0;
    int consumed KM_GUARDED_BY(mu) = 0;
  } slot;
  constexpr int kRounds = 2000;
  std::thread producer([&slot] {
    for (int i = 0; i < kRounds; ++i) {
      MutexLock lock(slot.mu);
      while (slot.full) slot.cv.Wait(slot.mu);
      slot.full = true;
      ++slot.produced;
      slot.cv.NotifyAll();
    }
  });
  std::thread consumer([&slot] {
    for (int i = 0; i < kRounds; ++i) {
      MutexLock lock(slot.mu);
      while (!slot.full) slot.cv.Wait(slot.mu);
      slot.full = false;
      ++slot.consumed;
      slot.cv.NotifyAll();
    }
  });
  producer.join();
  consumer.join();
  MutexLock lock(slot.mu);
  EXPECT_EQ(slot.produced, kRounds);
  EXPECT_EQ(slot.consumed, kRounds);
}

TEST(MutexTest, TryLockContention) {
  Mutex mu;
  std::atomic<int> holders{0};
  std::atomic<int> acquisitions{0};
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        if (mu.TryLock()) {
          // Mutual exclusion: at most one holder at any instant.
          EXPECT_EQ(holders.fetch_add(1, std::memory_order_relaxed), 0);
          acquisitions.fetch_add(1, std::memory_order_relaxed);
          holders.fetch_sub(1, std::memory_order_relaxed);
          mu.Unlock();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(acquisitions.load(), 0);
}

}  // namespace
}  // namespace km
