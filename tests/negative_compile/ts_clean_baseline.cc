// MUST COMPILE CLEANLY under -Werror=thread-safety: exercises the whole
// annotated surface (MutexLock scope, manual Lock/Unlock, CondVar wait
// loop, KM_REQUIRES helper, KM_EXCLUDES entry point) with correct
// discipline. If this file fails, the harness flags are broken — the
// violation files' failures would then prove nothing.
// See tests/negative_compile/README.md.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Queue {
 public:
  void Push(int value) KM_EXCLUDES(mu_) {
    {
      km::MutexLock lock(mu_);
      pending_ = value;
      has_pending_ = true;
    }
    cv_.NotifyOne();
  }

  int BlockingPop() KM_EXCLUDES(mu_) {
    km::MutexLock lock(mu_);
    while (!has_pending_) cv_.Wait(mu_);
    has_pending_ = false;
    return DrainLocked();
  }

  int TryPeek() KM_EXCLUDES(mu_) {
    mu_.Lock();
    int value = pending_;
    mu_.Unlock();
    return value;
  }

 private:
  int DrainLocked() KM_REQUIRES(mu_) { return pending_; }

  km::Mutex mu_;
  km::CondVar cv_;
  int pending_ KM_GUARDED_BY(mu_) = 0;
  bool has_pending_ KM_GUARDED_BY(mu_) = false;
};

}  // namespace

int main() {
  Queue queue;
  queue.Push(7);
  int popped = queue.BlockingPop();
  return popped == 7 && queue.TryPeek() == 7 ? 0 : 1;
}
