// EXPECTED TO FAIL under -Werror=thread-safety: touches a KM_GUARDED_BY
// field without holding its mutex (both a write and a read).
// See tests/negative_compile/README.md.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void UnguardedDeposit(int amount) {
    balance_ += amount;  // error: writing balance_ requires holding mu_
  }

  int UnguardedRead() const {
    return balance_;  // error: reading balance_ requires holding mu_
  }

 private:
  mutable km::Mutex mu_;
  int balance_ KM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.UnguardedDeposit(1);
  return account.UnguardedRead();
}
