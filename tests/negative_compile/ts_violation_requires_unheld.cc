// EXPECTED TO FAIL under -Werror=thread-safety: calls a KM_REQUIRES(mu)
// function without holding mu — the same shape as calling a *Locked()
// helper (e.g. CircuitBreaker::TransitionLocked) outside its critical
// section. See tests/negative_compile/README.md.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Machine {
 public:
  void Step() {
    AdvanceLocked();  // error: AdvanceLocked() requires holding mu_
  }

  void StepProperly() {
    km::MutexLock lock(mu_);
    AdvanceLocked();  // fine: mu_ is held
  }

 private:
  void AdvanceLocked() KM_REQUIRES(mu_) { ++state_; }

  km::Mutex mu_;
  int state_ KM_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Machine machine;
  machine.Step();
  machine.StepProperly();
  return 0;
}
