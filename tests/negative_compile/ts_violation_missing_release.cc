// EXPECTED TO FAIL under -Werror=thread-safety: a manually acquired mutex
// is still held when one path returns (missing Unlock()), so the lock's
// acquire/release does not balance on every path.
// See tests/negative_compile/README.md.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

km::Mutex g_mu;
int g_value KM_GUARDED_BY(g_mu) = 0;

int TakeAndMaybeLeak(bool leak) {
  g_mu.Lock();
  int snapshot = g_value;
  if (leak) {
    return snapshot;  // error: returning with g_mu held
  }
  g_mu.Unlock();
  return snapshot;
}

}  // namespace

int main(int argc, char**) { return TakeAndMaybeLeak(argc > 1); }
