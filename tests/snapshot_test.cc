// Snapshot subsystem tests: deterministic byte-identical round trips on
// all four evaluation databases, typed errors for every corruption class,
// crash-safe publication, the ReloadSnapshot degradation ladder, and the
// RCU hot-swap under live traffic (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/keymantic.h"
#include "core/prepared_state.h"
#include "datasets/dblp.h"
#include "datasets/imdb.h"
#include "datasets/mondial.h"
#include "datasets/university.h"
#include "relational/schema.h"
#include "serve/engine_server.h"
#include "snapshot/crc32c.h"
#include "snapshot/snapshot.h"
#include "snapshot/snapshot_format.h"

namespace km {
namespace {

#define SKIP_WITHOUT_FAILPOINTS()                                     \
  do {                                                                \
    if (!failpoints::Enabled()) {                                     \
      GTEST_SKIP() << "failpoint sites compiled out (KM_FAILPOINTS)"; \
    }                                                                 \
  } while (0)

std::string TmpPath(const std::string& name) {
  return testing::TempDir() + "km_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

/// One evaluation database plus a query that exercises its pipeline.
struct TestDb {
  std::string name;
  std::unique_ptr<Database> db;
  std::string query;
};

std::vector<TestDb> MakeAllDbs() {
  std::vector<TestDb> dbs;
  {
    UniversityOptions opts;
    opts.extra_people = 20;
    auto db = BuildUniversityDatabase(opts);
    EXPECT_TRUE(db.ok());
    dbs.push_back({"university", std::make_unique<Database>(std::move(*db)),
                   "Vokram IT"});
  }
  {
    auto db = BuildMondialDatabase();
    EXPECT_TRUE(db.ok());
    dbs.push_back(
        {"mondial", std::make_unique<Database>(std::move(*db)), "city country"});
  }
  {
    DblpOptions opts;
    opts.persons = 120;
    opts.articles = 150;
    opts.inproceedings = 200;
    opts.phd_theses = 20;
    auto db = BuildDblpDatabase(opts);
    EXPECT_TRUE(db.ok());
    dbs.push_back(
        {"dblp", std::make_unique<Database>(std::move(*db)), "author article"});
  }
  {
    auto db = BuildImdbDatabase();
    EXPECT_TRUE(db.ok());
    dbs.push_back(
        {"imdb", std::make_unique<Database>(std::move(*db)), "movie genre"});
  }
  return dbs;
}

std::string AnswerFingerprint(const KeymanticEngine& engine,
                              const std::string& query) {
  auto result = engine.Answer(query, 5);
  if (!result.ok()) return "status:" + result.status().ToString();
  std::ostringstream out;
  out << result->Explain(/*include_timings=*/false);
  for (const auto& ex : result->explanations) out << "\n" << ex.sql.ToSql();
  return out.str();
}

// ------------------------------------------------------- round trips

TEST(SnapshotRoundTrip, ByteIdenticalAndAnswerPreservingOnAllDatasets) {
  for (TestDb& eval : MakeAllDbs()) {
    SCOPED_TRACE(eval.name);
    PrepareOptions options;
    auto state = PreparedState::Build(*eval.db, options);
    ASSERT_NE(state, nullptr);

    const std::string path_a = TmpPath(eval.name + "_a.snap");
    const std::string path_b = TmpPath(eval.name + "_b.snap");
    ASSERT_TRUE(SaveSnapshot(*state, path_a).ok());
    ASSERT_TRUE(SaveSnapshot(*state, path_b).ok());
    const std::string bytes_a = ReadFileBytes(path_a);
    // Determinism: saving the same state twice is byte-identical.
    EXPECT_EQ(bytes_a, ReadFileBytes(path_b));

    auto loaded = LoadSnapshot(path_a);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

    // Full fidelity: re-saving the loaded state reproduces the file.
    const std::string path_c = TmpPath(eval.name + "_c.snap");
    ASSERT_TRUE(SaveSnapshot(**loaded, path_c).ok());
    EXPECT_EQ(bytes_a, ReadFileBytes(path_c));

    // Answers are identical before and after the round trip.
    KeymanticEngine built(*eval.db);
    auto from_snapshot =
        KeymanticEngine::FromPreparedState(*eval.db, *loaded, EngineOptions{});
    ASSERT_TRUE(from_snapshot.ok()) << from_snapshot.status().ToString();
    EXPECT_EQ(AnswerFingerprint(built, eval.query),
              AnswerFingerprint(**from_snapshot, eval.query));

    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
    std::remove(path_c.c_str());
  }
}

// ---------------------------------------------------------- typed errors

class SnapshotErrorTest : public testing::Test {
 protected:
  void SetUp() override {
    UniversityOptions opts;
    opts.extra_people = 10;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
    state_ = PreparedState::Build(*db_, PrepareOptions{});
    path_ = TmpPath("errors.snap");
    ASSERT_TRUE(SaveSnapshot(*state_, path_).ok());
    bytes_ = ReadFileBytes(path_);
  }

  void TearDown() override { std::remove(path_.c_str()); }

  StatusCode LoadCorrupted(const std::string& bytes) {
    const std::string path = TmpPath("corrupt.snap");
    WriteFileBytes(path, bytes);
    auto loaded = LoadSnapshot(path);
    std::remove(path.c_str());
    EXPECT_FALSE(loaded.ok());
    return loaded.ok() ? StatusCode::kOk : loaded.status().code();
  }

  std::unique_ptr<Database> db_;
  std::shared_ptr<const PreparedState> state_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotErrorTest, MissingFileIsNotFound) {
  auto loaded = LoadSnapshot(TmpPath("does_not_exist.snap"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotErrorTest, TruncationIsTyped) {
  // Every prefix strictly shorter than the file fails with a snapshot
  // error; cutting the header or payload is kSnapshotTruncated.
  EXPECT_EQ(LoadCorrupted(std::string()), StatusCode::kSnapshotTruncated);
  EXPECT_EQ(LoadCorrupted(bytes_.substr(0, 10)),
            StatusCode::kSnapshotTruncated);
  EXPECT_EQ(LoadCorrupted(bytes_.substr(0, kSnapshotHeaderSize + 3)),
            StatusCode::kSnapshotTruncated);
  EXPECT_EQ(LoadCorrupted(bytes_.substr(0, bytes_.size() - 1)),
            StatusCode::kSnapshotTruncated);
  EXPECT_EQ(LoadCorrupted(bytes_.substr(0, bytes_.size() / 2)),
            StatusCode::kSnapshotTruncated);
}

TEST_F(SnapshotErrorTest, PayloadBitFlipIsChecksumMismatch) {
  std::string corrupt = bytes_;
  corrupt[corrupt.size() - 1] ^= 0x40;  // last payload byte
  EXPECT_EQ(LoadCorrupted(corrupt), StatusCode::kSnapshotChecksumMismatch);
}

TEST_F(SnapshotErrorTest, SectionTableBitFlipIsChecksumMismatch) {
  std::string corrupt = bytes_;
  corrupt[kSnapshotHeaderSize + 9] ^= 0x01;  // first section's offset field
  EXPECT_EQ(LoadCorrupted(corrupt), StatusCode::kSnapshotChecksumMismatch);
}

TEST_F(SnapshotErrorTest, WrongMagicAndVersionAreVersionSkew) {
  std::string wrong_magic = bytes_;
  wrong_magic[0] = 'X';
  EXPECT_EQ(LoadCorrupted(wrong_magic), StatusCode::kSnapshotVersionSkew);

  // A future version with a valid index CRC must be rejected as skew, not
  // checksum corruption — recompute the CRC after bumping the version.
  std::string wrong_version = bytes_;
  wrong_version[8] = 2;
  const uint32_t count = static_cast<uint8_t>(wrong_version[16]) |
                         static_cast<uint8_t>(wrong_version[17]) << 8;
  const size_t index_size = kSnapshotHeaderSize +
                            kSnapshotSectionEntrySize * count +
                            kSnapshotIndexCrcSize;
  const uint32_t crc = Crc32c(wrong_version.data(), index_size - 4);
  for (int i = 0; i < 4; ++i) {
    wrong_version[index_size - 4 + i] = static_cast<char>(crc >> (8 * i));
  }
  EXPECT_EQ(LoadCorrupted(wrong_version), StatusCode::kSnapshotVersionSkew);
}

TEST_F(SnapshotErrorTest, SnapshotStatusCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kSnapshotTruncated),
               "SnapshotTruncated");
  EXPECT_STREQ(StatusCodeName(StatusCode::kSnapshotChecksumMismatch),
               "SnapshotChecksumMismatch");
  EXPECT_STREQ(StatusCodeName(StatusCode::kSnapshotVersionSkew),
               "SnapshotVersionSkew");
}

// ----------------------------------------------------------- failpoints

TEST_F(SnapshotErrorTest, WriterCrashBeforeRenameKeepsOldSnapshot) {
  SKIP_WITHOUT_FAILPOINTS();
  failpoints::Reset();
  failpoints::EnableError("snapshot.write.crash_before_rename",
                          Status::Internal("simulated crash"));
  Status crashed = SaveSnapshot(*state_, path_);
  failpoints::DisableAll();
  EXPECT_FALSE(crashed.ok());
  // The destination still holds the previous good snapshot, byte for byte.
  EXPECT_EQ(ReadFileBytes(path_), bytes_);
  auto loaded = LoadSnapshot(path_);
  EXPECT_TRUE(loaded.ok());
}

TEST_F(SnapshotErrorTest, ShortReadFailpointYieldsTruncated) {
  SKIP_WITHOUT_FAILPOINTS();
  failpoints::Reset();
  failpoints::EnableCallback("snapshot.load.short_read", [](void* payload) {
    *static_cast<size_t*>(payload) /= 2;
  });
  auto loaded = LoadSnapshot(path_);
  failpoints::DisableAll();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kSnapshotTruncated);
}

TEST_F(SnapshotErrorTest, BitFlipFailpointYieldsChecksumMismatch) {
  SKIP_WITHOUT_FAILPOINTS();
  failpoints::Reset();
  failpoints::EnableCallback("snapshot.load.bit_flip", [](void* payload) {
    *static_cast<uint32_t*>(payload) ^= 1u;
  });
  auto loaded = LoadSnapshot(path_);
  failpoints::DisableAll();
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kSnapshotChecksumMismatch);
}

// ---------------------------------------------- hostile external input

TEST(SnapshotHostileInput, SelfReferentialForeignKeyIsRejectedNotAborted) {
  // Regression: a snapshot (or any external schema source) declaring an
  // attribute that references itself used to pass AddForeignKey and then
  // abort inside SchemaGraph's self-loop invariant. It must be a
  // recoverable Status at the catalog boundary.
  DatabaseSchema schema;
  ASSERT_TRUE(schema
                  .AddRelation(RelationSchema(
                      "LOOP", {{"id", DataType::kInt, DomainTag::kIdentifier,
                                /*is_primary_key=*/true}}))
                  .ok());
  Status self_fk = schema.AddForeignKey({"LOOP", "id", "LOOP", "id"});
  ASSERT_FALSE(self_fk.ok());
  EXPECT_EQ(self_fk.code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- reload ladder

class SnapshotReloadTest : public testing::Test {
 protected:
  void SetUp() override {
    UniversityOptions opts;
    opts.extra_people = 10;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = std::make_unique<Database>(std::move(*db));
    engine_ = std::make_shared<const KeymanticEngine>(*db_);
    path_ = TmpPath("reload.snap");
    ASSERT_TRUE(SaveSnapshot(*engine_->prepared_state(), path_).ok());
  }

  void TearDown() override {
    std::remove(path_.c_str());
    failpoints::DisableAll();
  }

  EngineServerOptions FastOptions() {
    EngineServerOptions options;
    options.workers = 2;
    return options;
  }

  std::unique_ptr<Database> db_;
  std::shared_ptr<const KeymanticEngine> engine_;
  std::string path_;
};

TEST_F(SnapshotReloadTest, GoodSnapshotSwapsEngine) {
  EngineServer server(engine_, FastOptions());
  auto before = server.CurrentEngine();
  ReloadReport report;
  Status reloaded = server.ReloadSnapshot(path_, false, &report);
  ASSERT_TRUE(reloaded.ok()) << reloaded.ToString();
  EXPECT_EQ(report.rung, ReloadRung::kSwapped);
  auto after = server.CurrentEngine();
  EXPECT_NE(before.get(), after.get());
  // The swapped engine serves.
  auto result = server.Submit("Vokram IT", 3).get();
  EXPECT_TRUE(result.ok());
  server.Shutdown();
}

TEST_F(SnapshotReloadTest, BadSnapshotKeepsCurrentEngine) {
  EngineServer server(engine_, FastOptions());
  std::string corrupt = ReadFileBytes(path_);
  corrupt[corrupt.size() - 1] ^= 0x10;
  const std::string bad_path = TmpPath("reload_bad.snap");
  WriteFileBytes(bad_path, corrupt);
  auto before = server.CurrentEngine();
  ReloadReport report;
  Status reloaded = server.ReloadSnapshot(bad_path, false, &report);
  std::remove(bad_path.c_str());
  ASSERT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.code(), StatusCode::kSnapshotChecksumMismatch);
  EXPECT_EQ(report.rung, ReloadRung::kKeptCurrent);
  // Same engine object, still serving.
  EXPECT_EQ(before.get(), server.CurrentEngine().get());
  EXPECT_TRUE(server.Submit("Vokram IT", 3).get().ok());
  server.Shutdown();
}

TEST_F(SnapshotReloadTest, RequireSwapRebuildsFromDatabase) {
  EngineServer server(engine_, FastOptions());
  auto before = server.CurrentEngine();
  ReloadReport report;
  Status reloaded = server.ReloadSnapshot(TmpPath("missing.snap"),
                                          /*require_swap=*/true, &report);
  ASSERT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.code(), StatusCode::kNotFound);
  EXPECT_EQ(report.rung, ReloadRung::kRebuilt);
  // A fresh engine (rebuilt from the live database) is serving.
  EXPECT_NE(before.get(), server.CurrentEngine().get());
  EXPECT_TRUE(server.Submit("Vokram IT", 3).get().ok());
  server.Shutdown();
}

TEST_F(SnapshotReloadTest, ValidateFailpointWalksTheWholeLadder) {
  SKIP_WITHOUT_FAILPOINTS();
  EngineServer server(engine_, FastOptions());

  // Gate fails once: the snapshot candidate is rejected, the rebuild
  // passes → kRebuilt.
  failpoints::Reset();
  failpoints::Action once;
  once.kind = failpoints::ActionKind::kError;
  once.error = Status::Internal("validation gate failure");
  once.limit = 1;
  failpoints::Enable("snapshot.swap.validate_fail", once);
  ReloadReport report;
  Status reloaded = server.ReloadSnapshot(path_, /*require_swap=*/true, &report);
  EXPECT_FALSE(reloaded.ok());
  EXPECT_EQ(report.rung, ReloadRung::kRebuilt);
  EXPECT_TRUE(server.Submit("Vokram IT", 3).get().ok());

  // Gate fails persistently: snapshot and rebuild both rejected → refusal.
  failpoints::EnableError("snapshot.swap.validate_fail",
                          Status::Internal("validation gate failure"));
  reloaded = server.ReloadSnapshot(path_, /*require_swap=*/true, &report);
  EXPECT_FALSE(reloaded.ok());
  EXPECT_EQ(reloaded.code(), StatusCode::kUnavailable);
  EXPECT_EQ(report.rung, ReloadRung::kRefused);

  // Refusal is machine-readable: kUnavailable + retry-after hint.
  auto refused = server.Submit("Vokram IT", 3).get();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(SuggestedRetryAfterMs(refused.status()), 0.0);

  // A later successful reload clears the refusal.
  failpoints::DisableAll();
  reloaded = server.ReloadSnapshot(path_, false, &report);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(report.rung, ReloadRung::kSwapped);
  EXPECT_TRUE(server.Submit("Vokram IT", 3).get().ok());
  server.Shutdown();
}

// -------------------------------------------------- RCU under traffic

TEST_F(SnapshotReloadTest, HotSwapUnderLiveTrafficDropsNoQueries) {
  EngineServerOptions options;
  options.workers = 3;
  options.admission.max_queue = 1024;
  EngineServer server(engine_, options);

  constexpr int kSubmitters = 3;
  constexpr int kQueriesPerSubmitter = 20;
  constexpr int kReloads = 8;
  std::atomic<int> ok_count{0}, error_count{0};

  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&server, &ok_count, &error_count] {
      for (int i = 0; i < kQueriesPerSubmitter; ++i) {
        auto result = server.Submit("Vokram IT", 3).get();
        if (result.ok() && !result->explanations.empty()) {
          ++ok_count;
        } else {
          ++error_count;
        }
      }
    });
  }
  std::thread reloader([&server, this] {
    for (int i = 0; i < kReloads; ++i) {
      ReloadReport report;
      Status reloaded = server.ReloadSnapshot(path_, false, &report);
      EXPECT_TRUE(reloaded.ok()) << reloaded.ToString();
      EXPECT_EQ(report.rung, ReloadRung::kSwapped);
    }
  });
  for (std::thread& t : submitters) t.join();
  reloader.join();
  server.Drain();

  // No dropped and no mixed-state queries: every submission resolved, and
  // every one of them got a full answer from a consistent engine.
  EXPECT_EQ(ok_count.load(), kSubmitters * kQueriesPerSubmitter);
  EXPECT_EQ(error_count.load(), 0);
  server.Shutdown();
}

}  // namespace
}  // namespace km
