// Tests for km_workload: template instantiation, gold labels, metrics.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "datasets/university.h"
#include "engine/executor.h"
#include "workload/metrics.h"
#include "workload/workload.h"

namespace km {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniversityOptions opts;
    opts.extra_people = 15;
    opts.extra_departments = 3;
    opts.extra_universities = 2;
    opts.extra_projects = 3;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    terminology_ = new Terminology(db_->schema());
    graph_ = new SchemaGraph(*terminology_, db_->schema());
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete terminology_;
    delete db_;
  }
  static Database* db_;
  static Terminology* terminology_;
  static SchemaGraph* graph_;
};

Database* WorkloadTest::db_ = nullptr;
Terminology* WorkloadTest::terminology_ = nullptr;
SchemaGraph* WorkloadTest::graph_ = nullptr;

TEST_F(WorkloadTest, GeneratesRequestedVolume) {
  WorkloadOptions opts;
  opts.queries_per_template = 5;
  WorkloadGenerator gen(*db_, *terminology_, *graph_, opts);
  auto queries = gen.Generate(UniversityTemplates());
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 5 * UniversityTemplates().size());
}

TEST_F(WorkloadTest, GoldLabelsAreWellFormed) {
  WorkloadOptions opts;
  opts.queries_per_template = 4;
  WorkloadGenerator gen(*db_, *terminology_, *graph_, opts);
  auto queries = gen.Generate(UniversityTemplates());
  ASSERT_TRUE(queries.ok());
  for (const WorkloadQuery& q : *queries) {
    EXPECT_FALSE(q.keywords.empty());
    EXPECT_EQ(q.keywords.size(), q.gold_config.term_for_keyword.size());
    EXPECT_TRUE(q.gold_config.IsInjective());
    EXPECT_FALSE(q.gold_sql.relations.empty());
    EXPECT_FALSE(q.gold_sql_signature.empty());
    EXPECT_FALSE(q.gold_interp_signature.empty());
    for (const std::string& kw : q.keywords) EXPECT_FALSE(kw.empty());
  }
}

TEST_F(WorkloadTest, GoldSqlExecutes) {
  WorkloadOptions opts;
  opts.queries_per_template = 3;
  WorkloadGenerator gen(*db_, *terminology_, *graph_, opts);
  auto queries = gen.Generate(UniversityTemplates());
  ASSERT_TRUE(queries.ok());
  Executor exec(*db_);
  for (const WorkloadQuery& q : *queries) {
    auto rs = exec.Execute(q.gold_sql);
    EXPECT_TRUE(rs.ok()) << q.gold_sql.ToSql();
  }
}

TEST_F(WorkloadTest, ValueKeywordsComeFromInstance) {
  WorkloadOptions opts;
  opts.queries_per_template = 10;
  opts.synonym_prob = 0;
  opts.lowercase_prob = 0;
  WorkloadGenerator gen(*db_, *terminology_, *graph_, opts);
  std::vector<QueryTemplate> tmpl = {
      {"only-names", {KeywordSpec::ValueOf("PEOPLE", "Name")}}};
  auto queries = gen.Generate(tmpl);
  ASSERT_TRUE(queries.ok());
  const Table* people = db_->FindTable("PEOPLE");
  auto name_col = people->schema().AttributeIndex("Name");
  for (const WorkloadQuery& q : *queries) {
    EXPECT_TRUE(people->ContainsValue(*name_col, Value::Text(q.keywords[0])))
        << q.keywords[0];
  }
}

TEST_F(WorkloadTest, SynonymPerturbationChangesSchemaKeywords) {
  WorkloadOptions opts;
  opts.queries_per_template = 30;
  opts.synonym_prob = 1.0;  // always replace
  opts.lowercase_prob = 0;
  WorkloadGenerator gen(*db_, *terminology_, *graph_, opts);
  std::vector<QueryTemplate> tmpl = {
      {"rel-kw", {KeywordSpec::Relation("PEOPLE")}}};
  auto queries = gen.Generate(tmpl);
  ASSERT_TRUE(queries.ok());
  // With probability 1 the keyword must be a synonym, never "PEOPLE".
  for (const WorkloadQuery& q : *queries) {
    EXPECT_NE(km::ToLower(q.keywords[0]), "people");
  }
}

TEST_F(WorkloadTest, DeterministicForSameSeed) {
  WorkloadOptions opts;
  opts.queries_per_template = 3;
  WorkloadGenerator g1(*db_, *terminology_, *graph_, opts);
  WorkloadGenerator g2(*db_, *terminology_, *graph_, opts);
  auto a = g1.Generate(UniversityTemplates());
  auto b = g2.Generate(UniversityTemplates());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].keywords, (*b)[i].keywords);
    EXPECT_EQ((*a)[i].gold_config.term_for_keyword,
              (*b)[i].gold_config.term_for_keyword);
  }
}

TEST_F(WorkloadTest, UnknownTemplateTermsAreSkipped) {
  WorkloadGenerator gen(*db_, *terminology_, *graph_);
  std::vector<QueryTemplate> bad = {
      {"bad", {KeywordSpec::ValueOf("NOPE", "Name")}}};
  EXPECT_EQ(gen.Generate(bad).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(WorkloadTest, AllThreeTemplateSetsAreNonEmpty) {
  EXPECT_GE(UniversityTemplates().size(), 10u);
  EXPECT_GE(MondialTemplates().size(), 10u);
  EXPECT_GE(DblpTemplates().size(), 10u);
}

// ---------------------------------------------------------------- metrics

TEST(MetricsTest, RankOfConfiguration) {
  Configuration gold;
  gold.term_for_keyword = {3, 4};
  Configuration other;
  other.term_for_keyword = {5, 6};
  EXPECT_EQ(RankOfConfiguration({other, gold}, gold), 1);
  EXPECT_EQ(RankOfConfiguration({gold}, gold), 0);
  EXPECT_EQ(RankOfConfiguration({other}, gold), -1);
  EXPECT_EQ(RankOfConfiguration({}, gold), -1);
}

TEST(MetricsTest, TopKAccuracyCumulative) {
  TopKAccuracy acc;
  acc.Add(0);   // hit at rank 0
  acc.Add(2);   // hit at rank 2
  acc.Add(-1);  // miss
  acc.Add(9);   // hit at rank 9
  EXPECT_EQ(acc.total(), 4u);
  EXPECT_DOUBLE_EQ(acc.AtK(1), 0.25);
  EXPECT_DOUBLE_EQ(acc.AtK(3), 0.5);
  EXPECT_DOUBLE_EQ(acc.AtK(10), 0.75);
  EXPECT_NEAR(acc.Mrr(), (1.0 + 1.0 / 3 + 0.0 + 0.1) / 4, 1e-12);
}

TEST(MetricsTest, EmptyAccuracyIsZero) {
  TopKAccuracy acc;
  EXPECT_DOUBLE_EQ(acc.AtK(1), 0.0);
  EXPECT_DOUBLE_EQ(acc.Mrr(), 0.0);
}

TEST(MetricsTest, FormatAccuracyRowContainsNumbers) {
  TopKAccuracy acc;
  acc.Add(0);
  std::string row = FormatAccuracyRow("test", acc, {1, 10});
  EXPECT_NE(row.find("test"), std::string::npos);
  EXPECT_NE(row.find("100.0%"), std::string::npos);
  EXPECT_NE(row.find("n=1"), std::string::npos);
}

TEST(MetricsTest, RankOfInterpretationBySignature) {
  Interpretation a, b;
  a.nodes = {1};
  b.nodes = {2};
  std::vector<Interpretation> ranked = {a, b};
  EXPECT_EQ(RankOfInterpretation(ranked, b.Signature()), 1);
  EXPECT_EQ(RankOfInterpretation(ranked, "nope"), -1);
}

}  // namespace
}  // namespace km
