// Cross-module property tests: randomized checks against brute-force
// reference implementations.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <set>

#include "common/lru_cache.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/trace.h"
#include "core/keymantic.h"
#include "datasets/university.h"
#include "engine/executor.h"
#include "graph/interpretation.h"
#include "metadata/term.h"
#include "relational/csv.h"
#include "relational/database.h"
#include "text/measure_registry.h"
#include "text/similarity.h"
#include "text/stemmer.h"
#include "text/tokenizer.h"

namespace km {
namespace {

// ------------------------------------------------- executor vs reference

// Builds a random 3-relation database with FK chain A <- B <- C.
Database RandomChainDb(Rng* rng) {
  Database db("prop");
  EXPECT_TRUE(db.CreateRelation(RelationSchema(
                                    "A", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"X", DataType::kInt, DomainTag::kNone}}))
                  .ok());
  EXPECT_TRUE(db.CreateRelation(RelationSchema(
                                    "B", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"A", DataType::kText, DomainTag::kNone},
                                          {"Y", DataType::kInt, DomainTag::kNone}}))
                  .ok());
  EXPECT_TRUE(db.CreateRelation(RelationSchema(
                                    "C", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"B", DataType::kText, DomainTag::kNone},
                                          {"Z", DataType::kInt, DomainTag::kNone}}))
                  .ok());
  EXPECT_TRUE(db.AddForeignKey({"B", "A", "A", "Id"}).ok());
  EXPECT_TRUE(db.AddForeignKey({"C", "B", "B", "Id"}).ok());
  size_t na = 2 + rng->Uniform(6), nb = 2 + rng->Uniform(8), nc = 2 + rng->Uniform(8);
  for (size_t i = 0; i < na; ++i) {
    EXPECT_TRUE(db.Insert("A", {Value::Text("a" + std::to_string(i)),
                                Value::Int(static_cast<int64_t>(rng->Uniform(5)))})
                    .ok());
  }
  for (size_t i = 0; i < nb; ++i) {
    EXPECT_TRUE(db.Insert("B", {Value::Text("b" + std::to_string(i)),
                                rng->Bernoulli(0.15)
                                    ? Value::Null()
                                    : Value::Text("a" + std::to_string(rng->Uniform(na))),
                                Value::Int(static_cast<int64_t>(rng->Uniform(5)))})
                    .ok());
  }
  for (size_t i = 0; i < nc; ++i) {
    EXPECT_TRUE(db.Insert("C", {Value::Text("c" + std::to_string(i)),
                                Value::Text("b" + std::to_string(rng->Uniform(nb))),
                                Value::Int(static_cast<int64_t>(rng->Uniform(5)))})
                    .ok());
  }
  return db;
}

// Reference: nested-loop evaluation of the same SPJ query.
size_t NestedLoopCount(const Database& db, const SpjQuery& q) {
  const Table* ta = db.FindTable("A");
  const Table* tb = db.FindTable("B");
  const Table* tc = db.FindTable("C");
  size_t count = 0;
  for (const Row& a : ta->rows()) {
    for (const Row& b : tb->rows()) {
      if (b[1].is_null() || !(b[1] == a[0])) continue;
      for (const Row& c : tc->rows()) {
        if (!(c[1] == b[0])) continue;
        bool pass = true;
        for (const Predicate& p : q.predicates) {
          const Row* row = p.attr.relation == "A" ? &a
                           : p.attr.relation == "B" ? &b
                                                    : &c;
          const Table* t = db.FindTable(p.attr.relation);
          auto idx = t->schema().AttributeIndex(p.attr.attribute);
          if (!EvalPredicateOp((*row)[*idx], p.op, p.value)) {
            pass = false;
            break;
          }
        }
        if (pass) ++count;
      }
    }
  }
  return count;
}

class ExecutorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorPropertyTest, ChainJoinMatchesNestedLoops) {
  Rng rng(GetParam() * 31337);
  Database db = RandomChainDb(&rng);
  Executor exec(db);
  SpjQuery q;
  q.relations = {"A", "B", "C"};
  q.joins = {{{"B", "A"}, {"A", "Id"}}, {{"C", "B"}, {"B", "Id"}}};
  // 0-2 random predicates.
  size_t preds = rng.Uniform(3);
  const char* rels[] = {"A", "B", "C"};
  const char* attrs[] = {"X", "Y", "Z"};
  for (size_t i = 0; i < preds; ++i) {
    size_t pick = rng.Uniform(3);
    PredicateOp op = rng.Bernoulli(0.5) ? PredicateOp::kEq : PredicateOp::kLe;
    q.predicates.push_back({{rels[pick], attrs[pick]},
                            op,
                            Value::Int(static_cast<int64_t>(rng.Uniform(5)))});
  }
  auto count = exec.Count(q);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, NestedLoopCount(db, q));
}

INSTANTIATE_TEST_SUITE_P(RandomDbs, ExecutorPropertyTest,
                         ::testing::Range<uint64_t>(1, 31));

// ------------------------------------------------- Steiner vs brute force

// Brute-force minimum Steiner tree by enumerating edge subsets (tiny
// graphs only).
double BruteForceSteiner(const SchemaGraph& g, const std::vector<size_t>& terminals) {
  const size_t m = g.edge_count();
  double best = -1;
  for (uint32_t mask = 0; mask < (1u << m); ++mask) {
    // Collect nodes and cost.
    std::set<size_t> nodes(terminals.begin(), terminals.end());
    double cost = 0;
    for (size_t e = 0; e < m; ++e) {
      if (mask & (1u << e)) {
        nodes.insert(g.edges()[e].from);
        nodes.insert(g.edges()[e].to);
        cost += g.edges()[e].weight;
      }
    }
    if (best >= 0 && cost >= best) continue;
    // Connectivity of terminals over chosen edges.
    std::set<size_t> visited = {terminals[0]};
    bool grew = true;
    while (grew) {
      grew = false;
      for (size_t e = 0; e < m; ++e) {
        if (!(mask & (1u << e))) continue;
        bool f = visited.count(g.edges()[e].from) != 0;
        bool t = visited.count(g.edges()[e].to) != 0;
        if (f != t) {
          visited.insert(f ? g.edges()[e].to : g.edges()[e].from);
          grew = true;
        }
      }
    }
    bool all = true;
    for (size_t t : terminals) all &= visited.count(t) != 0;
    if (all) best = cost;
  }
  return best;
}

// A small random schema so the graph stays brute-forceable (< 20 edges).
Database RandomTinySchema(Rng* rng) {
  Database db("tiny");
  size_t num_rel = 2 + rng->Uniform(2);  // 2-3 relations
  for (size_t r = 0; r < num_rel; ++r) {
    std::vector<AttributeDef> attrs;
    attrs.push_back({"Id", DataType::kText, DomainTag::kNone, true});
    size_t extra = 1 + rng->Uniform(2);
    for (size_t a = 0; a < extra; ++a) {
      attrs.push_back({"P" + std::to_string(a), DataType::kText, DomainTag::kNone});
    }
    EXPECT_TRUE(db.CreateRelation(RelationSchema("R" + std::to_string(r), attrs)).ok());
  }
  // FK chain plus a possible chord via payload attributes.
  for (size_t r = 1; r < num_rel; ++r) {
    EXPECT_TRUE(db.AddForeignKey({"R" + std::to_string(r), "P0",
                                  "R" + std::to_string(r - 1), "Id"})
                    .ok());
  }
  return db;
}

class SteinerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SteinerPropertyTest, TopTreeMatchesBruteForceOptimum) {
  Rng rng(GetParam() * 7919);
  Database db = RandomTinySchema(&rng);
  Terminology terminology(db.schema());
  SchemaGraph graph(terminology, db.schema());
  if (graph.edge_count() >= 20) GTEST_SKIP() << "graph too large for brute force";
  // Random terminals (2-3 distinct nodes).
  size_t g = 2 + rng.Uniform(2);
  std::vector<size_t> all(graph.node_count());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  rng.Shuffle(&all);
  std::vector<size_t> terminals(all.begin(), all.begin() + static_cast<ssize_t>(g));

  auto trees = TopKSteinerTrees(graph, terminals);
  double brute = BruteForceSteiner(graph, terminals);
  if (brute < 0) {
    ASSERT_TRUE(!trees.ok() || trees->empty());
    return;
  }
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  EXPECT_NEAR((*trees)[0].cost, brute, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSchemas, SteinerPropertyTest,
                         ::testing::Range<uint64_t>(1, 31));

// ------------------------------------------ canonical signature stability

class SignaturePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SignaturePropertyTest, PermutationInvariant) {
  Rng rng(GetParam() * 131);
  SpjQuery q;
  size_t nrel = 1 + rng.Uniform(4);
  for (size_t i = 0; i < nrel; ++i) q.relations.push_back("R" + std::to_string(i));
  for (size_t i = 1; i < nrel; ++i) {
    q.joins.push_back({{"R" + std::to_string(i), "fk"},
                       {"R" + std::to_string(i - 1), "Id"}});
  }
  for (size_t i = 0; i < rng.Uniform(4); ++i) {
    q.predicates.push_back({{"R" + std::to_string(rng.Uniform(nrel)), "A"},
                            PredicateOp::kEq,
                            Value::Int(static_cast<int64_t>(rng.Uniform(10)))});
  }
  SpjQuery shuffled = q;
  rng.Shuffle(&shuffled.relations);
  rng.Shuffle(&shuffled.joins);
  rng.Shuffle(&shuffled.predicates);
  // Also flip join sides.
  for (JoinEdge& j : shuffled.joins) {
    if (rng.Bernoulli(0.5)) std::swap(j.left, j.right);
  }
  EXPECT_EQ(q.CanonicalSignature(), shuffled.CanonicalSignature());
}

INSTANTIATE_TEST_SUITE_P(RandomQueries, SignaturePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));


// ------------------------------------------------------------ text fuzzing

class TextFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TextFuzzTest, TokenizerNeverCrashesOrEmitsEmptyTokens) {
  Rng rng(GetParam() * 2654435761u);
  // Random printable garbage with quotes and punctuation sprinkled in.
  std::string query;
  size_t len = rng.Uniform(60);
  for (size_t i = 0; i < len; ++i) {
    static const char kChars[] =
        "abcXYZ0189 \t\"\"''.,;?!@-_/\\()[]{}#$%&*+=<>~";
    query += kChars[rng.Uniform(sizeof(kChars) - 1)];
  }
  auto tokens = Tokenize(query);
  for (const std::string& t : tokens) EXPECT_FALSE(t.empty());
}

TEST_P(TextFuzzTest, StemmerNeverLengthensAndIsDeterministic) {
  Rng rng(GetParam() * 11400714819323198485ull);
  std::string word;
  size_t len = 1 + rng.Uniform(14);
  for (size_t i = 0; i < len; ++i) {
    word += static_cast<char>('a' + rng.Uniform(26));
  }
  std::string s1 = PorterStem(word);
  std::string s2 = PorterStem(word);
  EXPECT_EQ(s1, s2);
  EXPECT_LE(s1.size(), word.size());
  EXPECT_FALSE(s1.empty());
}

TEST_P(TextFuzzTest, SimilaritiesStayInUnitInterval) {
  Rng rng(GetParam() * 97531);
  auto random_word = [&rng]() {
    std::string w;
    size_t len = rng.Uniform(12);
    for (size_t i = 0; i < len; ++i) {
      w += static_cast<char>('a' + rng.Uniform(26));
    }
    return w;
  };
  std::string a = random_word(), b = random_word();
  for (double s : {JaroWinklerSimilarity(a, b), TrigramJaccard(a, b),
                   NormalizedLevenshtein(a, b), NameSimilarity(a, b),
                   AbbreviationScore(a, b)}) {
    EXPECT_GE(s, 0.0) << a << " / " << b;
    EXPECT_LE(s, 1.0) << a << " / " << b;
  }
}

// Random mixed-case identifier-ish string, to fuzz the registry measures
// and the lowered:: fast paths.
std::string RandomIdentifier(Rng* rng) {
  std::string w;
  size_t len = rng->Uniform(14);
  for (size_t i = 0; i < len; ++i) {
    uint64_t roll = rng->Uniform(30);
    if (roll < 26) {
      char c = static_cast<char>('a' + roll);
      w += rng->Bernoulli(0.2) ? static_cast<char>(c - 'a' + 'A') : c;
    } else if (roll < 28) {
      w += static_cast<char>('0' + rng->Uniform(10));
    } else {
      w += '_';
    }
  }
  return w;
}

TEST_P(TextFuzzTest, RegistryMeasuresStayInUnitIntervalAndHonorSymmetry) {
  Rng rng(GetParam() * 777767777);
  std::string a = RandomIdentifier(&rng), b = RandomIdentifier(&rng);
  for (const std::string& name : MeasureRegistry::Global().Names()) {
    auto m = MeasureRegistry::Global().Create(name);
    ASSERT_NE(m, nullptr) << name;
    double ab = m->Score(a, b), ba = m->Score(b, a);
    EXPECT_GE(ab, 0.0) << name << ": " << a << " / " << b;
    EXPECT_LE(ab, 1.0) << name << ": " << a << " / " << b;
    // Measures that claim symmetry must deliver it bit-for-bit; the
    // asymmetric ones (abbreviation) are exempt by contract.
    if (m->symmetric()) {
      EXPECT_DOUBLE_EQ(ab, ba) << name << ": " << a << " / " << b;
    }
  }
}

TEST_P(TextFuzzTest, LoweredVariantsMatchPublicOnPreLoweredInput) {
  Rng rng(GetParam() * 31337731);
  auto lowered_word = [&rng]() {
    std::string w;
    size_t len = rng.Uniform(12);
    for (size_t i = 0; i < len; ++i) {
      // Lower-case letters plus digits/underscore — already "lowered", so
      // the public measures' case folding must be a no-op.
      uint64_t roll = rng.Uniform(28);
      w += roll < 26 ? static_cast<char>('a' + roll)
                     : (roll == 26 ? '9' : '_');
    }
    return w;
  };
  std::string a = lowered_word(), b = lowered_word();
  EXPECT_DOUBLE_EQ(lowered::JaroWinklerSimilarity(a, b),
                   JaroWinklerSimilarity(a, b))
      << a << " / " << b;
  EXPECT_DOUBLE_EQ(lowered::JaroSimilarity(a, b), JaroSimilarity(a, b))
      << a << " / " << b;
  EXPECT_DOUBLE_EQ(lowered::TrigramJaccard(a, b), TrigramJaccard(a, b))
      << a << " / " << b;
  EXPECT_DOUBLE_EQ(lowered::AbbreviationScore(a, b), AbbreviationScore(a, b))
      << a << " / " << b;
  EXPECT_DOUBLE_EQ(lowered::NormalizedLevenshtein(a, b),
                   NormalizedLevenshtein(a, b))
      << a << " / " << b;
}

INSTANTIATE_TEST_SUITE_P(Random, TextFuzzTest, ::testing::Range<uint64_t>(1, 41));

// --------------------------------------------------- value round-tripping

class ValueRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueRoundTripTest, ParseToStringRoundTripsInts) {
  Rng rng(GetParam() * 613);
  int64_t v = rng.UniformInt(-1000000, 1000000);
  Value value = Value::Int(v);
  auto reparsed = Value::Parse(value.ToString(), DataType::kInt);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, value);
}

TEST_P(ValueRoundTripTest, CsvLineRoundTripsArbitraryFields) {
  Rng rng(GetParam() * 50021);
  std::vector<std::string> fields;
  size_t n = 1 + rng.Uniform(5);
  for (size_t i = 0; i < n; ++i) {
    std::string f;
    size_t len = rng.Uniform(10);
    for (size_t j = 0; j < len; ++j) {
      static const char kChars[] = "ab\",'x ";
      f += kChars[rng.Uniform(sizeof(kChars) - 1)];
    }
    fields.push_back(f);
  }
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line += ',';
    // Quote everything so empty fields survive as empty strings.
    std::string quoted = "\"";
    for (char c : fields[i]) {
      if (c == '"') quoted += "\"\"";
      else quoted += c;
    }
    quoted += "\"";
    line += quoted;
  }
  std::vector<bool> was_quoted;
  auto parsed = ParseCsvLine(line, &was_quoted);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_EQ(*parsed, fields);
}

INSTANTIATE_TEST_SUITE_P(Random, ValueRoundTripTest, ::testing::Range<uint64_t>(1, 31));

// ---------------------------------------------------------------------------
// Observability invariants: the accounting identities the metrics and
// tracing layers promise, exercised under randomized inputs.

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Every Get() lands in exactly one of {hit, miss}: after any interleaving
// of lookups and insertions, hits + misses equals the number of lookups.
TEST_P(MetricsPropertyTest, CacheLookupsPartitionIntoHitsAndMisses) {
  Rng rng(GetParam());
  LruCache<int, int> cache(/*capacity=*/8);
  uint64_t lookups = 0;
  for (int i = 0; i < 500; ++i) {
    const int key = static_cast<int>(rng.Uniform(32));
    if (rng.Uniform(2) == 0) {
      cache.Put(key, std::make_shared<int>(key));
    } else {
      (void)cache.Get(key);
      ++lookups;
    }
  }
  const CacheCounters c = cache.Counters();
  EXPECT_EQ(c.hits + c.misses, lookups);
}

// A histogram never loses or invents observations: the bucket counts
// (including the overflow bucket) always sum to Count().
TEST_P(MetricsPropertyTest, HistogramBucketsSumToCount) {
  Rng rng(GetParam());
  Histogram hist(DefaultLatencyBucketsMs());
  uint64_t observed = 0;
  double expected_sum = 0;
  for (int i = 0; i < 400; ++i) {
    // Spread observations across all buckets, overflow included.
    const double value = rng.UniformDouble() * 20000.0 - 100.0;
    hist.Observe(value);
    expected_sum += value;
    ++observed;
  }
  uint64_t in_buckets = 0;
  for (uint64_t b : hist.BucketCounts()) in_buckets += b;
  EXPECT_EQ(in_buckets, observed);
  EXPECT_EQ(hist.Count(), observed);
  // Sum is kept in fixed-point microseconds; allow that quantization.
  EXPECT_NEAR(hist.Sum(), expected_sum, 1e-3 * observed);
}

INSTANTIATE_TEST_SUITE_P(Random, MetricsPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

namespace {

const Database& PropertyUniversity() {
  static auto& db = *[] {
    auto built = BuildUniversityDatabase();
    if (!built.ok()) std::abort();
    return new Database(std::move(*built));
  }();
  return db;
}

void CheckChildWallSums(const TraceNode& node) {
  double child_sum = 0;
  for (const auto& child : node.children()) {
    CheckChildWallSums(*child);
    child_sum += child->wall_ms();
  }
  // Serial execution: children occupy disjoint sub-intervals of the parent
  // span, so their wall times can never sum past it (tiny epsilon for the
  // floating-point conversion of the nanosecond readings).
  EXPECT_LE(child_sum, node.wall_ms() + 1e-6)
      << "children of '" << node.name() << "' outlast their parent";
}

}  // namespace

// Wall-clock accounting is conservative: under a serial engine the time
// attributed to a span's children never exceeds the span's own time, at
// every level of the tree.
TEST(TraceInvariantTest, ChildWallTimesSumToAtMostParent) {
  EngineOptions opts;
  opts.trace = true;
  KeymanticEngine engine(PropertyUniversity(), opts);
  for (const char* query : {"carter", "department physics", "project year"}) {
    auto result = engine.Answer(query, 5);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_NE(result->trace, nullptr);
    CheckChildWallSums(*result->trace);
  }
}

// The zero-cost promise: an engine with tracing disabled produces answers
// byte-identical to a traced one — same SQL, same scores (bit-for-bit),
// same quality — and carries no trace or provenance at all.
TEST(TraceInvariantTest, DisabledTracerLeavesAnswerBytesIdentical) {
  EngineOptions plain_opts;
  KeymanticEngine plain(PropertyUniversity(), plain_opts);
  EngineOptions traced_opts;
  traced_opts.trace = true;
  traced_opts.explain = true;
  KeymanticEngine traced(PropertyUniversity(), traced_opts);

  for (const char* query : {"carter", "department physics", "project year"}) {
    auto a = plain.Answer(query, 5);
    auto b = traced.Answer(query, 5);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->trace, nullptr);
    EXPECT_TRUE(a->provenance.empty());
    EXPECT_NE(b->trace, nullptr);
    EXPECT_EQ(a->quality, b->quality);
    ASSERT_EQ(a->explanations.size(), b->explanations.size());
    for (size_t i = 0; i < a->explanations.size(); ++i) {
      const Explanation& ea = a->explanations[i];
      const Explanation& eb = b->explanations[i];
      EXPECT_EQ(ea.sql.ToSql(), eb.sql.ToSql());
      EXPECT_EQ(ea.configuration.term_for_keyword, eb.configuration.term_for_keyword);
      // Bit-for-bit, not approximately: tracing must not reorder a single
      // floating-point operation in the scoring path.
      EXPECT_EQ(std::memcmp(&ea.score, &eb.score, sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&ea.forward_score, &eb.forward_score, sizeof(double)), 0);
      EXPECT_EQ(std::memcmp(&ea.backward_score, &eb.backward_score, sizeof(double)), 0);
    }
  }
}

}  // namespace
}  // namespace km
