// Deterministic in-process harness for the network front end.
//
// Real ports and real timing make protocol tests flaky; this harness
// removes both:
//
//   * connections are socketpair(2) ends — the server adopts one end via
//     NetServer::AdoptConnection, the test scripts the other, so nothing
//     ever listens and two tests cannot collide on a port;
//   * the server's clock is a FakeClock the test advances explicitly, so
//     idle-timeout behavior is driven, not slept for.
//
// The scripted side can send partial frames, split a frame's bytes at
// arbitrary offsets, and stall mid-frame — the hostile shapes a real
// network produces, made reproducible.

#ifndef KM_TESTS_NET_HARNESS_H_
#define KM_TESTS_NET_HARNESS_H_

#include <dirent.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.h"
#include "common/status.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/tenant.h"

namespace km::net {

/// Number of open file descriptors in this process (via /proc/self/fd).
/// The census descriptor itself (opendir's) is excluded.
inline int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  return count - 3;  // ".", "..", and the opendir fd itself
}

/// gtest listener asserting that every test gives back each fd it opened —
/// the leak check every net suite runs, not just the chaos soak. Install
/// once from main()/a static registrar:
///   testing::UnitTest::GetInstance()->listeners().Append(new FdCensus);
class FdCensus : public testing::EmptyTestEventListener {
 public:
  void OnTestStart(const testing::TestInfo&) override {
    baseline_ = CountOpenFds();
  }
  void OnTestEnd(const testing::TestInfo& info) override {
    if (baseline_ < 0) return;  // /proc unavailable: census disabled
    const int now = CountOpenFds();
    EXPECT_EQ(baseline_, now)
        << "fd leak: " << info.test_suite_name() << "." << info.name()
        << " started with " << baseline_ << " open fds and ended with "
        << now;
  }

 private:
  int baseline_ = -1;
};

/// Registers the census at static-init time (one per test binary).
struct FdCensusRegistrar {
  FdCensusRegistrar() {
    testing::UnitTest::GetInstance()->listeners().Append(new FdCensus);
  }
};

/// Manually advanced clock. Starts at an arbitrary epoch (1e6 ms) so code
/// subtracting idle windows never sees negative time.
class FakeClock {
 public:
  double NowMs() const {
    return static_cast<double>(us_.load(std::memory_order_relaxed)) / 1000.0;
  }
  void AdvanceMs(double ms) {
    us_.fetch_add(static_cast<int64_t>(ms * 1000.0),
                  std::memory_order_relaxed);
  }
  std::function<double()> AsFunction() {
    return [this] { return NowMs(); };
  }

 private:
  std::atomic<int64_t> us_{1'000'000'000};  // 1e6 ms
};

/// A connected AF_UNIX stream pair; both fds are owned by whoever takes
/// them (the harness hands one to the server, one to a client).
inline Status MakeSocketPair(int* server_end, int* client_end) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::Internal("socketpair failed");
  }
  *server_end = fds[0];
  *client_end = fds[1];
  return Status::OK();
}

/// Sends `bytes` split at the given offsets (ascending, each in
/// (0, size)), pausing between pieces so the server's poll loop observes
/// each piece as its own read — the wire shape of a slow or adversarial
/// peer. A stall is just a split with no following piece: send a prefix
/// with SendBytes and stop.
inline Status SendInPieces(NetClient& client, const std::string& bytes,
                           const std::vector<size_t>& splits,
                           int pause_ms = 5) {
  size_t start = 0;
  auto send_piece = [&](size_t end) -> Status {
    KM_CHECK(end >= start && end <= bytes.size());
    if (end > start) {
      KM_RETURN_IF_ERROR(client.SendBytes(bytes.data() + start, end - start));
    }
    start = end;
    return Status::OK();
  };
  for (const size_t offset : splits) {
    KM_RETURN_IF_ERROR(send_piece(offset));
    std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms));
  }
  return send_piece(bytes.size());
}

/// A started NetServer in harness mode (no listener, fake clock) over a
/// caller-owned TenantRegistry.
class NetHarness {
 public:
  explicit NetHarness(TenantRegistry& tenants, NetServerOptions options = {}) {
    options.listen = false;
    server_ = std::make_unique<NetServer>(tenants, options,
                                          clock_.AsFunction());
    KM_CHECK_OK(server_->Start());
  }
  ~NetHarness() { server_->Shutdown(); }

  /// New scripted connection: the server adopts one socketpair end, the
  /// returned client owns the other.
  std::unique_ptr<NetClient> NewClient() {
    int server_end = -1, client_end = -1;
    KM_CHECK_OK(MakeSocketPair(&server_end, &client_end));
    KM_CHECK_OK(server_->AdoptConnection(server_end));
    return std::make_unique<NetClient>(client_end);
  }

  NetServer& server() { return *server_; }
  FakeClock& clock() { return clock_; }

 private:
  FakeClock clock_;
  std::unique_ptr<NetServer> server_;
};

}  // namespace km::net

#endif  // KM_TESTS_NET_HARNESS_H_
