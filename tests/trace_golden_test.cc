// Golden-trace regression suite.
//
// Answers a fixed set of canonical queries across all four evaluation
// databases with tracing + EXPLAIN on, and snapshots the *stable* part of
// the observability output against checked-in goldens:
//
//   * the span-tree shape — stage names, nesting, counter names — via
//     TraceNode::ShapeString(), and
//   * the per-keyword weight-provenance lines via AnswerResult::Explain
//     with include_timings=false.
//
// Timings and counter values vary run to run and are deliberately absent
// from the snapshot. Every query is answered twice, serial (threads=0)
// and with a 4-thread pool, and both runs must match the same golden:
// slot-pinned spans make the tree deterministic under ParallelFor, and
// this suite is the lock on that property (it also runs under tsan).
//
// The engines disable both the keyword-row and the Steiner caches — a
// cache hit legitimately changes the span shape (the cached stage never
// runs), so cached engines cannot be golden-tested.
//
// Refresh after an intentional pipeline change with
//   ./trace_golden_test --update_goldens

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/keymantic.h"
#include "datasets/dblp.h"
#include "datasets/imdb.h"
#include "datasets/mondial.h"
#include "datasets/university.h"
#include "gtest/gtest.h"

namespace km {
namespace {

bool g_update_goldens = false;

struct GoldenCase {
  const char* dataset;
  const char* id;  // golden file stem
  const char* query;
};

// Two canonical queries per evaluation database. Chosen to exercise the
// main shape variants: schema-only vs value keywords, 2 vs 3 keywords,
// single- vs multi-relation configurations.
constexpr GoldenCase kCases[] = {
    {"university", "university_carter", "carter"},
    {"university", "university_department_physics", "department physics"},
    {"mondial", "mondial_veleth_population", "Veleth population"},
    {"mondial", "mondial_river_length", "river length"},
    {"dblp", "dblp_journal_publisher", "journal publisher"},
    {"dblp", "dblp_conference_proceedings", "conference proceedings 2004"},
    {"imdb", "imdb_movie_genre_comedy", "movie genre comedy"},
    {"imdb", "imdb_person_directs_rating", "person directs rating"},
};

StatusOr<Database> BuildDataset(const std::string& name) {
  if (name == "university") return BuildUniversityDatabase();
  if (name == "mondial") return BuildMondialDatabase();
  if (name == "imdb") return BuildImdbDatabase();
  DblpOptions opts;
  opts.persons = 1000;
  opts.articles = 1500;
  opts.inproceedings = 2000;
  return BuildDblpDatabase(opts);
}

const Database& Dataset(const std::string& name) {
  static auto& cache = *new std::map<std::string, std::unique_ptr<Database>>();
  auto it = cache.find(name);
  if (it == cache.end()) {
    auto db = BuildDataset(name);
    if (!db.ok()) {
      ADD_FAILURE() << name << " build failed: " << db.status().ToString();
      std::abort();
    }
    it = cache.emplace(name, std::make_unique<Database>(std::move(*db))).first;
  }
  return *it->second;
}

// One engine per (dataset, thread count), shared by all cases — engine
// construction dominates the suite otherwise.
const KeymanticEngine& Engine(const std::string& dataset, size_t threads) {
  static auto& cache =
      *new std::map<std::string, std::unique_ptr<KeymanticEngine>>();
  const std::string key = dataset + "/" + std::to_string(threads);
  auto it = cache.find(key);
  if (it == cache.end()) {
    EngineOptions opts;
    opts.trace = true;
    opts.explain = true;
    opts.threads = threads;
    opts.steiner_cache_capacity = 0;             // cache hits change the shape
    opts.weights.keyword_row_cache_capacity = 0;  // ditto
    it = cache
             .emplace(key, std::make_unique<KeymanticEngine>(Dataset(dataset),
                                                             opts))
             .first;
  }
  return *it->second;
}

std::string GoldenPath(const GoldenCase& c) {
  return std::string(KM_GOLDEN_DIR) + "/" + c.id + ".golden";
}

StatusOr<std::string> ReadGolden(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("missing golden " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The stable observability snapshot of one answered query.
std::string Snapshot(const AnswerResult& result) {
  return result.Explain(/*include_timings=*/false);
}

class TraceGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(TraceGolden, SerialAndParallelMatchGolden) {
  const GoldenCase& c = GetParam();

  auto serial = Engine(c.dataset, 0).Answer(c.query, 5);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ASSERT_FALSE(serial->explanations.empty());
  ASSERT_NE(serial->trace, nullptr);
  ASSERT_FALSE(serial->provenance.empty());
  const std::string snapshot = Snapshot(*serial);

  // Determinism under the pool: the 4-thread engine must produce the
  // byte-identical snapshot, not merely an equivalent one.
  auto parallel = Engine(c.dataset, 4).Answer(c.query, 5);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(snapshot, Snapshot(*parallel))
      << "serial vs threads=4 span trees diverge for '" << c.query << "'";

  const std::string path = GoldenPath(c);
  if (g_update_goldens) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << snapshot;
    return;
  }
  auto golden = ReadGolden(path);
  ASSERT_TRUE(golden.ok()) << golden.status().ToString()
                           << " (regenerate with --update_goldens)";
  EXPECT_EQ(*golden, snapshot) << "golden drift for '" << c.query
                               << "' — intentional pipeline changes need "
                                  "--update_goldens";
}

INSTANTIATE_TEST_SUITE_P(Queries, TraceGolden, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<GoldenCase>& info) {
                           return std::string(info.param.id);
                         });

// The golden queries above lock the *shape*; these two lock structural
// side-conditions of the snapshot machinery itself.

TEST(TraceGoldenMeta, SnapshotHasAllPipelineStages) {
  auto result = Engine("university", 0).Answer("department physics", 5);
  ASSERT_TRUE(result.ok());
  const std::string shape = result->trace->ShapeString();
  for (const char* stage : {"answer", "tokenize", "forward", "backward",
                            "combine", "combine.translate"}) {
    EXPECT_NE(shape.find(stage), std::string::npos)
        << "stage '" << stage << "' missing from:\n"
        << shape;
  }
}

TEST(TraceGoldenMeta, ChromeExportIsOneEventPerSpan) {
  auto result = Engine("university", 0).Answer("department physics", 5);
  ASSERT_TRUE(result.ok());
  const std::string json = result->trace->ChromeTraceJson();
  size_t events = 0;
  for (size_t pos = 0; (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
       ++pos) {
    ++events;
  }
  EXPECT_EQ(events, result->trace->SpanCount());
}

}  // namespace
}  // namespace km

int main(int argc, char** argv) {
  // Strip the harness flag before gtest sees (and rejects) it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update_goldens") {
      km::g_update_goldens = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
