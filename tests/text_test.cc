// Tests for km_text: similarity measures, thesaurus, recognizers,
// tokenizer.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <vector>

#include "text/measure_registry.h"
#include "text/recognizers.h"
#include "text/similarity.h"
#include "text/thesaurus.h"
#include "text/gazetteer.h"
#include "text/stemmer.h"
#include "text/tokenizer.h"

namespace km {
namespace {

// ------------------------------------------------------------ similarity

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(NormalizedLevenshteinTest, RangeAndCase) {
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("", ""), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("ABC", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedLevenshtein("abcd", "wxyz"), 0.0);
  double mid = NormalizedLevenshtein("department", "dept");
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 1.0);
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("abc", ""), 0.0);
  // Classic MARTHA/MARHTA example: jaro 0.944, jw 0.961.
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.9611, 1e-3);
}

TEST(JaroWinklerTest, PrefixBonusHelps) {
  double with_prefix = JaroWinklerSimilarity("department", "departement");
  double without = JaroSimilarity("department", "departement");
  EXPECT_GT(with_prefix, without);
}

TEST(TrigramJaccardTest, Basics) {
  EXPECT_DOUBLE_EQ(TrigramJaccard("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("", ""), 1.0);
  EXPECT_GT(TrigramJaccard("keyword", "keywords"), 0.5);
  EXPECT_LT(TrigramJaccard("alpha", "omega"), 0.3);
}

TEST(TrigramJaccardTest, EmptyVsNonEmptyScoresZero) {
  // Regression: the old '#' padding collapsed the empty string to the
  // single all-padding trigram "###", which "#" (and "##") also produce,
  // so "" vs "#" scored a perfect 1.0. With out-of-band sentinel padding
  // the empty string has no trigrams at all.
  EXPECT_DOUBLE_EQ(TrigramJaccard("", "#"), 0.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("#", ""), 0.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("", "##"), 0.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(TrigramJaccard("abc", ""), 0.0);
  // '#' remains an ordinary character between non-empty strings.
  EXPECT_DOUBLE_EQ(TrigramJaccard("#", "#"), 1.0);
}

TEST(BandedLevenshteinTest, AgreesWithFullDistanceWithinCutoff) {
  EXPECT_EQ(BandedLevenshtein("kitten", "sitting", 3), 3u);
  EXPECT_EQ(BandedLevenshtein("abc", "abc", 0), 0u);
  EXPECT_EQ(BandedLevenshtein("", "abc", 3), 3u);
  EXPECT_EQ(BandedLevenshtein("flaw", "lawn", 2), 2u);
  // Beyond the cutoff any value > max_distance is a valid answer.
  EXPECT_GT(BandedLevenshtein("abcd", "wxyz", 2), 2u);
  EXPECT_GT(BandedLevenshtein("", "abcdef", 3), 3u);
}

TEST(PackedTrigramsTest, CardinalitiesMatchStringTrigrams) {
  // Jaccard computed from the packed arrays must equal the string-based
  // measure bit-for-bit — the batched kernel depends on it.
  const char* words[] = {"", "a", "ab", "abc", "department", "aaaa", "name9"};
  for (const char* a : words) {
    for (const char* b : words) {
      std::vector<uint32_t> ga, gb;
      lowered::PackedTrigrams(a, &ga);
      lowered::PackedTrigrams(b, &gb);
      std::vector<uint32_t> inter;
      std::set_intersection(ga.begin(), ga.end(), gb.begin(), gb.end(),
                            std::back_inserter(inter));
      size_t uni = ga.size() + gb.size() - inter.size();
      double packed = uni == 0 ? 1.0
                              : static_cast<double>(inter.size()) /
                                    static_cast<double>(uni);
      EXPECT_DOUBLE_EQ(packed, lowered::TrigramJaccard(a, b))
          << "'" << a << "' vs '" << b << "'";
    }
  }
}

TEST(AbbreviationScoreTest, PrefixAndSubsequence) {
  // Prefix abbreviation scores at least 0.6.
  EXPECT_GE(AbbreviationScore("dep", "department"), 0.6);
  // "dept" is a subsequence (not a prefix) of "department".
  EXPECT_GE(AbbreviationScore("dept", "department"), 0.5);
  // Subsequence but not prefix scores lower but positive.
  double sub = AbbreviationScore("dpt", "department");
  EXPECT_GT(sub, 0.0);
  EXPECT_LT(sub, AbbreviationScore("dep", "department"));
  // Not a subsequence: zero.
  EXPECT_DOUBLE_EQ(AbbreviationScore("xyz", "department"), 0.0);
  // Must start with same character.
  EXPECT_DOUBLE_EQ(AbbreviationScore("ept", "department"), 0.0);
  // Longer-than-full is never an abbreviation.
  EXPECT_DOUBLE_EQ(AbbreviationScore("departmental", "dept"), 0.0);
}

TEST(AbbreviationScoreTest, EqualStringsAfterLoweringScoreOne) {
  // Regression: the length guard used to reject equal-length pairs, so
  // "dept" vs "Dept" — identical after case folding — scored 0 instead
  // of 1 (an abbreviation trivially abbreviates itself).
  EXPECT_DOUBLE_EQ(AbbreviationScore("dept", "Dept"), 1.0);
  EXPECT_DOUBLE_EQ(AbbreviationScore("Dept", "dept"), 1.0);
  EXPECT_DOUBLE_EQ(AbbreviationScore("name", "name"), 1.0);
  EXPECT_DOUBLE_EQ(lowered::AbbreviationScore("dept", "dept"), 1.0);
  // Strictly longer still scores 0; equal-length different strings are
  // not prefixes of each other.
  EXPECT_DOUBLE_EQ(AbbreviationScore("depts", "dept"), 0.0);
  EXPECT_DOUBLE_EQ(AbbreviationScore("dept", "dept"), 1.0);
  EXPECT_DOUBLE_EQ(AbbreviationScore("abcd", "abce"), 0.0);
}

struct NameSimCase {
  const char* a;
  const char* b;
  double min;
  double max;
};

class NameSimilarityTest : public ::testing::TestWithParam<NameSimCase> {};

TEST_P(NameSimilarityTest, ScoresInExpectedBand) {
  const NameSimCase& c = GetParam();
  double s = NameSimilarity(c.a, c.b);
  EXPECT_GE(s, c.min) << c.a << " vs " << c.b;
  EXPECT_LE(s, c.max) << c.a << " vs " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NameSimilarityTest,
    ::testing::Values(
        NameSimCase{"name", "Name", 1.0, 1.0},
        NameSimCase{"personName", "person_name", 1.0, 1.0},
        NameSimCase{"dept", "DEPARTMENT", 0.6, 1.0},
        NameSimCase{"country", "Country", 1.0, 1.0},
        NameSimCase{"phone", "telephone", 0.0, 0.9},
        NameSimCase{"university", "UNIVERSITY", 1.0, 1.0},
        NameSimCase{"zzz", "Country", 0.0, 0.3},
        // Multi-word keyword vs single-word term: diluted by alignment.
        NameSimCase{"department name", "Name", 0.3, 0.7}));

TEST(NameSimilarityTest, EmptyInputsScoreZero) {
  EXPECT_DOUBLE_EQ(NameSimilarity("", "x"), 0.0);
  EXPECT_DOUBLE_EQ(NameSimilarity("x", ""), 0.0);
}

// ------------------------------------------------------ measure registry

TEST(MeasureRegistryTest, BuiltinsAreRegistered) {
  auto names = MeasureRegistry::Global().Names();
  for (const char* expected :
       {"abbreviation", "jaro", "jaro_winkler", "levenshtein", "monge_elkan",
        "name", "trigram_jaccard"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_EQ(MeasureRegistry::Global().Create("no_such_measure"), nullptr);
}

TEST(MeasureRegistryTest, MeasuresMatchFreeFunctions) {
  auto name = MeasureRegistry::Global().Create("name");
  auto jw = MeasureRegistry::Global().Create("jaro_winkler");
  auto tri = MeasureRegistry::Global().Create("trigram_jaccard");
  ASSERT_TRUE(name && jw && tri);
  // "name" makes no symmetry claim (greedy alignment is order-sensitive
  // on equal word counts); the basic measures do.
  EXPECT_FALSE(name->symmetric());
  EXPECT_TRUE(jw->symmetric());
  EXPECT_TRUE(tri->symmetric());
  EXPECT_DOUBLE_EQ(name->Score("personName", "person_name"),
                   NameSimilarity("personName", "person_name"));
  EXPECT_DOUBLE_EQ(jw->Score("MARTHA", "MARHTA"),
                   JaroWinklerSimilarity("MARTHA", "MARHTA"));
  EXPECT_DOUBLE_EQ(tri->Score("keyword", "keywords"),
                   TrigramJaccard("keyword", "keywords"));
}

TEST(MeasureRegistryTest, LevenshteinCutoffZeroesDistantPairs) {
  MeasureOptions opts;
  opts.levenshtein_max_distance = 2;
  auto banded = MeasureRegistry::Global().Create("levenshtein", opts);
  auto full = MeasureRegistry::Global().Create("levenshtein");
  ASSERT_TRUE(banded && full);
  // Within the cutoff the banded scan is exact.
  EXPECT_DOUBLE_EQ(banded->Score("kitten", "kittens"),
                   full->Score("kitten", "kittens"));
  // Beyond it the measure rounds down to 0 instead of paying for the
  // full DP table.
  EXPECT_DOUBLE_EQ(banded->Score("abcdef", "uvwxyz"), 0.0);
  EXPECT_GT(full->Score("kitten", "sitting"), 0.0);
}

TEST(MongeElkanTest, ExactAndSymmetrized) {
  auto inner = MeasureRegistry::Global().Create("jaro_winkler");
  ASSERT_TRUE(inner);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({"person", "name"}, {"name", "person"},
                                        *inner),
                   1.0);
  // The symmetrized form averages both directions, so argument order
  // cannot change the score.
  double ab = MongeElkanSimilarity({"department", "name"}, {"dept"}, *inner);
  double ba = MongeElkanSimilarity({"dept"}, {"department", "name"}, *inner);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_GT(ab, 0.0);
  EXPECT_LE(ab, 1.0);
  // Empty-vs-empty is a perfect match; empty-vs-nonempty is not.
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {}, *inner), 1.0);
  EXPECT_DOUBLE_EQ(MongeElkanSimilarity({}, {"x"}, *inner), 0.0);
}

TEST(MongeElkanTest, RegistryMeasureAppliesInnerFloor) {
  MeasureOptions opts;
  opts.monge_elkan_inner_floor = 0.99;
  auto strict = MeasureRegistry::Global().Create("monge_elkan", opts);
  auto lax = MeasureRegistry::Global().Create("monge_elkan");
  ASSERT_TRUE(strict && lax);
  // Unrelated words fall below the floor and contribute nothing.
  EXPECT_DOUBLE_EQ(strict->Score("alpha", "omega"), 0.0);
  EXPECT_GT(lax->Score("alpha", "omega"), 0.0);
  EXPECT_DOUBLE_EQ(strict->Score("person name", "person name"), 1.0);
}

// ------------------------------------------------------------- thesaurus

TEST(ThesaurusTest, SynonymsAreSymmetricAndScored) {
  Thesaurus t;
  t.AddSynonyms({"person", "people", "individual"});
  EXPECT_TRUE(t.AreSynonyms("person", "PEOPLE"));
  EXPECT_TRUE(t.AreSynonyms("people", "person"));
  EXPECT_FALSE(t.AreSynonyms("person", "dog"));
  EXPECT_DOUBLE_EQ(t.Similarity("person", "people"), Thesaurus::kSynonymScore);
  EXPECT_DOUBLE_EQ(t.Similarity("person", "person"), 1.0);
  EXPECT_DOUBLE_EQ(t.Similarity("person", "dog"), 0.0);
}

TEST(ThesaurusTest, RelatedTermsScoreLower) {
  Thesaurus t;
  t.AddRelated("author", "person");
  EXPECT_DOUBLE_EQ(t.Similarity("author", "person"), Thesaurus::kRelatedScore);
  EXPECT_DOUBLE_EQ(t.Similarity("person", "author"), Thesaurus::kRelatedScore);
}

TEST(ThesaurusTest, SynonymsOfReturnsGroup) {
  Thesaurus t;
  t.AddSynonyms({"a", "b", "c"});
  auto syn = t.SynonymsOf("a");
  EXPECT_EQ(syn.size(), 2u);
}

TEST(ThesaurusTest, BuiltinCoversSchemaVocabulary) {
  const Thesaurus& t = BuiltinThesaurus();
  EXPECT_TRUE(t.AreSynonyms("person", "people"));
  EXPECT_TRUE(t.AreSynonyms("department", "dept"));
  EXPECT_TRUE(t.AreSynonyms("country", "nation"));
  EXPECT_TRUE(t.AreSynonyms("paper", "article"));
  EXPECT_TRUE(t.AreSynonyms("phone", "telephone"));
  EXPECT_GT(t.Similarity("author", "person"), 0.0);
}

// ----------------------------------------------------------- recognizers

TEST(RecognizersTest, YearDetection) {
  EXPECT_TRUE(LooksLikeYear("2012"));
  EXPECT_TRUE(LooksLikeYear("1999"));
  EXPECT_FALSE(LooksLikeYear("3012"));
  EXPECT_FALSE(LooksLikeYear("123"));
  EXPECT_FALSE(LooksLikeYear("20a2"));
}

TEST(RecognizersTest, DateDetection) {
  EXPECT_TRUE(LooksLikeDate("2012-04-05"));
  EXPECT_TRUE(LooksLikeDate("5/4/2012"));
  EXPECT_FALSE(LooksLikeDate("2012"));
  EXPECT_FALSE(LooksLikeDate("a-b-c"));
}

TEST(RecognizersTest, EmailDetection) {
  EXPECT_TRUE(LooksLikeEmail("a@b.com"));
  EXPECT_TRUE(LooksLikeEmail("first.last@dept.univ.edu"));
  EXPECT_FALSE(LooksLikeEmail("a@b"));
  EXPECT_FALSE(LooksLikeEmail("@b.com"));
  EXPECT_FALSE(LooksLikeEmail("a@@b.com"));
  EXPECT_FALSE(LooksLikeEmail("plain"));
}

TEST(RecognizersTest, UrlDetection) {
  EXPECT_TRUE(LooksLikeUrl("https://x.org/y"));
  EXPECT_TRUE(LooksLikeUrl("www.example.com"));
  EXPECT_FALSE(LooksLikeUrl("example.com"));
}

TEST(RecognizersTest, PhoneDetection) {
  EXPECT_TRUE(LooksLikePhone("4631234"));
  EXPECT_TRUE(LooksLikePhone("+1 555 010 1234"));
  EXPECT_TRUE(LooksLikePhone("(06) 123-4567"));
  EXPECT_FALSE(LooksLikePhone("12345"));       // too short
  EXPECT_FALSE(LooksLikePhone("123a4567"));    // letters
}

TEST(RecognizersTest, CountryCodeDetection) {
  EXPECT_TRUE(LooksLikeCountryCode("IT"));
  EXPECT_TRUE(LooksLikeCountryCode("usa"));
  EXPECT_FALSE(LooksLikeCountryCode("ITAL"));
  EXPECT_FALSE(LooksLikeCountryCode("I2"));
}

TEST(RecognizersTest, CapitalizedDetection) {
  EXPECT_TRUE(LooksCapitalized("Vokram"));
  EXPECT_TRUE(LooksCapitalized("New York"));
  EXPECT_TRUE(LooksCapitalized("Refahs D."));
  EXPECT_FALSE(LooksCapitalized("vokram"));
  EXPECT_FALSE(LooksCapitalized("R2D2"));
}

TEST(RecognizersTest, LiteralShape) {
  LiteralShape s = DetectLiteralShape("42");
  EXPECT_TRUE(s.is_int);
  EXPECT_TRUE(s.is_real);
  s = DetectLiteralShape("4.5");
  EXPECT_FALSE(s.is_int);
  EXPECT_TRUE(s.is_real);
  s = DetectLiteralShape("2012-04-05");
  EXPECT_TRUE(s.is_date);
  s = DetectLiteralShape("True");
  EXPECT_TRUE(s.is_bool);
  s = DetectLiteralShape("word");
  EXPECT_FALSE(s.is_int || s.is_real || s.is_date || s.is_bool);
}

TEST(DetectShapesTest, SortedByConfidenceAndAlwaysHasFreeText) {
  auto shapes = DetectShapes("vokram@univ.edu");
  ASSERT_FALSE(shapes.empty());
  EXPECT_EQ(shapes.front().tag, DomainTag::kEmail);
  for (size_t i = 1; i < shapes.size(); ++i) {
    EXPECT_GE(shapes[i - 1].confidence, shapes[i].confidence);
  }
  bool has_freetext = false;
  for (const auto& s : shapes) has_freetext |= (s.tag == DomainTag::kFreeText);
  EXPECT_TRUE(has_freetext);
}

TEST(DetectShapesTest, UppercaseCodeScoresHigherThanLowercase) {
  auto upper = DetectShapes("IT");
  auto lower = DetectShapes("it");
  auto find = [](const std::vector<ShapeMatch>& v) {
    for (const auto& s : v) {
      if (s.tag == DomainTag::kCountryCode) return s.confidence;
    }
    return 0.0;
  };
  EXPECT_GT(find(upper), find(lower));
}

// DomainCompatibility: impossible combinations must be exactly zero.
TEST(DomainCompatibilityTest, ImpossibleCombinationsAreZero) {
  EXPECT_DOUBLE_EQ(DomainCompatibility("abc", DataType::kInt, DomainTag::kQuantity), 0.0);
  EXPECT_DOUBLE_EQ(DomainCompatibility("abc", DataType::kReal, DomainTag::kMoney), 0.0);
  EXPECT_DOUBLE_EQ(DomainCompatibility("abc", DataType::kDate, DomainTag::kDate), 0.0);
  EXPECT_DOUBLE_EQ(DomainCompatibility("abc", DataType::kBool, DomainTag::kNone), 0.0);
  EXPECT_DOUBLE_EQ(DomainCompatibility("", DataType::kText, DomainTag::kNone), 0.0);
}

TEST(DomainCompatibilityTest, SpecificPatternsBeatGenericText) {
  // "4631234" against a phone column beats it against a generic text column.
  double phone = DomainCompatibility("4631234", DataType::kText, DomainTag::kPhone);
  double generic = DomainCompatibility("4631234", DataType::kText, DomainTag::kNone);
  EXPECT_GT(phone, generic);
  // And a non-phone word barely matches a phone column.
  EXPECT_LT(DomainCompatibility("Vokram", DataType::kText, DomainTag::kPhone), 0.1);
}

TEST(DomainCompatibilityTest, YearColumn) {
  EXPECT_GT(DomainCompatibility("2012", DataType::kInt, DomainTag::kYear), 0.8);
  EXPECT_LT(DomainCompatibility("7", DataType::kInt, DomainTag::kYear), 0.3);
  EXPECT_DOUBLE_EQ(DomainCompatibility("abcd", DataType::kInt, DomainTag::kYear), 0.0);
}

TEST(DomainCompatibilityTest, CapitalizedNameVsPersonName) {
  double cap = DomainCompatibility("Vokram", DataType::kText, DomainTag::kPersonName);
  double low = DomainCompatibility("vokram", DataType::kText, DomainTag::kPersonName);
  double digits = DomainCompatibility("v0kr4m", DataType::kText, DomainTag::kPersonName);
  EXPECT_GT(cap, low);
  EXPECT_GT(low, digits);
}

// --------------------------------------------------------------- tokenizer

TEST(TokenizerTest, SplitsOnWhitespace) {
  EXPECT_EQ(Tokenize("Vokram IT"), (std::vector<std::string>{"Vokram", "IT"}));
}

TEST(TokenizerTest, DropsStopwords) {
  EXPECT_EQ(Tokenize("departments of the university"),
            (std::vector<std::string>{"departments", "university"}));
}

TEST(TokenizerTest, KeepsStopwordsWhenDisabled) {
  TokenizerOptions opts;
  opts.drop_stopwords = false;
  EXPECT_EQ(Tokenize("the cat", opts), (std::vector<std::string>{"the", "cat"}));
}

TEST(TokenizerTest, QuotedPhrasesAreSingleKeywords) {
  auto tokens = Tokenize("\"United States\" capital");
  EXPECT_EQ(tokens, (std::vector<std::string>{"United States", "capital"}));
}

TEST(TokenizerTest, UnterminatedQuoteConsumesRest) {
  auto tokens = Tokenize("x \"a b c");
  EXPECT_EQ(tokens, (std::vector<std::string>{"x", "a b c"}));
}

TEST(TokenizerTest, PhraseVocabularyFoldsMultiWordValues) {
  TokenizerOptions opts;
  opts.phrase_vocabulary = {"united states", "new york"};
  auto tokens = Tokenize("capital United States", opts);
  EXPECT_EQ(tokens, (std::vector<std::string>{"capital", "United States"}));
}

TEST(TokenizerTest, LongestPhraseWins) {
  TokenizerOptions opts;
  opts.phrase_vocabulary = {"new york", "new york city"};
  auto tokens = Tokenize("in New York City", opts);
  EXPECT_EQ(tokens, (std::vector<std::string>{"New York City"}));
}

TEST(TokenizerTest, StripsPunctuation) {
  auto tokens = Tokenize("Vokram, IT?");
  EXPECT_EQ(tokens, (std::vector<std::string>{"Vokram", "IT"}));
}

TEST(TokenizerTest, PreservesEmailAndInitials) {
  auto tokens = Tokenize("mail vokram@univ.edu Refahs D.");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"mail", "vokram@univ.edu", "Refahs", "D."}));
}

TEST(TokenizerTest, EmptyQueryYieldsNoKeywords) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   ").empty());
  EXPECT_TRUE(Tokenize("the of a").empty());
}


// ----------------------------------------------------------------- stemmer

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterStemTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemTest, StemsAsExpected) {
  EXPECT_EQ(PorterStem(GetParam().word), GetParam().stem);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PorterStemTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"caress", "caress"},   StemCase{"cats", "cat"},
        StemCase{"agreed", "agre"},     StemCase{"plastered", "plaster"},
        StemCase{"motoring", "motor"},  StemCase{"sing", "sing"},
        StemCase{"conflated", "conflat"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"},     StemCase{"falling", "fall"},
        StemCase{"happy", "happi"},     StemCase{"relational", "relat"},
        StemCase{"rational", "ration"}, StemCase{"conditional", "condit"},
        StemCase{"departments", "depart"}, StemCase{"universities", "univers"},
        StemCase{"publications", "public"}, StemCase{"adjustable", "adjust"},
        StemCase{"effective", "effect"}, StemCase{"probate", "probat"},
        StemCase{"controlling", "control"}, StemCase{"roll", "roll"}));

TEST(PorterStemTest, ShortAndNonAlphaUnchanged) {
  EXPECT_EQ(PorterStem("it"), "it");
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("x123"), "x123");
  EXPECT_EQ(PorterStem("2012"), "2012");
}

TEST(PorterStemTest, CaseInsensitive) {
  EXPECT_EQ(PorterStem("Departments"), PorterStem("departments"));
}

TEST(SameStemTest, InflectionVariantsShareStems) {
  EXPECT_TRUE(SameStem("department", "departments"));
  EXPECT_TRUE(SameStem("publication", "publications"));
  EXPECT_TRUE(SameStem("university", "universities"));
  EXPECT_FALSE(SameStem("department", "apartment"));
}

TEST(NameSimilarityTest, PluralsMatchViaStemming) {
  EXPECT_GE(NameSimilarity("departments", "DEPARTMENT"), 0.9);
  EXPECT_GE(NameSimilarity("projects", "PROJECT"), 0.9);
}

// --------------------------------------------------------------- gazetteer

TEST(GazetteerTest, CountryNames) {
  EXPECT_TRUE(IsKnownCountryName("Italy"));
  EXPECT_TRUE(IsKnownCountryName("south korea"));
  EXPECT_TRUE(IsKnownCountryName("UNITED STATES"));
  EXPECT_FALSE(IsKnownCountryName("Vokram"));
  EXPECT_FALSE(IsKnownCountryName("Rome"));
}

TEST(GazetteerTest, CountryCodes) {
  EXPECT_TRUE(IsKnownCountryCode("IT"));
  EXPECT_TRUE(IsKnownCountryCode("us"));
  EXPECT_FALSE(IsKnownCountryCode("ZZ"));
  EXPECT_FALSE(IsKnownCountryCode("ITA"));
}

TEST(GazetteerTest, Months) {
  EXPECT_TRUE(IsMonthName("January"));
  EXPECT_TRUE(IsMonthName("sep"));
  EXPECT_FALSE(IsMonthName("janvember"));
}

TEST(GazetteerTest, GivenNames) {
  EXPECT_TRUE(StartsWithGivenName("Sonia"));
  EXPECT_TRUE(StartsWithGivenName("james martinez"));
  EXPECT_FALSE(StartsWithGivenName("Zanzibar Smith"));
}

TEST(GazetteerTest, ShapesKnowledgeBeatsShape) {
  // "Italy" must score far higher on a CountryName domain than on a
  // PersonName domain even though both are capitalized words.
  double country = DomainCompatibility("Italy", DataType::kText,
                                       DomainTag::kCountryName);
  double person = DomainCompatibility("Italy", DataType::kText,
                                      DomainTag::kPersonName);
  EXPECT_GT(country, 0.9);
  EXPECT_LT(person, 0.3);
  // And conversely for a known given name.
  double p2 = DomainCompatibility("Sonia Rossi", DataType::kText,
                                  DomainTag::kPersonName);
  double c2 = DomainCompatibility("Sonia Rossi", DataType::kText,
                                  DomainTag::kCountryName);
  EXPECT_GT(p2, c2);
}

}  // namespace
}  // namespace km
