// Tests for km_graph: the database graph, MI weights, Steiner trees and
// the shortest-path baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "datasets/university.h"
#include "graph/interpretation.h"
#include "graph/mi.h"
#include "graph/schema_graph.h"
#include "graph/summary.h"
#include "core/translate.h"
#include "engine/executor.h"

namespace km {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    UniversityOptions opts;
    opts.extra_people = 20;
    opts.extra_departments = 4;
    opts.extra_universities = 2;
    opts.extra_projects = 4;
    auto db = BuildUniversityDatabase(opts);
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    terminology_ = new Terminology(db_->schema());
    graph_ = new SchemaGraph(*terminology_, db_->schema());
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete terminology_;
    delete db_;
  }

  static Database* db_;
  static Terminology* terminology_;
  static SchemaGraph* graph_;
};

Database* GraphTest::db_ = nullptr;
Terminology* GraphTest::terminology_ = nullptr;
SchemaGraph* GraphTest::graph_ = nullptr;

// ------------------------------------------------------------ SchemaGraph

TEST_F(GraphTest, NodeAndEdgeCounts) {
  EXPECT_EQ(graph_->node_count(), terminology_->size());
  // Edges: per attribute 2 structural edges (rel-attr, attr-dom) plus one
  // edge per foreign key.
  size_t attrs = 0;
  for (const auto& r : db_->schema().relations()) attrs += r.arity();
  EXPECT_EQ(graph_->edge_count(), 2 * attrs + db_->schema().foreign_keys().size());
}

TEST_F(GraphTest, StructuralEdgesHaveUnitWeight) {
  for (const GraphEdge& e : graph_->edges()) {
    if (e.kind != EdgeKind::kForeignKey) {
      EXPECT_DOUBLE_EQ(e.weight, 1.0);
    }
  }
}

TEST_F(GraphTest, AttributeConnectsRelationAndDomain) {
  auto rel = terminology_->RelationTerm("PEOPLE");
  auto attr = terminology_->AttributeTerm("PEOPLE", "Name");
  auto dom = terminology_->DomainTerm("PEOPLE", "Name");
  ASSERT_TRUE(rel && attr && dom);
  // Distances: rel-attr = 1, attr-dom = 1, rel-dom = 2.
  auto dist = graph_->Distances(*rel);
  EXPECT_DOUBLE_EQ(dist[*attr], 1.0);
  EXPECT_DOUBLE_EQ(dist[*dom], 2.0);
}

TEST_F(GraphTest, ForeignKeyConnectsDomains) {
  auto d1 = terminology_->DomainTerm("AFFILIATED", "IdPrs");
  auto d2 = terminology_->DomainTerm("PEOPLE", "Id");
  ASSERT_TRUE(d1 && d2);
  auto dist = graph_->Distances(*d1);
  EXPECT_DOUBLE_EQ(dist[*d2], 1.0);
}

TEST_F(GraphTest, GraphIsConnected) {
  auto dist = graph_->Distances(0);
  for (size_t v = 0; v < graph_->node_count(); ++v) {
    EXPECT_TRUE(std::isfinite(dist[v])) << "node " << v << " unreachable";
  }
}

TEST_F(GraphTest, ShortestPathReconstruction) {
  auto name_dom = terminology_->DomainTerm("PEOPLE", "Name");
  auto uni_country = terminology_->DomainTerm("UNIVERSITY", "Country");
  ASSERT_TRUE(name_dom && uni_country);
  auto path = graph_->ShortestPath(*name_dom, *uni_country);
  ASSERT_TRUE(path.has_value());
  ASSERT_FALSE(path->empty());
  // The path's edges must chain from source to target.
  size_t cur = *name_dom;
  for (size_t e : *path) cur = graph_->OtherEnd(e, cur);
  EXPECT_EQ(cur, *uni_country);
}

TEST_F(GraphTest, ShortestPathToSelfIsEmpty) {
  auto path = graph_->ShortestPath(3, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(path->empty());
}

// ------------------------------------------------------------------- MI

TEST_F(GraphTest, MiDistanceWithinBounds) {
  for (const ForeignKey& fk : db_->schema().foreign_keys()) {
    auto stats = ComputeMiDistance(*db_, fk);
    ASSERT_TRUE(stats.ok());
    EXPECT_GE(stats->distance, 0.0);
    EXPECT_LE(stats->distance, 1.0);
    EXPECT_GE(stats->joint_entropy, 0.0);
  }
}

TEST(MiTest, PerfectJoinHasLowDistance) {
  // A: every key referenced exactly once; B: no key referenced.
  Database db("t");
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "P", {{"Id", DataType::kText, DomainTag::kNone, true}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "R", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"Ref", DataType::kText, DomainTag::kNone}}))
                  .ok());
  ASSERT_TRUE(db.AddForeignKey({"R", "Ref", "P", "Id"}).ok());
  for (int i = 0; i < 20; ++i) {
    std::string key = "p" + std::to_string(i);
    ASSERT_TRUE(db.Insert("P", {Value::Text(key)}).ok());
    ASSERT_TRUE(db.Insert("R", {Value::Text("r" + std::to_string(i)), Value::Text(key)})
                    .ok());
  }
  auto covered = ComputeMiDistance(db, db.schema().foreign_keys()[0]);
  ASSERT_TRUE(covered.ok());

  // Now a sparse join: same tables, but only one key referenced.
  Database db2("t2");
  ASSERT_TRUE(db2.CreateRelation(RelationSchema(
                                     "P", {{"Id", DataType::kText, DomainTag::kNone, true}}))
                  .ok());
  ASSERT_TRUE(db2.CreateRelation(RelationSchema(
                                     "R", {{"Id", DataType::kText, DomainTag::kNone, true},
                                           {"Ref", DataType::kText, DomainTag::kNone}}))
                  .ok());
  ASSERT_TRUE(db2.AddForeignKey({"R", "Ref", "P", "Id"}).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db2.Insert("P", {Value::Text("p" + std::to_string(i))}).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        db2.Insert("R", {Value::Text("r" + std::to_string(i)), Value::Text("p0")}).ok());
  }
  auto sparse = ComputeMiDistance(db2, db2.schema().foreign_keys()[0]);
  ASSERT_TRUE(sparse.ok());
  EXPECT_LT(covered->distance, sparse->distance);
}

TEST(MiTest, EmptyTablesGiveMaxDistance) {
  Database db("t");
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "P", {{"Id", DataType::kText, DomainTag::kNone, true}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation(RelationSchema(
                                    "R", {{"Id", DataType::kText, DomainTag::kNone, true},
                                          {"Ref", DataType::kText, DomainTag::kNone}}))
                  .ok());
  ASSERT_TRUE(db.AddForeignKey({"R", "Ref", "P", "Id"}).ok());
  auto stats = ComputeMiDistance(db, db.schema().foreign_keys()[0]);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->distance, 1.0);
}

TEST_F(GraphTest, ApplyMiWeightsChangesOnlyFkEdges) {
  SchemaGraph g(*terminology_, db_->schema());
  ASSERT_TRUE(ApplyMiWeights(*db_, &g).ok());
  for (const GraphEdge& e : g.edges()) {
    if (e.kind == EdgeKind::kForeignKey) {
      EXPECT_GE(e.weight, 0.05);
      EXPECT_LE(e.weight, 1.0);
    } else {
      EXPECT_DOUBLE_EQ(e.weight, 1.0);
    }
  }
}

// -------------------------------------------------------- Interpretation

TEST_F(GraphTest, SingleTerminalYieldsTrivialTree) {
  auto dom = terminology_->DomainTerm("PEOPLE", "Name");
  auto trees = TopKSteinerTrees(*graph_, {*dom});
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  EXPECT_TRUE((*trees)[0].edges.empty());
  EXPECT_DOUBLE_EQ((*trees)[0].cost, 0.0);
  EXPECT_EQ((*trees)[0].nodes, (std::vector<size_t>{*dom}));
}

TEST_F(GraphTest, TwoTerminalsBestTreeIsShortestPath) {
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("PEOPLE", "Country");
  auto trees = TopKSteinerTrees(*graph_, {*a, *b});
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  // Shortest path: Dom(Name)-Name-PEOPLE-Country-Dom(Country) = 4 edges.
  EXPECT_DOUBLE_EQ((*trees)[0].cost, 4.0);
  EXPECT_EQ((*trees)[0].edges.size(), 4u);
}

TEST_F(GraphTest, TreesAreSortedByCost) {
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("UNIVERSITY", "Country");
  SteinerOptions opts;
  opts.k = 8;
  auto trees = TopKSteinerTrees(*graph_, {*a, *b}, opts);
  ASSERT_TRUE(trees.ok());
  ASSERT_GT(trees->size(), 1u);
  for (size_t i = 1; i < trees->size(); ++i) {
    EXPECT_LE((*trees)[i - 1].cost, (*trees)[i].cost + 1e-9);
  }
}

TEST_F(GraphTest, EveryTreeContainsAllTerminals) {
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("UNIVERSITY", "Country");
  auto c = terminology_->DomainTerm("PROJECT", "Year");
  SteinerOptions opts;
  opts.k = 6;
  auto trees = TopKSteinerTrees(*graph_, {*a, *b, *c}, opts);
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  for (const Interpretation& t : *trees) {
    for (size_t term : {*a, *b, *c}) {
      EXPECT_NE(std::find(t.nodes.begin(), t.nodes.end(), term), t.nodes.end());
    }
    // Tree property: |E| = |V| - 1.
    EXPECT_EQ(t.edges.size() + 1, t.nodes.size());
  }
}

TEST_F(GraphTest, TreesAreDistinct) {
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("UNIVERSITY", "Country");
  SteinerOptions opts;
  opts.k = 10;
  auto trees = TopKSteinerTrees(*graph_, {*a, *b}, opts);
  ASSERT_TRUE(trees.ok());
  std::set<std::string> sigs;
  for (const Interpretation& t : *trees) {
    EXPECT_TRUE(sigs.insert(t.Signature()).second);
  }
}

TEST_F(GraphTest, MultipleJoinPathsProduceMultipleTrees) {
  // PEOPLE and UNIVERSITY connect via DEPARTMENT (director/affiliation) and
  // via MEMBEROF-PROJECT-PARTICIPATION: at least two distinct trees.
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("UNIVERSITY", "Country");
  SteinerOptions opts;
  opts.k = 10;
  auto trees = TopKSteinerTrees(*graph_, {*a, *b}, opts);
  ASSERT_TRUE(trees.ok());
  EXPECT_GE(trees->size(), 2u);
}

TEST_F(GraphTest, ErrorsOnEmptyOrDuplicateTerminals) {
  EXPECT_EQ(TopKSteinerTrees(*graph_, {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TopKSteinerTrees(*graph_, {1, 1}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(TopKSteinerTrees(*graph_, {graph_->node_count()}).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(GraphTest, SupertreePruningDiscardRedundantTrees) {
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("PEOPLE", "Country");
  SteinerOptions opts;
  opts.k = 10;
  opts.prune_supertrees = true;
  auto pruned = TopKSteinerTrees(*graph_, {*a, *b}, opts);
  opts.prune_supertrees = false;
  auto unpruned = TopKSteinerTrees(*graph_, {*a, *b}, opts);
  ASSERT_TRUE(pruned.ok() && unpruned.ok());
  EXPECT_LE(pruned->size(), unpruned->size());
  // No tree in the pruned list subsumes another.
  for (size_t i = 0; i < pruned->size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      EXPECT_FALSE((*pruned)[j].SubsumedBy((*pruned)[i]));
    }
  }
}

TEST_F(GraphTest, ShortestPathBaselineProducesValidTrees) {
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("UNIVERSITY", "Country");
  auto c = terminology_->DomainTerm("DEPARTMENT", "Name");
  auto trees = ShortestPathTrees(*graph_, {*a, *b, *c}, 3);
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  for (const Interpretation& t : *trees) {
    EXPECT_EQ(t.edges.size() + 1, t.nodes.size());
    for (size_t term : {*a, *b, *c}) {
      EXPECT_NE(std::find(t.nodes.begin(), t.nodes.end(), term), t.nodes.end());
    }
  }
}

TEST_F(GraphTest, SteinerOptimumNotWorseThanBaseline) {
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("UNIVERSITY", "Country");
  auto c = terminology_->DomainTerm("PROJECT", "Topic");
  auto steiner = TopKSteinerTrees(*graph_, {*a, *b, *c});
  auto baseline = ShortestPathTrees(*graph_, {*a, *b, *c}, 1);
  ASSERT_TRUE(steiner.ok() && baseline.ok());
  ASSERT_FALSE(steiner->empty());
  ASSERT_FALSE(baseline->empty());
  EXPECT_LE((*steiner)[0].cost, (*baseline)[0].cost + 1e-9);
}

TEST_F(GraphTest, RankInterpretationsOrdersByScore) {
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("UNIVERSITY", "Country");
  SteinerOptions opts;
  opts.k = 5;
  auto trees = TopKSteinerTrees(*graph_, {*a, *b}, opts);
  ASSERT_TRUE(trees.ok());
  RankInterpretations(&*trees);
  for (size_t i = 1; i < trees->size(); ++i) {
    EXPECT_GE((*trees)[i - 1].score + 1e-12, (*trees)[i].score);
  }
  for (const Interpretation& t : *trees) {
    EXPECT_NEAR(t.score, 1.0 / (1.0 + t.cost), 1e-12);
  }
}

TEST_F(GraphTest, TerminalsOfConfigurationDeduplicates) {
  Configuration c;
  c.term_for_keyword = {4, 7, 4};
  EXPECT_EQ(TerminalsOfConfiguration(c), (std::vector<size_t>{4, 7}));
}

TEST_F(GraphTest, SignatureDistinguishesNodeOnlyTrees) {
  Interpretation t1, t2;
  t1.nodes = {1};
  t2.nodes = {2};
  EXPECT_NE(t1.Signature(), t2.Signature());
}


// --------------------------------------------------------- Summary graph

TEST_F(GraphTest, SummaryGraphHasOneNodePerRelation) {
  SummaryGraph summary(*graph_);
  EXPECT_EQ(summary.relation_count(), db_->schema().relations().size());
  EXPECT_TRUE(summary.RelationOrdinal("PEOPLE").has_value());
  EXPECT_FALSE(summary.RelationOrdinal("NOPE").has_value());
}

TEST_F(GraphTest, SummaryTreesCoverTerminalsAndAreTrees) {
  SummaryGraph summary(*graph_);
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("UNIVERSITY", "Country");
  SteinerOptions opts;
  opts.k = 5;
  auto trees = summary.TopKTrees({*a, *b}, opts);
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  for (const Interpretation& t : *trees) {
    for (size_t term : {*a, *b}) {
      EXPECT_NE(std::find(t.nodes.begin(), t.nodes.end(), term), t.nodes.end());
    }
    EXPECT_EQ(t.edges.size() + 1, t.nodes.size());  // tree property
  }
  // Sorted by cost.
  for (size_t i = 1; i < trees->size(); ++i) {
    EXPECT_LE((*trees)[i - 1].cost, (*trees)[i].cost + 1e-9);
  }
}

TEST_F(GraphTest, SummaryBestTreeMatchesFullSearchCost) {
  // On unit weights the summary expansion reproduces the full-graph
  // optimum for cross-relation terminal pairs.
  SummaryGraph summary(*graph_);
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("PROJECT", "Name");
  auto full = TopKSteinerTrees(*graph_, {*a, *b});
  auto condensed = summary.TopKTrees({*a, *b});
  ASSERT_TRUE(full.ok() && condensed.ok());
  ASSERT_FALSE(full->empty());
  ASSERT_FALSE(condensed->empty());
  EXPECT_NEAR((*full)[0].cost, (*condensed)[0].cost, 1e-9);
}

TEST_F(GraphTest, SummarySingleRelationTerminals) {
  SummaryGraph summary(*graph_);
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("PEOPLE", "Country");
  auto trees = summary.TopKTrees({*a, *b});
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  // Both chains through PEOPLE: Dom-attr-rel-attr-Dom, cost 4.
  EXPECT_DOUBLE_EQ((*trees)[0].cost, 4.0);
}

TEST_F(GraphTest, SummaryRejectsBadTerminals) {
  SummaryGraph summary(*graph_);
  EXPECT_FALSE(summary.TopKTrees({}).ok());
  EXPECT_FALSE(summary.TopKTrees({graph_->node_count() + 10}).ok());
}

TEST_F(GraphTest, SummaryTranslatesToExecutableSql) {
  SummaryGraph summary(*graph_);
  auto a = terminology_->DomainTerm("PEOPLE", "Name");
  auto b = terminology_->DomainTerm("UNIVERSITY", "Country");
  auto trees = summary.TopKTrees({*a, *b});
  ASSERT_TRUE(trees.ok());
  ASSERT_FALSE(trees->empty());
  Configuration config;
  config.term_for_keyword = {*a, *b};
  auto sql = TranslateToSql({"Vokram", "IT"}, config, (*trees)[0], *terminology_,
                            db_->schema(), *graph_);
  ASSERT_TRUE(sql.ok());
  Executor exec(*db_);
  EXPECT_TRUE(exec.Execute(*sql).ok());
}

}  // namespace
}  // namespace km
