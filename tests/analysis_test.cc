// Tests for km_analysis: each invariant validator accepts real pipeline
// output and rejects hand-corrupted variants of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "analysis/invariants.h"
#include "common/matrix.h"
#include "datasets/university.h"
#include "graph/interpretation.h"
#include "graph/schema_graph.h"
#include "matching/munkres.h"
#include "metadata/configuration.h"
#include "metadata/term.h"

namespace km {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = BuildUniversityDatabase({});
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    terminology_ = new Terminology(db_->schema());
    graph_ = new SchemaGraph(*terminology_, db_->schema());
  }
  static void TearDownTestSuite() {
    delete graph_;
    delete terminology_;
    delete db_;
  }

  static Database* db_;
  static Terminology* terminology_;
  static SchemaGraph* graph_;
};

Database* AnalysisTest::db_ = nullptr;
Terminology* AnalysisTest::terminology_ = nullptr;
SchemaGraph* AnalysisTest::graph_ = nullptr;

// ------------------------------------------------------- ValidateWeightMatrix

TEST_F(AnalysisTest, WeightMatrixConformingPasses) {
  Matrix m(2, terminology_->size(), 0.25);
  EXPECT_TRUE(ValidateWeightMatrix(m, 2, terminology_->size()).ok());
}

TEST_F(AnalysisTest, WeightMatrixShapeMismatchFails) {
  Matrix m(2, 3, 0.0);
  Status s = ValidateWeightMatrix(m, 2, 4);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

TEST_F(AnalysisTest, WeightMatrixNaNEntryFails) {
  Matrix m(2, 3, 0.5);
  m.At(1, 2) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidateWeightMatrix(m, 2, 3).ok());
}

TEST_F(AnalysisTest, WeightMatrixNegativeEntryFails) {
  Matrix m(2, 3, 0.5);
  m.At(0, 0) = -0.1;
  EXPECT_FALSE(ValidateWeightMatrix(m, 2, 3).ok());
}

// --------------------------------------------------------- ValidateAssignment

TEST_F(AnalysisTest, AssignmentFromMunkresPasses) {
  Matrix w(3, 5, 0.0);
  w.At(0, 1) = 0.9;
  w.At(1, 0) = 0.8;
  w.At(2, 4) = 0.7;
  auto a = MaxWeightAssignment(w);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(ValidateAssignment(*a, w).ok());
}

TEST_F(AnalysisTest, AssignmentNonInjectiveFails) {
  Matrix w(2, 3, 0.5);
  Assignment a;
  a.col_for_row = {1, 1};
  a.total_weight = 1.0;
  Status s = ValidateAssignment(a, w);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("not injective"), std::string::npos);
}

TEST_F(AnalysisTest, AssignmentRowCountMismatchFails) {
  Matrix w(3, 3, 0.5);
  Assignment a;
  a.col_for_row = {0, 1};
  a.total_weight = 1.0;
  EXPECT_FALSE(ValidateAssignment(a, w).ok());
}

TEST_F(AnalysisTest, AssignmentOutOfRangeColumnFails) {
  Matrix w(1, 2, 0.5);
  Assignment a;
  a.col_for_row = {7};
  a.total_weight = 0.5;
  EXPECT_FALSE(ValidateAssignment(a, w).ok());
}

TEST_F(AnalysisTest, AssignmentForbiddenCellFails) {
  Matrix w(1, 2, kForbidden);
  w.At(0, 1) = 0.5;
  Assignment a;
  a.col_for_row = {0};
  a.total_weight = kForbidden;
  EXPECT_FALSE(ValidateAssignment(a, w).ok());
}

TEST_F(AnalysisTest, AssignmentWrongTotalWeightFails) {
  Matrix w(2, 2, 0.5);
  Assignment a;
  a.col_for_row = {0, 1};
  a.total_weight = 3.0;  // true sum is 1.0
  EXPECT_FALSE(ValidateAssignment(a, w).ok());
}

// ------------------------------------------------------ ValidateConfiguration

TEST_F(AnalysisTest, ConfigurationConformingPasses) {
  Configuration c;
  c.term_for_keyword = {0, 1, 2};
  EXPECT_TRUE(ValidateConfiguration(c, 3, *terminology_).ok());
}

TEST_F(AnalysisTest, ConfigurationArityMismatchFails) {
  Configuration c;
  c.term_for_keyword = {0, 1};
  EXPECT_FALSE(ValidateConfiguration(c, 3, *terminology_).ok());
}

TEST_F(AnalysisTest, ConfigurationNonInjectiveFails) {
  Configuration c;
  c.term_for_keyword = {2, 2};
  Status s = ValidateConfiguration(c, 2, *terminology_);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("not injective"), std::string::npos);
}

TEST_F(AnalysisTest, ConfigurationOutOfRangeTermFails) {
  Configuration c;
  c.term_for_keyword = {terminology_->size()};
  EXPECT_FALSE(ValidateConfiguration(c, 1, *terminology_).ok());
}

// ----------------------------------------------------- ValidateInterpretation

// A real Steiner tree over two terminals in different relations.
Interpretation RealTree(const SchemaGraph& graph, const Terminology& terms) {
  auto a = terms.AttributeTerm("PEOPLE", "Name");
  auto b = terms.AttributeTerm("DEPARTMENT", "Director");
  EXPECT_TRUE(a && b);
  auto trees = TopKSteinerTrees(graph, {*a, *b});
  EXPECT_TRUE(trees.ok() && !trees->empty());
  return trees->front();
}

TEST_F(AnalysisTest, InterpretationFromSteinerSearchPasses) {
  Interpretation t = RealTree(*graph_, *terminology_);
  EXPECT_TRUE(ValidateInterpretation(t, *graph_).ok());
}

TEST_F(AnalysisTest, InterpretationSingleNodePasses) {
  Interpretation t;
  t.terminals = {0};
  t.nodes = {0};
  EXPECT_TRUE(ValidateInterpretation(t, *graph_).ok());
}

TEST_F(AnalysisTest, InterpretationNoTerminalsFails) {
  Interpretation t;
  EXPECT_FALSE(ValidateInterpretation(t, *graph_).ok());
}

TEST_F(AnalysisTest, InterpretationDisconnectedFails) {
  // Two single-node "components": a second terminal with no connecting edge.
  Interpretation t;
  t.terminals = {0, 5};
  t.nodes = {0, 5};
  Status s = ValidateInterpretation(t, *graph_);
  ASSERT_FALSE(s.ok());
  // Rejected as a non-tree (2 nodes, 0 edges) before the BFS runs.
  EXPECT_NE(s.ToString().find("not a tree"), std::string::npos);
}

TEST_F(AnalysisTest, InterpretationDroppedEdgeFails) {
  Interpretation t = RealTree(*graph_, *terminology_);
  ASSERT_FALSE(t.edges.empty());
  t.edges.pop_back();  // nodes no longer match terminals ∪ endpoints
  EXPECT_FALSE(ValidateInterpretation(t, *graph_).ok());
}

TEST_F(AnalysisTest, InterpretationWrongCostFails) {
  Interpretation t = RealTree(*graph_, *terminology_);
  t.cost += 1.0;
  EXPECT_FALSE(ValidateInterpretation(t, *graph_).ok());
}

TEST_F(AnalysisTest, InterpretationForeignNodeFails) {
  Interpretation t = RealTree(*graph_, *terminology_);
  // Smuggle in a node that is neither a terminal nor an edge endpoint.
  size_t foreign = 0;
  while (std::find(t.nodes.begin(), t.nodes.end(), foreign) != t.nodes.end()) {
    ++foreign;
  }
  t.nodes.push_back(foreign);
  EXPECT_FALSE(ValidateInterpretation(t, *graph_).ok());
}

// -------------------------------------------------------- ValidateSchemaGraph

TEST_F(AnalysisTest, SchemaGraphFromCatalogPasses) {
  EXPECT_TRUE(ValidateSchemaGraph(*graph_, db_->schema()).ok());
}

TEST_F(AnalysisTest, SchemaGraphAgainstForeignCatalogFails) {
  // Validate the university graph against an unrelated (empty) schema:
  // every term now names an unknown relation.
  DatabaseSchema empty;
  Status s = ValidateSchemaGraph(*graph_, empty);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("unknown relation"), std::string::npos);
}

TEST_F(AnalysisTest, SchemaGraphCorruptedWeightFails) {
  // SetEdgeWeight itself rejects invalid weights, so poke the stored edge
  // directly to simulate memory corruption the validator must still catch.
  SchemaGraph g(*terminology_, db_->schema());
  ASSERT_GT(g.edge_count(), 0u);
  const_cast<GraphEdge&>(g.edges()[0]).weight =
      std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ValidateSchemaGraph(g, db_->schema()).ok());
}

}  // namespace
}  // namespace km
