// Network front-end tests: frame codec round-trips, the incremental
// decoder under arbitrary byte splits, the poll-server's protocol
// behavior through the deterministic socketpair harness (HELO/QURY/RESP,
// protocol errors, GBYE, idle timeout on the fake clock), and one real
// end-to-end TCP exchange on an ephemeral loopback port.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "core/keymantic.h"
#include "datasets/university.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net_harness.h"
#include "serve/tenant.h"

namespace km::net {
namespace {

// -------------------------------------------------------------- protocol

TEST(NetProtocolTest, FrameRoundTripsThroughTheDecoder) {
  Frame frame = MakeFrame("QURY", 42, "payload bytes");
  const std::string wire = EncodeFrame(frame);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  Frame out;
  StatusOr<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  EXPECT_TRUE(FrameIs(out, "QURY"));
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.payload, "payload bytes");
  EXPECT_EQ(decoder.buffered(), 0u);
  // No second frame yet.
  got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
}

TEST(NetProtocolTest, DecoderHandlesArbitraryByteSplits) {
  std::string wire;
  wire += EncodeFrame(MakeFrame("HELO", 1, EncodeHello("tenant-a")));
  wire += EncodeFrame(MakeFrame("QURY", 2, std::string(100, 'q')));
  wire += EncodeFrame(MakeFrame("GBYE", 3, std::string()));
  for (const size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                             size_t{16}}) {
    FrameDecoder decoder;
    std::vector<Frame> frames;
    for (size_t i = 0; i < wire.size(); i += chunk) {
      const size_t n = std::min(chunk, wire.size() - i);
      ASSERT_TRUE(decoder.Feed(wire.data() + i, n).ok());
      while (true) {
        Frame frame;
        StatusOr<bool> got = decoder.Next(&frame);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        if (!*got) break;
        frames.push_back(std::move(frame));
      }
    }
    ASSERT_EQ(frames.size(), 3u) << "chunk=" << chunk;
    EXPECT_TRUE(FrameIs(frames[0], "HELO"));
    EXPECT_TRUE(FrameIs(frames[1], "QURY"));
    EXPECT_TRUE(FrameIs(frames[2], "GBYE"));
    EXPECT_EQ(frames[1].payload, std::string(100, 'q'));
    EXPECT_EQ(decoder.frames_decoded(), 3u);
  }
}

TEST(NetProtocolTest, PayloadCodecsRoundTrip) {
  QueryRequest query;
  query.k = 7;
  query.deadline_ms = 123.5;
  query.text = "professor department";
  auto query2 = DecodeQueryRequest(EncodeQueryRequest(query));
  ASSERT_TRUE(query2.ok());
  EXPECT_EQ(query2->k, 7u);
  EXPECT_DOUBLE_EQ(query2->deadline_ms, 123.5);
  EXPECT_EQ(query2->text, query.text);

  AnswerReply reply;
  reply.quality = 2;
  reply.answers.push_back({0.75, "SELECT a FROM b"});
  reply.answers.push_back({-1.5, ""});
  auto reply2 = DecodeAnswerReply(EncodeAnswerReply(reply));
  ASSERT_TRUE(reply2.ok());
  EXPECT_EQ(reply2->quality, 2u);
  ASSERT_EQ(reply2->answers.size(), 2u);
  EXPECT_DOUBLE_EQ(reply2->answers[0].score, 0.75);
  EXPECT_EQ(reply2->answers[0].sql, "SELECT a FROM b");
  EXPECT_DOUBLE_EQ(reply2->answers[1].score, -1.5);

  ErrorReply error;
  error.code = static_cast<uint16_t>(StatusCode::kOverloaded);
  error.retry_after_ms = 250;
  error.message = "queue full";
  auto error2 = DecodeErrorReply(EncodeErrorReply(error));
  ASSERT_TRUE(error2.ok());
  EXPECT_EQ(error2->code, error.code);
  EXPECT_DOUBLE_EQ(error2->retry_after_ms, 250);
  EXPECT_EQ(error2->message, "queue full");

  auto hello = DecodeHello(EncodeHello("db-1"));
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(*hello, "db-1");
}

TEST(NetProtocolTest, OversizedLengthPrefixFailsBeforeAllocation) {
  // 4 GiB claimed body: must be rejected from the 4-byte prefix alone.
  const char prefix[4] = {'\xff', '\xff', '\xff', '\xff'};
  FrameDecoder decoder;
  Status fed = decoder.Feed(prefix, sizeof(prefix));
  EXPECT_EQ(fed.code(), StatusCode::kProtocolError) << fed.ToString();
  EXPECT_EQ(decoder.buffered(), 0u) << "hostile length must not be buffered";
  // Sticky: the decoder stays failed.
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame).status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(decoder.Feed("x", 1).code(), StatusCode::kProtocolError);
}

TEST(NetProtocolTest, UndersizedBodyLengthIsAProtocolError) {
  // body_len = 5 < 13 fixed body bytes.
  const char prefix[4] = {5, 0, 0, 0};
  FrameDecoder decoder;
  EXPECT_EQ(decoder.Feed(prefix, sizeof(prefix)).code(),
            StatusCode::kProtocolError);
}

TEST(NetProtocolTest, WrongVersionAndBadTagAreProtocolErrors) {
  std::string wire = EncodeFrame(MakeFrame("QURY", 1, "x"));
  {
    std::string bad = wire;
    bad[4] = 9;  // version byte
    FrameDecoder decoder;
    EXPECT_EQ(decoder.Feed(bad.data(), bad.size()).code(),
              StatusCode::kProtocolError);
  }
  {
    std::string bad = wire;
    bad[5] = 'q';  // lowercase: outside [A-Z0-9]
    FrameDecoder decoder;
    EXPECT_EQ(decoder.Feed(bad.data(), bad.size()).code(),
              StatusCode::kProtocolError);
  }
  {
    // Well-formed tag characters but not in the catalog.
    std::string bad = wire;
    std::memcpy(&bad[5], "ZZZZ", 4);
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(bad.data(), bad.size()).ok());
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame).status().code(),
              StatusCode::kProtocolError);
  }
}

TEST(NetProtocolTest, PayloadDecodersRejectTruncationAndTrailingBytes) {
  std::string query = EncodeQueryRequest({3, 50.0, "abc"});
  EXPECT_EQ(DecodeQueryRequest(query.substr(0, query.size() - 1))
                .status()
                .code(),
            StatusCode::kProtocolError);
  EXPECT_EQ(DecodeQueryRequest(query + "x").status().code(),
            StatusCode::kProtocolError);

  AnswerReply reply;
  reply.answers.push_back({1.0, "sql"});
  std::string resp = EncodeAnswerReply(reply);
  EXPECT_EQ(DecodeAnswerReply(resp.substr(0, resp.size() - 2))
                .status()
                .code(),
            StatusCode::kProtocolError);
  EXPECT_EQ(DecodeHello(std::string("\x05\0\0\0ab", 6)).status().code(),
            StatusCode::kProtocolError);
}

TEST(NetProtocolTest, ErrorFrameMappingRoundTripsRetryableStatuses) {
  Frame shed = ErrorFrameFor(9, OverloadedStatus("queue full", 125.0));
  EXPECT_TRUE(FrameIs(shed, "RTRY"));
  auto decoded = DecodeErrorReply(shed.payload);
  ASSERT_TRUE(decoded.ok());
  Status round = StatusFromErrorReply(*decoded);
  EXPECT_EQ(round.code(), StatusCode::kOverloaded);
  EXPECT_DOUBLE_EQ(SuggestedRetryAfterMs(round), 125.0);

  Frame hard = ErrorFrameFor(9, Status::InvalidArgument("bad k"));
  EXPECT_TRUE(FrameIs(hard, "ERRR"));
  auto decoded_hard = DecodeErrorReply(hard.payload);
  ASSERT_TRUE(decoded_hard.ok());
  EXPECT_EQ(StatusFromErrorReply(*decoded_hard).code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- server (harness)

class NetServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = BuildUniversityDatabase();
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    engine_ = std::make_shared<KeymanticEngine>(*db_);
  }
  static void TearDownTestSuite() {
    engine_.reset();
    delete db_;
    db_ = nullptr;
  }

  /// Registry with one tenant "uni" over the shared engine.
  static std::unique_ptr<TenantRegistry> MakeRegistry() {
    auto tenants = std::make_unique<TenantRegistry>();
    KM_CHECK_OK(tenants->AddTenant("uni", engine_));
    return tenants;
  }

  static Database* db_;
  static std::shared_ptr<KeymanticEngine> engine_;
};

Database* NetServerTest::db_ = nullptr;
std::shared_ptr<KeymanticEngine> NetServerTest::engine_;

TEST_F(NetServerTest, HelloQueryResponseMatchesDirectEngineCall) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());

  auto reply = client->Ask(1, "Vokram IT", 5, 0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto direct = engine_->Answer("Vokram IT", 5);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(reply->answers.size(), direct->explanations.size());
  for (size_t i = 0; i < reply->answers.size(); ++i) {
    EXPECT_EQ(reply->answers[i].sql,
              direct->explanations[i].sql.CanonicalSignature());
    EXPECT_DOUBLE_EQ(reply->answers[i].score,
                     direct->explanations[i].score);
  }
  EXPECT_EQ(harness.server().Stats().protocol_errors, 0u);
}

TEST_F(NetServerTest, UnknownTenantGetsTypedErrorAndDisconnect) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  Status hello = client->Hello("nope");
  EXPECT_EQ(hello.code(), StatusCode::kNotFound) << hello.ToString();
  // The server hangs up after the rejection.
  auto next = client->ReadFrame(2000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(harness.server().Stats().rejected_unknown_tenant, 1u);
}

TEST_F(NetServerTest, QueryBeforeHelloIsAProtocolError) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  auto reply = client->Ask(5, "Vokram IT", 3, 0);
  EXPECT_EQ(reply.status().code(), StatusCode::kProtocolError)
      << reply.status().ToString();
  auto next = client->ReadFrame(2000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(harness.server().Stats().protocol_errors, 1u);
}

TEST_F(NetServerTest, SplitWritesAndMidFrameStallsStillParse) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());

  QueryRequest query;
  query.k = 3;
  query.text = "Vokram IT";
  const std::string wire =
      EncodeFrame(MakeFrame("QURY", 77, EncodeQueryRequest(query)));
  // Split inside the length prefix, inside the header, and inside the
  // payload — the server must reassemble regardless of where reads land.
  ASSERT_TRUE(
      SendInPieces(*client, wire, {2, 6, 11, wire.size() - 3}).ok());
  auto frame = client->ReadFrame(30000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_TRUE(FrameIs(*frame, "RESP"));
  EXPECT_EQ(frame->request_id, 77u);
  auto decoded = DecodeAnswerReply(frame->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->answers.empty());
}

TEST_F(NetServerTest, OversizedFrameFromClientGetsErrorAndClose) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  const char huge[4] = {'\xff', '\xff', '\xff', '\x7f'};
  ASSERT_TRUE(client->SendBytes(huge, sizeof(huge)).ok());
  auto frame = client->ReadFrame(2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_TRUE(FrameIs(*frame, "ERRR"));
  auto decoded = DecodeErrorReply(frame->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(static_cast<StatusCode>(decoded->code),
            StatusCode::kProtocolError);
  auto next = client->ReadFrame(2000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetServerTest, GoodbyeClosesCleanly) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  ASSERT_TRUE(client->SendFrame(MakeFrame("GBYE", 2, std::string())).ok());
  auto bye = client->ReadFrame(2000);
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  EXPECT_TRUE(FrameIs(*bye, "GBYE"));
  auto next = client->ReadFrame(2000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(harness.server().Stats().protocol_errors, 0u);
}

TEST_F(NetServerTest, IdleConnectionsAreClosedOnTheInjectedClock) {
  auto tenants = MakeRegistry();
  NetServerOptions options;
  options.idle_timeout_ms = 10'000;
  NetHarness harness(*tenants, options);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  // Nothing happens while the fake clock stands still.
  auto quiet = client->ReadFrame(150);
  EXPECT_EQ(quiet.status().code(), StatusCode::kDeadlineExceeded);
  // One step past the idle window: the server drops the connection.
  harness.clock().AdvanceMs(60'000);
  auto next = client->ReadFrame(5000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable)
      << next.status().ToString();
  EXPECT_EQ(harness.server().Stats().idle_timeouts, 1u);
}

TEST_F(NetServerTest, ServerRoutesConnectionsToTheirOwnTenants) {
  auto tenants = MakeRegistry();
  ASSERT_TRUE(tenants->AddTenant("uni2", engine_).ok());
  NetHarness harness(*tenants);
  auto a = harness.NewClient();
  auto b = harness.NewClient();
  ASSERT_TRUE(a->Hello("uni").ok());
  ASSERT_TRUE(b->Hello("uni2").ok());
  auto ra = a->Ask(1, "Vokram IT", 3, 0);
  auto rb = b->Ask(1, "Vokram IT", 3, 0);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_EQ(ra->answers.size(), rb->answers.size());
  for (size_t i = 0; i < ra->answers.size(); ++i) {
    EXPECT_EQ(ra->answers[i].sql, rb->answers[i].sql);
  }
  auto sa = tenants->StatsFor("uni");
  auto sb = tenants->StatsFor("uni2");
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_GE(sa->submitted, 1u);
  EXPECT_GE(sb->submitted, 1u);
}

// ------------------------------------------------------------ real TCP

TEST_F(NetServerTest, EndToEndOverLoopbackTcp) {
  auto tenants = MakeRegistry();
  NetServerOptions options;
  options.listen = true;
  options.port = 0;  // ephemeral
  NetServer server(*tenants, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Hello("uni").ok());
  auto reply = (*client)->Ask(1, "Vokram IT", 3, 0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->answers.empty());
  server.Shutdown();
  EXPECT_GE(server.Stats().accepted, 1u);
}

}  // namespace
}  // namespace km::net
