// Network front-end tests: frame codec round-trips, the incremental
// decoder under arbitrary byte splits, the poll-server's protocol
// behavior through the deterministic socketpair harness (HELO/QURY/RESP,
// protocol errors, GBYE, idle timeout on the fake clock), and one real
// end-to-end TCP exchange on an ephemeral loopback port.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/retry.h"
#include "common/status.h"
#include "core/keymantic.h"
#include "datasets/university.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net_harness.h"
#include "serve/tenant.h"

namespace km::net {
namespace {

// Every test in this binary must give back each fd it opened.
FdCensusRegistrar fd_census_registrar;

/// Spins (real time, 1 ms steps) until `pred` holds; false on timeout.
bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 15000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// Disarms every failpoint when a test exits, ASSERT-early or not.
struct FailpointClearer {
  ~FailpointClearer() { failpoints::Reset(); }
};

// -------------------------------------------------------------- protocol

TEST(NetProtocolTest, FrameRoundTripsThroughTheDecoder) {
  Frame frame = MakeFrame("QURY", 42, "payload bytes");
  const std::string wire = EncodeFrame(frame);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(wire.data(), wire.size()).ok());
  Frame out;
  StatusOr<bool> got = decoder.Next(&out);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  EXPECT_TRUE(FrameIs(out, "QURY"));
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.payload, "payload bytes");
  EXPECT_EQ(decoder.buffered(), 0u);
  // No second frame yet.
  got = decoder.Next(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(*got);
}

TEST(NetProtocolTest, DecoderHandlesArbitraryByteSplits) {
  std::string wire;
  wire += EncodeFrame(MakeFrame("HELO", 1, EncodeHello("tenant-a")));
  wire += EncodeFrame(MakeFrame("QURY", 2, std::string(100, 'q')));
  wire += EncodeFrame(MakeFrame("GBYE", 3, std::string()));
  for (const size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7},
                             size_t{16}}) {
    FrameDecoder decoder;
    std::vector<Frame> frames;
    for (size_t i = 0; i < wire.size(); i += chunk) {
      const size_t n = std::min(chunk, wire.size() - i);
      ASSERT_TRUE(decoder.Feed(wire.data() + i, n).ok());
      while (true) {
        Frame frame;
        StatusOr<bool> got = decoder.Next(&frame);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        if (!*got) break;
        frames.push_back(std::move(frame));
      }
    }
    ASSERT_EQ(frames.size(), 3u) << "chunk=" << chunk;
    EXPECT_TRUE(FrameIs(frames[0], "HELO"));
    EXPECT_TRUE(FrameIs(frames[1], "QURY"));
    EXPECT_TRUE(FrameIs(frames[2], "GBYE"));
    EXPECT_EQ(frames[1].payload, std::string(100, 'q'));
    EXPECT_EQ(decoder.frames_decoded(), 3u);
  }
}

TEST(NetProtocolTest, PayloadCodecsRoundTrip) {
  QueryRequest query;
  query.k = 7;
  query.deadline_ms = 123.5;
  query.text = "professor department";
  auto query2 = DecodeQueryRequest(EncodeQueryRequest(query));
  ASSERT_TRUE(query2.ok());
  EXPECT_EQ(query2->k, 7u);
  EXPECT_DOUBLE_EQ(query2->deadline_ms, 123.5);
  EXPECT_EQ(query2->text, query.text);

  AnswerReply reply;
  reply.quality = 2;
  reply.answers.push_back({0.75, "SELECT a FROM b"});
  reply.answers.push_back({-1.5, ""});
  auto reply2 = DecodeAnswerReply(EncodeAnswerReply(reply));
  ASSERT_TRUE(reply2.ok());
  EXPECT_EQ(reply2->quality, 2u);
  ASSERT_EQ(reply2->answers.size(), 2u);
  EXPECT_DOUBLE_EQ(reply2->answers[0].score, 0.75);
  EXPECT_EQ(reply2->answers[0].sql, "SELECT a FROM b");
  EXPECT_DOUBLE_EQ(reply2->answers[1].score, -1.5);

  ErrorReply error;
  error.code = static_cast<uint16_t>(StatusCode::kOverloaded);
  error.retry_after_ms = 250;
  error.message = "queue full";
  auto error2 = DecodeErrorReply(EncodeErrorReply(error));
  ASSERT_TRUE(error2.ok());
  EXPECT_EQ(error2->code, error.code);
  EXPECT_DOUBLE_EQ(error2->retry_after_ms, 250);
  EXPECT_EQ(error2->message, "queue full");

  auto hello = DecodeHello(EncodeHello("db-1"));
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(*hello, "db-1");
}

TEST(NetProtocolTest, OversizedLengthPrefixFailsBeforeAllocation) {
  // 4 GiB claimed body: must be rejected from the 4-byte prefix alone.
  const char prefix[4] = {'\xff', '\xff', '\xff', '\xff'};
  FrameDecoder decoder;
  Status fed = decoder.Feed(prefix, sizeof(prefix));
  EXPECT_EQ(fed.code(), StatusCode::kProtocolError) << fed.ToString();
  EXPECT_EQ(decoder.buffered(), 0u) << "hostile length must not be buffered";
  // Sticky: the decoder stays failed.
  Frame frame;
  EXPECT_EQ(decoder.Next(&frame).status().code(), StatusCode::kProtocolError);
  EXPECT_EQ(decoder.Feed("x", 1).code(), StatusCode::kProtocolError);
}

TEST(NetProtocolTest, UndersizedBodyLengthIsAProtocolError) {
  // body_len = 5 < 13 fixed body bytes.
  const char prefix[4] = {5, 0, 0, 0};
  FrameDecoder decoder;
  EXPECT_EQ(decoder.Feed(prefix, sizeof(prefix)).code(),
            StatusCode::kProtocolError);
}

TEST(NetProtocolTest, WrongVersionAndBadTagAreProtocolErrors) {
  std::string wire = EncodeFrame(MakeFrame("QURY", 1, "x"));
  {
    std::string bad = wire;
    bad[4] = 9;  // version byte
    FrameDecoder decoder;
    EXPECT_EQ(decoder.Feed(bad.data(), bad.size()).code(),
              StatusCode::kProtocolError);
  }
  {
    std::string bad = wire;
    bad[5] = 'q';  // lowercase: outside [A-Z0-9]
    FrameDecoder decoder;
    EXPECT_EQ(decoder.Feed(bad.data(), bad.size()).code(),
              StatusCode::kProtocolError);
  }
  {
    // Well-formed tag characters but not in the catalog.
    std::string bad = wire;
    std::memcpy(&bad[5], "ZZZZ", 4);
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed(bad.data(), bad.size()).ok());
    Frame frame;
    EXPECT_EQ(decoder.Next(&frame).status().code(),
              StatusCode::kProtocolError);
  }
}

TEST(NetProtocolTest, PayloadDecodersRejectTruncationAndTrailingBytes) {
  std::string query = EncodeQueryRequest({3, 50.0, "abc"});
  EXPECT_EQ(DecodeQueryRequest(query.substr(0, query.size() - 1))
                .status()
                .code(),
            StatusCode::kProtocolError);
  EXPECT_EQ(DecodeQueryRequest(query + "x").status().code(),
            StatusCode::kProtocolError);

  AnswerReply reply;
  reply.answers.push_back({1.0, "sql"});
  std::string resp = EncodeAnswerReply(reply);
  EXPECT_EQ(DecodeAnswerReply(resp.substr(0, resp.size() - 2))
                .status()
                .code(),
            StatusCode::kProtocolError);
  EXPECT_EQ(DecodeHello(std::string("\x05\0\0\0ab", 6)).status().code(),
            StatusCode::kProtocolError);
}

TEST(NetProtocolTest, ErrorFrameMappingRoundTripsRetryableStatuses) {
  Frame shed = ErrorFrameFor(9, OverloadedStatus("queue full", 125.0));
  EXPECT_TRUE(FrameIs(shed, "RTRY"));
  auto decoded = DecodeErrorReply(shed.payload);
  ASSERT_TRUE(decoded.ok());
  Status round = StatusFromErrorReply(*decoded);
  EXPECT_EQ(round.code(), StatusCode::kOverloaded);
  EXPECT_DOUBLE_EQ(SuggestedRetryAfterMs(round), 125.0);

  Frame hard = ErrorFrameFor(9, Status::InvalidArgument("bad k"));
  EXPECT_TRUE(FrameIs(hard, "ERRR"));
  auto decoded_hard = DecodeErrorReply(hard.payload);
  ASSERT_TRUE(decoded_hard.ok());
  EXPECT_EQ(StatusFromErrorReply(*decoded_hard).code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- server (harness)

class NetServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = BuildUniversityDatabase();
    ASSERT_TRUE(db.ok());
    db_ = new Database(std::move(*db));
    engine_ = std::make_shared<KeymanticEngine>(*db_);
  }
  static void TearDownTestSuite() {
    engine_.reset();
    delete db_;
    db_ = nullptr;
  }

  /// Registry with one tenant "uni" over the shared engine.
  static std::unique_ptr<TenantRegistry> MakeRegistry() {
    auto tenants = std::make_unique<TenantRegistry>();
    KM_CHECK_OK(tenants->AddTenant("uni", engine_));
    return tenants;
  }

  static Database* db_;
  static std::shared_ptr<KeymanticEngine> engine_;
};

Database* NetServerTest::db_ = nullptr;
std::shared_ptr<KeymanticEngine> NetServerTest::engine_;

TEST_F(NetServerTest, HelloQueryResponseMatchesDirectEngineCall) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());

  auto reply = client->Ask(1, "Vokram IT", 5, 0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto direct = engine_->Answer("Vokram IT", 5);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(reply->answers.size(), direct->explanations.size());
  for (size_t i = 0; i < reply->answers.size(); ++i) {
    EXPECT_EQ(reply->answers[i].sql,
              direct->explanations[i].sql.CanonicalSignature());
    EXPECT_DOUBLE_EQ(reply->answers[i].score,
                     direct->explanations[i].score);
  }
  EXPECT_EQ(harness.server().Stats().protocol_errors, 0u);
}

TEST_F(NetServerTest, UnknownTenantGetsTypedErrorAndDisconnect) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  Status hello = client->Hello("nope");
  EXPECT_EQ(hello.code(), StatusCode::kNotFound) << hello.ToString();
  // The server hangs up after the rejection.
  auto next = client->ReadFrame(2000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(harness.server().Stats().rejected_unknown_tenant, 1u);
}

TEST_F(NetServerTest, QueryBeforeHelloIsAProtocolError) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  auto reply = client->Ask(5, "Vokram IT", 3, 0);
  EXPECT_EQ(reply.status().code(), StatusCode::kProtocolError)
      << reply.status().ToString();
  auto next = client->ReadFrame(2000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(harness.server().Stats().protocol_errors, 1u);
}

TEST_F(NetServerTest, SplitWritesAndMidFrameStallsStillParse) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());

  QueryRequest query;
  query.k = 3;
  query.text = "Vokram IT";
  const std::string wire =
      EncodeFrame(MakeFrame("QURY", 77, EncodeQueryRequest(query)));
  // Split inside the length prefix, inside the header, and inside the
  // payload — the server must reassemble regardless of where reads land.
  ASSERT_TRUE(
      SendInPieces(*client, wire, {2, 6, 11, wire.size() - 3}).ok());
  auto frame = client->ReadFrame(30000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_TRUE(FrameIs(*frame, "RESP"));
  EXPECT_EQ(frame->request_id, 77u);
  auto decoded = DecodeAnswerReply(frame->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->answers.empty());
}

TEST_F(NetServerTest, OversizedFrameFromClientGetsErrorAndClose) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  const char huge[4] = {'\xff', '\xff', '\xff', '\x7f'};
  ASSERT_TRUE(client->SendBytes(huge, sizeof(huge)).ok());
  auto frame = client->ReadFrame(2000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_TRUE(FrameIs(*frame, "ERRR"));
  auto decoded = DecodeErrorReply(frame->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(static_cast<StatusCode>(decoded->code),
            StatusCode::kProtocolError);
  auto next = client->ReadFrame(2000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetServerTest, GoodbyeClosesCleanly) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  ASSERT_TRUE(client->SendFrame(MakeFrame("GBYE", 2, std::string())).ok());
  auto bye = client->ReadFrame(2000);
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  EXPECT_TRUE(FrameIs(*bye, "GBYE"));
  auto next = client->ReadFrame(2000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(harness.server().Stats().protocol_errors, 0u);
}

TEST_F(NetServerTest, IdleConnectionsAreClosedOnTheInjectedClock) {
  auto tenants = MakeRegistry();
  NetServerOptions options;
  options.idle_timeout_ms = 10'000;
  NetHarness harness(*tenants, options);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  // Nothing happens while the fake clock stands still.
  auto quiet = client->ReadFrame(150);
  EXPECT_EQ(quiet.status().code(), StatusCode::kDeadlineExceeded);
  // One step past the idle window: the server drops the connection.
  harness.clock().AdvanceMs(60'000);
  auto next = client->ReadFrame(5000);
  EXPECT_EQ(next.status().code(), StatusCode::kUnavailable)
      << next.status().ToString();
  EXPECT_EQ(harness.server().Stats().idle_timeouts, 1u);
}

TEST_F(NetServerTest, ServerRoutesConnectionsToTheirOwnTenants) {
  auto tenants = MakeRegistry();
  ASSERT_TRUE(tenants->AddTenant("uni2", engine_).ok());
  NetHarness harness(*tenants);
  auto a = harness.NewClient();
  auto b = harness.NewClient();
  ASSERT_TRUE(a->Hello("uni").ok());
  ASSERT_TRUE(b->Hello("uni2").ok());
  auto ra = a->Ask(1, "Vokram IT", 3, 0);
  auto rb = b->Ask(1, "Vokram IT", 3, 0);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ASSERT_EQ(ra->answers.size(), rb->answers.size());
  for (size_t i = 0; i < ra->answers.size(); ++i) {
    EXPECT_EQ(ra->answers[i].sql, rb->answers[i].sql);
  }
  auto sa = tenants->StatsFor("uni");
  auto sb = tenants->StatsFor("uni2");
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_GE(sa->submitted, 1u);
  EXPECT_GE(sb->submitted, 1u);
}

// ------------------------------------------------------------ real TCP

TEST_F(NetServerTest, EndToEndOverLoopbackTcp) {
  auto tenants = MakeRegistry();
  NetServerOptions options;
  options.listen = true;
  options.port = 0;  // ephemeral
  NetServer server(*tenants, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Hello("uni").ok());
  auto reply = (*client)->Ask(1, "Vokram IT", 3, 0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->answers.empty());
  server.Shutdown();
  EXPECT_GE(server.Stats().accepted, 1u);
}

// ------------------------------------------------- timeouts & lifecycle

TEST(NetClientTest, SubMillisecondReadTimeoutRoundsUpInsteadOfBusyPolling) {
  int server_end = -1, client_end = -1;
  ASSERT_TRUE(MakeSocketPair(&server_end, &client_end).ok());
  NetClient quiet_peer(server_end);
  NetClient client(client_end);
  const auto start = std::chrono::steady_clock::now();
  auto frame = client.ReadFrame(0.25);
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded)
      << frame.status().ToString();
  // The regression: 0.25 ms used to truncate to a 0 ms poll() and spin the
  // CPU until the deadline. The fix rounds up to poll's 1 ms granularity.
  EXPECT_GE(elapsed_ms, 0.9);
}

TEST_F(NetServerTest, HalfOpenConnectionsGetTheStricterHelloTimeout) {
  auto tenants = MakeRegistry();
  NetServerOptions options;
  options.idle_timeout_ms = 1'000'000;  // effectively never
  options.hello_timeout_ms = 10'000;
  NetHarness harness(*tenants, options);
  auto greeted = harness.NewClient();
  ASSERT_TRUE(greeted->Hello("uni").ok());
  auto silent = harness.NewClient();
  ASSERT_TRUE(WaitUntil(
      [&] { return harness.server().Stats().open_connections == 2; }));
  harness.clock().AdvanceMs(60'000);
  // The half-open connection dies on the hello clock; the greeted one is
  // measured against the (huge) idle window and survives.
  auto eof = silent->ReadFrame(5000);
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable)
      << eof.status().ToString();
  auto reply = greeted->Ask(1, "Vokram IT", 3, 0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  const NetServerStats stats = harness.server().Stats();
  EXPECT_EQ(stats.hello_timeouts, 1u);
  EXPECT_EQ(stats.idle_timeouts, 0u);
}

// --------------------------------------------- write-side backpressure

TEST_F(NetServerTest, SlowReaderIsBackpressuredWithinTheWriteBufferCap) {
  auto tenants = MakeRegistry();
  NetServerOptions options;
  options.max_write_buffer_bytes = 4096;
  options.so_sndbuf = 4096;  // tiny kernel buffer: wedge with ~KBs
  NetHarness harness(*tenants, options);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  constexpr size_t kQueries = 40;
  for (size_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client->SendQuery(i + 1, "Vokram IT department", 5, 0).ok());
  }
  // Do not read yet: replies overflow the kernel buffer and the server
  // must park, not buffer, the excess.
  ASSERT_TRUE(WaitUntil(
      [&] { return harness.server().Stats().outbox_high_water > 0; }));
  const NetServerStats wedged = harness.server().Stats();
  EXPECT_LE(wedged.outbox_high_water, options.max_write_buffer_bytes)
      << "outbox grew past the high-water mark";
  // Catch up: every routed query still gets exactly one terminal frame.
  std::set<uint64_t> answered;
  while (answered.size() < kQueries) {
    auto frame = client->ReadFrame(30000);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    if (FrameIs(*frame, "RESP") || FrameIs(*frame, "ERRR") ||
        FrameIs(*frame, "RTRY")) {
      EXPECT_TRUE(answered.insert(frame->request_id).second)
          << "duplicate terminal frame for request " << frame->request_id;
    }
  }
  ASSERT_TRUE(WaitUntil([&] {
    const NetServerStats stats = harness.server().Stats();
    return stats.replies + stats.queries_dropped >= stats.queries;
  }));
  const NetServerStats stats = harness.server().Stats();
  EXPECT_EQ(stats.queries, kQueries);
  EXPECT_EQ(stats.replies, kQueries);
  EXPECT_EQ(stats.queries_dropped, 0u);
  EXPECT_LE(stats.outbox_high_water, options.max_write_buffer_bytes);
}

TEST_F(NetServerTest, FullyStalledReaderIsEvictedOnTheInjectedClock) {
  auto tenants = MakeRegistry();
  NetServerOptions options;
  options.max_write_buffer_bytes = 4096;
  options.so_sndbuf = 4096;
  options.write_stall_timeout_ms = 5'000;
  NetHarness harness(*tenants, options);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  constexpr size_t kQueries = 40;
  for (size_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client->SendQuery(i + 1, "Vokram IT department", 5, 0).ok());
  }
  ASSERT_TRUE(WaitUntil(
      [&] { return harness.server().Stats().outbox_high_water > 0; }));
  // The peer never reads. Step the clock until an advance lands after the
  // last write that made progress — the stall window then expires.
  ASSERT_TRUE(WaitUntil([&] {
    harness.clock().AdvanceMs(6'000);
    return harness.server().Stats().evicted_slow == 1;
  }));
  // Our end now sees whatever was in flight, then EOF.
  while (true) {
    auto frame = client->ReadFrame(5000);
    if (!frame.ok()) {
      EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable)
          << frame.status().ToString();
      break;
    }
  }
  const NetServerStats stats = harness.server().Stats();
  EXPECT_EQ(stats.evicted_slow, 1u);
  EXPECT_EQ(stats.open_connections, 0u);
  EXPECT_EQ(stats.queries, stats.replies + stats.queries_dropped)
      << "every routed query must be answered or accounted as dropped";
}

// ------------------------------------------------------------ draining

TEST_F(NetServerTest, DrainFinishesInFlightWorkSaysGoodbyeAndCloses) {
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  auto reply = client->Ask(1, "Vokram IT", 3, 0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();

  DrainReport report;
  Status drained = harness.server().Drain(30'000, &report);
  ASSERT_TRUE(drained.ok()) << drained.ToString();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.evicted, 0u);
  EXPECT_EQ(harness.server().lifecycle(), ServerLifecycle::kClosed);

  auto bye = client->ReadFrame(5000);
  ASSERT_TRUE(bye.ok()) << bye.status().ToString();
  EXPECT_TRUE(FrameIs(*bye, "GBYE"));
  auto eof = client->ReadFrame(5000);
  EXPECT_EQ(eof.status().code(), StatusCode::kUnavailable);

  // A drained server refuses seconds and newcomers alike.
  EXPECT_EQ(harness.server().Drain(1000).code(),
            StatusCode::kFailedPrecondition);
  int server_end = -1, client_end = -1;
  ASSERT_TRUE(MakeSocketPair(&server_end, &client_end).ok());
  NetClient refused(client_end);  // owns + closes our end
  EXPECT_FALSE(harness.server().AdoptConnection(server_end).ok());
}

TEST_F(NetServerTest, QueriesParkedBehindBackpressureGetRetryDuringDrain) {
  // A serial worker keeps a routed backlog in flight long enough that the
  // drain deterministically finds parked-but-unrouted QURY frames.
  auto tenants = std::make_unique<TenantRegistry>();
  TenantOptions serial;
  serial.server.workers = 1;
  ASSERT_TRUE(tenants->AddTenant("uni", engine_, serial).ok());
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  constexpr size_t kQueries = 100;
  for (size_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client->SendQuery(i + 1, "Vokram IT department", 5, 0).ok());
  }
  // Routing pauses at max_pending_per_connection (32): the rest is parked
  // in the decoder/kernel when the drain begins.
  ASSERT_TRUE(WaitUntil([&] {
    return harness.server().Stats().queries >=
           NetServerOptions{}.max_pending_per_connection;
  }));
  DrainReport report;
  Status drain_status = Status::OK();
  std::thread drainer(
      [&] { drain_status = harness.server().Drain(600'000, &report); });
  drainer.join();
  ASSERT_TRUE(drain_status.ok()) << drain_status.ToString();
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.evicted, 0u);

  // Read the whole stream back: a RESP for everything routed, an RTRY
  // ("server draining", with a retry-after hint) for everything parked,
  // exactly one terminal per request, then GBYE and EOF.
  size_t resp = 0, rtry = 0;
  bool saw_gbye = false;
  std::set<uint64_t> answered;
  while (true) {
    auto frame = client->ReadFrame(30000);
    if (!frame.ok()) {
      EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable)
          << frame.status().ToString();
      break;
    }
    if (FrameIs(*frame, "GBYE")) {
      saw_gbye = true;
      continue;
    }
    ASSERT_TRUE(answered.insert(frame->request_id).second)
        << "duplicate terminal frame for request " << frame->request_id;
    if (FrameIs(*frame, "RESP")) {
      ++resp;
    } else if (FrameIs(*frame, "RTRY")) {
      ++rtry;
      auto decoded = DecodeErrorReply(frame->payload);
      ASSERT_TRUE(decoded.ok());
      const Status status = StatusFromErrorReply(*decoded);
      EXPECT_EQ(status.code(), StatusCode::kUnavailable);
      EXPECT_GT(SuggestedRetryAfterMs(status), 0.0)
          << "drain RTRY must carry a retry-after hint";
    } else {
      ADD_FAILURE() << "unexpected frame type " << frame->type;
    }
  }
  EXPECT_TRUE(saw_gbye);
  EXPECT_EQ(answered.size(), kQueries);
  EXPECT_GE(rtry, 1u);
  const NetServerStats stats = harness.server().Stats();
  EXPECT_EQ(resp, stats.queries);
  EXPECT_EQ(rtry, kQueries - stats.queries);
  EXPECT_EQ(stats.replies, stats.queries);
  EXPECT_EQ(stats.queries_dropped, 0u);
  EXPECT_EQ(stats.drain_rtry, rtry);
}

TEST_F(NetServerTest, DrainDeadlineEvictsConnectionsThatCannotFlush) {
  auto tenants = MakeRegistry();
  NetServerOptions options;
  options.max_write_buffer_bytes = 4096;
  options.so_sndbuf = 4096;
  NetHarness harness(*tenants, options);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  constexpr size_t kQueries = 40;
  for (size_t i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(client->SendQuery(i + 1, "Vokram IT department", 5, 0).ok());
  }
  // Wait until the pending window is full of routed queries before
  // draining. (Not outbox_high_water: the HELO echo already raises that,
  // so it can fire before the server has even read the QURY frames — and
  // then a drain would RTRY everything, flush the few small frames, and
  // close cleanly.) With real work in flight and a peer that never reads,
  // the replies overflow the kernel buffer plus the outbox cap: the drain
  // cannot finish this connection, so the deadline must evict it.
  ASSERT_TRUE(WaitUntil([&] {
    return harness.server().Stats().queries >=
           NetServerOptions{}.max_pending_per_connection;
  }));
  DrainReport report;
  Status drain_status = Status::OK();
  std::thread drainer(
      [&] { drain_status = harness.server().Drain(5'000, &report); });
  ASSERT_TRUE(WaitUntil([&] {
    return harness.server().lifecycle() != ServerLifecycle::kAccepting;
  }));
  harness.clock().AdvanceMs(60'000);
  drainer.join();
  ASSERT_TRUE(drain_status.ok()) << drain_status.ToString();
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.evicted, 1u);
  const NetServerStats stats = harness.server().Stats();
  EXPECT_EQ(stats.open_connections, 0u);
  EXPECT_EQ(stats.queries, stats.replies + stats.queries_dropped);
  // Our end: whatever flushed before the eviction, then EOF.
  while (true) {
    auto frame = client->ReadFrame(5000);
    if (!frame.ok()) {
      EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable);
      break;
    }
  }
}

// ----------------------------------------------------- server failpoints

TEST_F(NetServerTest, ShortWriteFailpointStillDeliversEveryReply) {
  if (!failpoints::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  FailpointClearer clearer;
  failpoints::Reset();
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  // Every server write dribbles one byte: replies must still arrive whole.
  failpoints::EnableCallback("net.server.short_write", [](void* payload) {
    *static_cast<size_t*>(payload) = 1;
  });
  auto reply = client->Ask(1, "Vokram IT", 3, 0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->answers.empty());
  EXPECT_GT(failpoints::HitCount("net.server.short_write"), 1u);
}

TEST_F(NetServerTest, WriteErrorFailpointKillsTheConnectionWithAccounting) {
  if (!failpoints::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  FailpointClearer clearer;
  failpoints::Reset();
  auto tenants = MakeRegistry();
  NetHarness harness(*tenants);
  auto client = harness.NewClient();
  ASSERT_TRUE(client->Hello("uni").ok());
  failpoints::Action action;
  action.kind = failpoints::ActionKind::kCallback;
  action.callback = [](void* payload) { *static_cast<bool*>(payload) = true; };
  action.limit = 1;
  failpoints::Enable("net.server.write_error", action);
  ASSERT_TRUE(client->SendQuery(1, "Vokram IT", 3, 0).ok());
  auto frame = client->ReadFrame(10000);
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable)
      << "the injected write error must close the connection";
  ASSERT_TRUE(
      WaitUntil([&] { return harness.server().Stats().write_errors == 1; }));
  const NetServerStats stats = harness.server().Stats();
  EXPECT_EQ(stats.queries, stats.replies + stats.queries_dropped);
}

TEST_F(NetServerTest, AcceptFailureFailpointDropsTheConnectionAndCounts) {
  if (!failpoints::Enabled()) GTEST_SKIP() << "failpoints compiled out";
  FailpointClearer clearer;
  failpoints::Reset();
  auto tenants = MakeRegistry();
  NetServerOptions options;
  options.listen = true;
  options.port = 0;
  NetServer server(*tenants, options);
  ASSERT_TRUE(server.Start().ok());
  failpoints::Action action;
  action.kind = failpoints::ActionKind::kCallback;
  action.callback = [](void* payload) { *static_cast<bool*>(payload) = true; };
  action.limit = 1;
  failpoints::Enable("net.server.accept_fail", action);
  // connect(2) lands in the backlog, so it succeeds; the server closes the
  // socket at accept and the client sees EOF on first read.
  auto dropped = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(dropped.ok()) << dropped.status().ToString();
  auto frame = (*dropped)->ReadFrame(10000);
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable)
      << frame.status().ToString();
  EXPECT_EQ(server.Stats().accept_failures, 1u);
  // The failure was injected once; the server keeps serving.
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Hello("uni").ok());
  server.Shutdown();
}

// ------------------------------------------------------- client retries

TEST_F(NetServerTest, AskWithRetryHonorsTheServerRetryAfterHint) {
  int server_end = -1, client_end = -1;
  ASSERT_TRUE(MakeSocketPair(&server_end, &client_end).ok());
  NetClient peer(server_end);  // the scripted "server"
  NetClient client(client_end);
  std::vector<double> slept;
  client.set_sleep_fn([&](double ms) { slept.push_back(ms); });

  std::thread scripted([&] {
    auto first = peer.ReadFrame(15000);
    if (!first.ok()) return;
    (void)!peer.SendFrame(
        ErrorFrameFor(first->request_id, OverloadedStatus("busy", 25.0)))
        .ok();
    auto second = peer.ReadFrame(15000);
    if (!second.ok()) return;
    AnswerReply reply;
    (void)!peer.SendFrame(MakeFrame("RESP", second->request_id,
                                    EncodeAnswerReply(reply)))
        .ok();
  });

  RetryOptions retry_options;
  retry_options.max_attempts = 3;
  retry_options.base_backoff_ms = 1.0;
  retry_options.max_backoff_ms = 5.0;
  RetryPolicy policy(retry_options);
  auto reply = client.AskWithRetry(policy, 42, "anything", 3, 0);
  scripted.join();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(slept.size(), 1u) << "exactly one backoff between two attempts";
  EXPECT_GE(slept[0], 25.0) << "the RTRY hint must floor the backoff";
}

TEST_F(NetServerTest, AskWithRetryReconnectsAfterTheServerDropsUs) {
  auto tenants = MakeRegistry();
  FakeClock clock;
  NetServerOptions options;
  options.listen = true;
  options.port = 0;
  options.idle_timeout_ms = 10'000;
  NetServer server(*tenants, options, clock.AsFunction());
  ASSERT_TRUE(server.Start().ok());
  auto client = NetClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  (*client)->set_sleep_fn([](double) {});
  ASSERT_TRUE((*client)->Hello("uni").ok());
  // The server times the connection out under us...
  clock.AdvanceMs(60'000);
  const bool dropped =
      WaitUntil([&] { return server.Stats().idle_timeouts >= 1; });
  const NetServerStats mid = server.Stats();
  ASSERT_TRUE(dropped) << "accepted=" << mid.accepted
                       << " open=" << mid.open_connections
                       << " disconnects=" << mid.disconnects
                       << " hello_timeouts=" << mid.hello_timeouts
                       << " idle_timeouts=" << mid.idle_timeouts
                       << " frames_in=" << mid.frames_in
                       << " bytes_in=" << mid.bytes_in
                       << " bytes_out=" << mid.bytes_out
                       << " queries=" << mid.queries;
  // ...and the next AskWithRetry dials back in, re-HELOs, and succeeds.
  RetryOptions retry_options;
  retry_options.max_attempts = 4;
  retry_options.base_backoff_ms = 1.0;
  retry_options.max_backoff_ms = 2.0;
  RetryPolicy policy(retry_options);
  auto reply = (*client)->AskWithRetry(policy, 9, "Vokram IT", 3, 0);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_FALSE(reply->answers.empty());
  EXPECT_EQ((*client)->reconnects(), 1u);
  server.Shutdown();
}

TEST_F(NetServerTest, StaleDuplicateTerminalFramesAreDroppedAndCounted) {
  int server_end = -1, client_end = -1;
  ASSERT_TRUE(MakeSocketPair(&server_end, &client_end).ok());
  NetClient peer(server_end);
  NetClient client(client_end);
  std::thread scripted([&] {
    auto first = peer.ReadFrame(15000);
    if (!first.ok()) return;
    AnswerReply reply;
    const std::string wire = EncodeFrame(
        MakeFrame("RESP", first->request_id, EncodeAnswerReply(reply)));
    // The reply... and its evil twin (a retry racing the original).
    (void)!peer.SendBytes(wire.data(), wire.size()).ok();
    (void)!peer.SendBytes(wire.data(), wire.size()).ok();
    auto second = peer.ReadFrame(15000);
    if (!second.ok()) return;
    (void)!peer.SendFrame(MakeFrame("RESP", second->request_id,
                                    EncodeAnswerReply(reply)))
        .ok();
  });
  auto first = client.Ask(7, "q", 3, 0);
  auto second = client.Ask(8, "q", 3, 0);
  scripted.join();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(client.duplicates_dropped(), 1u)
      << "the duplicate RESP for request 7 must be dropped, not misdelivered";
}

}  // namespace
}  // namespace km::net
