// Keyword-query tokenization.
//
// Per the paper, a "keyword" is not always a single word: words that
// together form a value of some attribute domain ("United States") are one
// keyword. The tokenizer folds multi-word units using either explicit
// quoting in the query text or a vocabulary of known multi-word values.

#ifndef KM_TEXT_TOKENIZER_H_
#define KM_TEXT_TOKENIZER_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace km {

/// Options controlling tokenization.
struct TokenizerOptions {
  /// Lower-cased multi-word values known to appear in some domain; used to
  /// fold adjacent words into one keyword ("united states").
  std::unordered_set<std::string> phrase_vocabulary;
  /// Maximum number of words folded into one keyword.
  size_t max_phrase_words = 4;
  /// Words dropped entirely (articles etc.). Lower-cased.
  std::unordered_set<std::string> stopwords = {"the", "a", "an", "of", "in", "by",
                                               "with", "and", "or"};
  /// When false, stopwords are kept.
  bool drop_stopwords = true;
};

/// Canonical form of a phrase-vocabulary key: each whitespace-separated
/// word is punctuation-trimmed the way the tokenizer trims query words, and
/// the result is lower-cased. Use this when populating
/// TokenizerOptions::phrase_vocabulary from instance values ("Search it!" →
/// "search it"), so lookups built from trimmed query tokens match.
std::string NormalizePhraseKey(const std::string& phrase);

/// Keyword-count cap enforced at the engine's public entry points: both
/// combinatorial stages are exponential-ish in keyword count, so a hostile
/// thousand-keyword query must be rejected up front, not attempted.
inline constexpr size_t kMaxQueryKeywords = 64;

/// Per-keyword byte-length cap, enforced alongside kMaxQueryKeywords. The
/// similarity routines (edit distance, n-gram profiles) are quadratic-ish
/// in keyword length, so a single megabyte-long "keyword" is as hostile as
/// a thousand keywords. Longer than any real attribute/domain value.
inline constexpr size_t kMaxKeywordLength = 256;

/// Validates raw query text before tokenization. Rejects with
/// InvalidArgument: empty/whitespace-only text, non-UTF-8 bytes, embedded
/// control characters (anything below 0x20 except whitespace, and DEL —
/// terminal-escape smuggling has no place in a keyword query), an
/// unterminated double quote, and any whitespace-delimited run longer than
/// kMaxKeywordLength bytes. Never aborts — hostile input is the caller's
/// prerogative, an error Status is ours.
Status ValidateQueryText(const std::string& query);

/// Splits a raw query string into keywords.
///
/// Rules: double-quoted spans are single keywords verbatim; outside quotes,
/// words are split on whitespace and punctuation-trimmed; maximal runs of
/// adjacent words found in `phrase_vocabulary` fold into one keyword;
/// stopwords are dropped (unless quoted). The original character case is
/// preserved (recognizers use it as a signal).
///
/// Tokenize itself is total (any byte string yields some token list);
/// engine entry points call ValidateQueryText first so malformed input is
/// rejected rather than guessed at.
std::vector<std::string> Tokenize(const std::string& query,
                                  const TokenizerOptions& options = {});

}  // namespace km

#endif  // KM_TEXT_TOKENIZER_H_
