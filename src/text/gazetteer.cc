#include "text/gazetteer.h"

#include <string>
#include <unordered_set>

#include "common/strings.h"

namespace km {

namespace {

const std::unordered_set<std::string>& CountryNames() {
  static const std::unordered_set<std::string>* kSet =
      new std::unordered_set<std::string>{
          "united states", "italy",        "spain",        "france",
          "germany",       "united kingdom","ireland",     "portugal",
          "netherlands",   "belgium",      "switzerland",  "austria",
          "greece",        "sweden",       "norway",       "finland",
          "denmark",       "poland",       "czechia",      "hungary",
          "romania",       "bulgaria",     "croatia",      "serbia",
          "slovenia",      "slovakia",     "ukraine",      "turkey",
          "russia",        "china",        "japan",        "india",
          "south korea",   "vietnam",      "thailand",     "indonesia",
          "malaysia",      "singapore",    "israel",       "saudi arabia",
          "iran",          "pakistan",     "canada",       "mexico",
          "brazil",        "argentina",    "chile",        "colombia",
          "peru",          "uruguay",      "egypt",        "morocco",
          "nigeria",       "kenya",        "ethiopia",     "south africa",
          "tunisia",       "ghana",        "australia",    "new zealand",
          "usa",           "uk",           "holland",      "england",
      };
  return *kSet;
}

const std::unordered_set<std::string>& CountryCodes() {
  static const std::unordered_set<std::string>* kSet =
      new std::unordered_set<std::string>{
          "us", "it", "es", "fr", "de", "gb", "ie", "pt", "nl", "be", "ch",
          "at", "gr", "se", "no", "fi", "dk", "pl", "cz", "hu", "ro", "bg",
          "hr", "rs", "si", "sk", "ua", "tr", "ru", "cn", "jp", "in", "kr",
          "vn", "th", "id", "my", "sg", "il", "sa", "ir", "pk", "ca", "mx",
          "br", "ar", "cl", "co", "pe", "uy", "eg", "ma", "ng", "ke", "et",
          "za", "tn", "gh", "au", "nz"};
  return *kSet;
}

const std::unordered_set<std::string>& Months() {
  static const std::unordered_set<std::string>* kSet =
      new std::unordered_set<std::string>{
          "january", "february", "march",    "april",   "may",      "june",
          "july",    "august",   "september","october", "november", "december",
          "jan",     "feb",      "mar",      "apr",     "jun",      "jul",
          "aug",     "sep",      "oct",      "nov",     "dec"};
  return *kSet;
}

const std::unordered_set<std::string>& GivenNames() {
  static const std::unordered_set<std::string>* kSet =
      new std::unordered_set<std::string>{
          "james",   "mary",     "robert",  "patricia", "john",     "jennifer",
          "michael", "linda",    "david",   "elizabeth","william",  "barbara",
          "richard", "susan",    "joseph",  "jessica",  "thomas",   "sarah",
          "charles", "karen",    "daniel",  "lisa",     "matthew",  "nancy",
          "anthony", "betty",    "mark",    "margaret", "paul",     "sandra",
          "steven",  "ashley",   "andrew",  "kimberly", "kenneth",  "emily",
          "joshua",  "donna",    "kevin",   "michelle", "brian",    "carol",
          "george",  "amanda",   "edward",  "dorothy",  "ronald",   "melissa",
          "timothy", "deborah",  "jason",   "stephanie","jeffrey",  "rebecca",
          "ryan",    "sharon",   "jacob",   "laura",    "gary",     "cynthia",
          "sonia",   "francesco","matteo",  "raquel",   "yannis",   "giovanni",
          "elena",   "marco",    "lucia",   "andrea",   "paolo",    "chiara",
          "hans",    "ingrid",   "pierre",  "camille",  "akira",    "yuki",
          "wei",     "mei",      "ivan",    "olga",     "pedro",    "ines"};
  return *kSet;
}

}  // namespace

bool IsKnownCountryName(std::string_view word) {
  return CountryNames().count(ToLower(word)) != 0;
}

bool IsKnownCountryCode(std::string_view word) {
  if (word.size() != 2) return false;
  return CountryCodes().count(ToLower(word)) != 0;
}

bool IsMonthName(std::string_view word) {
  return Months().count(ToLower(word)) != 0;
}

bool StartsWithGivenName(std::string_view word) {
  std::string lower = ToLower(word);
  size_t space = lower.find(' ');
  std::string first = space == std::string::npos ? lower : lower.substr(0, space);
  return GivenNames().count(first) != 0;
}

}  // namespace km
