#include "text/similarity.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <unordered_set>
#include <vector>

#include "common/strings.h"
#include "text/stemmer.h"

namespace km {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

size_t BandedLevenshtein(std::string_view a, std::string_view b,
                         size_t max_distance) {
  const size_t n = a.size(), m = b.size();
  // The distance is at least the length difference; bail before any DP.
  const size_t diff = n > m ? n - m : m - n;
  if (diff > max_distance) return max_distance + 1;
  if (n == 0) return m;
  if (m == 0) return n;
  const size_t kBig = max_distance + 1;
  std::vector<size_t> prev(m + 1, kBig), cur(m + 1, kBig);
  for (size_t j = 0; j <= std::min(m, max_distance); ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    // Only |i - j| <= max_distance cells can hold a distance within the
    // cutoff; everything outside the band stays at kBig.
    const size_t lo = i > max_distance ? i - max_distance : 1;
    const size_t hi = std::min(m, i + max_distance);
    if (lo > hi) return kBig;
    std::fill(cur.begin(), cur.end(), kBig);
    if (i <= max_distance) cur[0] = i;
    size_t row_min = kBig;
    for (size_t j = lo; j <= hi; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t best = prev[j - 1] + cost;
      if (prev[j] + 1 < best) best = prev[j] + 1;
      if (cur[j - 1] + 1 < best) best = cur[j - 1] + 1;
      cur[j] = std::min(best, kBig);
      row_min = std::min(row_min, cur[j]);
    }
    if (i <= max_distance) row_min = std::min(row_min, cur[0]);
    if (row_min > max_distance) return kBig;  // every path already over budget
    std::swap(prev, cur);
  }
  return std::min(prev[m], kBig);
}

namespace lowered {

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t d = LevenshteinDistance(a, b);
  size_t mx = std::max(a.size(), b.size());
  return 1.0 - static_cast<double>(d) / static_cast<double>(mx);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t n = a.size(), m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  const size_t window = std::max(n, m) / 2 == 0 ? 0 : std::max(n, m) / 2 - 1;

  std::vector<bool> a_match(n, false), b_match(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_match[j] || a[i] != b[j]) continue;
      a_match[i] = b_match[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;

  // Transpositions.
  size_t t = 0, k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[k]) ++k;
    if (a[i] != b[k]) ++t;
    ++k;
  }
  double mm = static_cast<double>(matches);
  return (mm / n + mm / m + (mm - t / 2.0) / mm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] == b[i]) ++prefix;
    else break;
  }
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double AbbreviationScore(std::string_view abbrev, std::string_view full) {
  if (abbrev.empty() || full.empty()) return 0.0;
  // Only a strictly longer `abbrev` disqualifies; equal-length strings fall
  // through so "dept"/"Dept" (equal after the public wrapper lowers both)
  // reaches the prefix branch and scores 1.0 by coverage, as the header
  // contract promises.
  if (abbrev.size() > full.size()) return 0.0;
  // Must start with the same character to count as an abbreviation.
  if (abbrev[0] != full[0]) return 0.0;
  if (full.compare(0, abbrev.size(), abbrev) == 0) {
    // Prefix: coverage-scaled, at least 0.6.
    double coverage = static_cast<double>(abbrev.size()) / static_cast<double>(full.size());
    return 0.6 + 0.4 * coverage;
  }
  // Subsequence check.
  size_t j = 0;
  for (char c : full) {
    if (j < abbrev.size() && c == abbrev[j]) ++j;
  }
  if (j == abbrev.size()) {
    double coverage = static_cast<double>(abbrev.size()) / static_cast<double>(full.size());
    return 0.4 + 0.3 * coverage;
  }
  return 0.0;
}

}  // namespace lowered

double NormalizedLevenshtein(std::string_view a, std::string_view b) {
  std::string la = ToLower(a), lb = ToLower(b);
  return lowered::NormalizedLevenshtein(la, lb);
}

double JaroSimilarity(std::string_view sa, std::string_view sb) {
  std::string a = ToLower(sa), b = ToLower(sb);
  return lowered::JaroSimilarity(a, b);
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  // Lower both sides exactly once; the Jaro core and the common-prefix scan
  // share the same copies.
  std::string la = ToLower(a), lb = ToLower(b);
  return lowered::JaroWinklerSimilarity(la, lb);
}

namespace {

std::unordered_set<std::string> Trigrams(std::string_view lowered_s) {
  std::unordered_set<std::string> grams;
  // An empty string has no trigrams. With the old '#' padding the padded
  // form of "" was "####", which collapsed to the single gram "###" — that
  // made TrigramJaccard("#", "") score 1.0 and left the empty-set guard in
  // the caller dead.
  if (lowered_s.empty()) return grams;
  std::string padded;
  padded.reserve(lowered_s.size() + 4);
  padded.append(2, kTrigramPadLeft);
  padded += lowered_s;
  padded.append(2, kTrigramPadRight);
  for (size_t i = 0; i + 3 <= padded.size(); ++i) grams.insert(padded.substr(i, 3));
  return grams;
}

}  // namespace

namespace lowered {

double TrigramJaccard(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  auto ga = Trigrams(a);
  auto gb = Trigrams(b);
  if (ga.empty() || gb.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& g : ga) inter += gb.count(g);
  size_t uni = ga.size() + gb.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

void PackedTrigrams(std::string_view s, std::vector<uint32_t>* out) {
  if (s.empty()) return;
  // Mirror Trigrams() exactly: two sentinel bytes each side, every window
  // of three bytes, distinct grams only. Packing three bytes big-endian
  // into a uint32 is a bijection from grams to integers, so sorted-unique
  // arrays of these values have the same cardinalities as the string sets.
  std::string padded;
  padded.reserve(s.size() + 4);
  padded.append(2, kTrigramPadLeft);
  padded += s;
  padded.append(2, kTrigramPadRight);
  const size_t first = out->size();
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    uint32_t g = (static_cast<uint32_t>(static_cast<unsigned char>(padded[i])) << 16) |
                 (static_cast<uint32_t>(static_cast<unsigned char>(padded[i + 1])) << 8) |
                 static_cast<uint32_t>(static_cast<unsigned char>(padded[i + 2]));
    out->push_back(g);
  }
  std::sort(out->begin() + static_cast<ptrdiff_t>(first), out->end());
  out->erase(std::unique(out->begin() + static_cast<ptrdiff_t>(first), out->end()),
             out->end());
}

}  // namespace lowered

double TrigramJaccard(std::string_view a, std::string_view b) {
  std::string la = ToLower(a), lb = ToLower(b);
  return lowered::TrigramJaccard(la, lb);
}

double AbbreviationScore(std::string_view abbrev_raw, std::string_view full_raw) {
  std::string abbrev = ToLower(abbrev_raw), full = ToLower(full_raw);
  return lowered::AbbreviationScore(abbrev, full);
}

double NameSimilarity(std::string_view a, std::string_view b) {
  // SplitIdentifierWords emits lower-case words, so the whole alignment
  // below runs on the allocation-free lowered:: measures — one
  // normalization per (keyword, term) pair instead of one per word-pair
  // per measure.
  std::vector<std::string> wa = SplitIdentifierWords(a);
  std::vector<std::string> wb = SplitIdentifierWords(b);
  if (wa.empty() || wb.empty()) return 0.0;

  auto word_sim = [](const std::string& x, const std::string& y) {
    if (x == y) return 1.0;
    // Inflection variants ("departments"/"department") are near-identical.
    if (SameStem(x, y)) return 0.97;
    double s = std::max(lowered::JaroWinklerSimilarity(x, y),
                        lowered::TrigramJaccard(x, y));
    s = std::max(s, lowered::AbbreviationScore(x, y));
    s = std::max(s, lowered::AbbreviationScore(y, x));
    return s;
  };

  // Greedy best-pair alignment of the smaller word list onto the larger.
  const auto& small = wa.size() <= wb.size() ? wa : wb;
  const auto& large = wa.size() <= wb.size() ? wb : wa;
  std::vector<bool> used(large.size(), false);
  double total = 0;
  for (const auto& w : small) {
    double best = 0;
    ssize_t best_j = -1;
    for (size_t j = 0; j < large.size(); ++j) {
      if (used[j]) continue;
      double s = word_sim(w, large[j]);
      if (s > best) {
        best = s;
        best_j = static_cast<ssize_t>(j);
      }
    }
    if (best_j >= 0) used[static_cast<size_t>(best_j)] = true;
    total += best;
  }
  // Average over the larger list so unmatched words dilute the score.
  return total / static_cast<double>(large.size());
}

}  // namespace km
