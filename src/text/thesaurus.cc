#include "text/thesaurus.h"

#include <algorithm>

#include "common/strings.h"

namespace km {

void Thesaurus::AddSynonyms(const std::vector<std::string>& words) {
  std::vector<std::string> lower;
  lower.reserve(words.size());
  for (const auto& w : words) lower.push_back(ToLower(w));
  for (const auto& w : lower) {
    auto& group = synonyms_[w];
    for (const auto& other : lower) {
      if (other == w) continue;
      if (std::find(group.begin(), group.end(), other) == group.end()) {
        group.push_back(other);
      }
    }
  }
}

void Thesaurus::AddRelated(const std::string& a, const std::string& b) {
  std::string la = ToLower(a), lb = ToLower(b);
  auto add = [this](const std::string& x, const std::string& y) {
    auto& v = related_[x];
    if (std::find(v.begin(), v.end(), y) == v.end()) v.push_back(y);
  };
  add(la, lb);
  add(lb, la);
}

bool Thesaurus::AreSynonyms(std::string_view a, std::string_view b) const {
  std::string la = ToLower(a), lb = ToLower(b);
  auto it = synonyms_.find(la);
  if (it == synonyms_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), lb) != it->second.end();
}

double Thesaurus::Similarity(std::string_view a, std::string_view b) const {
  std::string la = ToLower(a), lb = ToLower(b);
  if (la == lb) return 1.0;
  if (AreSynonyms(la, lb)) return kSynonymScore;
  auto it = related_.find(la);
  if (it != related_.end() &&
      std::find(it->second.begin(), it->second.end(), lb) != it->second.end()) {
    return kRelatedScore;
  }
  return 0.0;
}

std::vector<std::string> Thesaurus::SynonymsOf(std::string_view word) const {
  auto it = synonyms_.find(ToLower(word));
  if (it == synonyms_.end()) return {};
  return it->second;
}

const Thesaurus& BuiltinThesaurus() {
  static const Thesaurus* kThesaurus = [] {
    auto* t = new Thesaurus();
    // People and roles.
    t->AddSynonyms({"person", "people", "individual", "human"});
    t->AddSynonyms({"author", "writer", "creator"});
    t->AddSynonyms({"director", "head", "chief", "leader"});
    t->AddSynonyms({"member", "participant", "affiliate"});
    t->AddSynonyms({"employee", "staff", "worker", "personnel"});
    t->AddSynonyms({"student", "pupil", "scholar"});
    t->AddSynonyms({"professor", "instructor", "lecturer", "teacher"});
    // Organizations.
    t->AddSynonyms({"university", "college", "academy"});
    t->AddSynonyms({"department", "dept", "division", "unit"});
    t->AddSynonyms({"organization", "organisation", "org", "institution"});
    t->AddSynonyms({"company", "firm", "corporation", "enterprise"});
    t->AddSynonyms({"conference", "symposium", "workshop", "venue"});
    t->AddSynonyms({"journal", "periodical", "magazine"});
    // Geography.
    t->AddSynonyms({"country", "nation", "state", "land"});
    t->AddSynonyms({"city", "town", "municipality", "metropolis"});
    t->AddSynonyms({"province", "region", "district", "territory"});
    t->AddSynonyms({"capital", "seat"});
    t->AddSynonyms({"river", "stream", "waterway"});
    t->AddSynonyms({"lake", "reservoir"});
    t->AddSynonyms({"mountain", "peak", "mount", "summit"});
    t->AddSynonyms({"sea", "ocean"});
    t->AddSynonyms({"island", "isle"});
    t->AddSynonyms({"desert", "wasteland"});
    t->AddSynonyms({"border", "boundary", "frontier"});
    t->AddSynonyms({"population", "inhabitants", "residents"});
    t->AddSynonyms({"area", "surface", "extent", "size"});
    t->AddSynonyms({"language", "tongue", "idiom"});
    t->AddSynonyms({"religion", "faith", "creed"});
    t->AddSynonyms({"ethnicity", "ethnic", "ethnicgroup"});
    t->AddSynonyms({"currency", "money"});
    t->AddSynonyms({"government", "regime", "administration"});
    t->AddSynonyms({"independence", "sovereignty"});
    t->AddSynonyms({"elevation", "altitude", "height"});
    t->AddSynonyms({"depth", "deepness"});
    t->AddSynonyms({"length", "extension"});
    t->AddSynonyms({"abbreviation", "abbrev", "acronym", "code"});
    t->AddSynonyms({"headquarters", "hq", "seat"});
    // Publications.
    t->AddSynonyms({"paper", "article", "publication", "manuscript"});
    t->AddSynonyms({"proceedings", "proc"});
    t->AddSynonyms({"inproceedings", "inproc", "conferencepaper"});
    t->AddSynonyms({"title", "name", "caption"});
    t->AddSynonyms({"abstract", "summary"});
    t->AddSynonyms({"volume", "vol"});
    t->AddSynonyms({"pages", "pp"});
    t->AddSynonyms({"editor", "curator"});
    t->AddSynonyms({"citation", "reference", "cite"});
    t->AddSynonyms({"topic", "subject", "theme", "keyword"});
    // Projects and generic schema words.
    t->AddSynonyms({"project", "initiative", "programme", "program"});
    t->AddSynonyms({"participation", "involvement"});
    t->AddSynonyms({"affiliation", "membership"});
    t->AddSynonyms({"phone", "telephone", "tel"});
    t->AddSynonyms({"email", "mail", "e-mail"});
    t->AddSynonyms({"address", "location", "addr"});
    t->AddSynonyms({"year", "yr"});
    t->AddSynonyms({"date", "day"});
    t->AddSynonyms({"id", "identifier", "key", "code"});
    t->AddSynonyms({"number", "num", "no", "count"});
    t->AddSynonyms({"type", "kind", "category", "class"});
    // Related (weaker) links.
    t->AddRelated("author", "person");
    t->AddRelated("author", "people");
    t->AddRelated("director", "person");
    t->AddRelated("capital", "city");
    t->AddRelated("university", "department");
    t->AddRelated("country", "capital");
    t->AddRelated("paper", "proceedings");
    t->AddRelated("paper", "journal");
    t->AddRelated("conference", "proceedings");
    t->AddRelated("city", "province");
    t->AddRelated("province", "country");
    t->AddRelated("member", "organization");
    t->AddRelated("student", "university");
    t->AddRelated("professor", "department");
    return t;
  }();
  return *kThesaurus;
}

}  // namespace km
