#include "text/tokenizer.h"

#include <cctype>

#include "common/strings.h"

namespace km {

namespace {

// Trims punctuation that is not meaningful inside a keyword (commas,
// question marks...) while preserving e-mail/url/date characters.
std::string TrimPunct(const std::string& w) {
  size_t b = 0, e = w.size();
  auto strip = [](char c) {
    return c == ',' || c == ';' || c == '?' || c == '!' || c == '"' || c == '(' ||
           c == ')' || c == '[' || c == ']';
  };
  while (b < e && strip(w[b])) ++b;
  while (e > b && strip(w[e - 1])) --e;
  // A trailing period is punctuation unless the token looks like an
  // initial ("D.") or contains other periods (e.g. "www.x.org").
  bool is_initial = (e == b + 2) && std::isupper(static_cast<unsigned char>(w[b])) &&
                    w[e - 1] == '.';
  if (!is_initial && e > b + 1 && w[e - 1] == '.' && w.find('.', b) == e - 1) --e;
  return w.substr(b, e - b);
}

}  // namespace

Status ValidateQueryText(const std::string& query) {
  if (Trim(query).empty()) {
    return Status::InvalidArgument("query text is empty");
  }
  if (!IsValidUtf8(query)) {
    return Status::InvalidArgument("query text is not valid UTF-8");
  }
  size_t quotes = 0;
  for (char c : query) {
    if (c == '"') ++quotes;
  }
  if (quotes % 2 != 0) {
    return Status::InvalidArgument("query text has an unterminated quote");
  }
  size_t run = 0;  // bytes since the last whitespace boundary
  for (size_t i = 0; i < query.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(query[i]);
    if (c == 0x7f || (c < 0x20 && c != '\t' && c != '\n' && c != '\r')) {
      return Status::InvalidArgument(
          "query text contains a control character (byte " +
          std::to_string(static_cast<unsigned>(c)) + " at offset " +
          std::to_string(i) + ")");
    }
    run = std::isspace(c) ? 0 : run + 1;
    if (run > kMaxKeywordLength) {
      return Status::InvalidArgument(
          "query contains a keyword longer than " +
          std::to_string(kMaxKeywordLength) + " bytes");
    }
  }
  return Status::OK();
}

std::string NormalizePhraseKey(const std::string& phrase) {
  std::vector<std::string> words = SplitWhitespace(phrase);
  std::vector<std::string> trimmed;
  trimmed.reserve(words.size());
  for (const std::string& w : words) {
    std::string t = TrimPunct(w);
    if (!t.empty()) trimmed.push_back(t);
  }
  return ToLower(Join(trimmed, " "));
}

std::vector<std::string> Tokenize(const std::string& query,
                                  const TokenizerOptions& options) {
  // Pass 1: split into raw tokens, honoring double quotes.
  std::vector<std::string> raw;
  std::vector<bool> quoted;
  size_t i = 0;
  while (i < query.size()) {
    unsigned char c = static_cast<unsigned char>(query[i]);
    if (std::isspace(c)) {
      ++i;
      continue;
    }
    if (query[i] == '"') {
      size_t close = query.find('"', i + 1);
      if (close == std::string::npos) close = query.size();
      std::string token(Trim(query.substr(i + 1, close - i - 1)));
      if (!token.empty()) {
        raw.push_back(token);
        quoted.push_back(true);
      }
      i = close < query.size() ? close + 1 : close;
      continue;
    }
    size_t start = i;
    while (i < query.size() && !std::isspace(static_cast<unsigned char>(query[i])) &&
           query[i] != '"') {
      ++i;
    }
    std::string token = TrimPunct(query.substr(start, i - start));
    if (!token.empty()) {
      raw.push_back(token);
      quoted.push_back(false);
    }
  }

  // Pass 2: fold multi-word phrases and drop stopwords.
  std::vector<std::string> out;
  size_t n = raw.size();
  size_t pos = 0;
  while (pos < n) {
    if (quoted[pos]) {
      out.push_back(raw[pos]);
      ++pos;
      continue;
    }
    // Greedy longest phrase starting here.
    size_t best_len = 0;
    std::string best_phrase;
    size_t max_len = std::min(options.max_phrase_words, n - pos);
    std::string candidate;
    for (size_t len = 1; len <= max_len; ++len) {
      if (quoted[pos + len - 1]) break;  // never merge across quotes
      if (len == 1) {
        candidate = raw[pos];
      } else {
        candidate += " " + raw[pos + len - 1];
      }
      if (len >= 2 && options.phrase_vocabulary.count(ToLower(candidate)) != 0) {
        best_len = len;
        best_phrase = candidate;
      }
    }
    if (best_len >= 2) {
      out.push_back(best_phrase);
      pos += best_len;
      continue;
    }
    if (options.drop_stopwords && options.stopwords.count(ToLower(raw[pos])) != 0) {
      ++pos;
      continue;
    }
    out.push_back(raw[pos]);
    ++pos;
  }
  return out;
}

}  // namespace km
