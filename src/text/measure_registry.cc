#include "text/measure_registry.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "text/similarity.h"

namespace km {

namespace {

// A measure defined by a plain scoring function from similarity.h.
class FunctionMeasure : public SimilarityMeasure {
 public:
  using Fn = double (*)(std::string_view, std::string_view);
  FunctionMeasure(std::string name, Fn fn, bool symmetric)
      : name_(std::move(name)), fn_(fn), symmetric_(symmetric) {}

  std::string_view name() const override { return name_; }
  double Score(std::string_view a, std::string_view b) const override {
    return fn_(a, b);
  }
  bool symmetric() const override { return symmetric_; }

 private:
  std::string name_;
  Fn fn_;
  bool symmetric_;
};

class FunctionMeasureCreator : public SimilarityMeasureCreator {
 public:
  FunctionMeasureCreator(std::string name, FunctionMeasure::Fn fn, bool symmetric)
      : SimilarityMeasureCreator(std::move(name)), fn_(fn), symmetric_(symmetric) {}

  std::unique_ptr<SimilarityMeasure> Create(
      const MeasureOptions& /*options*/) const override {
    return std::make_unique<FunctionMeasure>(measure_name(), fn_, symmetric_);
  }

 private:
  FunctionMeasure::Fn fn_;
  bool symmetric_;
};

// Levenshtein with an optional distance cutoff: beyond the cutoff the
// banded scan bails out early and the measure scores 0.
class LevenshteinMeasure : public SimilarityMeasure {
 public:
  explicit LevenshteinMeasure(size_t max_distance) : max_distance_(max_distance) {}

  std::string_view name() const override { return "levenshtein"; }
  double Score(std::string_view a, std::string_view b) const override {
    std::string la = ToLower(a), lb = ToLower(b);
    if (la.empty() && lb.empty()) return 1.0;
    const size_t mx = std::max(la.size(), lb.size());
    if (max_distance_ > 0) {
      const size_t d = BandedLevenshtein(la, lb, max_distance_);
      if (d > max_distance_) return 0.0;
      return 1.0 - static_cast<double>(d) / static_cast<double>(mx);
    }
    return lowered::NormalizedLevenshtein(la, lb);
  }
  bool symmetric() const override { return true; }

 private:
  size_t max_distance_;
};

class LevenshteinCreator : public SimilarityMeasureCreator {
 public:
  LevenshteinCreator() : SimilarityMeasureCreator("levenshtein") {}
  std::unique_ptr<SimilarityMeasure> Create(
      const MeasureOptions& options) const override {
    return std::make_unique<LevenshteinMeasure>(options.levenshtein_max_distance);
  }
};

class MongeElkanMeasure : public SimilarityMeasure {
 public:
  MongeElkanMeasure(std::unique_ptr<SimilarityMeasure> inner, double inner_floor)
      : inner_(std::move(inner)), inner_floor_(inner_floor) {}

  std::string_view name() const override { return "monge_elkan"; }
  double Score(std::string_view a, std::string_view b) const override {
    std::vector<std::string> wa = SplitIdentifierWords(a);
    std::vector<std::string> wb = SplitIdentifierWords(b);
    return MongeElkanSimilarity(wa, wb, *inner_, inner_floor_);
  }
  bool symmetric() const override { return true; }

 private:
  std::unique_ptr<SimilarityMeasure> inner_;
  double inner_floor_;
};

class MongeElkanCreator : public SimilarityMeasureCreator {
 public:
  MongeElkanCreator() : SimilarityMeasureCreator("monge_elkan") {}
  std::unique_ptr<SimilarityMeasure> Create(
      const MeasureOptions& options) const override {
    // Resolve the inner measure through the registry so custom inner
    // measures work too; fall back to Jaro-Winkler (and guard against a
    // self-referential inner name, which would recurse forever).
    std::unique_ptr<SimilarityMeasure> inner;
    if (options.monge_elkan_inner != "monge_elkan") {
      MeasureOptions inner_opts = options;
      inner = MeasureRegistry::Global().Create(options.monge_elkan_inner, inner_opts);
    }
    if (inner == nullptr) {
      inner = std::make_unique<FunctionMeasure>("jaro_winkler",
                                                &JaroWinklerSimilarity, true);
    }
    return std::make_unique<MongeElkanMeasure>(std::move(inner),
                                               options.monge_elkan_inner_floor);
  }
};

double MongeElkanDirected(const std::vector<std::string>& from,
                          const std::vector<std::string>& onto,
                          const SimilarityMeasure& inner, double inner_floor) {
  double total = 0;
  for (const auto& w : from) {
    double best = 0;
    for (const auto& v : onto) best = std::max(best, inner.Score(w, v));
    if (best >= inner_floor) total += best;
  }
  return total / static_cast<double>(from.size());
}

}  // namespace

double MongeElkanSimilarity(const std::vector<std::string>& a_words,
                            const std::vector<std::string>& b_words,
                            const SimilarityMeasure& inner, double inner_floor) {
  if (a_words.empty() && b_words.empty()) return 1.0;
  if (a_words.empty() || b_words.empty()) return 0.0;
  return (MongeElkanDirected(a_words, b_words, inner, inner_floor) +
          MongeElkanDirected(b_words, a_words, inner, inner_floor)) /
         2.0;
}

MeasureRegistry& MeasureRegistry::Global() {
  static MeasureRegistry* registry = [] {
    auto* r = new MeasureRegistry();
    r->Register(std::make_unique<LevenshteinCreator>());
    r->Register(std::make_unique<FunctionMeasureCreator>("jaro", &JaroSimilarity,
                                                         true));
    r->Register(std::make_unique<FunctionMeasureCreator>(
        "jaro_winkler", &JaroWinklerSimilarity, true));
    r->Register(std::make_unique<FunctionMeasureCreator>(
        "trigram_jaccard", &TrigramJaccard, true));
    // Directed by contract: Score(abbrev, full).
    r->Register(std::make_unique<FunctionMeasureCreator>(
        "abbreviation", &AbbreviationScore, false));
    // The composite identifier measure the weight builder uses by default.
    // The greedy alignment maps the smaller word list onto the larger one,
    // but on EQUAL word counts the first argument is the alignment source,
    // and greedy assignment from a symmetric pair matrix is still order-
    // sensitive — so no symmetry is claimed.
    r->Register(std::make_unique<FunctionMeasureCreator>("name", &NameSimilarity,
                                                         false));
    r->Register(std::make_unique<MongeElkanCreator>());
    return r;
  }();
  return *registry;
}

void MeasureRegistry::Register(std::unique_ptr<SimilarityMeasureCreator> creator) {
  std::string name = creator->measure_name();
  std::shared_ptr<const SimilarityMeasureCreator> shared = std::move(creator);
  MutexLock lock(mu_);
  creators_[name] = std::move(shared);
}

std::unique_ptr<SimilarityMeasure> MeasureRegistry::Create(
    std::string_view name, const MeasureOptions& options) const {
  std::shared_ptr<const SimilarityMeasureCreator> creator;
  {
    MutexLock lock(mu_);
    auto it = creators_.find(std::string(name));
    if (it == creators_.end()) return nullptr;
    creator = it->second;
  }
  // Create() runs outside the lock: creators are immutable once registered,
  // and Monge-Elkan re-enters the registry to resolve its inner measure.
  return creator->Create(options);
}

std::vector<std::string> MeasureRegistry::Names() const {
  std::vector<std::string> names;
  {
    MutexLock lock(mu_);
    names.reserve(creators_.size());
    for (const auto& [name, creator] : creators_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace km
