// A small built-in gazetteer: closed word classes whose membership is a
// much stronger domain signal than surface shape alone.
//
// "Italy" is capitalized like any proper noun, but *knowing* it is a
// country name lets the metadata-only matcher score Dom(COUNTRY.Name) far
// above Dom(PERSON.Name). The paper allows exactly this kind of auxiliary
// external knowledge (public ontologies, vocabularies); this module ships
// a compact offline subset: country names and ISO codes, month names, and
// frequent given names.

#ifndef KM_TEXT_GAZETTEER_H_
#define KM_TEXT_GAZETTEER_H_

#include <string_view>

namespace km {

/// True iff `word` is a known country name ("Italy", "South Korea").
/// Case-insensitive.
bool IsKnownCountryName(std::string_view word);

/// True iff `word` is a known ISO-like alpha-2 country code ("IT", "us").
/// Case-insensitive.
bool IsKnownCountryCode(std::string_view word);

/// True iff `word` is a month name or 3-letter month abbreviation.
bool IsMonthName(std::string_view word);

/// True iff the first token of `word` is a frequent given name
/// ("Sonia", "james martinez"). Case-insensitive.
bool StartsWithGivenName(std::string_view word);

}  // namespace km

#endif  // KM_TEXT_GAZETTEER_H_
