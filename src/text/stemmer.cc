#include "text/stemmer.h"

#include <cctype>

#include "common/strings.h"

namespace km {

namespace {

// The working buffer with the helper predicates of Porter's paper.
class Stem {
 public:
  explicit Stem(std::string word) : b_(std::move(word)) {}

  const std::string& str() const { return b_; }

  bool IsConsonant(size_t i) const {
    char c = b_[i];
    if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') return false;
    if (c == 'y') return i == 0 ? true : !IsConsonant(i - 1);
    return true;
  }

  // m(): the number of VC sequences in the stem prefix [0, j].
  size_t Measure(size_t j) const {
    size_t n = 0;
    size_t i = 0;
    // skip initial consonants
    while (i <= j && IsConsonant(i)) ++i;
    while (true) {
      if (i > j) return n;
      // skip vowels
      while (i <= j && !IsConsonant(i)) ++i;
      if (i > j) return n;
      ++n;
      while (i <= j && IsConsonant(i)) ++i;
    }
  }

  size_t MeasureAll() const { return b_.empty() ? 0 : Measure(b_.size() - 1); }

  bool HasVowel(size_t j) const {
    for (size_t i = 0; i <= j && i < b_.size(); ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant() const {
    size_t n = b_.size();
    return n >= 2 && b_[n - 1] == b_[n - 2] && IsConsonant(n - 1);
  }

  // *o: stem ends cvc where the final c is not w, x or y.
  bool EndsCvc() const {
    size_t n = b_.size();
    if (n < 3) return false;
    if (!IsConsonant(n - 3) || IsConsonant(n - 2) || !IsConsonant(n - 1)) return false;
    char c = b_[n - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool EndsWith(std::string_view suffix) const {
    return b_.size() >= suffix.size() &&
           b_.compare(b_.size() - suffix.size(), suffix.size(), suffix) == 0;
  }

  // Measure of the stem that remains after removing `suffix`.
  size_t MeasureWithout(std::string_view suffix) const {
    if (b_.size() < suffix.size() + 1) return 0;
    return Measure(b_.size() - suffix.size() - 1);
  }

  bool HasVowelWithout(std::string_view suffix) const {
    if (b_.size() < suffix.size() + 1) return false;
    return HasVowel(b_.size() - suffix.size() - 1);
  }

  void Chop(size_t count) { b_.resize(b_.size() - count); }

  void Replace(std::string_view suffix, std::string_view with) {
    Chop(suffix.size());
    b_ += with;
  }

  // Applies "(condition) S1 -> S2" if the word ends with S1 and the stem
  // measure (without S1) is > min_m. Returns true when the rule fired.
  bool Rule(std::string_view s1, std::string_view s2, size_t min_m) {
    if (!EndsWith(s1)) return false;
    if (MeasureWithout(s1) <= min_m) return true;  // matched but blocked
    Replace(s1, s2);
    return true;
  }

  std::string b_;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  std::string lower = ToLower(word);
  if (lower.size() < 3) return lower;
  for (char c : lower) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return lower;  // not a word
  }
  Stem s(lower);

  // Step 1a: plurals.
  if (s.EndsWith("sses")) {
    s.Chop(2);
  } else if (s.EndsWith("ies")) {
    s.Replace("ies", "i");
  } else if (s.EndsWith("ss")) {
    // keep
  } else if (s.EndsWith("s")) {
    s.Chop(1);
  }

  // Step 1b: -ed / -ing.
  bool cleanup = false;
  if (s.EndsWith("eed")) {
    if (s.MeasureWithout("eed") > 0) s.Chop(1);
  } else if (s.EndsWith("ed") && s.HasVowelWithout("ed")) {
    s.Chop(2);
    cleanup = true;
  } else if (s.EndsWith("ing") && s.HasVowelWithout("ing")) {
    s.Chop(3);
    cleanup = true;
  }
  if (cleanup) {
    if (s.EndsWith("at") || s.EndsWith("bl") || s.EndsWith("iz")) {
      s.b_ += 'e';
    } else if (s.DoubleConsonant()) {
      char c = s.b_.back();
      if (c != 'l' && c != 's' && c != 'z') s.Chop(1);
    } else if (s.MeasureAll() == 1 && s.EndsCvc()) {
      s.b_ += 'e';
    }
  }

  // Step 1c: y -> i when the stem has a vowel.
  if (s.EndsWith("y") && s.HasVowelWithout("y")) s.b_.back() = 'i';

  // Step 2.
  static const struct {
    const char* s1;
    const char* s2;
  } kStep2[] = {{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
                {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
                {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
                {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
                {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
                {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
                {"iviti", "ive"},   {"biliti", "ble"}};
  for (const auto& r : kStep2) {
    if (s.Rule(r.s1, r.s2, 0)) break;
  }

  // Step 3.
  static const struct {
    const char* s1;
    const char* s2;
  } kStep3[] = {{"icate", "ic"}, {"ative", ""},  {"alize", "al"}, {"iciti", "ic"},
                {"ical", "ic"},  {"ful", ""},    {"ness", ""}};
  for (const auto& r : kStep3) {
    if (s.Rule(r.s1, r.s2, 0)) break;
  }

  // Step 4: drop suffixes when m > 1.
  static const char* kStep4[] = {"al",   "ance", "ence", "er",   "ic",  "able",
                                 "ible", "ant",  "ement","ment", "ent", "ou",
                                 "ism",  "ate",  "iti",  "ous",  "ive", "ize"};
  bool fired = false;
  for (const char* suf : kStep4) {
    if (s.EndsWith(suf)) {
      if (s.MeasureWithout(suf) > 1) s.Chop(std::string_view(suf).size());
      fired = true;
      break;
    }
  }
  if (!fired && s.EndsWith("ion") && s.MeasureWithout("ion") > 1) {
    size_t n = s.str().size();
    if (n > 3 && (s.str()[n - 4] == 's' || s.str()[n - 4] == 't')) s.Chop(3);
  }

  // Step 5a: drop final e.
  if (s.EndsWith("e")) {
    size_t m = s.MeasureWithout("e");
    if (m > 1) {
      s.Chop(1);
    } else if (m == 1) {
      // remove unless the remaining stem ends cvc.
      std::string without = s.str().substr(0, s.str().size() - 1);
      Stem t(without);
      if (!t.EndsCvc()) s.Chop(1);
    }
  }
  // Step 5b: -ll -> -l when m > 1.
  if (s.DoubleConsonant() && s.str().back() == 'l' && s.MeasureAll() > 1) {
    s.Chop(1);
  }

  return s.str();
}

bool SameStem(std::string_view a, std::string_view b) {
  return PorterStem(a) == PorterStem(b);
}

}  // namespace km
