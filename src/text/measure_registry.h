// Pluggable string-similarity measures behind a creator registry.
//
// The weight builder historically hard-wired the composite NameSimilarity
// into every SW cell. This registry lifts each measure behind a small
// interface so the builder (and through it the HMM emission path and
// ExplainWeight provenance) can be configured with any registered measure
// by name — including Monge-Elkan for multi-token keywords, which the
// composite's greedy alignment approximates but does not expose on its
// own. The shape follows the SimilarityMeasureCreator pattern: creators
// are registered once (by measure name), Create() instantiates a measure
// from per-measure options, and instances are immutable + thread-safe.

#ifndef KM_TEXT_MEASURE_REGISTRY_H_
#define KM_TEXT_MEASURE_REGISTRY_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace km {

/// Tuning knobs passed to SimilarityMeasureCreator::Create. Each measure
/// reads the fields it understands and ignores the rest.
struct MeasureOptions {
  /// "levenshtein": distances above this cutoff score 0 via the banded
  /// scan instead of filling the full DP table. 0 = no cutoff.
  size_t levenshtein_max_distance = 0;
  /// "monge_elkan": name of the registered inner word-pair measure.
  std::string monge_elkan_inner = "jaro_winkler";
  /// "monge_elkan": inner scores below this floor count as 0 (noise cut
  /// for unrelated word pairs).
  double monge_elkan_inner_floor = 0.0;
};

/// One string-similarity measure. Instances are immutable after creation
/// and safe to share across threads. Scores are in [0, 1]; inputs are raw
/// (possibly mixed-case) strings — measures normalize internally exactly
/// like the free functions in text/similarity.h.
class SimilarityMeasure {
 public:
  virtual ~SimilarityMeasure() = default;

  /// The registry name this measure was created under.
  virtual std::string_view name() const = 0;

  /// Similarity of `a` and `b` in [0, 1].
  virtual double Score(std::string_view a, std::string_view b) const = 0;

  /// True when Score(a, b) == Score(b, a) by contract (the property suite
  /// checks exactly the measures that claim it).
  virtual bool symmetric() const = 0;
};

/// Factory for one named measure. Register subclasses with
/// MeasureRegistry::Global().Register(...).
class SimilarityMeasureCreator {
 public:
  explicit SimilarityMeasureCreator(std::string name) : name_(std::move(name)) {}
  virtual ~SimilarityMeasureCreator() = default;

  const std::string& measure_name() const { return name_; }

  /// Builds a fresh measure instance from `options`.
  virtual std::unique_ptr<SimilarityMeasure> Create(
      const MeasureOptions& options) const = 0;

 private:
  std::string name_;
};

/// Process-wide registry of similarity measures. The built-in measures
/// (levenshtein, jaro, jaro_winkler, trigram_jaccard, abbreviation,
/// monge_elkan, and the composite "name") are registered on first use of
/// Global(); callers may register additional creators, replacing any
/// previous creator of the same name.
class MeasureRegistry {
 public:
  /// The process-wide instance, with built-ins registered.
  static MeasureRegistry& Global();

  /// Registers (or replaces) the creator under its measure_name().
  void Register(std::unique_ptr<SimilarityMeasureCreator> creator);

  /// Instantiates the named measure, or nullptr for an unknown name.
  std::unique_ptr<SimilarityMeasure> Create(
      std::string_view name, const MeasureOptions& options = {}) const;

  /// Registered measure names, sorted (for error messages and docs).
  std::vector<std::string> Names() const;

 private:
  MeasureRegistry() = default;

  mutable Mutex mu_;
  // shared_ptr so Create() can instantiate outside the lock (Monge-Elkan
  // re-enters the registry for its inner measure) while a concurrent
  // Register() replacing the same name cannot free the creator under it.
  std::unordered_map<std::string, std::shared_ptr<const SimilarityMeasureCreator>>
      creators_ KM_GUARDED_BY(mu_);
};

/// Monge-Elkan similarity over identifier words: for each word of one
/// side take the best inner-measure score against the other side and
/// average; both directions are evaluated and averaged (symmetrized
/// Monge-Elkan). Exposed for direct use in tests; normal access is
/// MeasureRegistry::Global().Create("monge_elkan", opts). Symmetrized by
/// evaluating both directions and averaging, so it is usable where the
/// builder expects symmetric scores.
double MongeElkanSimilarity(const std::vector<std::string>& a_words,
                            const std::vector<std::string>& b_words,
                            const SimilarityMeasure& inner,
                            double inner_floor = 0.0);

}  // namespace km

#endif  // KM_TEXT_MEASURE_REGISTRY_H_
