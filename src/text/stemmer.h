// Porter stemmer (the classic 1980 algorithm, steps 1a–5b).
//
// Schema vocabularies and user keywords differ in inflection constantly
// ("departments" vs DEPARTMENT, "publications" vs publication); stemming
// both sides before comparison removes that noise. The implementation is
// the standard Porter algorithm for English, ASCII-only and lower-case.

#ifndef KM_TEXT_STEMMER_H_
#define KM_TEXT_STEMMER_H_

#include <string>
#include <string_view>

namespace km {

/// Returns the Porter stem of `word` (lower-cased first). Words shorter
/// than 3 characters are returned unchanged (lower-cased).
std::string PorterStem(std::string_view word);

/// True iff both words share a Porter stem (case-insensitive).
bool SameStem(std::string_view a, std::string_view b);

}  // namespace km

#endif  // KM_TEXT_STEMMER_H_
