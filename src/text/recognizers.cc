#include "text/recognizers.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/strings.h"
#include "text/gazetteer.h"

namespace km {

namespace {

bool AllAlpha(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool ContainsDigit(std::string_view s) {
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

bool ContainsAlpha(std::string_view s) {
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c))) return true;
  }
  return false;
}

}  // namespace

bool LooksLikeYear(std::string_view s) {
  if (s.size() != 4 || !IsAllDigits(s)) return false;
  return s[0] == '1' || s[0] == '2';
}

bool LooksLikeDate(std::string_view s) {
  // YYYY-MM-DD or D/M/YYYY or DD/MM/YYYY.
  auto is_sep = [](char c) { return c == '-' || c == '/'; };
  size_t seps = 0;
  size_t digits = 0;
  for (char c : s) {
    if (is_sep(c)) {
      ++seps;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
    } else {
      return false;
    }
  }
  return seps == 2 && digits >= 4 && digits <= 8;
}

bool LooksLikeEmail(std::string_view s) {
  size_t at = s.find('@');
  if (at == std::string_view::npos || at == 0 || at + 1 >= s.size()) return false;
  std::string_view domain = s.substr(at + 1);
  size_t dot = domain.find('.');
  return dot != std::string_view::npos && dot > 0 && dot + 1 < domain.size() &&
         s.find('@', at + 1) == std::string_view::npos;
}

bool LooksLikeUrl(std::string_view s) {
  std::string lower = ToLower(s);
  return StartsWith(lower, "http://") || StartsWith(lower, "https://") ||
         StartsWith(lower, "www.");
}

bool LooksLikePhone(std::string_view s) {
  size_t digits = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++digits;
    } else if (c == '+' && i == 0) {
      continue;
    } else if (c == '-' || c == ' ' || c == '(' || c == ')') {
      continue;
    } else {
      return false;
    }
  }
  return digits >= 6 && digits <= 15;
}

bool LooksLikeCountryCode(std::string_view s) {
  return (s.size() == 2 || s.size() == 3) && AllAlpha(s);
}

bool LooksCapitalized(std::string_view s) {
  if (s.empty()) return false;
  if (!std::isupper(static_cast<unsigned char>(s[0]))) return false;
  for (size_t i = 1; i < s.size(); ++i) {
    char c = s[i];
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != ' ' && c != '.' &&
        c != '\'' && c != '-') {
      return false;
    }
  }
  return true;
}

LiteralShape DetectLiteralShape(std::string_view keyword) {
  LiteralShape shape;
  if (keyword.empty()) return shape;
  std::string s(keyword);
  char* end = nullptr;
  std::strtoll(s.c_str(), &end, 10);
  shape.is_int = end != nullptr && *end == '\0' && end != s.c_str();
  end = nullptr;
  std::strtod(s.c_str(), &end);
  shape.is_real = end != nullptr && *end == '\0' && end != s.c_str();
  shape.is_date = LooksLikeDate(keyword);
  std::string lower = ToLower(keyword);
  shape.is_bool = lower == "true" || lower == "false";
  return shape;
}

std::vector<ShapeMatch> DetectShapes(std::string_view keyword) {
  std::vector<ShapeMatch> out;
  LiteralShape lit = DetectLiteralShape(keyword);

  if (LooksLikeEmail(keyword)) out.push_back({DomainTag::kEmail, 0.97});
  if (LooksLikeUrl(keyword)) out.push_back({DomainTag::kUrl, 0.95});
  if (LooksLikeDate(keyword)) out.push_back({DomainTag::kDate, 0.95});
  if (LooksLikeYear(keyword)) out.push_back({DomainTag::kYear, 0.9});
  if (LooksLikePhone(keyword) && !LooksLikeYear(keyword)) {
    out.push_back({DomainTag::kPhone, 0.8});
  }
  if (LooksLikeCountryCode(keyword)) {
    // Upper-case original text is a stronger signal ("IT" vs "it").
    bool all_upper = std::all_of(keyword.begin(), keyword.end(), [](char c) {
      return std::isupper(static_cast<unsigned char>(c));
    });
    out.push_back({DomainTag::kCountryCode, all_upper ? 0.85 : 0.5});
  }
  if (LooksCapitalized(keyword) && !LooksLikeCountryCode(keyword)) {
    out.push_back({DomainTag::kPersonName, 0.55});
    out.push_back({DomainTag::kProperNoun, 0.55});
    out.push_back({DomainTag::kCityName, 0.5});
    out.push_back({DomainTag::kCountryName, 0.5});
  }
  if (lit.is_int || lit.is_real) out.push_back({DomainTag::kQuantity, 0.6});
  if (ContainsDigit(keyword) && ContainsAlpha(keyword)) {
    out.push_back({DomainTag::kIdentifier, 0.6});
    out.push_back({DomainTag::kAddress, 0.45});
  }
  out.push_back({DomainTag::kFreeText, 0.3});

  std::stable_sort(out.begin(), out.end(),
                   [](const ShapeMatch& a, const ShapeMatch& b) {
                     return a.confidence > b.confidence;
                   });
  return out;
}

double DomainCompatibility(std::string_view keyword, DataType type, DomainTag tag) {
  if (keyword.empty()) return 0.0;
  LiteralShape lit = DetectLiteralShape(keyword);

  switch (type) {
    case DataType::kInt: {
      if (!lit.is_int) return 0.0;
      switch (tag) {
        case DomainTag::kYear:
          return LooksLikeYear(keyword) ? 0.9 : 0.1;
        case DomainTag::kPhone:
          return LooksLikePhone(keyword) ? 0.85 : 0.3;
        case DomainTag::kQuantity:
        case DomainTag::kMoney:
          return 0.7;
        case DomainTag::kIdentifier:
          return 0.5;
        default:
          return 0.55;
      }
    }
    case DataType::kReal: {
      if (!lit.is_real) return 0.0;
      switch (tag) {
        case DomainTag::kQuantity:
        case DomainTag::kMoney:
          return 0.75;
        default:
          return 0.55;
      }
    }
    case DataType::kBool:
      return lit.is_bool ? 0.9 : 0.0;
    case DataType::kDate: {
      if (lit.is_date) return 0.9;
      if (LooksLikeYear(keyword)) return 0.35;
      return 0.0;
    }
    case DataType::kText:
      break;  // handled below
  }

  // TEXT storage: everything is possible; the tag decides specificity.
  switch (tag) {
    case DomainTag::kEmail:
      return LooksLikeEmail(keyword) ? 0.95 : 0.02;
    case DomainTag::kUrl:
      return LooksLikeUrl(keyword) ? 0.95 : 0.02;
    case DomainTag::kPhone:
      return LooksLikePhone(keyword) ? 0.9 : 0.02;
    case DomainTag::kCountryCode:
      if (IsKnownCountryCode(keyword)) return 0.95;
      return LooksLikeCountryCode(keyword) ? 0.85 : 0.02;
    case DomainTag::kYear:
      return LooksLikeYear(keyword) ? 0.85 : 0.02;
    case DomainTag::kDate:
      return lit.is_date ? 0.9 : 0.02;
    case DomainTag::kPersonName:
      if (ContainsDigit(keyword)) return 0.05;
      if (IsKnownCountryName(keyword)) return 0.15;  // gazetteer says place
      if (StartsWithGivenName(keyword)) return 0.85;
      return LooksCapitalized(keyword) ? 0.65 : 0.4;
    case DomainTag::kCountryName:
      if (IsKnownCountryName(keyword)) return 0.95;
      if (ContainsDigit(keyword)) return 0.05;
      if (StartsWithGivenName(keyword)) return 0.2;  // gazetteer says person
      return LooksCapitalized(keyword) ? 0.55 : 0.35;
    case DomainTag::kCityName:
    case DomainTag::kProperNoun:
      if (ContainsDigit(keyword)) return 0.05;
      if (IsKnownCountryName(keyword)) return 0.25;  // gazetteer says country
      return LooksCapitalized(keyword) ? 0.6 : 0.4;
    case DomainTag::kIdentifier:
      if (ContainsDigit(keyword) && ContainsAlpha(keyword)) return 0.65;
      return 0.3;
    case DomainTag::kAddress:
      if (ContainsDigit(keyword) && ContainsAlpha(keyword)) return 0.7;
      return 0.3;
    case DomainTag::kFreeText:
      return 0.45;
    case DomainTag::kMoney:
    case DomainTag::kQuantity:
      return (lit.is_int || lit.is_real) ? 0.6 : 0.05;
    case DomainTag::kNone:
      return 0.35;
  }
  return 0.3;
}

}  // namespace km
