// A lightweight synonym/related-term thesaurus.
//
// The paper's metadata approach augments pure string similarity with
// "auxiliary external knowledge" (ontologies, thesauri). This component
// provides that oracle: synonym groups score high, related terms
// (broader/narrower concepts) score lower, unrelated terms score 0.
// A built-in vocabulary covering common database-schema words ships with
// the library (see BuiltinThesaurus); applications can extend it.

#ifndef KM_TEXT_THESAURUS_H_
#define KM_TEXT_THESAURUS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace km {

/// Synonym and related-term knowledge used for semantic matching.
class Thesaurus {
 public:
  Thesaurus() = default;

  /// Registers a synonym group: every pair within `words` becomes mutually
  /// synonymous (score kSynonymScore). Case-insensitive.
  void AddSynonyms(const std::vector<std::string>& words);

  /// Registers a related pair (weaker than synonymy, score kRelatedScore).
  void AddRelated(const std::string& a, const std::string& b);

  /// Semantic similarity in [0,1]: 1 for equal (case-insensitive) words,
  /// kSynonymScore for synonyms, kRelatedScore for related terms, else 0.
  double Similarity(std::string_view a, std::string_view b) const;

  /// True iff the two words are in the same synonym group.
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// All synonyms registered for `word` (excluding itself).
  std::vector<std::string> SynonymsOf(std::string_view word) const;

  /// Number of distinct words known to the thesaurus.
  size_t size() const { return synonyms_.size(); }

  static constexpr double kSynonymScore = 0.9;
  static constexpr double kRelatedScore = 0.6;

 private:
  // word -> set of synonym words (lower-cased).
  std::unordered_map<std::string, std::vector<std::string>> synonyms_;
  std::unordered_map<std::string, std::vector<std::string>> related_;
};

/// The thesaurus bundled with the library: synonym groups for common
/// schema vocabulary (person/people/author, country/nation/state,
/// department/dept, paper/article/publication, ...).
const Thesaurus& BuiltinThesaurus();

}  // namespace km

#endif  // KM_TEXT_THESAURUS_H_
