// Value-domain recognizers: the metadata used to match keywords against
// attribute *domains* without reading the instance.
//
// The paper attaches to each attribute a description of its domain (a data
// type plus, where known, a regular-expression-like pattern: phone numbers,
// e-mails, years, country codes, ...). A keyword is compatible with a
// domain when its syntactic shape matches the pattern. This file implements
// both sides: shape detection for keywords and compatibility scoring
// against an attribute's (DataType, DomainTag) pair.

#ifndef KM_TEXT_RECOGNIZERS_H_
#define KM_TEXT_RECOGNIZERS_H_

#include <string>
#include <string_view>
#include <vector>

#include "relational/schema.h"

namespace km {

/// One detected shape for a keyword, with detection confidence in (0,1].
struct ShapeMatch {
  DomainTag tag;
  double confidence;
};

/// Detects all plausible domain shapes of a keyword ("4631234" → Phone,
/// Quantity; "IT" → CountryCode; "1997-07-04" → Date; ...). Results are
/// sorted by descending confidence. Every keyword at minimum matches
/// kFreeText with low confidence.
std::vector<ShapeMatch> DetectShapes(std::string_view keyword);

/// Syntactic type of a keyword considered as a literal: can it parse as an
/// integer, a real, a date?
struct LiteralShape {
  bool is_int = false;
  bool is_real = false;
  bool is_date = false;
  bool is_bool = false;
};
LiteralShape DetectLiteralShape(std::string_view keyword);

/// Compatibility of `keyword` with an attribute whose storage type is
/// `type` and whose declared domain tag is `tag`. Returns a score in [0,1]:
/// 0 = impossible (e.g. alphabetic keyword vs INT column), higher = the
/// keyword's shape matches the declared pattern more specifically.
double DomainCompatibility(std::string_view keyword, DataType type, DomainTag tag);

/// True iff `s` looks like a 4-digit year (1000..2999).
bool LooksLikeYear(std::string_view s);

/// True iff `s` looks like an ISO date (YYYY-MM-DD) or slash date.
bool LooksLikeDate(std::string_view s);

/// True iff `s` looks like an e-mail address.
bool LooksLikeEmail(std::string_view s);

/// True iff `s` looks like a URL.
bool LooksLikeUrl(std::string_view s);

/// True iff `s` looks like a phone number (6+ digits, optional +,-,space).
bool LooksLikePhone(std::string_view s);

/// True iff `s` is a 2- or 3-letter all-alphabetic code (upper-cased in the
/// original query text scores higher; this predicate is case-insensitive).
bool LooksLikeCountryCode(std::string_view s);

/// True iff `s` starts with an upper-case letter followed by lower-case
/// letters (a capitalized proper-noun-ish token).
bool LooksCapitalized(std::string_view s);

}  // namespace km

#endif  // KM_TEXT_RECOGNIZERS_H_
