// Batched, pruned evaluation of the composite NameSimilarity measure.
//
// The weight builder's forward step scores every keyword against every
// schema-term name. Doing that with per-cell scalar calls recomputes the
// identifier-word split, trigram sets and Porter stems of every term name
// once per cell; with ~10k terms that dominates query latency (ROADMAP
// item 1). NameMatchIndex hoists all of that into a build-once index over
// the term names and evaluates one keyword against *all* names in two
// phases:
//
//   1. A signature pass over the deduplicated word vocabulary computes,
//      for every (keyword-word, vocabulary-word) pair, either the exact
//      word similarity or a provable upper bound on it:
//        - exact-equality and equal-stem pairs are exact (1.0 / 0.97);
//        - the trigram-Jaccard channel is computed *exactly* via a trigram
//          inverted index (distinct-gram intersection counts);
//        - the abbreviation channel is computed exactly for the few pairs
//          sharing a first character (it is 0 for all others by contract);
//        - Jaro-Winkler is bounded from above from 28-class character
//          counts: matches <= min(|x|, |y|, common-char count), and the
//          Winkler bonus uses the exact common-prefix length.
//      Per-name upper bounds then follow from the greedy alignment shape:
//      the aligned total of the smaller word list is at most the sum of
//      per-word maxima, so
//        NameSimilarity <= sum_small max_large pair_ub / |large|.
//   2. Names whose bound clears the caller's floor are scored exactly,
//      replicating NameSimilarity's greedy alignment (same word order,
//      same tie-breaks, same floating-point operation order), with
//      word-pair scores memoized across names through the shared
//      vocabulary. Names whose bound is below the floor are *provably*
//      below it and are skipped.
//
// The result is byte-identical to calling NameSimilarity per name for
// every score at or above the floor — the pruning is lossless, and the
// property/equivalence suites cross-check that exhaustively.
//
// The index also carries a 128-bit SimHash signature per word and per
// name (sign-aggregated gram hashes). Hamming distance between SimHash
// signatures only *estimates* trigram overlap — it can under- and
// over-shoot — so signatures are advisory: they feed candidate-set
// diagnostics (bench e6) and approximate nearest-word lookups, never the
// lossless prune decision above.
//
// Thread-safety: immutable after construction; Match() allocates its own
// scratch, so concurrent calls from the row-parallel weight build are safe.

#ifndef KM_TEXT_SIMILARITY_BATCH_H_
#define KM_TEXT_SIMILARITY_BATCH_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace km {

/// 128-bit SimHash signature (sign-aggregate of per-gram hashes).
struct SimHash128 {
  uint64_t hi = 0;
  uint64_t lo = 0;
};

/// Bits that differ between two signatures (0..128; similar strings are
/// close in Hamming distance with high probability, not with certainty).
int SimHashHamming(SimHash128 a, SimHash128 b);

/// 1 - hamming/128, a similarity *estimate* in [0, 1].
double SimHashSimilarity(SimHash128 a, SimHash128 b);

/// Per-Match accounting, aggregated by the caller into metrics/spans.
struct NameMatchStats {
  /// Names whose upper bound cleared their floor (scored exactly).
  size_t candidates = 0;
  /// Names proven below their floor and skipped.
  size_t pruned = 0;
  /// Exact word-pair similarities materialized (memoized; an upper bound
  /// on the Jaro-Winkler calls actually executed).
  size_t word_pairs_scored = 0;
};

/// Build-once index over a list of names supporting pruned, batched
/// NameSimilarity evaluation of one keyword against all names.
class NameMatchIndex {
 public:
  /// Builds the index: splits every name into identifier words, dedups
  /// the word vocabulary, and precomputes per-word shapes (length,
  /// character classes, packed trigrams, Porter stems, SimHash
  /// signatures) plus the trigram inverted index.
  explicit NameMatchIndex(const std::vector<std::string>& names);

  size_t name_count() const { return entries_.size(); }
  size_t vocab_size() const { return words_.size(); }

  /// Scores `keyword` against every indexed name. On return,
  /// (*out_scores)[e] == NameSimilarity(keyword, names[e]) for every name
  /// whose score can reach floors[e], and 0.0 for names proven below
  /// floors[e]; (*out_survived)[e] records which case applied (it may be
  /// null when the caller does not care). floors[e] <= 0 disables pruning
  /// for that name. `stats` (optional) accumulates candidate/prune counts.
  void Match(std::string_view keyword, const std::vector<double>& floors,
             std::vector<double>* out_scores,
             std::vector<uint8_t>* out_survived, NameMatchStats* stats) const;

  /// Advisory SimHash signature of the indexed name / of an arbitrary
  /// string (signature of all its identifier words' grams).
  SimHash128 name_signature(size_t name_index) const;
  static SimHash128 Signature(std::string_view text);

  /// Indices of the `k` vocabulary words closest to `word` by SimHash
  /// Hamming distance (advisory ordering; ties by word index). Exposed for
  /// diagnostics and the e6 candidate-distribution bench.
  std::vector<uint32_t> ApproxNearestWords(std::string_view word,
                                           size_t k) const;
  const std::string& vocab_word(uint32_t word_id) const {
    return words_[word_id];
  }

 private:
  struct Entry {
    std::vector<uint32_t> word_ids;  // in name order, duplicates preserved
    SimHash128 signature;
  };

  // Scratch for one keyword word against the whole vocabulary.
  struct WordScan;

  uint32_t InternStem(const std::string& stem);
  void BuildWordShapes();
  void BuildGramIndex();

  // Fills `scan` with exact-or-bounded similarities of keyword word `x`
  // (pre-lowered) against every vocabulary word.
  void ScanWord(const std::string& x, WordScan* scan) const;

  // Exact word_sim(x, words_[w]) given its scan row (lazy Jaro-Winkler).
  double ExactPairSim(const std::string& x, uint32_t w, WordScan* scan,
                      NameMatchStats* stats) const;

  std::vector<Entry> entries_;
  std::vector<std::string> words_;       // deduplicated, lowered
  std::vector<uint32_t> word_stem_id_;   // parallel to words_
  std::vector<std::string> stems_;       // deduplicated stem strings
  // Per-word shape data (parallel to words_).
  std::vector<uint32_t> word_len_;
  std::vector<uint32_t> word_mask_;      // bit per character class
  std::vector<unsigned char> word_first_;
  std::vector<uint8_t> word_counts_;     // kClassSlots bytes per word
  std::vector<uint32_t> word_gram_off_;  // into grams_, size vocab+1
  std::vector<SimHash128> word_sig_;
  std::vector<uint32_t> grams_;          // packed trigrams, sorted per word
  // Trigram inverted index over the vocabulary.
  std::vector<uint32_t> gram_keys_;      // sorted distinct grams
  std::vector<uint32_t> gram_off_;       // size gram_keys_+1
  std::vector<uint32_t> gram_postings_;  // word ids
  // Lookup maps (word string -> id, stem string -> id) live in the .cc via
  // sorted vectors to keep this header light.
  std::vector<uint32_t> word_order_;     // word ids sorted by word string
  std::vector<uint32_t> stem_order_;     // stem ids sorted by stem string
};

}  // namespace km

#endif  // KM_TEXT_SIMILARITY_BATCH_H_
