// String similarity measures used to score keyword ↔ schema-term matches.
//
// All measures return a score in [0, 1], 1 meaning identical. Inputs are
// compared case-insensitively.

#ifndef KM_TEXT_SIMILARITY_H_
#define KM_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>

namespace km {

/// Classic Levenshtein edit distance (insert/delete/substitute, unit cost).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 − distance/max(|a|,|b|); 1 for two empty strings.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler similarity (prefix bonus p=0.1, max prefix 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard coefficient over character trigrams (strings are padded with
/// two sentinels on each side, so short strings still produce trigrams).
double TrigramJaccard(std::string_view a, std::string_view b);

/// Score for `abbrev` being an abbreviation/prefix of `full`:
/// exact prefix ("dept"/"department") scores by coverage; subsequence
/// matches ("dpt"/"department") score lower; 0 when not a subsequence.
double AbbreviationScore(std::string_view abbrev, std::string_view full);

/// The composite identifier similarity used by the metadata layer:
/// both sides are split into identifier words ("personName" → person,name)
/// and the best word-pair alignments are averaged, where each word pair is
/// scored with max(JaroWinkler, trigram, abbreviation). Case-insensitive.
double NameSimilarity(std::string_view a, std::string_view b);

/// Hot-path variants for inputs that are ALREADY lower-case. The public
/// measures above lowercase defensively, which used to happen twice per
/// call on the SW matrix path (JaroWinkler lowered, then Jaro lowered
/// again); the weight builder normalizes each string once and compares
/// through these. Passing mixed-case input here silently degrades the
/// score (bytes are compared as-is) — it never crashes.
namespace lowered {

/// NormalizedLevenshtein on pre-lowered inputs (no allocations).
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity on pre-lowered inputs (no lowering copies).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler on pre-lowered inputs; lowers neither side, computes the
/// Jaro core exactly once.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Trigram Jaccard on pre-lowered inputs.
double TrigramJaccard(std::string_view a, std::string_view b);

/// AbbreviationScore on pre-lowered inputs.
double AbbreviationScore(std::string_view abbrev, std::string_view full);

}  // namespace lowered

}  // namespace km

#endif  // KM_TEXT_SIMILARITY_H_
