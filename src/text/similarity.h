// String similarity measures used to score keyword ↔ schema-term matches.
//
// All measures return a score in [0, 1], 1 meaning identical. Inputs are
// compared case-insensitively.

#ifndef KM_TEXT_SIMILARITY_H_
#define KM_TEXT_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace km {

/// Sentinel bytes used to pad strings before trigram extraction. They are
/// out-of-band (no printable identifier contains control bytes), so an
/// identifier that happens to contain '#' can never collide with padding
/// grams — and an empty string produces no grams at all instead of the
/// single all-sentinel gram the old '#' padding collapsed to.
inline constexpr char kTrigramPadLeft = '\x01';
inline constexpr char kTrigramPadRight = '\x02';

/// Classic Levenshtein edit distance (insert/delete/substitute, unit cost).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Banded Levenshtein with a cutoff: returns the exact distance when it is
/// <= max_distance, and any value > max_distance otherwise (early-out; the
/// DP only visits cells within the band, O(min(n,m) * max_distance)).
/// Case-sensitive, like LevenshteinDistance.
size_t BandedLevenshtein(std::string_view a, std::string_view b,
                         size_t max_distance);

/// 1 − distance/max(|a|,|b|); 1 for two empty strings.
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity.
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler similarity (prefix bonus p=0.1, max prefix 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard coefficient over character trigrams (strings are padded with
/// two out-of-band sentinel bytes on each side, so short strings still
/// produce trigrams). Two empty strings score 1; empty vs non-empty
/// scores 0.
double TrigramJaccard(std::string_view a, std::string_view b);

/// Score for `abbrev` being an abbreviation/prefix of `full`:
/// equal strings (after lowering) score 1, exact prefix
/// ("dept"/"department") scores by coverage; subsequence matches
/// ("dpt"/"department") score lower; 0 when not a subsequence and 0
/// whenever `abbrev` is strictly longer than `full`.
double AbbreviationScore(std::string_view abbrev, std::string_view full);

/// The composite identifier similarity used by the metadata layer:
/// both sides are split into identifier words ("personName" → person,name)
/// and the best word-pair alignments are averaged, where each word pair is
/// scored with max(JaroWinkler, trigram, abbreviation). Case-insensitive.
double NameSimilarity(std::string_view a, std::string_view b);

/// Hot-path variants for inputs that are ALREADY lower-case. The public
/// measures above lowercase defensively, which used to happen twice per
/// call on the SW matrix path (JaroWinkler lowered, then Jaro lowered
/// again); the weight builder normalizes each string once and compares
/// through these. Passing mixed-case input here silently degrades the
/// score (bytes are compared as-is) — it never crashes.
namespace lowered {

/// NormalizedLevenshtein on pre-lowered inputs (no allocations).
double NormalizedLevenshtein(std::string_view a, std::string_view b);

/// Jaro similarity on pre-lowered inputs (no lowering copies).
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler on pre-lowered inputs; lowers neither side, computes the
/// Jaro core exactly once.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Trigram Jaccard on pre-lowered inputs.
double TrigramJaccard(std::string_view a, std::string_view b);

/// AbbreviationScore on pre-lowered inputs.
double AbbreviationScore(std::string_view abbrev, std::string_view full);

/// Appends the distinct trigrams of pre-lowered `s` to *out, each gram
/// packed big-endian into the low 3 bytes of a uint32. Uses the same
/// kTrigramPadLeft/kTrigramPadRight padding as TrigramJaccard, so set
/// cardinalities (and therefore Jaccard scores computed from these
/// arrays) match the string-based measure exactly. Output is sorted and
/// deduplicated; an empty input appends nothing.
void PackedTrigrams(std::string_view s, std::vector<uint32_t>* out);

}  // namespace lowered

}  // namespace km

#endif  // KM_TEXT_SIMILARITY_H_
