#include "text/similarity_batch.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/strings.h"
#include "text/similarity.h"
#include "text/stemmer.h"

namespace km {

namespace {

// Character classes for the Jaro-Winkler bound: one per letter, one shared
// class for digits, one for everything else. Lumping digits/other together
// can only OVER-estimate the common-character count (distinct characters
// mapped to one class look shareable), which keeps the bound sound.
constexpr uint32_t kClassDigit = 26;
constexpr uint32_t kClassOther = 27;
// Counts are padded to 32 slots per word so the min-sum loop below runs
// over a fixed power-of-two extent (auto-vectorizes to byte-min lanes).
constexpr uint32_t kClassSlots = 32;

constexpr uint32_t kNoId = 0xffffffffu;

uint32_t CharClass(unsigned char c) {
  if (c >= 'a' && c <= 'z') return c - 'a';
  if (c >= '0' && c <= '9') return kClassDigit;
  return kClassOther;
}

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Sign-aggregation tally for a 128-bit SimHash.
struct SigTally {
  int32_t bit[128] = {0};

  void Add(uint32_t gram) {
    const uint64_t h1 = Mix64(gram);
    const uint64_t h2 = Mix64(h1 ^ 0xD2B74407B1CE6E93ull);
    for (int b = 0; b < 64; ++b) {
      bit[b] += ((h1 >> b) & 1) ? 1 : -1;
      bit[64 + b] += ((h2 >> b) & 1) ? 1 : -1;
    }
  }

  SimHash128 Finish() const {
    SimHash128 sig;
    for (int b = 0; b < 64; ++b) {
      if (bit[b] > 0) sig.lo |= (1ull << b);
      if (bit[64 + b] > 0) sig.hi |= (1ull << b);
    }
    return sig;
  }
};

}  // namespace

int SimHashHamming(SimHash128 a, SimHash128 b) {
  return __builtin_popcountll(a.hi ^ b.hi) + __builtin_popcountll(a.lo ^ b.lo);
}

double SimHashSimilarity(SimHash128 a, SimHash128 b) {
  return 1.0 - static_cast<double>(SimHashHamming(a, b)) / 128.0;
}

struct NameMatchIndex::WordScan {
  // Per vocabulary word: upper bound on word_sim, the exact value when it
  // is already known (-1 = only the Jaro-Winkler channel is outstanding),
  // and the max of the exactly-computed channels (trigram, abbreviation)
  // used to finish the lazy case.
  std::vector<double> ub;
  std::vector<double> exact;
  std::vector<double> channels;
  std::vector<uint16_t> inter;  // distinct shared trigram counts
};

NameMatchIndex::NameMatchIndex(const std::vector<std::string>& names) {
  entries_.resize(names.size());
  // Intern every identifier word of every name.
  {
    // Temporary map; the persistent lookup is the sorted word_order_.
    std::unordered_map<std::string, uint32_t> ids;
    for (size_t e = 0; e < names.size(); ++e) {
      std::vector<std::string> words = SplitIdentifierWords(names[e]);
      entries_[e].word_ids.reserve(words.size());
      for (auto& w : words) {
        auto [it, inserted] = ids.emplace(w, static_cast<uint32_t>(words_.size()));
        if (inserted) words_.push_back(w);
        entries_[e].word_ids.push_back(it->second);
      }
    }
  }
  BuildWordShapes();
  BuildGramIndex();
  // Entry signatures aggregate the grams of every word occurrence.
  for (auto& entry : entries_) {
    SigTally tally;
    for (uint32_t w : entry.word_ids) {
      for (uint32_t g = word_gram_off_[w]; g < word_gram_off_[w + 1]; ++g) {
        tally.Add(grams_[g]);
      }
    }
    entry.signature = tally.Finish();
  }
}

uint32_t NameMatchIndex::InternStem(const std::string& stem) {
  // stem_order_ is kept sorted by stem string, so interning is a binary
  // search plus (rarely) an ordered insert.
  auto it = std::lower_bound(
      stem_order_.begin(), stem_order_.end(), stem,
      [this](uint32_t id, const std::string& s) { return stems_[id] < s; });
  if (it != stem_order_.end() && stems_[*it] == stem) return *it;
  const uint32_t id = static_cast<uint32_t>(stems_.size());
  stems_.push_back(stem);
  stem_order_.insert(it, id);
  return id;
}

void NameMatchIndex::BuildWordShapes() {
  const size_t v = words_.size();
  word_len_.resize(v);
  word_mask_.resize(v);
  word_first_.resize(v);
  word_counts_.assign(v * kClassSlots, 0);
  word_gram_off_.assign(v + 1, 0);
  word_sig_.resize(v);
  word_stem_id_.resize(v);
  for (size_t w = 0; w < v; ++w) {
    const std::string& word = words_[w];
    word_len_[w] = static_cast<uint32_t>(word.size());
    word_first_[w] = word.empty() ? 0 : static_cast<unsigned char>(word[0]);
    uint32_t mask = 0;
    uint8_t* counts = &word_counts_[w * kClassSlots];
    for (unsigned char c : word) {
      const uint32_t cls = CharClass(c);
      mask |= (1u << cls);
      if (counts[cls] != 0xff) ++counts[cls];
    }
    word_mask_[w] = mask;
    word_gram_off_[w] = static_cast<uint32_t>(grams_.size());
    lowered::PackedTrigrams(word, &grams_);
    word_stem_id_[w] = InternStem(PorterStem(word));
  }
  word_gram_off_[v] = static_cast<uint32_t>(grams_.size());
  for (size_t w = 0; w < v; ++w) {
    SigTally tally;
    for (uint32_t g = word_gram_off_[w]; g < word_gram_off_[w + 1]; ++g) {
      tally.Add(grams_[g]);
    }
    word_sig_[w] = tally.Finish();
  }
  word_order_.resize(v);
  for (size_t w = 0; w < v; ++w) word_order_[w] = static_cast<uint32_t>(w);
  std::sort(word_order_.begin(), word_order_.end(),
            [this](uint32_t a, uint32_t b) { return words_[a] < words_[b]; });
}

void NameMatchIndex::BuildGramIndex() {
  std::vector<std::pair<uint32_t, uint32_t>> gram_word;
  gram_word.reserve(grams_.size());
  for (size_t w = 0; w < words_.size(); ++w) {
    for (uint32_t g = word_gram_off_[w]; g < word_gram_off_[w + 1]; ++g) {
      gram_word.emplace_back(grams_[g], static_cast<uint32_t>(w));
    }
  }
  std::sort(gram_word.begin(), gram_word.end());
  gram_keys_.clear();
  gram_off_.clear();
  gram_postings_.clear();
  gram_postings_.reserve(gram_word.size());
  for (size_t i = 0; i < gram_word.size(); ++i) {
    if (i == 0 || gram_word[i].first != gram_word[i - 1].first) {
      gram_keys_.push_back(gram_word[i].first);
      gram_off_.push_back(static_cast<uint32_t>(i));
    }
    gram_postings_.push_back(gram_word[i].second);
  }
  gram_off_.push_back(static_cast<uint32_t>(gram_word.size()));
}

void NameMatchIndex::ScanWord(const std::string& x, WordScan* scan) const {
  const size_t v = words_.size();
  scan->ub.assign(v, 0.0);
  scan->exact.assign(v, 0.0);
  scan->channels.assign(v, 0.0);
  scan->inter.assign(v, 0);

  // Keyword-word shape.
  const uint32_t xlen = static_cast<uint32_t>(x.size());
  uint32_t xmask = 0;
  uint8_t xcounts[kClassSlots] = {0};
  for (unsigned char c : x) {
    const uint32_t cls = CharClass(c);
    xmask |= (1u << cls);
    if (xcounts[cls] != 0xff) ++xcounts[cls];
  }
  std::vector<uint32_t> xgrams;
  lowered::PackedTrigrams(x, &xgrams);

  // Distinct-gram intersection counts via the inverted index. Both sides
  // hold distinct grams, so the accumulated count is exactly |A ∩ B| and
  // the Jaccard below is exact, not an estimate.
  for (uint32_t g : xgrams) {
    auto it = std::lower_bound(gram_keys_.begin(), gram_keys_.end(), g);
    if (it == gram_keys_.end() || *it != g) continue;
    const size_t k = static_cast<size_t>(it - gram_keys_.begin());
    for (uint32_t p = gram_off_[k]; p < gram_off_[k + 1]; ++p) {
      ++scan->inter[gram_postings_[p]];
    }
  }

  // Exact-equality and equal-stem lookups.
  uint32_t x_word_id = kNoId;
  {
    auto it = std::lower_bound(
        word_order_.begin(), word_order_.end(), x,
        [this](uint32_t id, const std::string& s) { return words_[id] < s; });
    if (it != word_order_.end() && words_[*it] == x) x_word_id = *it;
  }
  uint32_t x_stem_id = kNoId;
  {
    const std::string xstem = PorterStem(x);
    auto it = std::lower_bound(
        stem_order_.begin(), stem_order_.end(), xstem,
        [this](uint32_t id, const std::string& s) { return stems_[id] < s; });
    if (it != stem_order_.end() && stems_[*it] == xstem) x_stem_id = *it;
  }

  const unsigned char xfirst = x.empty() ? 0 : static_cast<unsigned char>(x[0]);
  const double xgram_count = static_cast<double>(xgrams.size());

  for (size_t w = 0; w < v; ++w) {
    // Mirror NameSimilarity's word_sim decision order exactly: equality,
    // then stem equality, then the max over the similarity measures.
    if (w == x_word_id) {
      scan->ub[w] = 1.0;
      scan->exact[w] = 1.0;
      continue;
    }
    if ((xmask & word_mask_[w]) == 0) {
      // No shared character class ⇒ no shared character ⇒ Jaro matches,
      // trigram intersection and abbreviation first-char test are all
      // provably zero, and stems (which preserve the first character)
      // cannot be equal: word_sim is exactly 0.
      continue;  // ub/exact stay 0.0
    }
    if (x_stem_id != kNoId && word_stem_id_[w] == x_stem_id) {
      scan->ub[w] = 0.97;
      scan->exact[w] = 0.97;
      continue;
    }
    // Exact trigram-Jaccard channel from the intersection counts.
    const uint32_t inter = scan->inter[w];
    const uint32_t wgrams = word_gram_off_[w + 1] - word_gram_off_[w];
    double channels = 0.0;
    if (inter > 0) {
      channels = static_cast<double>(inter) /
                 (xgram_count + static_cast<double>(wgrams) -
                  static_cast<double>(inter));
    }
    // Exact abbreviation channel: by contract 0 unless first chars match.
    if (xfirst == word_first_[w]) {
      channels = std::max(channels, lowered::AbbreviationScore(x, words_[w]));
      channels = std::max(channels, lowered::AbbreviationScore(words_[w], x));
    }
    scan->channels[w] = channels;
    const uint32_t wlen = word_len_[w];
    if (xlen >= 0xff || wlen >= 0xff) {
      // Saturated class counts would make the bound unsound; give up on
      // pruning this pair (absurdly long "words" only).
      scan->ub[w] = 1.0;
      scan->exact[w] = -1.0;
      continue;
    }
    // Jaro-Winkler upper bound: matches m <= min(|x|, |w|, common chars),
    // transposition term <= 1, prefix length is exact.
    uint32_t common = 0;
    const uint8_t* wcounts = &word_counts_[w * kClassSlots];
    for (uint32_t k = 0; k < kClassSlots; ++k) {
      common += std::min(xcounts[k], wcounts[k]);
    }
    const uint32_t m_ub = std::min({xlen, wlen, common});
    double jw_ub = 0.0;
    if (m_ub > 0) {
      const double m = static_cast<double>(m_ub);
      const double jaro_ub =
          (m / static_cast<double>(xlen) + m / static_cast<double>(wlen) + 1.0) /
          3.0;
      size_t prefix = 0;
      const std::string& word = words_[w];
      const size_t pmax = std::min({x.size(), word.size(), size_t{4}});
      while (prefix < pmax && x[prefix] == word[prefix]) ++prefix;
      jw_ub = jaro_ub + static_cast<double>(prefix) * 0.1 * (1.0 - jaro_ub);
    }
    if (jw_ub <= channels) {
      // The real Jaro-Winkler cannot beat the exactly-known channels, so
      // the max is already exact without computing it.
      scan->ub[w] = channels;
      scan->exact[w] = channels;
    } else {
      scan->ub[w] = jw_ub;
      scan->exact[w] = -1.0;
    }
  }
}

double NameMatchIndex::ExactPairSim(const std::string& x, uint32_t w,
                                    WordScan* scan,
                                    NameMatchStats* stats) const {
  double& e = scan->exact[w];
  if (e >= 0.0) return e;
  // Only Jaro-Winkler is outstanding; combine with the exact channels the
  // same way word_sim does (max over all measures).
  const double jw = lowered::JaroWinklerSimilarity(x, words_[w]);
  e = std::max(jw, scan->channels[w]);
  if (stats != nullptr) ++stats->word_pairs_scored;
  return e;
}

void NameMatchIndex::Match(std::string_view keyword,
                           const std::vector<double>& floors,
                           std::vector<double>* out_scores,
                           std::vector<uint8_t>* out_survived,
                           NameMatchStats* stats) const {
  const size_t n = entries_.size();
  KM_CHECK(floors.size() == n);
  out_scores->assign(n, 0.0);
  if (out_survived != nullptr) out_survived->assign(n, 0);

  const std::vector<std::string> kw_words = SplitIdentifierWords(keyword);
  const size_t kw_count = kw_words.size();
  if (kw_count == 0) {
    // NameSimilarity is exactly 0 against every name; that is an exact
    // score, not a prune.
    for (size_t e = 0; e < n; ++e) {
      const bool clears = 0.0 >= floors[e];
      if (out_survived != nullptr) (*out_survived)[e] = clears ? 1 : 0;
      if (stats != nullptr) ++(clears ? stats->candidates : stats->pruned);
    }
    return;
  }

  std::vector<WordScan> scans(kw_count);
  for (size_t i = 0; i < kw_count; ++i) ScanWord(kw_words[i], &scans[i]);

  std::vector<bool> used;
  for (size_t e = 0; e < n; ++e) {
    const std::vector<uint32_t>& ids = entries_[e].word_ids;
    const size_t term_count = ids.size();
    if (term_count == 0) {
      const bool clears = 0.0 >= floors[e];
      if (out_survived != nullptr) (*out_survived)[e] = clears ? 1 : 0;
      if (stats != nullptr) ++(clears ? stats->candidates : stats->pruned);
      continue;
    }
    // Upper bound from per-word maxima: the greedy alignment total of the
    // smaller side is at most the sum of its per-word maxima (greedy never
    // exceeds the unconstrained best per word), so
    //   NameSimilarity <= sum_small max_large ub / |large|.
    const size_t denom = std::max(kw_count, term_count);
    double ub_total = 0.0;
    if (kw_count <= term_count) {
      for (size_t i = 0; i < kw_count; ++i) {
        const std::vector<double>& ub = scans[i].ub;
        double best = 0.0;
        for (uint32_t id : ids) best = std::max(best, ub[id]);
        ub_total += best;
      }
    } else {
      for (uint32_t id : ids) {
        double best = 0.0;
        for (size_t i = 0; i < kw_count; ++i) best = std::max(best, scans[i].ub[id]);
        ub_total += best;
      }
    }
    if (ub_total / static_cast<double>(denom) < floors[e]) {
      if (stats != nullptr) ++stats->pruned;
      continue;  // provably below the floor; score stays 0
    }
    if (stats != nullptr) ++stats->candidates;
    if (out_survived != nullptr) (*out_survived)[e] = 1;

    // Exact greedy alignment, replicating NameSimilarity: iterate the
    // smaller word list in order, pick the best unused larger-side word
    // with a strict '>' (first maximum wins), average over the larger list.
    double total = 0.0;
    if (kw_count <= term_count) {
      used.assign(term_count, false);
      for (size_t i = 0; i < kw_count; ++i) {
        double best = 0.0;
        ptrdiff_t best_j = -1;
        for (size_t j = 0; j < term_count; ++j) {
          if (used[j]) continue;
          const double s = ExactPairSim(kw_words[i], ids[j], &scans[i], stats);
          if (s > best) {
            best = s;
            best_j = static_cast<ptrdiff_t>(j);
          }
        }
        if (best_j >= 0) used[static_cast<size_t>(best_j)] = true;
        total += best;
      }
    } else {
      used.assign(kw_count, false);
      for (size_t j = 0; j < term_count; ++j) {
        double best = 0.0;
        ptrdiff_t best_i = -1;
        for (size_t i = 0; i < kw_count; ++i) {
          if (used[i]) continue;
          const double s = ExactPairSim(kw_words[i], ids[j], &scans[i], stats);
          if (s > best) {
            best = s;
            best_i = static_cast<ptrdiff_t>(i);
          }
        }
        if (best_i >= 0) used[static_cast<size_t>(best_i)] = true;
        total += best;
      }
    }
    (*out_scores)[e] = total / static_cast<double>(denom);
  }
}

SimHash128 NameMatchIndex::name_signature(size_t name_index) const {
  KM_CHECK(name_index < entries_.size());
  return entries_[name_index].signature;
}

SimHash128 NameMatchIndex::Signature(std::string_view text) {
  SigTally tally;
  std::vector<uint32_t> grams;
  for (const std::string& word : SplitIdentifierWords(text)) {
    grams.clear();
    lowered::PackedTrigrams(word, &grams);
    for (uint32_t g : grams) tally.Add(g);
  }
  return tally.Finish();
}

std::vector<uint32_t> NameMatchIndex::ApproxNearestWords(std::string_view word,
                                                         size_t k) const {
  const std::string lowered_word = ToLower(word);
  std::vector<uint32_t> grams;
  lowered::PackedTrigrams(lowered_word, &grams);
  SigTally tally;
  for (uint32_t g : grams) tally.Add(g);
  const SimHash128 sig = tally.Finish();

  std::vector<std::pair<int, uint32_t>> by_distance;
  by_distance.reserve(words_.size());
  for (size_t w = 0; w < words_.size(); ++w) {
    by_distance.emplace_back(SimHashHamming(sig, word_sig_[w]),
                             static_cast<uint32_t>(w));
  }
  const size_t keep = std::min(k, by_distance.size());
  std::partial_sort(by_distance.begin(), by_distance.begin() + static_cast<ptrdiff_t>(keep),
                    by_distance.end());
  std::vector<uint32_t> result;
  result.reserve(keep);
  for (size_t i = 0; i < keep; ++i) result.push_back(by_distance[i].second);
  return result;
}

}  // namespace km
