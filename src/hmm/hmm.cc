#include "hmm/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/check.h"

namespace km {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double SafeLog(double p) { return p > 0 ? std::log(p) : kNegInf; }
}  // namespace

Hmm::Hmm(Matrix transition, std::vector<double> initial)
    : transition_(std::move(transition)), initial_(std::move(initial)) {
  KM_CHECK_EQ(transition_.rows(), transition_.cols());
  KM_CHECK_EQ(initial_.size(), transition_.rows());
  // Loose stochastic validation: probabilities must be finite and
  // non-negative (rows of zeros are allowed dead ends).
  KM_DCHECK([this] {
    for (double p : initial_) {
      if (!std::isfinite(p) || p < 0.0) return false;
    }
    for (size_t r = 0; r < transition_.rows(); ++r) {
      for (size_t c = 0; c < transition_.cols(); ++c) {
        double p = transition_.At(r, c);
        if (!std::isfinite(p) || p < 0.0) return false;
      }
    }
    return true;
  }());
}

Matrix EmissionFromSimilarity(const Matrix& similarity) {
  Matrix e = similarity;
  e.NormalizeRows();
  return e;
}

StatusOr<HmmPath> Hmm::Viterbi(const Matrix& emission) const {
  KM_ASSIGN_OR_RETURN(std::vector<HmmPath> paths,
                      ListViterbi(emission, 1, /*distinct_states=*/false));
  if (paths.empty()) return Status::NotFound("no feasible state sequence");
  return paths[0];
}

StatusOr<std::vector<HmmPath>> Hmm::ListViterbi(const Matrix& emission, size_t k,
                                                bool distinct_states) const {
  const size_t T = emission.rows();
  const size_t N = num_states();
  if (T == 0) return Status::InvalidArgument("empty observation sequence");
  if (emission.cols() != N) {
    return Status::InvalidArgument("emission matrix has wrong number of states");
  }
  if (k == 0) return std::vector<HmmPath>{};

  // Internal beam: decode more paths than requested so that injectivity
  // filtering still leaves k survivors.
  const size_t kk = distinct_states ? 3 * k + 5 : k;

  struct Cell {
    double lp;
    int prev_state;  // -1 at t=0
    int prev_rank;
  };
  // dp[t][s] = up to kk best partial paths ending in state s at time t.
  std::vector<std::vector<std::vector<Cell>>> dp(
      T, std::vector<std::vector<Cell>>(N));

  for (size_t s = 0; s < N; ++s) {
    double lp = SafeLog(initial_[s]) + SafeLog(emission.At(0, s));
    if (lp > kNegInf) dp[0][s].push_back({lp, -1, -1});
  }

  std::vector<Cell> candidates;
  for (size_t t = 1; t < T; ++t) {
    for (size_t s = 0; s < N; ++s) {
      double e = SafeLog(emission.At(t, s));
      if (e == kNegInf) continue;
      candidates.clear();
      for (size_t p = 0; p < N; ++p) {
        if (dp[t - 1][p].empty()) continue;
        double a = SafeLog(transition_.At(p, s));
        if (a == kNegInf) continue;
        const auto& prev = dp[t - 1][p];
        for (size_t r = 0; r < prev.size(); ++r) {
          candidates.push_back(
              {prev[r].lp + a + e, static_cast<int>(p), static_cast<int>(r)});
        }
      }
      if (candidates.empty()) continue;
      size_t keep = std::min(kk, candidates.size());
      std::partial_sort(candidates.begin(),
                        candidates.begin() + static_cast<ssize_t>(keep),
                        candidates.end(),
                        [](const Cell& a, const Cell& b) { return a.lp > b.lp; });
      dp[t][s].assign(candidates.begin(),
                      candidates.begin() + static_cast<ssize_t>(keep));
    }
  }

  // Collect final cells across all states, best first.
  struct Final {
    double lp;
    size_t state;
    size_t rank;
  };
  std::vector<Final> finals;
  for (size_t s = 0; s < N; ++s) {
    for (size_t r = 0; r < dp[T - 1][s].size(); ++r) {
      finals.push_back({dp[T - 1][s][r].lp, s, r});
    }
  }
  std::sort(finals.begin(), finals.end(),
            [](const Final& a, const Final& b) { return a.lp > b.lp; });

  std::vector<HmmPath> results;
  for (const Final& f : finals) {
    if (results.size() >= k) break;
    // Backtrack.
    HmmPath path;
    path.log_prob = f.lp;
    path.states.assign(T, 0);
    size_t s = f.state;
    int r = static_cast<int>(f.rank);
    for (size_t t = T; t-- > 0;) {
      path.states[t] = s;
      KM_DBOUNDS(s, N);
      KM_DBOUNDS(static_cast<size_t>(r), dp[t][s].size());
      const Cell& cell = dp[t][s][static_cast<size_t>(r)];
      if (t > 0) {
        s = static_cast<size_t>(cell.prev_state);
        r = cell.prev_rank;
      }
    }
    if (distinct_states) {
      std::unordered_set<size_t> seen(path.states.begin(), path.states.end());
      if (seen.size() != path.states.size()) continue;
    }
    results.push_back(std::move(path));
  }
  return results;
}

}  // namespace km
