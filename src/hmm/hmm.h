// First-order Hidden Markov Model over database terms.
//
// This module implements the authors' follow-up forward-analysis technique
// (KEYRY/QUEST) as a comparison baseline for the metadata/Hungarian
// approach: keywords are observations, database terms are hidden states.
// Decoding uses the List Viterbi algorithm (top-k state sequences); the
// transition matrix comes either from the a-priori schema heuristics or
// from (self-)training; the initial distribution comes from an HITS-style
// authority computation on the schema graph.

#ifndef KM_HMM_HMM_H_
#define KM_HMM_HMM_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace km {

/// One decoded state sequence with its log-probability.
struct HmmPath {
  std::vector<size_t> states;
  double log_prob = 0.0;
};

/// A first-order HMM with N states. Emissions are supplied per query as a
/// T × N matrix (rows = observations in order, columns = states), because
/// in keyword search the observation alphabet is unbounded: emission
/// probabilities are derived on the fly from keyword/term similarity.
class Hmm {
 public:
  /// `transition` must be N × N row-stochastic; `initial` length N summing
  /// to 1 (both validated loosely; rows of zeros are allowed and treated as
  /// dead ends).
  Hmm(Matrix transition, std::vector<double> initial);

  size_t num_states() const { return initial_.size(); }
  const Matrix& transition() const { return transition_; }
  const std::vector<double>& initial() const { return initial_; }

  /// Standard Viterbi: the single most likely state sequence for the given
  /// emission matrix.
  StatusOr<HmmPath> Viterbi(const Matrix& emission) const;

  /// List Viterbi: the `k` most likely state sequences, best first. When
  /// `distinct_states` is true, sequences visiting a state twice are
  /// discarded (configurations are injective).
  StatusOr<std::vector<HmmPath>> ListViterbi(const Matrix& emission, size_t k,
                                             bool distinct_states = true) const;

 private:
  Matrix transition_;
  std::vector<double> initial_;
};

/// Converts a keyword×term similarity matrix into an emission matrix by
/// Bayesian inversion with uniform state prior: each row is normalized to
/// sum 1 (rows of all zeros stay zero).
///
/// The similarity matrix comes from WeightMatrixBuilder::Build, so the
/// emission path inherits whatever similarity measure the builder was
/// configured with (MeasureRegistry name in WeightOptions) and, under the
/// default composite measure, the pruned batched kernel — emissions are
/// byte-identical between the scalar and pruned builds.
Matrix EmissionFromSimilarity(const Matrix& similarity);

}  // namespace km

#endif  // KM_HMM_HMM_H_
