#include "hmm/model_builder.h"

#include <cmath>
#include <unordered_map>

namespace km {

namespace {

// Relation-level FK adjacency with 2-hop closure, shared by the
// transition heuristics.
struct RelationHops {
  std::unordered_map<std::string, size_t> ordinal;
  std::vector<std::vector<bool>> one_hop;
  std::vector<std::vector<bool>> two_hop;

  explicit RelationHops(const DatabaseSchema& schema) {
    for (const RelationSchema& r : schema.relations()) {
      ordinal[r.name()] = ordinal.size();
    }
    size_t n = ordinal.size();
    one_hop.assign(n, std::vector<bool>(n, false));
    for (const ForeignKey& fk : schema.foreign_keys()) {
      auto a = ordinal.find(fk.from_relation);
      auto b = ordinal.find(fk.to_relation);
      if (a != ordinal.end() && b != ordinal.end()) {
        one_hop[a->second][b->second] = true;
        one_hop[b->second][a->second] = true;
      }
    }
    two_hop.assign(n, std::vector<bool>(n, false));
    for (size_t a = 0; a < n; ++a) {
      for (size_t mid = 0; mid < n; ++mid) {
        if (!one_hop[a][mid]) continue;
        for (size_t b = 0; b < n; ++b) {
          if (b != a && !one_hop[a][b] && one_hop[mid][b]) two_hop[a][b] = true;
        }
      }
    }
  }
};

// Relative transition mass between two terms under the a-priori heuristics.
double HeuristicMass(const Terminology& terminology, const RelationHops& hops,
                     const AprioriParams& params, size_t from, size_t to) {
  const DatabaseTerm& a = terminology.term(from);
  const DatabaseTerm& b = terminology.term(to);
  if (a.relation == b.relation) {
    bool attr_domain_pair =
        a.attribute == b.attribute && !a.attribute.empty() &&
        ((a.kind == TermKind::kAttribute && b.kind == TermKind::kDomain) ||
         (a.kind == TermKind::kDomain && b.kind == TermKind::kAttribute));
    if (attr_domain_pair) return params.attr_own_domain;
    return params.same_relation;
  }
  auto ra = hops.ordinal.find(a.relation);
  auto rb = hops.ordinal.find(b.relation);
  if (ra != hops.ordinal.end() && rb != hops.ordinal.end()) {
    if (hops.one_hop[ra->second][rb->second]) return params.fk_adjacent;
    if (hops.two_hop[ra->second][rb->second]) return params.fk_two_hop;
  }
  return params.unrelated;
}

// HITS authority scores over the term connectivity graph (terms of the
// same relation are mutually linked; FK-connected relations link their
// domain terms).
std::vector<double> HitsAuthority(const Terminology& terminology,
                                  const DatabaseSchema& schema, size_t iterations) {
  const size_t n = terminology.size();
  // Build adjacency.
  std::vector<std::vector<size_t>> adj(n);
  std::unordered_map<std::string, std::vector<size_t>> by_relation;
  for (size_t i = 0; i < n; ++i) by_relation[terminology.term(i).relation].push_back(i);
  for (const auto& [rel, terms] : by_relation) {
    for (size_t i : terms) {
      for (size_t j : terms) {
        if (i != j) adj[i].push_back(j);
      }
    }
  }
  for (const ForeignKey& fk : schema.foreign_keys()) {
    auto d1 = terminology.DomainTerm(fk.from_relation, fk.from_attribute);
    auto d2 = terminology.DomainTerm(fk.to_relation, fk.to_attribute);
    if (d1 && d2) {
      adj[*d1].push_back(*d2);
      adj[*d2].push_back(*d1);
    }
  }

  std::vector<double> auth(n, 1.0), hub(n, 1.0);
  for (size_t it = 0; it < iterations; ++it) {
    std::vector<double> new_auth(n, 0.0);
    for (size_t v = 0; v < n; ++v) {
      for (size_t u : adj[v]) new_auth[u] += hub[v];
    }
    std::vector<double> new_hub(n, 0.0);
    for (size_t v = 0; v < n; ++v) {
      for (size_t u : adj[v]) new_hub[v] += new_auth[u];
    }
    double an = 0, hn = 0;
    for (size_t v = 0; v < n; ++v) {
      an += new_auth[v] * new_auth[v];
      hn += new_hub[v] * new_hub[v];
    }
    an = std::sqrt(an);
    hn = std::sqrt(hn);
    for (size_t v = 0; v < n; ++v) {
      auth[v] = an > 0 ? new_auth[v] / an : 0;
      hub[v] = hn > 0 ? new_hub[v] / hn : 0;
    }
  }
  // Normalize to a probability distribution; guard against all-zero.
  double sum = 0;
  for (double a : auth) sum += a;
  if (sum <= 0) {
    return std::vector<double>(n, 1.0 / static_cast<double>(n));
  }
  for (double& a : auth) a /= sum;
  return auth;
}

}  // namespace

Hmm BuildAprioriHmm(const Terminology& terminology, const DatabaseSchema& schema,
                    const AprioriParams& params) {
  const size_t n = terminology.size();
  RelationHops hops(schema);
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;  // self transitions excluded (injective configs)
      a.At(i, j) = HeuristicMass(terminology, hops, params, i, j);
    }
  }
  a.NormalizeRows();
  std::vector<double> pi = HitsAuthority(terminology, schema, params.hits_iterations);
  double mix = params.hits_mixture;
  double uniform = 1.0 / static_cast<double>(n);
  for (double& p : pi) p = mix * p + (1.0 - mix) * uniform;
  return Hmm(std::move(a), std::move(pi));
}

Hmm BuildUniformHmm(const Terminology& terminology) {
  const size_t n = terminology.size();
  Matrix a(n, n, n > 1 ? 1.0 / static_cast<double>(n - 1) : 1.0);
  for (size_t i = 0; i < n; ++i) a.At(i, i) = 0;
  return Hmm(std::move(a), std::vector<double>(n, 1.0 / static_cast<double>(n)));
}

HmmTrainer::HmmTrainer(const Terminology& terminology, const DatabaseSchema& schema,
                       AprioriParams apriori, double prior_strength)
    : terminology_(terminology),
      apriori_(BuildAprioriHmm(terminology, schema, apriori)),
      prior_strength_(prior_strength),
      transition_counts_(terminology.size(), terminology.size()),
      initial_counts_(terminology.size(), 0.0) {}

void HmmTrainer::AddSequence(const std::vector<size_t>& term_sequence) {
  if (term_sequence.empty()) return;
  initial_counts_[term_sequence[0]] += 1.0;
  for (size_t i = 1; i < term_sequence.size(); ++i) {
    transition_counts_.At(term_sequence[i - 1], term_sequence[i]) += 1.0;
  }
  ++sequences_;
}

bool HmmTrainer::AddSelfLabelled(const Matrix& emission) {
  auto path = apriori_.Viterbi(emission);
  if (!path.ok()) return false;
  AddSequence(path->states);
  return true;
}

Hmm HmmTrainer::Train() const {
  const size_t n = terminology_.size();
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    double row_total = 0;
    for (size_t j = 0; j < n; ++j) row_total += transition_counts_.At(i, j);
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      double prior = apriori_.transition().At(i, j);
      a.At(i, j) = (transition_counts_.At(i, j) + prior_strength_ * prior) /
                   (row_total + prior_strength_);
    }
  }
  a.NormalizeRows();

  std::vector<double> pi(n, 0.0);
  double total = 0;
  for (double c : initial_counts_) total += c;
  for (size_t i = 0; i < n; ++i) {
    pi[i] = (initial_counts_[i] + prior_strength_ * apriori_.initial()[i]) /
            (total + prior_strength_);
  }
  // Normalize.
  double s = 0;
  for (double p : pi) s += p;
  if (s > 0) {
    for (double& p : pi) p /= s;
  }
  return Hmm(std::move(a), std::move(pi));
}

}  // namespace km
