// Construction of HMM parameters from schema metadata and from training
// data.
//
// A-priori mode (no training data): transition probabilities follow the
// schema heuristics — transitions between terms of the same relation get
// high mass (attribute ↔ own domain highest), terms of FK-connected
// relations intermediate mass, unrelated terms low mass. The initial
// distribution is the normalized authority vector of an HITS computation
// over the term connectivity graph.
//
// Feedback mode: maximum-likelihood transition/initial estimates from
// observed (possibly self-labelled) term sequences, Laplace-smoothed and
// interpolated with the a-priori matrix.

#ifndef KM_HMM_MODEL_BUILDER_H_
#define KM_HMM_MODEL_BUILDER_H_

#include <vector>

#include "hmm/hmm.h"
#include "metadata/term.h"

namespace km {

/// Heuristic transition masses (relative; rows are normalized afterwards).
///
/// The tiers are intentionally gentle: users routinely pair keywords from
/// relations that are two joins apart ("author 2015"), so harsh contrast
/// between the tiers makes the prior override even strong emission evidence
/// and collapses accuracy on cross-relation queries.
struct AprioriParams {
  double attr_own_domain = 0.4;   ///< attribute → its own domain
  double same_relation = 0.22;    ///< other terms of the same relation
  double fk_adjacent = 0.17;      ///< terms of FK-connected relations
  double fk_two_hop = 0.14;       ///< relations two FK hops away
  double unrelated = 0.08;        ///< everything else
  /// HITS iterations for the initial distribution.
  size_t hits_iterations = 30;
  /// Mixture weight of the HITS authority vector in the initial state
  /// distribution; the remainder is uniform. Pure authority concentrates
  /// all prior mass on the terms of large relations and starves queries
  /// that start elsewhere.
  double hits_mixture = 0.15;
};

/// Builds the a-priori HMM for a terminology.
Hmm BuildAprioriHmm(const Terminology& terminology, const DatabaseSchema& schema,
                    const AprioriParams& params = {});

/// Builds an HMM whose transition matrix is uniform (the no-heuristics
/// reference of the paper's Fig. 6).
Hmm BuildUniformHmm(const Terminology& terminology);

/// Accumulates training sequences and produces trained models.
class HmmTrainer {
 public:
  /// `prior_strength` controls interpolation with the a-priori model:
  /// the trained estimate is (counts + s·apriori) / (total + s).
  HmmTrainer(const Terminology& terminology, const DatabaseSchema& schema,
             AprioriParams apriori = {}, double prior_strength = 5.0);

  /// Adds one gold (supervised) term sequence.
  void AddSequence(const std::vector<size_t>& term_sequence);

  /// Adds a self-labelled sequence: decodes `emission` with the current
  /// a-priori model and counts the best path (the unsupervised mimicking of
  /// the paper's experiments). Returns false when decoding fails.
  bool AddSelfLabelled(const Matrix& emission);

  /// Number of sequences absorbed so far.
  size_t sequence_count() const { return sequences_; }

  /// Builds the trained HMM from the counts accumulated so far.
  Hmm Train() const;

 private:
  const Terminology& terminology_;
  Hmm apriori_;
  double prior_strength_;
  size_t sequences_ = 0;
  Matrix transition_counts_;
  std::vector<double> initial_counts_;
};

}  // namespace km

#endif  // KM_HMM_MODEL_BUILDER_H_
