#include "workload/metrics.h"

#include "common/strings.h"

namespace km {

int RankOfConfiguration(const std::vector<Configuration>& ranked,
                        const Configuration& gold) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] == gold) return static_cast<int>(i);
  }
  return -1;
}

int RankOfInterpretation(const std::vector<Interpretation>& ranked,
                         const std::string& gold_signature) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].Signature() == gold_signature) return static_cast<int>(i);
  }
  return -1;
}

int RankOfExplanation(const std::vector<Explanation>& ranked,
                      const std::string& gold_sql_signature) {
  for (size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].sql.CanonicalSignature() == gold_sql_signature) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void TopKAccuracy::Add(int rank) {
  ranks_.push_back(rank);
  ++total_;
}

double TopKAccuracy::AtK(size_t k) const {
  if (total_ == 0) return 0.0;
  size_t hits = 0;
  for (int r : ranks_) {
    if (r >= 0 && static_cast<size_t>(r) < k) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(total_);
}

double TopKAccuracy::Mrr() const {
  if (total_ == 0) return 0.0;
  double sum = 0;
  for (int r : ranks_) {
    if (r >= 0) sum += 1.0 / static_cast<double>(r + 1);
  }
  return sum / static_cast<double>(total_);
}

std::string FormatAccuracyRow(const std::string& label, const TopKAccuracy& acc,
                              const std::vector<size_t>& ks) {
  std::string row = StrFormat("%-34s", label.c_str());
  for (size_t k : ks) {
    row += StrFormat("  top-%-2zu %5.1f%%", k, 100.0 * acc.AtK(k));
  }
  row += StrFormat("  MRR %.3f  (n=%zu)", acc.Mrr(), acc.total());
  return row;
}

}  // namespace km
