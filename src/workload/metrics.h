// Evaluation metrics: top-k cumulative accuracy, ranks, MRR.
//
// The paper evaluates effectiveness as "accuracy of the top-k results": the
// fraction of queries whose gold configuration / interpretation /
// explanation appears among the first k answers.

#ifndef KM_WORKLOAD_METRICS_H_
#define KM_WORKLOAD_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/keymantic.h"
#include "graph/interpretation.h"
#include "metadata/configuration.h"

namespace km {

/// 0-based rank of the gold configuration in a ranked list (-1 if absent).
int RankOfConfiguration(const std::vector<Configuration>& ranked,
                        const Configuration& gold);

/// 0-based rank of the interpretation with the given signature (-1 absent).
int RankOfInterpretation(const std::vector<Interpretation>& ranked,
                         const std::string& gold_signature);

/// 0-based rank of the explanation whose SQL has the given canonical
/// signature (-1 absent).
int RankOfExplanation(const std::vector<Explanation>& ranked,
                      const std::string& gold_sql_signature);

/// Accumulates ranks and reports cumulative top-k accuracy.
class TopKAccuracy {
 public:
  /// Records one query outcome; pass rank = -1 for "gold not returned".
  void Add(int rank);

  size_t total() const { return total_; }

  /// Fraction of recorded queries with rank < k (0 when nothing recorded).
  double AtK(size_t k) const;

  /// Mean reciprocal rank (missing gold contributes 0).
  double Mrr() const;

 private:
  std::vector<int> ranks_;
  size_t total_ = 0;
};

/// Formats "top-1 .. top-k" accuracy values as a single table row.
std::string FormatAccuracyRow(const std::string& label, const TopKAccuracy& acc,
                              const std::vector<size_t>& ks);

}  // namespace km

#endif  // KM_WORKLOAD_METRICS_H_
