// Keyword-query workload generation with gold labels.
//
// Following the paper's methodology, large evaluation workloads are
// generated from a seed set of query *templates*: each template fixes the
// intended configuration symbolically (this keyword is the name of relation
// X; that keyword is a value of attribute Y) and the generator instantiates
// it against the instance — drawing concrete values, optionally replacing
// schema words with synonyms and perturbing case — while recording the gold
// configuration, gold interpretation and gold SQL for scoring.

#ifndef KM_WORKLOAD_WORKLOAD_H_
#define KM_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "engine/query.h"
#include "graph/schema_graph.h"
#include "metadata/configuration.h"
#include "metadata/term.h"
#include "relational/database.h"

namespace km {

/// Symbolic description of one keyword slot of a template.
struct KeywordSpec {
  /// The gold database term of the keyword.
  TermKind term_kind = TermKind::kDomain;
  std::string relation;
  std::string attribute;  ///< empty when term_kind == kRelation

  /// Convenience factories.
  static KeywordSpec Relation(std::string rel) {
    return {TermKind::kRelation, std::move(rel), ""};
  }
  static KeywordSpec Attribute(std::string rel, std::string attr) {
    return {TermKind::kAttribute, std::move(rel), std::move(attr)};
  }
  static KeywordSpec ValueOf(std::string rel, std::string attr) {
    return {TermKind::kDomain, std::move(rel), std::move(attr)};
  }
};

/// A query template: an ordered list of keyword slots.
struct QueryTemplate {
  std::string name;
  std::vector<KeywordSpec> keywords;
};

/// A generated query with its gold labels.
struct WorkloadQuery {
  std::vector<std::string> keywords;
  Configuration gold_config;              ///< resolved against the Terminology
  std::string gold_interp_signature;      ///< signature of the gold join tree
  SpjQuery gold_sql;
  std::string gold_sql_signature;
  size_t template_index = 0;
};

/// Generation knobs.
struct WorkloadOptions {
  size_t queries_per_template = 20;
  /// Probability of replacing a schema keyword with a thesaurus synonym.
  double synonym_prob = 0.25;
  /// Probability of lower-casing a keyword.
  double lowercase_prob = 0.2;
  /// When true (default), value keywords are drawn from one row of the
  /// gold join, so the instantiated facts co-occur in the database. When
  /// false, values are drawn independently per attribute — many resulting
  /// queries then have empty gold answers (used to study the
  /// empty-interpretation problem).
  bool correlate_values = true;
  uint64_t seed = 101;
};

/// Generates labelled workloads for a database.
class WorkloadGenerator {
 public:
  /// The graph supplies gold interpretations (minimum Steiner tree over
  /// unit weights) and must be built over `terminology`.
  WorkloadGenerator(const Database& db, const Terminology& terminology,
                    const SchemaGraph& graph, WorkloadOptions options = {});

  /// Instantiates every template `queries_per_template` times. Templates
  /// whose value slots reference empty attributes are skipped.
  StatusOr<std::vector<WorkloadQuery>> Generate(
      const std::vector<QueryTemplate>& templates) const;

 private:
  StatusOr<WorkloadQuery> Instantiate(const QueryTemplate& tmpl,
                                      size_t template_index, Rng* rng) const;

  const Database& db_;
  const Terminology& terminology_;
  const SchemaGraph& graph_;
  WorkloadOptions options_;
};

/// The built-in template sets for the three datasets.
std::vector<QueryTemplate> UniversityTemplates();
std::vector<QueryTemplate> MondialTemplates();
std::vector<QueryTemplate> DblpTemplates();
std::vector<QueryTemplate> ImdbTemplates();

}  // namespace km

#endif  // KM_WORKLOAD_WORKLOAD_H_
