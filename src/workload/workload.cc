#include "workload/workload.h"

#include <set>

#include "common/strings.h"
#include "core/translate.h"
#include "engine/executor.h"
#include "graph/interpretation.h"
#include "text/thesaurus.h"

namespace km {

WorkloadGenerator::WorkloadGenerator(const Database& db, const Terminology& terminology,
                                     const SchemaGraph& graph, WorkloadOptions options)
    : db_(db), terminology_(terminology), graph_(graph), options_(options) {}

StatusOr<std::vector<WorkloadQuery>> WorkloadGenerator::Generate(
    const std::vector<QueryTemplate>& templates) const {
  Rng rng(options_.seed);
  std::vector<WorkloadQuery> out;
  for (size_t ti = 0; ti < templates.size(); ++ti) {
    for (size_t q = 0; q < options_.queries_per_template; ++q) {
      auto query = Instantiate(templates[ti], ti, &rng);
      if (query.ok()) out.push_back(std::move(*query));
    }
  }
  if (out.empty()) {
    return Status::FailedPrecondition("no template could be instantiated");
  }
  return out;
}

StatusOr<WorkloadQuery> WorkloadGenerator::Instantiate(const QueryTemplate& tmpl,
                                                       size_t template_index,
                                                       Rng* rng) const {
  WorkloadQuery query;
  query.template_index = template_index;
  const Thesaurus& thesaurus = BuiltinThesaurus();

  // Pass 1: resolve the gold term of every keyword slot.
  for (const KeywordSpec& spec : tmpl.keywords) {
    std::optional<size_t> idx;
    switch (spec.term_kind) {
      case TermKind::kRelation:
        idx = terminology_.RelationTerm(spec.relation);
        break;
      case TermKind::kAttribute:
        idx = terminology_.AttributeTerm(spec.relation, spec.attribute);
        break;
      case TermKind::kDomain:
        idx = terminology_.DomainTerm(spec.relation, spec.attribute);
        break;
    }
    if (!idx) {
      return Status::NotFound("template references unknown term " + spec.relation +
                              "." + spec.attribute);
    }
    query.gold_config.term_for_keyword.push_back(*idx);
  }
  if (!query.gold_config.IsInjective()) {
    return Status::FailedPrecondition("template instantiation produced a "
                                      "non-injective gold configuration");
  }

  // Pass 2: gold interpretation — the minimum Steiner tree over the
  // generator's graph (unit weights unless the caller installed others).
  std::vector<size_t> terminals = TerminalsOfConfiguration(query.gold_config);
  SteinerOptions steiner;
  steiner.k = 1;
  KM_ASSIGN_OR_RETURN(std::vector<Interpretation> trees,
                      TopKSteinerTrees(graph_, terminals, steiner));
  if (trees.empty()) {
    return Status::FailedPrecondition("gold terminals are disconnected");
  }
  const Interpretation& gold_tree = trees[0];
  query.gold_interp_signature = gold_tree.Signature();

  // Pass 3: draw *correlated* values for the value slots by sampling one
  // row of the gold join. Users query facts that exist: "Vokram IT" is
  // asked by someone who knows Vokram relates to IT, so the instantiated
  // values must co-occur in the database. Falls back to independent
  // per-attribute draws when the gold join is empty.
  std::vector<Value> drawn(tmpl.keywords.size());
  {
    SpjQuery join_query;
    std::set<std::string> rels;
    for (size_t n : gold_tree.nodes) rels.insert(terminology_.term(n).relation);
    join_query.relations.assign(rels.begin(), rels.end());
    for (size_t e : gold_tree.edges) {
      const GraphEdge& edge = graph_.edges()[e];
      if (edge.kind != EdgeKind::kForeignKey || edge.fk_index < 0) continue;
      const ForeignKey& fk =
          db_.schema().foreign_keys()[static_cast<size_t>(edge.fk_index)];
      join_query.joins.push_back(
          {{fk.from_relation, fk.from_attribute}, {fk.to_relation, fk.to_attribute}});
    }
    for (const KeywordSpec& spec : tmpl.keywords) {
      if (spec.term_kind == TermKind::kDomain) {
        join_query.select.push_back({spec.relation, spec.attribute});
      }
    }
    Executor exec(db_);
    bool correlated = false;
    if (options_.correlate_values && !join_query.select.empty()) {
      auto rs = exec.Execute(join_query);
      if (rs.ok() && !rs->empty()) {
        // Try a few rows until every selected value is non-NULL.
        for (int attempt = 0; attempt < 16 && !correlated; ++attempt) {
          const Row& row = rs->rows[rng->Uniform(rs->size())];
          bool all_set = true;
          size_t col = 0;
          for (size_t i = 0; i < tmpl.keywords.size(); ++i) {
            if (tmpl.keywords[i].term_kind != TermKind::kDomain) continue;
            if (row[col].is_null()) {
              all_set = false;
              break;
            }
            drawn[i] = row[col];
            ++col;
          }
          correlated = all_set;
        }
      }
    }
    if (!join_query.select.empty() && !correlated) {
      // Fallback: independent draws per attribute.
      for (size_t i = 0; i < tmpl.keywords.size(); ++i) {
        const KeywordSpec& spec = tmpl.keywords[i];
        if (spec.term_kind != TermKind::kDomain) continue;
        const Table* table = db_.FindTable(spec.relation);
        if (table == nullptr || table->empty()) {
          return Status::FailedPrecondition("empty relation " + spec.relation);
        }
        auto attr = table->schema().AttributeIndex(spec.attribute);
        if (!attr) return Status::NotFound("missing attribute");
        for (int attempt = 0; attempt < 32 && drawn[i].is_null(); ++attempt) {
          const Row& row = table->rows()[rng->Uniform(table->size())];
          drawn[i] = row[*attr];
        }
        if (drawn[i].is_null()) {
          return Status::FailedPrecondition("attribute " + spec.relation + "." +
                                            spec.attribute + " has only NULLs");
        }
      }
    }
  }

  // Pass 4: render keywords with perturbations (synonyms for schema words,
  // random lower-casing for any keyword).
  for (size_t i = 0; i < tmpl.keywords.size(); ++i) {
    const KeywordSpec& spec = tmpl.keywords[i];
    std::string keyword;
    switch (spec.term_kind) {
      case TermKind::kRelation:
        keyword = spec.relation;
        break;
      case TermKind::kAttribute:
        keyword = spec.attribute;
        break;
      case TermKind::kDomain:
        keyword = drawn[i].ToString();
        break;
    }
    if (spec.term_kind != TermKind::kDomain && rng->Bernoulli(options_.synonym_prob)) {
      std::vector<std::string> syns = thesaurus.SynonymsOf(keyword);
      if (!syns.empty()) keyword = rng->Pick(syns);
    }
    if (rng->Bernoulli(options_.lowercase_prob)) keyword = ToLower(keyword);
    query.keywords.push_back(keyword);
  }

  KM_ASSIGN_OR_RETURN(query.gold_sql,
                      TranslateToSql(query.keywords, query.gold_config, gold_tree,
                                     terminology_, db_.schema(), graph_));
  query.gold_sql_signature = query.gold_sql.CanonicalSignature();
  return query;
}

std::vector<QueryTemplate> UniversityTemplates() {
  using KS = KeywordSpec;
  return {
      {"person-by-name", {KS::ValueOf("PEOPLE", "Name")}},
      {"person-country",
       {KS::ValueOf("PEOPLE", "Name"), KS::ValueOf("UNIVERSITY", "Country")}},
      {"schema-value-name",
       {KS::Attribute("PEOPLE", "Name"), KS::ValueOf("PEOPLE", "Name")}},
      {"dept-of-university",
       {KS::ValueOf("DEPARTMENT", "Name"), KS::ValueOf("UNIVERSITY", "Name")}},
      {"person-project",
       {KS::ValueOf("PEOPLE", "Name"), KS::ValueOf("PROJECT", "Name")}},
      {"projects-topic-year",
       {KS::Relation("PROJECT"), KS::ValueOf("PROJECT", "Topic"),
        KS::ValueOf("PROJECT", "Year")}},
      {"university-city",
       {KS::Relation("UNIVERSITY"), KS::ValueOf("UNIVERSITY", "City")}},
      {"person-email", {KS::ValueOf("PEOPLE", "Email")}},
      {"person-phone-country",
       {KS::ValueOf("PEOPLE", "Phone"), KS::ValueOf("PEOPLE", "Country")}},
      {"affiliation-year",
       {KS::ValueOf("PEOPLE", "Name"), KS::ValueOf("DEPARTMENT", "Name"),
        KS::ValueOf("AFFILIATED", "Year")}},
      {"project-university",
       {KS::ValueOf("PROJECT", "Name"), KS::ValueOf("UNIVERSITY", "Name")}},
      {"director-of-dept",
       {KS::Attribute("DEPARTMENT", "Director"), KS::ValueOf("DEPARTMENT", "Name")}},
      {"people-of-city-5kw",
       {KS::Relation("PEOPLE"), KS::Attribute("PEOPLE", "Name"),
        KS::ValueOf("UNIVERSITY", "City"), KS::ValueOf("UNIVERSITY", "Country"),
        KS::ValueOf("DEPARTMENT", "Name")}},
  };
}

std::vector<QueryTemplate> MondialTemplates() {
  using KS = KeywordSpec;
  return {
      {"country-by-name", {KS::ValueOf("COUNTRY", "Name")}},
      {"city-of-country",
       {KS::ValueOf("CITY", "Name"), KS::ValueOf("COUNTRY", "Name")}},
      {"capital-of", {KS::Attribute("COUNTRY", "Capital"), KS::ValueOf("COUNTRY", "Name")}},
      {"river-in-country",
       {KS::ValueOf("RIVER", "Name"), KS::ValueOf("COUNTRY", "Name")}},
      {"mountain-elevation",
       {KS::Relation("MOUNTAIN"), KS::Attribute("MOUNTAIN", "Elevation"),
        KS::ValueOf("MOUNTAIN", "Name")}},
      {"language-of-country",
       {KS::ValueOf("LANGUAGE", "Name"), KS::ValueOf("COUNTRY", "Name")}},
      {"religion-percentage",
       {KS::Relation("RELIGION"), KS::ValueOf("RELIGION", "Name")}},
      {"org-members", {KS::ValueOf("ORGANIZATION", "Abbreviation"),
                       KS::Relation("COUNTRY")}},
      {"province-population",
       {KS::ValueOf("PROVINCE", "Name"), KS::Attribute("PROVINCE", "Population")}},
      {"lake-in-province",
       {KS::ValueOf("LAKE", "Name"), KS::ValueOf("PROVINCE", "Name")}},
      {"country-continent",
       {KS::ValueOf("COUNTRY", "Name"), KS::ValueOf("CONTINENT", "Name")}},
      {"city-population-country",
       {KS::Relation("CITY"), KS::Attribute("CITY", "Population"),
        KS::ValueOf("COUNTRY", "Name")}},
      {"economy-currency",
       {KS::ValueOf("ECONOMY", "Currency"), KS::ValueOf("COUNTRY", "Name")}},
      {"island-area-5kw",
       {KS::Relation("ISLAND"), KS::Attribute("ISLAND", "Area"),
        KS::ValueOf("ISLAND", "Name"), KS::ValueOf("COUNTRY", "Name"),
        KS::ValueOf("PROVINCE", "Name")}},
  };
}

std::vector<QueryTemplate> DblpTemplates() {
  using KS = KeywordSpec;
  return {
      {"author-by-name", {KS::ValueOf("PERSON", "Name")}},
      {"papers-of-author",
       {KS::Relation("ARTICLE"), KS::ValueOf("PERSON", "Name")}},
      {"author-year",
       {KS::ValueOf("PERSON", "Name"), KS::ValueOf("INPROCEEDINGS", "Year")}},
      {"paper-title", {KS::ValueOf("ARTICLE", "Title")}},
      {"conference-year",
       {KS::ValueOf("CONFERENCE", "Acronym"), KS::ValueOf("PROCEEDINGS", "Year")}},
      {"author-conference",
       {KS::ValueOf("PERSON", "Name"), KS::ValueOf("CONFERENCE", "Acronym")}},
      {"journal-volume",
       {KS::ValueOf("JOURNAL", "Name"), KS::Attribute("ARTICLE", "Volume")}},
      {"editor-of-proceedings",
       {KS::Relation("EDITOR"), KS::ValueOf("PROCEEDINGS", "Title")}},
      {"thesis-school",
       {KS::Relation("PHDTHESIS"), KS::ValueOf("PHDTHESIS", "School")}},
      {"publisher-proceedings",
       {KS::ValueOf("PUBLISHER", "Name"), KS::Relation("PROCEEDINGS")}},
      {"author-title-year",
       {KS::ValueOf("PERSON", "Name"), KS::ValueOf("INPROCEEDINGS", "Title"),
        KS::ValueOf("INPROCEEDINGS", "Year")}},
      {"series-volume",
       {KS::ValueOf("SERIES", "Name"), KS::Attribute("PROCEEDINGS_SERIES", "Volume")}},
      {"coauthors-5kw",
       {KS::Relation("PERSON"), KS::Attribute("PERSON", "Name"),
        KS::ValueOf("ARTICLE", "Title"), KS::ValueOf("ARTICLE", "Year"),
        KS::ValueOf("JOURNAL", "Name")}},
  };
}


std::vector<QueryTemplate> ImdbTemplates() {
  using KS = KeywordSpec;
  return {
      {"movie-by-title", {KS::ValueOf("MOVIE", "Title")}},
      {"movies-of-actor", {KS::Relation("MOVIE"), KS::ValueOf("PERSON", "Name")}},
      {"actor-movie",
       {KS::ValueOf("PERSON", "Name"), KS::ValueOf("MOVIE", "Title")}},
      {"movie-year", {KS::ValueOf("MOVIE", "Title"), KS::ValueOf("MOVIE", "Year")}},
      {"genre-movies", {KS::ValueOf("GENRE", "Name"), KS::Relation("MOVIE")}},
      {"director-of", {KS::Relation("DIRECTS"), KS::ValueOf("MOVIE", "Title")}},
      {"company-country",
       {KS::ValueOf("COMPANY", "Name"), KS::ValueOf("COMPANY", "Country")}},
      {"movie-rating",
       {KS::ValueOf("MOVIE", "Title"), KS::Attribute("RATING", "Score")}},
      {"actor-genre",
       {KS::ValueOf("PERSON", "Name"), KS::ValueOf("GENRE", "Name")}},
      {"movie-company",
       {KS::ValueOf("MOVIE", "Title"), KS::ValueOf("COMPANY", "Name")}},
      {"keyword-movies", {KS::ValueOf("KEYWORD", "Word"), KS::Relation("MOVIE")}},
      {"actor-year-genre-4kw",
       {KS::ValueOf("PERSON", "Name"), KS::ValueOf("MOVIE", "Year"),
        KS::ValueOf("GENRE", "Name"), KS::Attribute("MOVIE", "Title")}},
  };
}

}  // namespace km
