// Configurations: injective mappings of query keywords into database terms.

#ifndef KM_METADATA_CONFIGURATION_H_
#define KM_METADATA_CONFIGURATION_H_

#include <string>
#include <vector>

#include "metadata/term.h"

namespace km {

/// A configuration assigns the i-th query keyword to terminology index
/// `term_for_keyword[i]`. The mapping is injective by construction.
struct Configuration {
  std::vector<size_t> term_for_keyword;
  /// Confidence score; comparable within one ranked list (higher = better).
  double score = 0.0;

  bool operator==(const Configuration& o) const {
    return term_for_keyword == o.term_for_keyword;
  }

  /// "k1→PEOPLE.Name, k2→Dom(UNIVERSITY.Country)" rendering.
  std::string ToString(const std::vector<std::string>& keywords,
                       const Terminology& terminology) const;

  /// True iff no two keywords share a term (sanity check used in tests).
  bool IsInjective() const;
};

}  // namespace km

#endif  // KM_METADATA_CONFIGURATION_H_
