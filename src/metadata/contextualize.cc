#include "metadata/contextualize.h"

#include <algorithm>

namespace km {

Contextualizer::Contextualizer(const Terminology& terminology,
                               const DatabaseSchema& schema,
                               ContextualizeOptions options)
    : terminology_(terminology), schema_(schema), options_(options) {
  for (const RelationSchema& rel : schema_.relations()) {
    relation_ordinal_[rel.name()] = relation_names_.size();
    relation_names_.push_back(rel.name());
  }
  terms_of_relation_.resize(relation_names_.size());
  for (size_t t = 0; t < terminology_.size(); ++t) {
    auto it = relation_ordinal_.find(terminology_.term(t).relation);
    if (it != relation_ordinal_.end()) terms_of_relation_[it->second].push_back(t);
  }
  joinable_.assign(relation_names_.size(),
                   std::vector<bool>(relation_names_.size(), false));
  for (const ForeignKey& fk : schema_.foreign_keys()) {
    auto a = relation_ordinal_.find(fk.from_relation);
    auto b = relation_ordinal_.find(fk.to_relation);
    if (a != relation_ordinal_.end() && b != relation_ordinal_.end()) {
      joinable_[a->second][b->second] = true;
      joinable_[b->second][a->second] = true;
    }
  }
  // Two-hop reachability (excluding self and direct neighbours).
  const size_t n = relation_names_.size();
  joinable2_.assign(n, std::vector<bool>(n, false));
  for (size_t a = 0; a < n; ++a) {
    for (size_t mid = 0; mid < n; ++mid) {
      if (!joinable_[a][mid]) continue;
      for (size_t b = 0; b < n; ++b) {
        if (b != a && !joinable_[a][b] && joinable_[mid][b]) joinable2_[a][b] = true;
      }
    }
  }
}

void Contextualizer::Boost(Matrix* factors, size_t row, size_t col,
                           double factor) const {
  double& f = factors->At(row, col);
  f = std::min(f * factor, options_.max_total_boost);
}

void Contextualizer::Apply(size_t assigned_keyword, size_t assigned_term,
                           const std::vector<size_t>& pending_rows,
                           Matrix* weights) const {
  if (!options_.enabled) return;
  const DatabaseTerm& term = terminology_.term(assigned_term);
  auto rel_it = relation_ordinal_.find(term.relation);
  if (rel_it == relation_ordinal_.end()) return;
  size_t rel = rel_it->second;

  for (size_t row : pending_rows) {
    bool adjacent = (row + 1 == assigned_keyword) || (assigned_keyword + 1 == row);
    if (!adjacent) continue;  // proximity gate: see header comment

    // R1: attribute assigned → its domain for adjacent keywords.
    if (term.kind == TermKind::kAttribute) {
      auto dom = terminology_.DomainTerm(term.relation, term.attribute);
      if (dom) Boost(weights, row, *dom, options_.adjacent_domain_boost);
    }
    // R5: domain assigned → its attribute for adjacent keywords.
    if (term.kind == TermKind::kDomain) {
      auto attr = terminology_.AttributeTerm(term.relation, term.attribute);
      if (attr) Boost(weights, row, *attr, options_.adjacent_domain_boost);
    }

    // Relation-level coherence rates: asymmetric for schema-term
    // assignments (R2/R3/R4), symmetric for value assignments (see the
    // header on value_coherence_boost).
    const bool value_assigned = term.kind == TermKind::kDomain;
    const double same_rel_rate =
        value_assigned ? options_.value_coherence_boost : options_.same_relation_boost;
    const double fk_rate =
        value_assigned ? options_.value_coherence_boost : options_.fk_adjacent_boost;

    for (size_t t : terms_of_relation_[rel]) {
      if (t == assigned_term) continue;
      const DatabaseTerm& other = terminology_.term(t);
      // R2: relation assigned → members of the relation.
      if (term.kind == TermKind::kRelation && other.kind != TermKind::kRelation) {
        Boost(weights, row, t, options_.relation_member_boost);
      } else if (value_assigned && other.is_schema_term()) {
        // A value followed/preceded by a *schema* keyword usually names an
        // aspect of the same concept ("Veleth Population"): full R3 rate.
        Boost(weights, row, t, options_.same_relation_boost);
      } else {
        // R3: same-relation affinity.
        Boost(weights, row, t, same_rel_rate);
      }
    }

    // R4: FK-adjacent relations, plus decayed two-hop coherence for value
    // assignments (concepts linked through a join table).
    for (size_t other_rel = 0; other_rel < relation_names_.size(); ++other_rel) {
      if (joinable_[rel][other_rel]) {
        for (size_t t : terms_of_relation_[other_rel]) {
          Boost(weights, row, t, fk_rate);
        }
      } else if (value_assigned && joinable2_[rel][other_rel]) {
        for (size_t t : terms_of_relation_[other_rel]) {
          Boost(weights, row, t, options_.value_coherence_2hop);
        }
      }
    }
  }
}

double Contextualizer::ScoreSequence(const Matrix& intrinsic,
                                     const std::vector<size_t>& assignment) const {
  return ScoreSequenceDetailed(intrinsic, assignment, nullptr);
}

double Contextualizer::ScoreSequenceDetailed(
    const Matrix& intrinsic, const std::vector<size_t>& assignment,
    std::vector<double>* factor_for_keyword) const {
  Matrix factors(intrinsic.rows(), intrinsic.cols(), 1.0);
  if (factor_for_keyword != nullptr) {
    factor_for_keyword->assign(assignment.size(), 1.0);
  }
  double total = 0;
  std::vector<size_t> pending;
  for (size_t i = 0; i < assignment.size(); ++i) {
    const double factor = factors.At(i, assignment[i]);
    if (factor_for_keyword != nullptr) (*factor_for_keyword)[i] = factor;
    total += intrinsic.At(i, assignment[i]) * factor;
    // Contextualize the not-yet-scored rows.
    pending.clear();
    for (size_t j = i + 1; j < assignment.size(); ++j) pending.push_back(j);
    if (!pending.empty()) Apply(i, assignment[i], pending, &factors);
  }
  return total;
}

}  // namespace km
