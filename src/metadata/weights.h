// Intrinsic weight matrix construction (the SW/VW matrices of the paper).
//
// For a keyword query (k1..km) and a terminology T(D), the builder produces
// an m × |T(D)| matrix of intrinsic weights in [0,1]:
//
//   * columns of *schema terms* (relations, attributes) form the SW
//     sub-matrix — populated with string similarity between the keyword and
//     the term name plus semantic (thesaurus) similarity;
//   * columns of *value terms* (attribute domains) form the VW sub-matrix —
//     populated with data-type / domain-pattern compatibility and, when
//     instance access is available, membership of the keyword in the
//     attribute's actual value set (the full-text-index scenario).

#ifndef KM_METADATA_WEIGHTS_H_
#define KM_METADATA_WEIGHTS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lru_cache.h"
#include "common/matrix.h"
#include "common/query_context.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "metadata/term.h"
#include "relational/database.h"
#include "text/measure_registry.h"
#include "text/similarity_batch.h"
#include "text/thesaurus.h"

namespace km {

/// Feature toggles of the weight builder (the E2 ablation switches).
struct WeightOptions {
  /// String similarity (Jaro-Winkler / trigram / abbreviation) in SW.
  bool use_string_similarity = true;
  /// Thesaurus lookups in SW.
  bool use_synonyms = true;
  /// Domain-tag / regex pattern compatibility in VW.
  bool use_domain_patterns = true;
  /// Instance vocabulary lookups in VW (requires a Database with content).
  /// Turning this off is the paper's core "metadata-only" scenario.
  bool use_instance_vocabulary = true;
  /// Weight given to an exact instance-value hit (full-text simulation).
  double instance_hit_weight = 0.95;
  /// Weight of a partial (substring/prefix) instance hit.
  double instance_partial_weight = 0.75;
  /// Multiplier applied to the pattern-based domain score when instance
  /// access is available and the keyword does NOT occur in the attribute:
  /// with a full-text index, absence is evidence of a mismatch.
  double instance_miss_penalty = 0.25;
  /// Minimum SW score kept; weaker similarities are zeroed (noise floor).
  double sw_floor = 0.30;
  /// Multiplier applied to matches on foreign-key attributes and their
  /// domains: FK columns hold copies of another relation's key, so the
  /// referenced attribute is the preferred image of the keyword.
  double fk_reference_penalty = 0.85;
  /// Thesaurus to use; nullptr selects the built-in one.
  const Thesaurus* thesaurus = nullptr;
  /// Worker pool for per-keyword row construction (not owned, may be null =
  /// serial). Rows land in fixed slots, so the matrix is identical either way.
  ThreadPool* pool = nullptr;
  /// Entry bound of the cross-query keyword → weight-row cache (0 disables).
  /// A row caches every intrinsic weight of one keyword against the full
  /// terminology, so repeated keywords skip the SW/VW similarity work
  /// entirely.
  size_t keyword_row_cache_capacity = 4096;
  /// Registered name of the similarity measure scoring the SW string
  /// component (MeasureRegistry::Global()). The default "name" is the
  /// composite identifier measure from text/similarity.h; any other
  /// registered measure (e.g. "monge_elkan" for multi-token keywords)
  /// replaces it cell-for-cell. Unknown names fall back to "name".
  std::string similarity_measure = "name";
  /// Options forwarded to the measure creator.
  MeasureOptions measure_options;
  /// Use the prepared terminology prune index (when attached via
  /// SetPruneIndex) to batch and prune the SW scan in Build(). Only the
  /// composite "name" measure has the lossless bounds the kernel relies
  /// on, so any other similarity_measure forces the scalar path. The
  /// pruned build is byte-identical to the scalar one: every score at or
  /// above sw_floor is computed exactly, and skipped cells are provably
  /// below the floor (which zeroes them in the scalar path too).
  bool use_prune_index = true;
};

/// Prepare-time pruning index over a terminology: a NameMatchIndex over
/// every schema-term name — the plain relation/attribute names plus the
/// qualified "<relation> <attribute>" variants the attribute scorer also
/// checks — with entry → term mappings and the precomputed identifier
/// word/stem lists the synonym channel consults. Derived entirely from
/// the terminology, so PreparedState can rebuild it after Build() and
/// Assemble() alike and snapshots need no new section (and no format
/// bump). Immutable and shared between builders.
struct TermPruneIndex {
  explicit TermPruneIndex(const Terminology& terminology);

  /// Convenience shared-ownership builder.
  static std::shared_ptr<const TermPruneIndex> Build(
      const Terminology& terminology);

  /// Per NameMatchIndex entry: the terminology term it scores.
  std::vector<uint32_t> entry_term;
  /// 1 when the entry is the qualified "<relation> <attribute>" variant
  /// (its similarity enters the SW score scaled by 0.9).
  std::vector<uint8_t> entry_qualified;
  /// Per term: lower-cased primary name (empty for domain terms) for the
  /// short-keyword / no-string-similarity exact-equality paths.
  std::vector<std::string> lowered_name;
  /// Per term: identifier words of the primary name and their Porter
  /// stems (empty vectors for domain terms).
  std::vector<std::vector<std::string>> term_words;
  std::vector<std::vector<std::string>> term_stems;
  /// Declared last on purpose: its initializer fills the maps above while
  /// collecting the names to index (members construct in declaration
  /// order).
  NameMatchIndex names;
};

/// Decomposition of one intrinsic weight: which scoring component produced
/// it. Fills the per-keyword provenance lines of AnswerResult::Explain()
/// ("which bonus fired" — string similarity, synonym, domain pattern or
/// instance hit).
struct WeightProvenance {
  double final_weight = 0;
  bool is_schema_term = false;
  /// SW components (schema terms): raw pre-floor scores.
  double string_similarity = 0;
  double synonym = 0;
  /// VW components (domain terms).
  double pattern = 0;   ///< domain-tag / regex compatibility
  double instance = 0;  ///< instance-vocabulary hit weight (0 = no hit)
  bool instance_miss_penalized = false;
  bool fk_penalized = false;
  /// The component that decided the final weight:
  /// "string" | "synonym" | "pattern" | "instance" | "none".
  const char* dominant() const;
};

/// Per-domain-term index of instance values with occurrence counts:
/// lower-cased text values for TEXT/DATE attributes, raw values otherwise.
/// Counts feed the full-text-style frequency bonus. One entry per
/// terminology term, parallel to Terminology::terms() (non-domain terms
/// keep empty entries). Built once — by scanning the instance
/// (BuildValueIndex) or decoded from a prepared-state snapshot — and then
/// shared immutably between weight builders.
struct ValueIndexEntry {
  std::unordered_map<std::string, size_t> text_values;
  std::unordered_map<Value, size_t, ValueHash> other_values;
};

/// Builds intrinsic keyword × term weight matrices.
class WeightMatrixBuilder {
 public:
  /// `db` may be nullptr for the no-instance-access scenario; instance
  /// vocabulary lookups are then skipped regardless of the options.
  WeightMatrixBuilder(const Terminology& terminology, const Database* db,
                      WeightOptions options = {});

  /// Shares a prebuilt value index instead of scanning the instance
  /// (snapshot cold-start path). `shared_index` is non-owning and may be
  /// nullptr (no instance vocabulary); when non-null it must be parallel to
  /// `terminology` and outlive the builder.
  WeightMatrixBuilder(const Terminology& terminology,
                      const std::vector<ValueIndexEntry>* shared_index,
                      WeightOptions options = {});

  /// The per-domain-term instance value index the instance-access
  /// constructor builds: empty when `db` is null or the options disable
  /// instance vocabulary. Exposed so prepared-state construction can build
  /// the index once and share it across engines (and snapshots).
  static std::vector<ValueIndexEntry> BuildValueIndex(
      const Terminology& terminology, const Database* db,
      const WeightOptions& options);

  /// The m × |T| intrinsic weight matrix for `keywords`. `ctx` (optional)
  /// records the m·|T| cell computations as weights-stage spend; the build
  /// always runs to completion (it is polynomial and every degradation
  /// rung below it still needs the matrix), and the result is sanitized:
  /// non-finite or out-of-range cells are clamped into [0, 1] so one
  /// corrupted similarity cannot poison the assignment stage.
  /// `parent` (optional) hosts a "weights.build" span with row/cache-hit
  /// counters; null means tracing is off and costs one branch.
  Matrix Build(const std::vector<std::string>& keywords,
               QueryContext* ctx = nullptr, TraceNode* parent = nullptr) const;

  /// Weight of a single keyword against a single term (exposed for tests
  /// and for HMM emission probabilities).
  double Weight(const std::string& keyword, const DatabaseTerm& term) const;

  /// SW entry: keyword vs schema term name.
  double SchemaWeight(const std::string& keyword, const DatabaseTerm& term) const;

  /// VW entry: keyword vs attribute domain.
  double ValueWeight(const std::string& keyword, const DatabaseTerm& term) const;

  /// Weight() plus the score decomposition — which component (string
  /// similarity, synonym, pattern, instance hit) produced the final value.
  /// Recomputes the cell from scratch (cheap: one keyword × one term); the
  /// engine calls it only for the winning assignment under --explain.
  WeightProvenance ExplainWeight(const std::string& keyword,
                                 const DatabaseTerm& term) const;

  const Terminology& terminology() const { return terminology_; }
  const WeightOptions& options() const { return options_; }

  /// Attaches a prepared prune index (normally PreparedState's). The
  /// index must have been built from the same terminology. Build() then
  /// takes the pruned/batched SW path when the options allow it.
  void SetPruneIndex(std::shared_ptr<const TermPruneIndex> index);

  /// Whether Build() will use the pruned/batched kernel (index attached,
  /// use_prune_index set, composite "name" measure selected).
  bool UsesPrunedKernel() const;

  /// Hit/miss/eviction snapshot of the keyword-row cache.
  CacheCounters RowCacheCounters() const { return row_cache_.Counters(); }

 private:
  struct RowBuildStats {
    size_t candidate_cells = 0;
    size_t pruned_cells = 0;
  };
  // Per-row memo of DomainCompatibility(keyword, type, tag): the value
  // depends only on (keyword, type, tag), so one keyword row computes each
  // distinct (type, tag) pattern once instead of once per domain term.
  using DomainMemo = std::unordered_map<uint32_t, double>;

  // Weight computations with optional provenance capture (prov may be
  // null); the public SchemaWeight/ValueWeight/ExplainWeight wrap these.
  double SchemaWeightImpl(const std::string& keyword, const DatabaseTerm& term,
                          WeightProvenance* prov) const;
  double ValueWeightImpl(const std::string& keyword, const DatabaseTerm& term,
                         WeightProvenance* prov,
                         DomainMemo* domain_memo = nullptr) const;

  // The batched SW/VW row for one keyword, byte-identical to the scalar
  // per-cell loop; requires prune_index_.
  void BuildRowPruned(const std::string& keyword, std::vector<double>* out,
                      RowBuildStats* stats) const;

  // Shared tail of the schema score: noise floor, rescale, FK penalty.
  double FinishSchemaScore(double score, const DatabaseTerm& term,
                           WeightProvenance* prov) const;

  const Terminology& terminology_;
  const Database* db_;
  WeightOptions options_;
  const Thesaurus* thesaurus_;
  std::shared_ptr<const TermPruneIndex> prune_index_;
  // The configured SW string measure; nullptr means the built-in composite
  // NameSimilarity fast path (measure "name" with no virtual dispatch).
  std::unique_ptr<const SimilarityMeasure> measure_;
  // Per-entry floors for prune_index_->names.Match: sw_floor for plain
  // entries, sw_floor/0.9 for qualified ones (their score enters scaled).
  std::vector<double> entry_floors_;
  // Backing store of the instance-access constructor; empty (and unused)
  // when the index is shared externally.
  std::vector<ValueIndexEntry> owned_value_index_;
  // The value index actually consulted: &owned_value_index_, an external
  // shared index, or nullptr (no instance vocabulary). Parallel to
  // terminology terms.
  const std::vector<ValueIndexEntry>* value_index_ = nullptr;
  // keyword → its full row of intrinsic weights (size = terminology size).
  // Thread-safe (sharded LRU); mutable because Build() is logically const.
  mutable LruCache<std::string, std::vector<double>> row_cache_;
};

}  // namespace km

#endif  // KM_METADATA_WEIGHTS_H_
