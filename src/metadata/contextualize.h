// Weight contextualization: the dynamic re-weighting step of the paper.
//
// Intrinsic weights score each (keyword, term) pair in isolation. Once a
// keyword is assigned, the remaining keywords' weights are *contextualized*
// toward terms that are semantically close to the assigned term:
//
//   R1. keyword → attribute A      ⇒ boost Dom(A) for *adjacent* keywords
//       (the "Name Vokram" pattern: a schema keyword followed by a value);
//   R2. keyword → relation R       ⇒ boost R's attributes and domains;
//   R3. keyword → any term of R    ⇒ mildly boost all other terms of R
//       (queries tend to talk about one concept);
//   R4. keyword → any term of R    ⇒ faintly boost terms of relations
//       directly joinable with R (FK-adjacency);
//   R5. keyword → domain Dom(A)    ⇒ boost attribute A for adjacent
//       keywords (the "Vokram Name" pattern) and sibling domains of R for
//       all keywords.
//
// Boosts are multiplicative and capped at 1; zero intrinsic weights are
// never resurrected (an impossible match stays impossible).

#ifndef KM_METADATA_CONTEXTUALIZE_H_
#define KM_METADATA_CONTEXTUALIZE_H_

#include <vector>

#include "common/matrix.h"
#include "metadata/term.h"

namespace km {

/// Multipliers for the contextualization rules.
///
/// All rules are *proximity-gated*: they only fire for keywords adjacent to
/// the assigned one. Users put related keywords next to each other (the
/// query-log studies the paper cites), and un-gated relation-level boosts
/// would systematically drag far-apart keywords into one relation even when
/// the query genuinely spans several.
struct ContextualizeOptions {
  double adjacent_domain_boost = 1.6;   ///< R1/R5: attribute↔domain adjacency.
  double relation_member_boost = 1.3;   ///< R2: relation → its attrs/domains.
  double same_relation_boost = 1.2;     ///< R3: schema term → same relation.
  double fk_adjacent_boost = 1.1;       ///< R4: schema term → FK-joinable rels.
  /// When the assigned term is a *value* (domain), the query may equally
  /// well be about one relation or about two joined ones (the paper's own
  /// "Vokram IT" example is cross-relation), so same-relation and
  /// FK-adjacent terms get one symmetric coherence rate instead of the
  /// asymmetric R3/R4 pair.
  double value_coherence_boost = 1.1;
  /// Coherence also reaches relations two foreign-key hops away (link
  /// tables such as GEO_RIVER or AUTHOR_ARTICLE sit between semantically
  /// adjacent concepts), at a decayed rate.
  double value_coherence_2hop = 1.06;
  /// Ceiling on the *total* contextual multiplication a cell can receive
  /// across all assignments. Without it, several keywords' boosts compound
  /// and amplify weak matches above strong intrinsic evidence.
  double max_total_boost = 1.25;
  /// When false, Apply() is a no-op (the E2 "−contextualization" ablation).
  bool enabled = true;
};

/// Applies contextualization rules to a weight matrix as keywords get
/// assigned.
class Contextualizer {
 public:
  Contextualizer(const Terminology& terminology, const DatabaseSchema& schema,
                 ContextualizeOptions options = {});

  /// Multiplies boost factors into `factors` (rows = keywords, cols =
  /// terms, initialized to 1) given that keyword row `assigned_keyword` was
  /// mapped to terminology index `assigned_term`. Only rows in
  /// `pending_rows` are touched. Each cell's accumulated factor is capped
  /// at options().max_total_boost. The contextualized weight of a cell is
  /// `intrinsic(r,c) * factors(r,c)` (zero intrinsic weights thus stay
  /// zero: impossible matches are never resurrected).
  void Apply(size_t assigned_keyword, size_t assigned_term,
             const std::vector<size_t>& pending_rows, Matrix* factors) const;

  /// Contextualized score of a full assignment processed left-to-right:
  /// score = Σ_i w_i(k_i, t_i) where w_i is the intrinsic matrix
  /// contextualized by assignments 0..i−1. This is how candidate
  /// configurations are re-ranked after enumeration.
  double ScoreSequence(const Matrix& intrinsic,
                       const std::vector<size_t>& assignment) const;

  /// ScoreSequence() that also reports, per keyword, the contextual factor
  /// its chosen cell carried when it was scored (1.0 = no rule fired).
  /// Feeds the provenance lines of AnswerResult::Explain().
  double ScoreSequenceDetailed(const Matrix& intrinsic,
                               const std::vector<size_t>& assignment,
                               std::vector<double>* factor_for_keyword) const;

  const ContextualizeOptions& options() const { return options_; }

 private:
  void Boost(Matrix* w, size_t row, size_t col, double factor) const;

  const Terminology& terminology_;
  const DatabaseSchema& schema_;
  ContextualizeOptions options_;
  // Precomputed: for every pair of relations, whether a FK connects them.
  std::vector<std::vector<size_t>> terms_of_relation_;  // by relation ordinal
  std::vector<std::string> relation_names_;
  std::vector<std::vector<bool>> joinable_;
  std::vector<std::vector<bool>> joinable2_;
  std::unordered_map<std::string, size_t> relation_ordinal_;
};

}  // namespace km

#endif  // KM_METADATA_CONTEXTUALIZE_H_
