// Database terms and the terminology of a database.
//
// The terminology T(D) contains, for every relation R(A1..An): the relation
// name R, every attribute name R.Ai, and every attribute domain Dom(R.Ai).
// A configuration maps query keywords into these terms.

#ifndef KM_METADATA_TERM_H_
#define KM_METADATA_TERM_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/schema.h"

namespace km {

/// The three kinds of database terms.
enum class TermKind {
  kRelation = 0,  ///< A relation name.
  kAttribute = 1, ///< An attribute name (schema term).
  kDomain = 2,    ///< The domain of an attribute (value term).
};

/// Name of a term kind ("Relation", "Attribute", "Domain").
const char* TermKindName(TermKind kind);

/// One element of the database terminology.
struct DatabaseTerm {
  TermKind kind = TermKind::kRelation;
  std::string relation;
  std::string attribute;          ///< Empty for relation terms.
  DataType type = DataType::kText;///< Attribute storage type (attr/domain terms).
  DomainTag tag = DomainTag::kNone;///< Declared domain tag (attr/domain terms).
  /// True when the attribute participates in a foreign key (its values are
  /// copies of another relation's key — the value's semantic "home" is the
  /// referenced attribute, so matches here are discounted).
  bool is_foreign_key = false;

  bool operator==(const DatabaseTerm& o) const {
    return kind == o.kind && relation == o.relation && attribute == o.attribute;
  }

  /// "PEOPLE", "PEOPLE.Name" or "Dom(PEOPLE.Name)".
  std::string ToString() const;

  bool is_schema_term() const { return kind != TermKind::kDomain; }
  bool is_value_term() const { return kind == TermKind::kDomain; }
};

/// The indexed terminology of a database schema.
class Terminology {
 public:
  /// Extracts all terms from `schema` in deterministic order: for each
  /// relation (catalog order): the relation term, then attribute and domain
  /// terms per attribute.
  explicit Terminology(const DatabaseSchema& schema);

  size_t size() const { return terms_.size(); }
  const DatabaseTerm& term(size_t i) const { return terms_[i]; }
  const std::vector<DatabaseTerm>& terms() const { return terms_; }

  /// Index of the relation term for `relation`, if present.
  std::optional<size_t> RelationTerm(const std::string& relation) const;

  /// Index of the attribute term `relation.attribute`, if present.
  std::optional<size_t> AttributeTerm(const std::string& relation,
                                      const std::string& attribute) const;

  /// Index of the domain term Dom(relation.attribute), if present.
  std::optional<size_t> DomainTerm(const std::string& relation,
                                   const std::string& attribute) const;

  /// Indices of all terms belonging to `relation` (the relation term, its
  /// attributes and their domains).
  std::vector<size_t> TermsOfRelation(const std::string& relation) const;

  /// For a domain term index, the index of its attribute term (and vice
  /// versa). Returns nullopt for relation terms.
  std::optional<size_t> PairedTerm(size_t term_index) const;

 private:
  std::string Key(TermKind kind, const std::string& rel, const std::string& attr) const;

  std::vector<DatabaseTerm> terms_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace km

#endif  // KM_METADATA_TERM_H_
