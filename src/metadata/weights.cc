#include "metadata/weights.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/metric_names.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "text/recognizers.h"
#include "text/stemmer.h"
#include "text/similarity.h"

namespace km {

namespace {

// Resolves the configured SW string measure. The composite "name" measure
// stays a direct NameSimilarity call (nullptr here selects that fast
// path); unknown names fall back to it too, so a typo in a config cannot
// silently zero the SW matrix.
std::unique_ptr<const SimilarityMeasure> ResolveMeasure(
    const WeightOptions& options) {
  if (options.similarity_measure == "name") return nullptr;
  return MeasureRegistry::Global().Create(options.similarity_measure,
                                          options.measure_options);
}

}  // namespace

TermPruneIndex::TermPruneIndex(const Terminology& terminology)
    : names([&terminology, this] {
        // Collect the names to index — one primary entry per schema term
        // plus one qualified "<relation> <attribute>" entry per attribute
        // term — while filling the entry → term maps as a side effect.
        std::vector<std::string> indexed;
        lowered_name.resize(terminology.size());
        term_words.resize(terminology.size());
        term_stems.resize(terminology.size());
        for (size_t t = 0; t < terminology.size(); ++t) {
          const DatabaseTerm& term = terminology.term(t);
          if (!term.is_schema_term()) continue;
          const std::string& name = term.kind == TermKind::kRelation
                                        ? term.relation
                                        : term.attribute;
          lowered_name[t] = ToLower(name);
          term_words[t] = SplitIdentifierWords(name);
          term_stems[t].reserve(term_words[t].size());
          for (const auto& w : term_words[t]) {
            term_stems[t].push_back(PorterStem(w));
          }
          entry_term.push_back(static_cast<uint32_t>(t));
          entry_qualified.push_back(0);
          indexed.push_back(name);
          if (term.kind == TermKind::kAttribute) {
            entry_term.push_back(static_cast<uint32_t>(t));
            entry_qualified.push_back(1);
            indexed.push_back(term.relation + " " + name);
          }
        }
        return indexed;
      }()) {}

std::shared_ptr<const TermPruneIndex> TermPruneIndex::Build(
    const Terminology& terminology) {
  return std::make_shared<const TermPruneIndex>(terminology);
}

WeightMatrixBuilder::WeightMatrixBuilder(const Terminology& terminology,
                                         const Database* db, WeightOptions options)
    : terminology_(terminology),
      db_(db),
      options_(options),
      row_cache_(options.keyword_row_cache_capacity) {
  thesaurus_ = options_.thesaurus != nullptr ? options_.thesaurus : &BuiltinThesaurus();
  measure_ = ResolveMeasure(options_);
  // Precompute per-domain-term value indexes so ValueWeight is O(1) per
  // lookup instead of scanning the instance for every (keyword, term) pair.
  owned_value_index_ = BuildValueIndex(terminology_, db_, options_);
  if (!owned_value_index_.empty()) value_index_ = &owned_value_index_;
}

WeightMatrixBuilder::WeightMatrixBuilder(
    const Terminology& terminology,
    const std::vector<ValueIndexEntry>* shared_index, WeightOptions options)
    : terminology_(terminology),
      db_(nullptr),
      options_(options),
      row_cache_(options.keyword_row_cache_capacity) {
  thesaurus_ = options_.thesaurus != nullptr ? options_.thesaurus : &BuiltinThesaurus();
  measure_ = ResolveMeasure(options_);
  if (shared_index != nullptr && !shared_index->empty()) {
    value_index_ = shared_index;
  }
}

void WeightMatrixBuilder::SetPruneIndex(
    std::shared_ptr<const TermPruneIndex> index) {
  if (index != nullptr) {
    KM_CHECK(index->lowered_name.size() == terminology_.size());
    entry_floors_.resize(index->entry_term.size());
    for (size_t e = 0; e < index->entry_term.size(); ++e) {
      // Qualified entries contribute scaled by 0.9, so their similarity
      // must reach sw_floor / 0.9 before it can matter.
      entry_floors_[e] = index->entry_qualified[e] != 0
                             ? options_.sw_floor / 0.9
                             : options_.sw_floor;
    }
  } else {
    entry_floors_.clear();
  }
  prune_index_ = std::move(index);
}

bool WeightMatrixBuilder::UsesPrunedKernel() const {
  // Only the composite "name" measure has the lossless upper bounds the
  // kernel's prune phase relies on; any other measure runs scalar.
  return options_.use_prune_index && prune_index_ != nullptr &&
         measure_ == nullptr;
}

std::vector<ValueIndexEntry> WeightMatrixBuilder::BuildValueIndex(
    const Terminology& terminology, const Database* db,
    const WeightOptions& options) {
  std::vector<ValueIndexEntry> index;
  if (db == nullptr || !options.use_instance_vocabulary) return index;
  index.resize(terminology.size());
  for (size_t i = 0; i < terminology.size(); ++i) {
    const DatabaseTerm& term = terminology.term(i);
    if (term.kind != TermKind::kDomain) continue;
    const Table* table = db->FindTable(term.relation);
    if (table == nullptr) continue;
    auto idx = table->schema().AttributeIndex(term.attribute);
    if (!idx) continue;
    const AttributeDef& attr = table->schema().attribute(*idx);
    ValueIndexEntry& vi = index[i];
    for (const Row& row : table->rows()) {
      const Value& v = row[*idx];
      if (v.is_null()) continue;
      if (attr.type == DataType::kText || attr.type == DataType::kDate) {
        if (v.is_text()) ++vi.text_values[ToLower(v.AsText())];
      } else {
        ++vi.other_values[v];
      }
    }
  }
  return index;
}

Matrix WeightMatrixBuilder::Build(const std::vector<std::string>& keywords,
                                  QueryContext* ctx, TraceNode* parent) const {
  KM_SPAN(span, parent, "weights.build");
  span.Add("keywords", keywords.size());
  span.Add("terms", terminology_.size());
  Matrix w(keywords.size(), terminology_.size());
  const bool pruned_kernel = UsesPrunedKernel();
  std::atomic<size_t> candidate_cells{0};
  std::atomic<size_t> pruned_cells{0};
  // Rows are independent: each is either served from the cross-query
  // keyword-row cache or computed afresh, and lands in its own matrix row,
  // so the parallel build is byte-identical to the serial one — and the
  // pruned/batched row builder is byte-identical to the scalar per-cell
  // loop (every score clearing sw_floor is computed exactly; skipped SW
  // cells are provably below the floor, which zeroes them anyway).
  ParallelFor(options_.pool, keywords.size(), [&](size_t r) {
    auto row = row_cache_.Get(keywords[r]);
    if (row == nullptr) {
      auto fresh = std::make_shared<std::vector<double>>(terminology_.size());
      if (pruned_kernel) {
        RowBuildStats stats;
        BuildRowPruned(keywords[r], fresh.get(), &stats);
        candidate_cells.fetch_add(stats.candidate_cells,
                                  std::memory_order_relaxed);
        pruned_cells.fetch_add(stats.pruned_cells, std::memory_order_relaxed);
      } else {
        for (size_t c = 0; c < terminology_.size(); ++c) {
          (*fresh)[c] = Weight(keywords[r], terminology_.term(c));
        }
      }
      row_cache_.Put(keywords[r], fresh);
      row = std::move(fresh);
    } else {
      span.Add("row_cache_hits");
    }
    for (size_t c = 0; c < terminology_.size(); ++c) w.At(r, c) = (*row)[c];
    // Account one unit per keyword row. The build is never cut short: it
    // is polynomial work and every forward fallback still needs the matrix.
    if (ctx != nullptr) ctx->CheckPoint(QueryStage::kWeights);
  });
  if (pruned_kernel) {
    const size_t candidates = candidate_cells.load(std::memory_order_relaxed);
    const size_t pruned = pruned_cells.load(std::memory_order_relaxed);
    span.Add("sw_candidates", candidates);
    span.Add("sw_pruned", pruned);
    static Counter& candidates_total =
        MetricsRegistry::Default().CounterRef("km.weights.sw.candidates");
    static Counter& pruned_total =
        MetricsRegistry::Default().CounterRef("km.weights.sw.pruned");
    static Gauge& pruned_ratio =
        MetricsRegistry::Default().GaugeRef("km.weights.pruned_ratio");
    candidates_total.Increment(candidates);
    pruned_total.Increment(pruned);
    if (candidates + pruned > 0) {
      pruned_ratio.Set(static_cast<int64_t>(
          pruned * 1000 / (candidates + pruned)));
    }
  }
  // Downstream scoring (SW/VW → Hungarian, HMM emissions) requires finite,
  // non-negative intrinsic weights in [0, 1].
  KM_DCHECK([&w] {
    for (size_t r = 0; r < w.rows(); ++r) {
      for (size_t c = 0; c < w.cols(); ++c) {
        double v = w.At(r, c);
        if (!std::isfinite(v) || v < 0.0 || v > 1.0) return false;
      }
    }
    return true;
  }());
  // Fault-injection seam: a scripted callback may corrupt the matrix here
  // (NaN, negative, oversized cells) to prove the sanitizer below holds
  // the line.
  KM_FAILPOINT_VISIT("weights.build.corrupt", ctx, &w);
  // Sanitize: the assignment and HMM stages assume weights in [0, 1];
  // clamp anything a corrupted similarity (or failpoint) produced.
  for (size_t r = 0; r < w.rows(); ++r) {
    for (size_t c = 0; c < w.cols(); ++c) {
      double& v = w.At(r, c);
      if (!std::isfinite(v) || v < 0.0) {
        v = 0.0;
      } else if (v > 1.0) {
        v = 1.0;
      }
    }
  }
  return w;
}

const char* WeightProvenance::dominant() const {
  if (final_weight <= 0.0) return "none";
  if (is_schema_term) {
    return synonym > string_similarity ? "synonym" : "string";
  }
  return instance > pattern ? "instance" : "pattern";
}

double WeightMatrixBuilder::Weight(const std::string& keyword,
                                   const DatabaseTerm& term) const {
  double w = term.is_schema_term()
                 ? SchemaWeightImpl(keyword, term, nullptr)
                 : ValueWeightImpl(keyword, term, nullptr);
  KM_DCHECK(std::isfinite(w) && w >= 0.0 && w <= 1.0);
  return w;
}

WeightProvenance WeightMatrixBuilder::ExplainWeight(
    const std::string& keyword, const DatabaseTerm& term) const {
  WeightProvenance prov;
  prov.is_schema_term = term.is_schema_term();
  prov.final_weight = prov.is_schema_term
                          ? SchemaWeightImpl(keyword, term, &prov)
                          : ValueWeightImpl(keyword, term, &prov);
  return prov;
}

double WeightMatrixBuilder::SchemaWeight(const std::string& keyword,
                                         const DatabaseTerm& term) const {
  return SchemaWeightImpl(keyword, term, nullptr);
}

double WeightMatrixBuilder::FinishSchemaScore(double score,
                                              const DatabaseTerm& term,
                                              WeightProvenance* prov) const {
  // Noise floor with rescaling: edit-distance similarities routinely score
  // unrelated words around 0.4-0.5, so scores are re-mapped from
  // [floor, 1] onto [0, 1]; everything below the floor is zeroed.
  if (score < options_.sw_floor) return 0.0;
  score = std::min(score, 1.0);
  score = (score - options_.sw_floor) / (1.0 - options_.sw_floor);
  if (term.is_foreign_key) {
    score *= options_.fk_reference_penalty;
    if (prov != nullptr) prov->fk_penalized = true;
  }
  return score;
}

double WeightMatrixBuilder::SchemaWeightImpl(const std::string& keyword,
                                             const DatabaseTerm& term,
                                             WeightProvenance* prov) const {
  const std::string& name =
      term.kind == TermKind::kRelation ? term.relation : term.attribute;

  double score = 0.0;
  if (options_.use_string_similarity) {
    if (keyword.size() < 3) {
      // Edit-distance measures are pure noise on 1–2 character keywords
      // ("IT" vs "Id"); require an exact match there.
      score = ToLower(keyword) == ToLower(name) ? 1.0 : 0.0;
    } else {
      // The configured registry measure scores the cell; measure_ == null
      // is the composite "name" fast path (direct call, no dispatch).
      score = measure_ != nullptr ? measure_->Score(keyword, name)
                                  : NameSimilarity(keyword, name);
    }
    // For attribute terms, a keyword may also name the qualified concept
    // ("department name"): compare against "<relation> <attribute>" too.
    if (term.kind == TermKind::kAttribute && keyword.size() >= 3) {
      const std::string qualified = term.relation + " " + name;
      const double q = measure_ != nullptr ? measure_->Score(keyword, qualified)
                                           : NameSimilarity(keyword, qualified);
      score = std::max(score, q * 0.9);
    }
  } else if (ToLower(keyword) == ToLower(name)) {
    // Even with string similarity disabled, exact matches count (otherwise
    // the ablation disables the forward step entirely).
    score = 1.0;
  }
  if (prov != nullptr) prov->string_similarity = score;

  if (options_.use_synonyms) {
    // Compare identifier words of both sides through the thesaurus and keep
    // the best aligned average, mirroring NameSimilarity's shape.
    std::vector<std::string> kw = SplitIdentifierWords(keyword);
    std::vector<std::string> tw = SplitIdentifierWords(name);
    if (!kw.empty() && !tw.empty()) {
      double total = 0;
      for (const auto& a : kw) {
        double best = 0;
        for (const auto& b : tw) {
          best = std::max(best, thesaurus_->Similarity(a, b));
          // Inflected keywords still hit the thesaurus via their stem
          // ("publications" → "publication" ~ "article").
          best = std::max(best,
                          thesaurus_->Similarity(PorterStem(a), PorterStem(b)));
        }
        total += best;
      }
      double sem = total / static_cast<double>(std::max(kw.size(), tw.size()));
      if (prov != nullptr) prov->synonym = sem;
      score = std::max(score, sem);
    }
  }

  return FinishSchemaScore(score, term, prov);
}

void WeightMatrixBuilder::BuildRowPruned(const std::string& keyword,
                                         std::vector<double>* out,
                                         RowBuildStats* stats) const {
  const TermPruneIndex& idx = *prune_index_;
  const size_t n = terminology_.size();
  KM_DCHECK(out->size() == n);

  // Phase 1: batched string-similarity scores for every schema term. The
  // kernel returns the exact NameSimilarity for every index entry whose
  // score can reach its floor and 0 for entries provably below it; zeros
  // are safe because a component below sw_floor can never decide the
  // final max (anything it could win against is also below the floor, and
  // then the scalar path returns 0 as well).
  std::vector<double> strsim(n, 0.0);
  const bool exact_only = options_.use_string_similarity && keyword.size() < 3;
  std::string lowered_keyword;
  if (exact_only || !options_.use_string_similarity) {
    lowered_keyword = ToLower(keyword);
  }
  if (options_.use_string_similarity && !exact_only) {
    std::vector<double> entry_scores;
    NameMatchStats match_stats;
    idx.names.Match(keyword, entry_floors_, &entry_scores, nullptr,
                    &match_stats);
    stats->candidate_cells += match_stats.candidates;
    stats->pruned_cells += match_stats.pruned;
    for (size_t e = 0; e < entry_scores.size(); ++e) {
      const size_t t = idx.entry_term[e];
      const double contribution = idx.entry_qualified[e] != 0
                                      ? entry_scores[e] * 0.9
                                      : entry_scores[e];
      strsim[t] = std::max(strsim[t], contribution);
    }
  }

  // Keyword-side word/stem lists for the synonym channel, shared across
  // all schema terms of the row (the scalar path re-splits per cell).
  std::vector<std::string> kw_words;
  std::vector<std::string> kw_stems;
  if (options_.use_synonyms) {
    kw_words = SplitIdentifierWords(keyword);
    kw_stems.reserve(kw_words.size());
    for (const auto& a : kw_words) kw_stems.push_back(PorterStem(a));
  }

  DomainMemo domain_memo;
  for (size_t t = 0; t < n; ++t) {
    const DatabaseTerm& term = terminology_.term(t);
    if (!term.is_schema_term()) {
      (*out)[t] = ValueWeightImpl(keyword, term, nullptr, &domain_memo);
      continue;
    }
    double score = 0.0;
    if (options_.use_string_similarity) {
      score = exact_only
                  ? (lowered_keyword == idx.lowered_name[t] ? 1.0 : 0.0)
                  : strsim[t];
    } else if (lowered_keyword == idx.lowered_name[t]) {
      score = 1.0;
    }
    if (options_.use_synonyms) {
      // Identical arithmetic to SchemaWeightImpl's synonym loop, with the
      // splits and stems precomputed (same values, same order, same max
      // and sum sequence → the same doubles).
      const std::vector<std::string>& tw = idx.term_words[t];
      if (!kw_words.empty() && !tw.empty()) {
        const std::vector<std::string>& ts = idx.term_stems[t];
        double total = 0;
        for (size_t a = 0; a < kw_words.size(); ++a) {
          double best = 0;
          for (size_t b = 0; b < tw.size(); ++b) {
            best = std::max(best, thesaurus_->Similarity(kw_words[a], tw[b]));
            best = std::max(best, thesaurus_->Similarity(kw_stems[a], ts[b]));
          }
          total += best;
        }
        double sem =
            total / static_cast<double>(std::max(kw_words.size(), tw.size()));
        score = std::max(score, sem);
      }
    }
    (*out)[t] = FinishSchemaScore(score, term, nullptr);
  }
}

double WeightMatrixBuilder::ValueWeight(const std::string& keyword,
                                        const DatabaseTerm& term) const {
  return ValueWeightImpl(keyword, term, nullptr);
}

double WeightMatrixBuilder::ValueWeightImpl(const std::string& keyword,
                                            const DatabaseTerm& term,
                                            WeightProvenance* prov,
                                            DomainMemo* domain_memo) const {
  double score = 0.0;

  if (options_.use_domain_patterns) {
    if (domain_memo != nullptr) {
      // DomainCompatibility depends only on (keyword, type, tag); the
      // pruned row build memoizes it per keyword so each distinct
      // pattern-recognizer combination runs once per row, not once per
      // domain term. Pure function → the cached double is bit-identical.
      const uint32_t key = (static_cast<uint32_t>(term.type) << 8) |
                           static_cast<uint32_t>(term.tag);
      auto it = domain_memo->find(key);
      if (it != domain_memo->end()) {
        score = it->second;
      } else {
        score = DomainCompatibility(keyword, term.type, term.tag);
        domain_memo->emplace(key, score);
      }
    } else {
      score = DomainCompatibility(keyword, term.type, term.tag);
    }
  } else {
    // Pattern matching disabled: only storage-type compatibility at a flat
    // weight, so the ablation keeps the pipeline runnable.
    LiteralShape lit = DetectLiteralShape(keyword);
    switch (term.type) {
      case DataType::kInt:
        score = lit.is_int ? 0.5 : 0.0;
        break;
      case DataType::kReal:
        score = lit.is_real ? 0.5 : 0.0;
        break;
      case DataType::kBool:
        score = lit.is_bool ? 0.5 : 0.0;
        break;
      case DataType::kDate:
        score = lit.is_date ? 0.5 : 0.0;
        break;
      case DataType::kText:
        score = 0.35;
        break;
    }
  }
  if (prov != nullptr) prov->pattern = score;

  if (value_index_ != nullptr && !value_index_->empty()) {
    auto term_idx = terminology_.DomainTerm(term.relation, term.attribute);
    if (term_idx && *term_idx < value_index_->size()) {
      const ValueIndexEntry& vi = (*value_index_)[*term_idx];
      bool hit = false;
      // Full-text-style hit weight with a small frequency bonus: ties among
      // several exact hits break toward the attribute where the value is
      // common (matching DBMS full-text relevance behaviour).
      auto hit_weight = [this](size_t count) {
        double bonus = 0.04 * std::min(1.0, std::log2(1.0 + static_cast<double>(count)) / 12.0);
        // Cap only the frequency bonus at 0.99: a hit weight configured at
        // or above 0.99 (e.g. 1.0 = "exact hit is certain") must survive
        // unchanged rather than being silently pulled down.
        return std::max(options_.instance_hit_weight,
                        std::min(0.99, options_.instance_hit_weight + bonus));
      };
      if (term.type == DataType::kText || term.type == DataType::kDate) {
        std::string lk = ToLower(keyword);
        auto it = vi.text_values.find(lk);
        if (it != vi.text_values.end()) {
          const double hw = hit_weight(it->second);
          if (prov != nullptr) prov->instance = hw;
          score = std::max(score, hw);
          hit = true;
        } else if (lk.size() >= 4) {
          // Substring hit (full-text CONTAINS simulation). Bounded scan of
          // the distinct-value index, acceptable because the index holds
          // distinct values only.
          for (const auto& [v, count] : vi.text_values) {
            if (Contains(v, lk)) {
              if (prov != nullptr) prov->instance = options_.instance_partial_weight;
              score = std::max(score, options_.instance_partial_weight);
              hit = true;
              break;
            }
          }
        }
      } else {
        auto parsed = Value::Parse(keyword, term.type);
        if (parsed.ok() && !parsed->is_null()) {
          auto it = vi.other_values.find(*parsed);
          if (it != vi.other_values.end()) {
            const double hw = hit_weight(it->second);
            if (prov != nullptr) prov->instance = hw;
            score = std::max(score, hw);
            hit = true;
          }
        }
      }
      // Absence under full-text access is evidence against the mapping.
      if (!hit) {
        score *= options_.instance_miss_penalty;
        if (prov != nullptr) prov->instance_miss_penalized = true;
      }
    }
  }

  score = std::min(score, 1.0);
  if (term.is_foreign_key) {
    score *= options_.fk_reference_penalty;
    if (prov != nullptr) prov->fk_penalized = true;
  }
  return score;
}

}  // namespace km
