#include "metadata/weights.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/strings.h"
#include "text/recognizers.h"
#include "text/stemmer.h"
#include "text/similarity.h"

namespace km {

WeightMatrixBuilder::WeightMatrixBuilder(const Terminology& terminology,
                                         const Database* db, WeightOptions options)
    : terminology_(terminology),
      db_(db),
      options_(options),
      row_cache_(options.keyword_row_cache_capacity) {
  thesaurus_ = options_.thesaurus != nullptr ? options_.thesaurus : &BuiltinThesaurus();
  // Precompute per-domain-term value indexes so ValueWeight is O(1) per
  // lookup instead of scanning the instance for every (keyword, term) pair.
  owned_value_index_ = BuildValueIndex(terminology_, db_, options_);
  if (!owned_value_index_.empty()) value_index_ = &owned_value_index_;
}

WeightMatrixBuilder::WeightMatrixBuilder(
    const Terminology& terminology,
    const std::vector<ValueIndexEntry>* shared_index, WeightOptions options)
    : terminology_(terminology),
      db_(nullptr),
      options_(options),
      row_cache_(options.keyword_row_cache_capacity) {
  thesaurus_ = options_.thesaurus != nullptr ? options_.thesaurus : &BuiltinThesaurus();
  if (shared_index != nullptr && !shared_index->empty()) {
    value_index_ = shared_index;
  }
}

std::vector<ValueIndexEntry> WeightMatrixBuilder::BuildValueIndex(
    const Terminology& terminology, const Database* db,
    const WeightOptions& options) {
  std::vector<ValueIndexEntry> index;
  if (db == nullptr || !options.use_instance_vocabulary) return index;
  index.resize(terminology.size());
  for (size_t i = 0; i < terminology.size(); ++i) {
    const DatabaseTerm& term = terminology.term(i);
    if (term.kind != TermKind::kDomain) continue;
    const Table* table = db->FindTable(term.relation);
    if (table == nullptr) continue;
    auto idx = table->schema().AttributeIndex(term.attribute);
    if (!idx) continue;
    const AttributeDef& attr = table->schema().attribute(*idx);
    ValueIndexEntry& vi = index[i];
    for (const Row& row : table->rows()) {
      const Value& v = row[*idx];
      if (v.is_null()) continue;
      if (attr.type == DataType::kText || attr.type == DataType::kDate) {
        if (v.is_text()) ++vi.text_values[ToLower(v.AsText())];
      } else {
        ++vi.other_values[v];
      }
    }
  }
  return index;
}

Matrix WeightMatrixBuilder::Build(const std::vector<std::string>& keywords,
                                  QueryContext* ctx, TraceNode* parent) const {
  KM_SPAN(span, parent, "weights.build");
  span.Add("keywords", keywords.size());
  span.Add("terms", terminology_.size());
  Matrix w(keywords.size(), terminology_.size());
  // Rows are independent: each is either served from the cross-query
  // keyword-row cache or computed afresh, and lands in its own matrix row,
  // so the parallel build is byte-identical to the serial one.
  ParallelFor(options_.pool, keywords.size(), [&](size_t r) {
    auto row = row_cache_.Get(keywords[r]);
    if (row == nullptr) {
      auto fresh = std::make_shared<std::vector<double>>(terminology_.size());
      for (size_t c = 0; c < terminology_.size(); ++c) {
        (*fresh)[c] = Weight(keywords[r], terminology_.term(c));
      }
      row_cache_.Put(keywords[r], fresh);
      row = std::move(fresh);
    } else {
      span.Add("row_cache_hits");
    }
    for (size_t c = 0; c < terminology_.size(); ++c) w.At(r, c) = (*row)[c];
    // Account one unit per keyword row. The build is never cut short: it
    // is polynomial work and every forward fallback still needs the matrix.
    if (ctx != nullptr) ctx->CheckPoint(QueryStage::kWeights);
  });
  // Downstream scoring (SW/VW → Hungarian, HMM emissions) requires finite,
  // non-negative intrinsic weights in [0, 1].
  KM_DCHECK([&w] {
    for (size_t r = 0; r < w.rows(); ++r) {
      for (size_t c = 0; c < w.cols(); ++c) {
        double v = w.At(r, c);
        if (!std::isfinite(v) || v < 0.0 || v > 1.0) return false;
      }
    }
    return true;
  }());
  // Fault-injection seam: a scripted callback may corrupt the matrix here
  // (NaN, negative, oversized cells) to prove the sanitizer below holds
  // the line.
  KM_FAILPOINT_VISIT("weights.build.corrupt", ctx, &w);
  // Sanitize: the assignment and HMM stages assume weights in [0, 1];
  // clamp anything a corrupted similarity (or failpoint) produced.
  for (size_t r = 0; r < w.rows(); ++r) {
    for (size_t c = 0; c < w.cols(); ++c) {
      double& v = w.At(r, c);
      if (!std::isfinite(v) || v < 0.0) {
        v = 0.0;
      } else if (v > 1.0) {
        v = 1.0;
      }
    }
  }
  return w;
}

const char* WeightProvenance::dominant() const {
  if (final_weight <= 0.0) return "none";
  if (is_schema_term) {
    return synonym > string_similarity ? "synonym" : "string";
  }
  return instance > pattern ? "instance" : "pattern";
}

double WeightMatrixBuilder::Weight(const std::string& keyword,
                                   const DatabaseTerm& term) const {
  double w = term.is_schema_term()
                 ? SchemaWeightImpl(keyword, term, nullptr)
                 : ValueWeightImpl(keyword, term, nullptr);
  KM_DCHECK(std::isfinite(w) && w >= 0.0 && w <= 1.0);
  return w;
}

WeightProvenance WeightMatrixBuilder::ExplainWeight(
    const std::string& keyword, const DatabaseTerm& term) const {
  WeightProvenance prov;
  prov.is_schema_term = term.is_schema_term();
  prov.final_weight = prov.is_schema_term
                          ? SchemaWeightImpl(keyword, term, &prov)
                          : ValueWeightImpl(keyword, term, &prov);
  return prov;
}

double WeightMatrixBuilder::SchemaWeight(const std::string& keyword,
                                         const DatabaseTerm& term) const {
  return SchemaWeightImpl(keyword, term, nullptr);
}

double WeightMatrixBuilder::SchemaWeightImpl(const std::string& keyword,
                                             const DatabaseTerm& term,
                                             WeightProvenance* prov) const {
  const std::string& name =
      term.kind == TermKind::kRelation ? term.relation : term.attribute;

  double score = 0.0;
  if (options_.use_string_similarity) {
    if (keyword.size() < 3) {
      // Edit-distance measures are pure noise on 1–2 character keywords
      // ("IT" vs "Id"); require an exact match there.
      score = ToLower(keyword) == ToLower(name) ? 1.0 : 0.0;
    } else {
      score = NameSimilarity(keyword, name);
    }
    // For attribute terms, a keyword may also name the qualified concept
    // ("department name"): compare against "<relation> <attribute>" too.
    if (term.kind == TermKind::kAttribute && keyword.size() >= 3) {
      score = std::max(score, NameSimilarity(keyword, term.relation + " " + name) * 0.9);
    }
  } else if (ToLower(keyword) == ToLower(name)) {
    // Even with string similarity disabled, exact matches count (otherwise
    // the ablation disables the forward step entirely).
    score = 1.0;
  }
  if (prov != nullptr) prov->string_similarity = score;

  if (options_.use_synonyms) {
    // Compare identifier words of both sides through the thesaurus and keep
    // the best aligned average, mirroring NameSimilarity's shape.
    std::vector<std::string> kw = SplitIdentifierWords(keyword);
    std::vector<std::string> tw = SplitIdentifierWords(name);
    if (!kw.empty() && !tw.empty()) {
      double total = 0;
      for (const auto& a : kw) {
        double best = 0;
        for (const auto& b : tw) {
          best = std::max(best, thesaurus_->Similarity(a, b));
          // Inflected keywords still hit the thesaurus via their stem
          // ("publications" → "publication" ~ "article").
          best = std::max(best,
                          thesaurus_->Similarity(PorterStem(a), PorterStem(b)));
        }
        total += best;
      }
      double sem = total / static_cast<double>(std::max(kw.size(), tw.size()));
      if (prov != nullptr) prov->synonym = sem;
      score = std::max(score, sem);
    }
  }

  // Noise floor with rescaling: edit-distance similarities routinely score
  // unrelated words around 0.4-0.5, so scores are re-mapped from
  // [floor, 1] onto [0, 1]; everything below the floor is zeroed.
  if (score < options_.sw_floor) return 0.0;
  score = std::min(score, 1.0);
  score = (score - options_.sw_floor) / (1.0 - options_.sw_floor);
  if (term.is_foreign_key) {
    score *= options_.fk_reference_penalty;
    if (prov != nullptr) prov->fk_penalized = true;
  }
  return score;
}

double WeightMatrixBuilder::ValueWeight(const std::string& keyword,
                                        const DatabaseTerm& term) const {
  return ValueWeightImpl(keyword, term, nullptr);
}

double WeightMatrixBuilder::ValueWeightImpl(const std::string& keyword,
                                            const DatabaseTerm& term,
                                            WeightProvenance* prov) const {
  double score = 0.0;

  if (options_.use_domain_patterns) {
    score = DomainCompatibility(keyword, term.type, term.tag);
  } else {
    // Pattern matching disabled: only storage-type compatibility at a flat
    // weight, so the ablation keeps the pipeline runnable.
    LiteralShape lit = DetectLiteralShape(keyword);
    switch (term.type) {
      case DataType::kInt:
        score = lit.is_int ? 0.5 : 0.0;
        break;
      case DataType::kReal:
        score = lit.is_real ? 0.5 : 0.0;
        break;
      case DataType::kBool:
        score = lit.is_bool ? 0.5 : 0.0;
        break;
      case DataType::kDate:
        score = lit.is_date ? 0.5 : 0.0;
        break;
      case DataType::kText:
        score = 0.35;
        break;
    }
  }
  if (prov != nullptr) prov->pattern = score;

  if (value_index_ != nullptr && !value_index_->empty()) {
    auto term_idx = terminology_.DomainTerm(term.relation, term.attribute);
    if (term_idx && *term_idx < value_index_->size()) {
      const ValueIndexEntry& vi = (*value_index_)[*term_idx];
      bool hit = false;
      // Full-text-style hit weight with a small frequency bonus: ties among
      // several exact hits break toward the attribute where the value is
      // common (matching DBMS full-text relevance behaviour).
      auto hit_weight = [this](size_t count) {
        double bonus = 0.04 * std::min(1.0, std::log2(1.0 + static_cast<double>(count)) / 12.0);
        return std::min(0.99, options_.instance_hit_weight + bonus);
      };
      if (term.type == DataType::kText || term.type == DataType::kDate) {
        std::string lk = ToLower(keyword);
        auto it = vi.text_values.find(lk);
        if (it != vi.text_values.end()) {
          const double hw = hit_weight(it->second);
          if (prov != nullptr) prov->instance = hw;
          score = std::max(score, hw);
          hit = true;
        } else if (lk.size() >= 4) {
          // Substring hit (full-text CONTAINS simulation). Bounded scan of
          // the distinct-value index, acceptable because the index holds
          // distinct values only.
          for (const auto& [v, count] : vi.text_values) {
            if (Contains(v, lk)) {
              if (prov != nullptr) prov->instance = options_.instance_partial_weight;
              score = std::max(score, options_.instance_partial_weight);
              hit = true;
              break;
            }
          }
        }
      } else {
        auto parsed = Value::Parse(keyword, term.type);
        if (parsed.ok() && !parsed->is_null()) {
          auto it = vi.other_values.find(*parsed);
          if (it != vi.other_values.end()) {
            const double hw = hit_weight(it->second);
            if (prov != nullptr) prov->instance = hw;
            score = std::max(score, hw);
            hit = true;
          }
        }
      }
      // Absence under full-text access is evidence against the mapping.
      if (!hit) {
        score *= options_.instance_miss_penalty;
        if (prov != nullptr) prov->instance_miss_penalized = true;
      }
    }
  }

  score = std::min(score, 1.0);
  if (term.is_foreign_key) {
    score *= options_.fk_reference_penalty;
    if (prov != nullptr) prov->fk_penalized = true;
  }
  return score;
}

}  // namespace km
