#include "metadata/term.h"

namespace km {

const char* TermKindName(TermKind kind) {
  switch (kind) {
    case TermKind::kRelation: return "Relation";
    case TermKind::kAttribute: return "Attribute";
    case TermKind::kDomain: return "Domain";
  }
  return "Unknown";
}

std::string DatabaseTerm::ToString() const {
  switch (kind) {
    case TermKind::kRelation:
      return relation;
    case TermKind::kAttribute:
      return relation + "." + attribute;
    case TermKind::kDomain:
      return "Dom(" + relation + "." + attribute + ")";
  }
  return "?";
}

Terminology::Terminology(const DatabaseSchema& schema) {
  for (const RelationSchema& rel : schema.relations()) {
    DatabaseTerm rt;
    rt.kind = TermKind::kRelation;
    rt.relation = rel.name();
    index_[Key(rt.kind, rt.relation, "")] = terms_.size();
    terms_.push_back(rt);
    for (const AttributeDef& attr : rel.attributes()) {
      DatabaseTerm at;
      at.kind = TermKind::kAttribute;
      at.relation = rel.name();
      at.attribute = attr.name;
      at.type = attr.type;
      at.tag = attr.tag;
      at.is_foreign_key = attr.is_foreign_key;
      index_[Key(at.kind, at.relation, at.attribute)] = terms_.size();
      terms_.push_back(at);

      DatabaseTerm dt = at;
      dt.kind = TermKind::kDomain;
      index_[Key(dt.kind, dt.relation, dt.attribute)] = terms_.size();
      terms_.push_back(dt);
    }
  }
}

std::string Terminology::Key(TermKind kind, const std::string& rel,
                             const std::string& attr) const {
  return std::to_string(static_cast<int>(kind)) + "\x1f" + rel + "\x1f" + attr;
}

std::optional<size_t> Terminology::RelationTerm(const std::string& relation) const {
  auto it = index_.find(Key(TermKind::kRelation, relation, ""));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<size_t> Terminology::AttributeTerm(const std::string& relation,
                                                 const std::string& attribute) const {
  auto it = index_.find(Key(TermKind::kAttribute, relation, attribute));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<size_t> Terminology::DomainTerm(const std::string& relation,
                                              const std::string& attribute) const {
  auto it = index_.find(Key(TermKind::kDomain, relation, attribute));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<size_t> Terminology::TermsOfRelation(const std::string& relation) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < terms_.size(); ++i) {
    if (terms_[i].relation == relation) out.push_back(i);
  }
  return out;
}

std::optional<size_t> Terminology::PairedTerm(size_t term_index) const {
  const DatabaseTerm& t = terms_[term_index];
  if (t.kind == TermKind::kAttribute) return DomainTerm(t.relation, t.attribute);
  if (t.kind == TermKind::kDomain) return AttributeTerm(t.relation, t.attribute);
  return std::nullopt;
}

}  // namespace km
