#include "metadata/configuration.h"

#include <unordered_set>

namespace km {

std::string Configuration::ToString(const std::vector<std::string>& keywords,
                                    const Terminology& terminology) const {
  std::string out;
  for (size_t i = 0; i < term_for_keyword.size(); ++i) {
    if (i > 0) out += ", ";
    if (i < keywords.size()) {
      out += keywords[i];
    } else {
      out += "k";
      out += std::to_string(i + 1);
    }
    out += "→";
    out += terminology.term(term_for_keyword[i]).ToString();
  }
  return out;
}

bool Configuration::IsInjective() const {
  std::unordered_set<size_t> seen;
  for (size_t t : term_for_keyword) {
    if (!seen.insert(t).second) return false;
  }
  return true;
}

}  // namespace km
