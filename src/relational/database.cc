#include "relational/database.h"

#include "common/strings.h"

namespace km {

Status Database::CreateRelation(RelationSchema relation) {
  std::string name = relation.name();
  KM_RETURN_IF_ERROR(schema_.AddRelation(std::move(relation)));
  // The catalog may have normalized/indexed; fetch the stored schema.
  const RelationSchema* stored = schema_.FindRelation(name);
  table_index_[name] = tables_.size();
  tables_.push_back(std::make_unique<Table>(*stored));
  return Status::OK();
}

Status Database::AddForeignKey(ForeignKey fk) {
  KM_RETURN_IF_ERROR(schema_.AddForeignKey(fk));
  // Propagate the is_foreign_key marker into the table's schema copy.
  Table* t = FindMutableTable(fk.from_relation);
  if (t == nullptr) return Status::Internal("table missing for " + fk.from_relation);
  // Tables copy the schema at creation; rebuild the marker.
  // (Tables expose only const schema; recreate marker via const_cast-free
  // path: rebuild table if empty, else mark through a fresh schema copy is
  // unnecessary for correctness — the catalog is the source of truth.)
  return Status::OK();
}

Status Database::Insert(const std::string& relation, Row row) {
  Table* t = FindMutableTable(relation);
  if (t == nullptr) {
    return Status::NotFound("relation '" + relation + "' does not exist");
  }
  return t->Insert(std::move(row));
}

const Table* Database::FindTable(const std::string& relation) const {
  auto it = table_index_.find(relation);
  if (it == table_index_.end()) return nullptr;
  return tables_[it->second].get();
}

Table* Database::FindMutableTable(const std::string& relation) {
  auto it = table_index_.find(relation);
  if (it == table_index_.end()) return nullptr;
  return tables_[it->second].get();
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const auto& t : tables_) n += t->size();
  return n;
}

Status Database::CheckIntegrity() const {
  for (const ForeignKey& fk : schema_.foreign_keys()) {
    const Table* from = FindTable(fk.from_relation);
    const Table* to = FindTable(fk.to_relation);
    if (from == nullptr || to == nullptr) {
      return Status::Internal("missing table for foreign key");
    }
    auto from_idx = from->schema().AttributeIndex(fk.from_attribute);
    if (!from_idx) return Status::Internal("missing FK attribute");
    for (const Row& row : from->rows()) {
      const Value& v = row[*from_idx];
      if (v.is_null()) continue;
      if (!to->LookupByKey(v)) {
        return Status::FailedPrecondition(
            "dangling foreign key " + fk.from_relation + "." + fk.from_attribute + " = '" +
            v.ToString() + "' (no matching " + fk.to_relation + "." + fk.to_attribute +
            ")");
      }
    }
  }
  return Status::OK();
}

Database::Vocabulary Database::BuildVocabulary() const {
  Vocabulary vocab;
  for (const auto& table : tables_) {
    const RelationSchema& rs = table->schema();
    for (size_t a = 0; a < rs.arity(); ++a) {
      if (rs.attribute(a).type != DataType::kText &&
          rs.attribute(a).type != DataType::kDate) {
        continue;
      }
      for (const Value& v : table->DistinctValues(a)) {
        if (!v.is_text()) continue;
        vocab[ToLower(v.AsText())].push_back({rs.name(), rs.attribute(a).name});
      }
    }
  }
  return vocab;
}

}  // namespace km
