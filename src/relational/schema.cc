#include "relational/schema.h"

namespace km {

const char* DomainTagName(DomainTag tag) {
  switch (tag) {
    case DomainTag::kNone: return "None";
    case DomainTag::kIdentifier: return "Identifier";
    case DomainTag::kPersonName: return "PersonName";
    case DomainTag::kProperNoun: return "ProperNoun";
    case DomainTag::kCountryCode: return "CountryCode";
    case DomainTag::kCountryName: return "CountryName";
    case DomainTag::kCityName: return "CityName";
    case DomainTag::kPhone: return "Phone";
    case DomainTag::kEmail: return "Email";
    case DomainTag::kUrl: return "Url";
    case DomainTag::kYear: return "Year";
    case DomainTag::kDate: return "Date";
    case DomainTag::kMoney: return "Money";
    case DomainTag::kQuantity: return "Quantity";
    case DomainTag::kAddress: return "Address";
    case DomainTag::kFreeText: return "FreeText";
  }
  return "Unknown";
}

void RelationSchema::Reindex() {
  index_.clear();
  for (size_t i = 0; i < attributes_.size(); ++i) {
    index_[attributes_[i].name] = i;
  }
}

std::optional<size_t> RelationSchema::AttributeIndex(const std::string& attr) const {
  auto it = index_.find(attr);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<size_t> RelationSchema::PrimaryKeyIndex() const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].is_primary_key) return i;
  }
  return std::nullopt;
}

void RelationSchema::MarkForeignKey(const std::string& attr) {
  auto idx = AttributeIndex(attr);
  if (idx) attributes_[*idx].is_foreign_key = true;
}

Status DatabaseSchema::AddRelation(RelationSchema relation) {
  if (relation.name().empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  if (relation_index_.count(relation.name()) != 0) {
    return Status::AlreadyExists("relation '" + relation.name() + "' already exists");
  }
  // Duplicate attribute names are detectable via the index size.
  std::unordered_map<std::string, int> seen;
  for (const auto& a : relation.attributes()) {
    if (a.name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty in relation '" +
                                     relation.name() + "'");
    }
    if (++seen[a.name] > 1) {
      return Status::AlreadyExists("duplicate attribute '" + a.name + "' in relation '" +
                                   relation.name() + "'");
    }
  }
  relation_index_[relation.name()] = relations_.size();
  relations_.push_back(std::move(relation));
  return Status::OK();
}

Status DatabaseSchema::AddForeignKey(ForeignKey fk) {
  auto from_it = relation_index_.find(fk.from_relation);
  if (from_it == relation_index_.end()) {
    return Status::NotFound("foreign key source relation '" + fk.from_relation +
                            "' does not exist");
  }
  auto to_it = relation_index_.find(fk.to_relation);
  if (to_it == relation_index_.end()) {
    return Status::NotFound("foreign key target relation '" + fk.to_relation +
                            "' does not exist");
  }
  RelationSchema& from_rel = relations_[from_it->second];
  RelationSchema& to_rel = relations_[to_it->second];
  if (!from_rel.AttributeIndex(fk.from_attribute)) {
    return Status::NotFound("attribute '" + fk.from_attribute + "' not in relation '" +
                            fk.from_relation + "'");
  }
  auto to_attr = to_rel.AttributeIndex(fk.to_attribute);
  if (!to_attr) {
    return Status::NotFound("attribute '" + fk.to_attribute + "' not in relation '" +
                            fk.to_relation + "'");
  }
  if (!to_rel.attribute(*to_attr).is_primary_key) {
    return Status::InvalidArgument("foreign key target " + fk.to_relation + "." +
                                   fk.to_attribute + " is not a primary key");
  }
  if (fk.from_relation == fk.to_relation &&
      fk.from_attribute == fk.to_attribute) {
    // An attribute referencing itself would put a Dom(A)-Dom(A) self-loop in
    // the schema graph, which the graph (correctly) treats as an internal
    // invariant violation. Reject it here, at the external-input boundary.
    return Status::InvalidArgument("foreign key " + fk.from_relation + "." +
                                   fk.from_attribute +
                                   " cannot reference itself");
  }
  for (const auto& existing : foreign_keys_) {
    if (existing == fk) {
      return Status::AlreadyExists("duplicate foreign key");
    }
  }
  from_rel.MarkForeignKey(fk.from_attribute);
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

const RelationSchema* DatabaseSchema::FindRelation(const std::string& name) const {
  auto it = relation_index_.find(name);
  if (it == relation_index_.end()) return nullptr;
  return &relations_[it->second];
}

size_t DatabaseSchema::TerminologySize() const {
  size_t terms = relations_.size();
  for (const auto& r : relations_) terms += 2 * r.arity();
  return terms;
}

std::vector<ForeignKey> DatabaseSchema::ForeignKeysOf(const std::string& relation) const {
  std::vector<ForeignKey> out;
  for (const auto& fk : foreign_keys_) {
    if (fk.from_relation == relation || fk.to_relation == relation) out.push_back(fk);
  }
  return out;
}

bool DatabaseSchema::DirectlyJoinable(const std::string& r1, const std::string& r2) const {
  for (const auto& fk : foreign_keys_) {
    if ((fk.from_relation == r1 && fk.to_relation == r2) ||
        (fk.from_relation == r2 && fk.to_relation == r1)) {
      return true;
    }
  }
  return false;
}

}  // namespace km
