// A database: a catalog plus one in-memory table per relation.

#ifndef KM_RELATIONAL_DATABASE_H_
#define KM_RELATIONAL_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace km {

/// An in-memory relational database.
///
/// Owns the catalog (DatabaseSchema) and the relation instances. All
/// mutation goes through the database so that tables always exist for every
/// relation of the catalog.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  // Movable, not copyable (tables can be large).
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }
  const DatabaseSchema& schema() const { return schema_; }

  /// Adds a relation to the catalog and creates its (empty) table.
  Status CreateRelation(RelationSchema relation);

  /// Adds a referential constraint to the catalog.
  Status AddForeignKey(ForeignKey fk);

  /// Inserts a row into the named relation.
  Status Insert(const std::string& relation, Row row);

  /// Table of the named relation (nullptr if absent).
  const Table* FindTable(const std::string& relation) const;
  Table* FindMutableTable(const std::string& relation);

  /// Total number of tuples across all relations.
  size_t TotalRows() const;

  /// Verifies referential integrity: every non-NULL foreign-key value must
  /// exist as a primary key in the referenced relation. Returns the first
  /// violation found.
  Status CheckIntegrity() const;

  /// Collects all distinct text values of the instance together with the
  /// attributes they appear in. Used by the tokenizer (multi-word keyword
  /// folding) and by instance-backed value weights.
  ///
  /// The returned map keys are lower-cased values; each entry lists
  /// (relation, attribute) pairs.
  struct VocabularyEntry {
    std::string relation;
    std::string attribute;
  };
  using Vocabulary = std::unordered_map<std::string, std::vector<VocabularyEntry>>;
  Vocabulary BuildVocabulary() const;

 private:
  std::string name_;
  DatabaseSchema schema_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, size_t> table_index_;
};

}  // namespace km

#endif  // KM_RELATIONAL_DATABASE_H_
