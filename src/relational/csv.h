// CSV import/export for tables, databases and query results.
//
// RFC-4180-style quoting: fields containing commas, quotes or newlines are
// double-quoted; embedded quotes are doubled. NULL is encoded as an empty
// unquoted field (an explicitly quoted empty string "" is the empty text
// value).

#ifndef KM_RELATIONAL_CSV_H_
#define KM_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"
#include "relational/table.h"

namespace km {

/// Escapes one CSV field.
std::string CsvEscape(const std::string& field);

/// Splits one CSV line into fields; `was_quoted[i]` tells whether field i
/// was written in quotes (distinguishes NULL from empty text).
StatusOr<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                                std::vector<bool>* was_quoted);

/// Writes a table with a header row of attribute names.
Status WriteTableCsv(const Table& table, std::ostream* out);

/// Loads rows into an existing relation of `db`. The first line must be a
/// header matching the relation's attribute names (any order); values are
/// parsed per the schema's types.
Status LoadTableCsv(Database* db, const std::string& relation, std::istream* in);

}  // namespace km

#endif  // KM_RELATIONAL_CSV_H_
