// Relational schemas: attributes, relations, referential constraints and
// the database catalog.
//
// The metadata layer of the paper operates exclusively on the objects
// defined here: relation names, attribute names, attribute domains, and
// key/foreign-key relationships.

#ifndef KM_RELATIONAL_SCHEMA_H_
#define KM_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace km {

/// Semantic category of an attribute's domain, used by the metadata layer
/// to match keywords against domains without reading the instance.
///
/// This encodes the "regular expression / domain description" metadata the
/// paper attaches to attributes (e.g. a phone-number column is kPhone even
/// though its storage type is TEXT).
enum class DomainTag {
  kNone = 0,       ///< No special semantics; match by storage type only.
  kIdentifier,     ///< Opaque keys/codes ("p1", "cs34", surrogate ids).
  kPersonName,     ///< Human names.
  kProperNoun,     ///< Names of named entities (orgs, places, titles...).
  kCountryCode,    ///< ISO-like 2/3-letter country codes.
  kCountryName,    ///< Full country names.
  kCityName,       ///< City names.
  kPhone,          ///< Phone numbers.
  kEmail,          ///< E-mail addresses.
  kUrl,            ///< URLs.
  kYear,           ///< 4-digit years.
  kDate,           ///< Calendar dates.
  kMoney,          ///< Monetary amounts.
  kQuantity,       ///< General numeric quantities (population, area, ...).
  kAddress,        ///< Street addresses.
  kFreeText,       ///< Titles, abstracts, descriptions.
};

/// Name of a domain tag ("PersonName", "Phone", ...).
const char* DomainTagName(DomainTag tag);

/// Definition of one attribute of a relation.
struct AttributeDef {
  std::string name;
  DataType type = DataType::kText;
  DomainTag tag = DomainTag::kNone;
  bool is_primary_key = false;
  /// Attribute participates in some foreign key (filled by the catalog).
  bool is_foreign_key = false;
};

/// A single-attribute referential constraint:
/// `from_relation.from_attribute` references `to_relation.to_attribute`.
///
/// Multi-attribute keys are not supported (the paper makes the same
/// simplification; surrogate keys substitute for composite keys).
struct ForeignKey {
  std::string from_relation;
  std::string from_attribute;
  std::string to_relation;
  std::string to_attribute;

  bool operator==(const ForeignKey& o) const {
    return from_relation == o.from_relation && from_attribute == o.from_attribute &&
           to_relation == o.to_relation && to_attribute == o.to_attribute;
  }
};

/// Schema of one relation: a name plus an ordered list of attributes.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<AttributeDef> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {
    Reindex();
  }

  const std::string& name() const { return name_; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }
  size_t arity() const { return attributes_.size(); }

  /// Index of the named attribute, or nullopt.
  std::optional<size_t> AttributeIndex(const std::string& attr) const;

  /// The named attribute definition; must exist.
  const AttributeDef& attribute(size_t i) const { return attributes_[i]; }

  /// Index of the primary-key attribute, if the relation has one.
  std::optional<size_t> PrimaryKeyIndex() const;

  /// Marks the named attribute as a foreign key (catalog bookkeeping).
  void MarkForeignKey(const std::string& attr);

 private:
  void Reindex();

  std::string name_;
  std::vector<AttributeDef> attributes_;
  std::unordered_map<std::string, size_t> index_;
};

/// The database catalog: relation schemas plus referential constraints.
class DatabaseSchema {
 public:
  DatabaseSchema() = default;

  /// Adds a relation schema. Fails on duplicate relation names or duplicate
  /// attribute names within the relation.
  Status AddRelation(RelationSchema relation);

  /// Adds a foreign key. All referenced relations/attributes must exist and
  /// the target attribute must be the primary key of the target relation.
  Status AddForeignKey(ForeignKey fk);

  const std::vector<RelationSchema>& relations() const { return relations_; }
  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// Looks up a relation schema by name (nullptr if absent).
  const RelationSchema* FindRelation(const std::string& name) const;

  /// Number of database terms |T(D)| = 2 * (sum of arities) + |relations|:
  /// every relation name, attribute name, and attribute domain is a term.
  size_t TerminologySize() const;

  /// All foreign keys incident to `relation` (either side).
  std::vector<ForeignKey> ForeignKeysOf(const std::string& relation) const;

  /// True iff two relations are connected by some foreign key (either
  /// direction).
  bool DirectlyJoinable(const std::string& r1, const std::string& r2) const;

 private:
  std::vector<RelationSchema> relations_;
  std::vector<ForeignKey> foreign_keys_;
  std::unordered_map<std::string, size_t> relation_index_;
};

}  // namespace km

#endif  // KM_RELATIONAL_SCHEMA_H_
