#include "relational/table.h"

namespace km {

Status Table::Insert(Row row) {
  if (row.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema arity " +
        std::to_string(schema_.arity()) + " of relation '" + schema_.name() + "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!row[i].CompatibleWith(schema_.attribute(i).type)) {
      return Status::InvalidArgument(
          "value '" + row[i].ToString() + "' incompatible with " + schema_.name() + "." +
          schema_.attribute(i).name + " of type " +
          DataTypeName(schema_.attribute(i).type));
    }
  }
  if (pk_index_) {
    const Value& key = row[*pk_index_];
    if (key.is_null()) {
      return Status::InvalidArgument("NULL primary key in relation '" + schema_.name() +
                                     "'");
    }
    if (pk_map_.count(key) != 0) {
      return Status::AlreadyExists("duplicate primary key '" + key.ToString() +
                                   "' in relation '" + schema_.name() + "'");
    }
    pk_map_[key] = rows_.size();
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

std::optional<size_t> Table::LookupByKey(const Value& key) const {
  auto it = pk_map_.find(key);
  if (it == pk_map_.end()) return std::nullopt;
  return it->second;
}

std::vector<Value> Table::DistinctValues(size_t attr_index) const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (const Row& row : rows_) {
    const Value& v = row[attr_index];
    if (v.is_null()) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

bool Table::ContainsValue(size_t attr_index, const Value& v) const {
  for (const Row& row : rows_) {
    if (row[attr_index] == v) return true;
  }
  return false;
}

}  // namespace km
