#include "relational/value.h"

#include <cmath>
#include <cstdlib>
#include <functional>

#include "common/strings.h"

namespace km {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt:
      return "INT";
    case DataType::kReal:
      return "REAL";
    case DataType::kText:
      return "TEXT";
    case DataType::kBool:
      return "BOOL";
    case DataType::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

Value Value::Date(std::string iso) {
  Value v{Rep(std::move(iso))};
  v.is_date_ = true;
  return v;
}

bool Value::CompatibleWith(DataType type) const {
  if (is_null()) return true;
  switch (type) {
    case DataType::kInt:
      return is_int();
    case DataType::kReal:
      return is_real() || is_int();
    case DataType::kText:
      return is_text() && !is_date_;
    case DataType::kBool:
      return is_bool();
    case DataType::kDate:
      return is_text() && is_date_;
  }
  return false;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(AsInt());
  if (is_real()) {
    std::string s = StrFormat("%g", AsReal());
    return s;
  }
  if (is_bool()) return AsBool() ? "true" : "false";
  return AsText();
}

std::string Value::ToSqlLiteral() const {
  if (is_null()) return "NULL";
  if (is_text()) {
    std::string out = "'";
    for (char c : AsText()) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += "'";
    return out;
  }
  return ToString();
}

StatusOr<Value> Value::Parse(const std::string& text, DataType type) {
  if (text.empty()) return Value::Null();
  switch (type) {
    case DataType::kInt: {
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("not an integer: '" + text + "'");
      }
      return Value::Int(v);
    }
    case DataType::kReal: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument("not a real: '" + text + "'");
      }
      return Value::Real(v);
    }
    case DataType::kBool: {
      std::string lower = ToLower(text);
      if (lower == "true" || lower == "1" || lower == "t") return Value::Bool(true);
      if (lower == "false" || lower == "0" || lower == "f") return Value::Bool(false);
      return Status::InvalidArgument("not a bool: '" + text + "'");
    }
    case DataType::kDate:
      return Value::Date(text);
    case DataType::kText:
      return Value::Text(text);
  }
  return Status::InvalidArgument("unknown data type");
}

namespace {

// Alternative rank used to order values of different dynamic types.
int AltRank(const Value& v) {
  if (v.is_null()) return 0;
  if (v.is_int() || v.is_real()) return 1;
  if (v.is_text()) return 2;
  return 3;  // bool
}

double AsNumeric(const Value& v) {
  return v.is_int() ? static_cast<double>(v.AsInt()) : v.AsReal();
}

}  // namespace

bool Value::operator<(const Value& other) const {
  int ra = AltRank(*this), rb = AltRank(other);
  if (ra != rb) return ra < rb;
  if (is_null()) return false;  // both null: equal
  if (ra == 1) return AsNumeric(*this) < AsNumeric(other);
  if (ra == 2) return AsText() < other.AsText();
  return AsBool() < other.AsBool();
}

bool Value::operator==(const Value& other) const {
  int ra = AltRank(*this), rb = AltRank(other);
  if (ra != rb) return false;
  if (is_null()) return true;
  if (ra == 1) return AsNumeric(*this) == AsNumeric(other);
  if (ra == 2) return AsText() == other.AsText();
  return AsBool() == other.AsBool();
}

size_t Value::Hash() const {
  if (is_null()) return 0x9E3779B9u;
  if (is_int() || is_real()) {
    double d = AsNumeric(*this);
    // Normalize -0.0 so hash matches operator==.
    if (d == 0.0) d = 0.0;
    return std::hash<double>{}(d);
  }
  if (is_text()) return std::hash<std::string>{}(AsText());
  return std::hash<bool>{}(AsBool());
}

}  // namespace km
