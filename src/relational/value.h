// Typed values and the data-type system of the relational substrate.

#ifndef KM_RELATIONAL_VALUE_H_
#define KM_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace km {

/// Logical data types supported by the relational substrate.
///
/// kDate values are stored as ISO-8601 text ("YYYY-MM-DD") but carry the
/// kDate type so recognizers and the metadata layer can distinguish them
/// from free text.
enum class DataType {
  kInt = 0,
  kReal = 1,
  kText = 2,
  kBool = 3,
  kDate = 4,
};

/// Name of a data type ("INT", "REAL", "TEXT", "BOOL", "DATE").
const char* DataTypeName(DataType type);

/// A single attribute value: NULL or a typed scalar.
class Value {
 public:
  /// Constructs a SQL NULL.
  Value() : rep_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Rep(v)); }
  static Value Real(double v) { return Value(Rep(v)); }
  static Value Text(std::string v) { return Value(Rep(std::move(v))); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  /// A date value; `iso` must be "YYYY-MM-DD" (not validated here).
  static Value Date(std::string iso);

  bool is_null() const { return std::holds_alternative<std::monostate>(rep_); }
  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_real() const { return std::holds_alternative<double>(rep_); }
  bool is_text() const { return std::holds_alternative<std::string>(rep_); }
  bool is_bool() const { return std::holds_alternative<bool>(rep_); }
  bool is_date() const { return is_date_; }

  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  double AsReal() const { return std::get<double>(rep_); }
  const std::string& AsText() const { return std::get<std::string>(rep_); }
  bool AsBool() const { return std::get<bool>(rep_); }

  /// True iff this value's dynamic type is compatible with `type`
  /// (NULL is compatible with everything; INT is accepted where REAL is
  /// expected).
  bool CompatibleWith(DataType type) const;

  /// Renders the value for display and SQL literals. NULL renders as "NULL",
  /// text as its raw characters (unquoted).
  std::string ToString() const;

  /// Renders the value as a SQL literal (text quoted and escaped).
  std::string ToSqlLiteral() const;

  /// Parses `text` into a value of the requested type. An empty string
  /// parses as NULL.
  static StatusOr<Value> Parse(const std::string& text, DataType type);

  /// Total order used by the executor and tests: NULL < everything;
  /// numerics compare numerically across INT/REAL; otherwise compare within
  /// the same alternative. Values of incomparable alternatives order by
  /// alternative index.
  bool operator<(const Value& other) const;
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Hash compatible with operator==.
  size_t Hash() const;

 private:
  using Rep = std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
  bool is_date_ = false;
};

/// std::hash adapter for Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace km

#endif  // KM_RELATIONAL_VALUE_H_
