#include "relational/csv.h"

#include <istream>
#include <ostream>

namespace km {

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = field.empty();
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

StatusOr<std::vector<std::string>> ParseCsvLine(const std::string& line,
                                                std::vector<bool>* was_quoted) {
  std::vector<std::string> fields;
  if (was_quoted != nullptr) was_quoted->clear();
  std::string current;
  bool in_quotes = false;
  bool quoted_field = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        return Status::InvalidArgument("quote in the middle of an unquoted field");
      }
      in_quotes = true;
      quoted_field = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      if (was_quoted != nullptr) was_quoted->push_back(quoted_field);
      current.clear();
      quoted_field = false;
    } else {
      current += c;
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted field");
  fields.push_back(std::move(current));
  if (was_quoted != nullptr) was_quoted->push_back(quoted_field);
  return fields;
}

Status WriteTableCsv(const Table& table, std::ostream* out) {
  const RelationSchema& rs = table.schema();
  for (size_t a = 0; a < rs.arity(); ++a) {
    if (a > 0) *out << ',';
    *out << CsvEscape(rs.attribute(a).name);
  }
  *out << '\n';
  for (const Row& row : table.rows()) {
    for (size_t a = 0; a < row.size(); ++a) {
      if (a > 0) *out << ',';
      if (row[a].is_null()) continue;  // NULL = empty unquoted
      std::string text = row[a].ToString();
      // Empty text must be quoted to stay distinguishable from NULL.
      *out << CsvEscape(text);
    }
    *out << '\n';
  }
  if (!out->good()) return Status::Internal("stream write failure");
  return Status::OK();
}

Status LoadTableCsv(Database* db, const std::string& relation, std::istream* in) {
  Table* table = db->FindMutableTable(relation);
  if (table == nullptr) {
    return Status::NotFound("relation '" + relation + "' does not exist");
  }
  const RelationSchema& rs = table->schema();

  std::string line;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("missing CSV header");
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  KM_ASSIGN_OR_RETURN(std::vector<std::string> header, ParseCsvLine(line, nullptr));
  std::vector<size_t> column_to_attr(header.size());
  for (size_t c = 0; c < header.size(); ++c) {
    auto idx = rs.AttributeIndex(header[c]);
    if (!idx) {
      return Status::NotFound("CSV column '" + header[c] + "' not in relation '" +
                              relation + "'");
    }
    column_to_attr[c] = *idx;
  }

  size_t line_no = 1;
  while (std::getline(*in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<bool> quoted;
    KM_ASSIGN_OR_RETURN(std::vector<std::string> fields, ParseCsvLine(line, &quoted));
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": expected " +
                                     std::to_string(header.size()) + " fields, got " +
                                     std::to_string(fields.size()));
    }
    Row row(rs.arity(), Value::Null());
    for (size_t c = 0; c < fields.size(); ++c) {
      size_t attr = column_to_attr[c];
      if (fields[c].empty() && !quoted[c]) continue;  // NULL
      DataType type = rs.attribute(attr).type;
      auto value = Value::Parse(fields[c], type);
      if (!value.ok()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) + ", column '" +
                                       header[c] + "': " + value.status().message());
      }
      // Parse("") yields NULL for an explicitly quoted empty string; force
      // empty text in that case.
      row[attr] = (fields[c].empty() && type == DataType::kText)
                      ? Value::Text("")
                      : std::move(*value);
    }
    KM_RETURN_IF_ERROR(table->Insert(std::move(row)));
  }
  return Status::OK();
}

}  // namespace km
