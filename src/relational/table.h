// In-memory relation instances.

#ifndef KM_RELATIONAL_TABLE_H_
#define KM_RELATIONAL_TABLE_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace km {

/// A tuple: one value per attribute of the owning relation's schema.
using Row = std::vector<Value>;

/// An in-memory relation instance.
///
/// Rows are stored in insertion order. A hash index over the primary key
/// (when the schema declares one) enforces key uniqueness and supports
/// point lookups used by the executor and by integrity checking.
class Table {
 public:
  explicit Table(RelationSchema schema) : schema_(std::move(schema)) {
    pk_index_ = schema_.PrimaryKeyIndex();
  }

  const RelationSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Appends a row after checking arity, per-attribute type compatibility
  /// and primary-key uniqueness.
  Status Insert(Row row);

  /// Row position holding primary key `key`, or nullopt.
  std::optional<size_t> LookupByKey(const Value& key) const;

  /// Distinct non-NULL values of attribute `attr_index`.
  std::vector<Value> DistinctValues(size_t attr_index) const;

  /// True iff some row holds `v` (by equality) in attribute `attr_index`.
  bool ContainsValue(size_t attr_index, const Value& v) const;

 private:
  RelationSchema schema_;
  std::vector<Row> rows_;
  std::optional<size_t> pk_index_;
  std::unordered_map<Value, size_t, ValueHash> pk_map_;
};

}  // namespace km

#endif  // KM_RELATIONAL_TABLE_H_
