// An IMDB-like movie database: mid-size schema with two hub relations
// (MOVIE, PERSON) connected through several link tables — the third
// classic evaluation source of keyword-search benchmarks.
//
// 11 relations: MOVIE, PERSON, CASTING, DIRECTS, GENRE, MOVIE_GENRE,
// COMPANY, PRODUCED_BY, RATING, KEYWORD, MOVIE_KEYWORD.

#ifndef KM_DATASETS_IMDB_H_
#define KM_DATASETS_IMDB_H_

#include <cstdint>

#include "common/status.h"
#include "relational/database.h"

namespace km {

/// Instance-size knobs.
struct ImdbOptions {
  size_t movies = 1500;
  size_t persons = 2000;
  size_t companies = 60;
  size_t keywords = 150;
  double cast_per_movie_mean = 4.0;
  uint64_t seed = 29;
};

/// Builds the movie database.
StatusOr<Database> BuildImdbDatabase(const ImdbOptions& options = {});

}  // namespace km

#endif  // KM_DATASETS_IMDB_H_
