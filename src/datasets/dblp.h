// A DBLP-like bibliography database: a flat schema (most relation pairs are
// joined by a unique path) with a large instance — the "big, simple" pole
// of the paper's evaluation.
//
// 13 relations: PERSON, JOURNAL, CONFERENCE, PUBLISHER, PROCEEDINGS,
// ARTICLE, INPROCEEDINGS, AUTHOR_ARTICLE, AUTHOR_INPROCEEDINGS, EDITOR,
// PHDTHESIS, SERIES, PROCEEDINGS_SERIES.

#ifndef KM_DATASETS_DBLP_H_
#define KM_DATASETS_DBLP_H_

#include <cstdint>

#include "common/status.h"
#include "relational/database.h"

namespace km {

/// Instance-size knobs. The defaults produce a test-size instance; the
/// benchmarks scale `persons`/`articles`/`inproceedings` up to stress the
/// full-text simulation.
struct DblpOptions {
  size_t persons = 2000;
  size_t journals = 40;
  size_t conferences = 20;
  size_t publishers = 15;
  size_t years_of_proceedings = 12;  ///< proceedings per conference
  size_t articles = 3000;
  size_t inproceedings = 5000;
  size_t phd_theses = 150;
  double authors_per_paper_mean = 2.5;
  uint64_t seed = 13;
};

/// Builds the bibliography database.
StatusOr<Database> BuildDblpDatabase(const DblpOptions& options = {});

}  // namespace km

#endif  // KM_DATASETS_DBLP_H_
