// Synthetic schema-scaling databases for the efficiency experiments:
// parametric number of relations/attributes so the terminology size |T(D)|
// can be swept over orders of magnitude.

#ifndef KM_DATASETS_SCALING_H_
#define KM_DATASETS_SCALING_H_

#include <cstdint>

#include "common/status.h"
#include "relational/database.h"

namespace km {

/// Knobs of the scaling generator.
struct ScalingOptions {
  size_t num_relations = 10;
  size_t attributes_per_relation = 5;  ///< including the primary key
  /// Extra foreign keys beyond the connecting chain (adds join-path
  /// multiplicity), as a fraction of the relation count.
  double extra_fk_fraction = 0.3;
  /// Rows per relation (small; the scaling experiments stress the schema).
  size_t rows_per_relation = 20;
  uint64_t seed = 3;
};

/// Builds a connected chain-plus-chords schema of `num_relations` relations
/// with |T(D)| = num_relations · (1 + 2·attributes_per_relation).
StatusOr<Database> BuildScalingDatabase(const ScalingOptions& options = {});

}  // namespace km

#endif  // KM_DATASETS_SCALING_H_
