// The university database: the paper's running example (its Fig. 2),
// optionally scaled up with generated tuples.
//
// Schema:
//   PEOPLE(Id, Name, Phone, Country, Email)
//   UNIVERSITY(Name, City, Country)
//   DEPARTMENT(Id, Name, Address, University→UNIVERSITY, Director→PEOPLE)
//   AFFILIATED(Id, IdPrs→PEOPLE, IdDpt→DEPARTMENT, Year)
//   PROJECT(Id, Name, Year, Topic)
//   MEMBEROF(Id, Person→PEOPLE, Project→PROJECT, Date)
//   PARTICIPATION(Id, Project→PROJECT, University→UNIVERSITY)

#ifndef KM_DATASETS_UNIVERSITY_H_
#define KM_DATASETS_UNIVERSITY_H_

#include <cstdint>

#include "common/status.h"
#include "relational/database.h"

namespace km {

/// Scaling knobs; the defaults reproduce exactly the paper's figure plus a
/// small generated extension.
struct UniversityOptions {
  /// Additional generated people beyond the three of the figure.
  size_t extra_people = 60;
  /// Additional generated departments / universities / projects.
  size_t extra_departments = 10;
  size_t extra_universities = 8;
  size_t extra_projects = 12;
  uint64_t seed = 42;
};

/// Builds the university database. Always contains the exact tuples of the
/// paper's Fig. 2 (Vokram, Reniets, Refahs D., MIT/UR/UTN/SU, ...) so the
/// running-example queries behave as in the paper.
StatusOr<Database> BuildUniversityDatabase(const UniversityOptions& options = {});

}  // namespace km

#endif  // KM_DATASETS_UNIVERSITY_H_
