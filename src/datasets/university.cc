#include "datasets/university.h"

#include "common/rng.h"
#include "datasets/namepools.h"

namespace km {

namespace {

Status CreateSchema(Database* db) {
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PEOPLE",
      {{"Id", DataType::kText, DomainTag::kIdentifier, /*pk=*/true},
       {"Name", DataType::kText, DomainTag::kPersonName},
       {"Phone", DataType::kText, DomainTag::kPhone},
       {"Country", DataType::kText, DomainTag::kCountryCode},
       {"Email", DataType::kText, DomainTag::kEmail}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "UNIVERSITY",
      {{"Name", DataType::kText, DomainTag::kProperNoun, /*pk=*/true},
       {"City", DataType::kText, DomainTag::kCityName},
       {"Country", DataType::kText, DomainTag::kCountryCode}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "DEPARTMENT",
      {{"Id", DataType::kText, DomainTag::kIdentifier, /*pk=*/true},
       {"Name", DataType::kText, DomainTag::kProperNoun},
       {"Address", DataType::kText, DomainTag::kAddress},
       {"University", DataType::kText, DomainTag::kProperNoun},
       {"Director", DataType::kText, DomainTag::kIdentifier}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "AFFILIATED",
      {{"Id", DataType::kText, DomainTag::kIdentifier, /*pk=*/true},
       {"IdPrs", DataType::kText, DomainTag::kIdentifier},
       {"IdDpt", DataType::kText, DomainTag::kIdentifier},
       {"Year", DataType::kInt, DomainTag::kYear}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PROJECT",
      {{"Id", DataType::kText, DomainTag::kIdentifier, /*pk=*/true},
       {"Name", DataType::kText, DomainTag::kProperNoun},
       {"Year", DataType::kInt, DomainTag::kYear},
       {"Topic", DataType::kText, DomainTag::kFreeText}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "MEMBEROF",
      {{"Id", DataType::kText, DomainTag::kIdentifier, /*pk=*/true},
       {"Person", DataType::kText, DomainTag::kIdentifier},
       {"Project", DataType::kText, DomainTag::kIdentifier},
       {"Date", DataType::kDate, DomainTag::kDate}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PARTICIPATION",
      {{"Id", DataType::kText, DomainTag::kIdentifier, /*pk=*/true},
       {"Project", DataType::kText, DomainTag::kIdentifier},
       {"University", DataType::kText, DomainTag::kProperNoun}})));

  KM_RETURN_IF_ERROR(db->AddForeignKey({"DEPARTMENT", "University", "UNIVERSITY", "Name"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"DEPARTMENT", "Director", "PEOPLE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"AFFILIATED", "IdPrs", "PEOPLE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"AFFILIATED", "IdDpt", "DEPARTMENT", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"MEMBEROF", "Person", "PEOPLE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"MEMBEROF", "Project", "PROJECT", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"PARTICIPATION", "Project", "PROJECT", "Id"}));
  KM_RETURN_IF_ERROR(
      db->AddForeignKey({"PARTICIPATION", "University", "UNIVERSITY", "Name"}));
  return Status::OK();
}

// The exact instance of the paper's Fig. 2.
Status InsertFigureTuples(Database* db) {
  auto T = [](const char* s) { return Value::Text(s); };
  auto I = [](int64_t v) { return Value::Int(v); };

  KM_RETURN_IF_ERROR(db->Insert(
      "PEOPLE", {T("p1"), T("Vokram"), T("4631234"), T("US"), T("vokram@univ.edu")}));
  KM_RETURN_IF_ERROR(db->Insert(
      "PEOPLE", {T("p2"), T("Reniets"), T("6987654"), T("IT"), T("reniets@univ.edu")}));
  KM_RETURN_IF_ERROR(db->Insert(
      "PEOPLE", {T("p3"), T("Refahs D."), T("1937842"), T("ES"), T("refahs@univ.edu")}));
  // The figure's DEPARTMENT references directors p122, p54, p432.
  KM_RETURN_IF_ERROR(db->Insert(
      "PEOPLE", {T("p122"), T("Anaid"), T("5550101"), T("US"), T("anaid@univ.edu")}));
  KM_RETURN_IF_ERROR(db->Insert(
      "PEOPLE", {T("p54"), T("Otrebla"), T("5550102"), T("IT"), T("otrebla@univ.edu")}));
  KM_RETURN_IF_ERROR(db->Insert(
      "PEOPLE", {T("p432"), T("Airam"), T("5550103"), T("IT"), T("airam@univ.edu")}));

  KM_RETURN_IF_ERROR(db->Insert("UNIVERSITY", {T("MIT"), T("Cambridge"), T("US")}));
  KM_RETURN_IF_ERROR(db->Insert("UNIVERSITY", {T("UR"), T("Rome"), T("IT")}));
  KM_RETURN_IF_ERROR(db->Insert("UNIVERSITY", {T("UTN"), T("Trento"), T("IT")}));
  KM_RETURN_IF_ERROR(db->Insert("UNIVERSITY", {T("SU"), T("Stanford"), T("US")}));
  KM_RETURN_IF_ERROR(db->Insert("UNIVERSITY", {T("UM"), T("Modena"), T("IT")}));

  KM_RETURN_IF_ERROR(db->Insert(
      "DEPARTMENT", {T("x123"), T("CS"), T("25 Blicker"), T("SU"), T("p122")}));
  KM_RETURN_IF_ERROR(db->Insert(
      "DEPARTMENT", {T("cs34"), T("EE"), T("15 Tribeca"), T("UM"), T("p54")}));
  KM_RETURN_IF_ERROR(db->Insert(
      "DEPARTMENT", {T("ee67"), T("ME"), T("5 West Ocean"), T("UTN"), T("p432")}));

  KM_RETURN_IF_ERROR(db->Insert("AFFILIATED", {T("a1"), T("p1"), T("x123"), I(2009)}));
  KM_RETURN_IF_ERROR(db->Insert("AFFILIATED", {T("a2"), T("p2"), T("cs34"), I(2012)}));
  KM_RETURN_IF_ERROR(db->Insert("AFFILIATED", {T("a3"), T("p3"), T("cs34"), I(2010)}));

  KM_RETURN_IF_ERROR(
      db->Insert("PROJECT", {T("Rx1"), T("Search it!"), I(2011), T("DB&IR")}));
  KM_RETURN_IF_ERROR(
      db->Insert("PROJECT", {T("Rt1"), T("Analyze it!"), I(2012), T("DB&ML")}));

  KM_RETURN_IF_ERROR(
      db->Insert("MEMBEROF", {T("m1"), T("p1"), T("Rx1"), Value::Date("2012-04-05")}));
  KM_RETURN_IF_ERROR(
      db->Insert("MEMBEROF", {T("m2"), T("p2"), T("Rx1"), Value::Date("2012-03-09")}));

  KM_RETURN_IF_ERROR(db->Insert("PARTICIPATION", {T("pt1"), T("Rx1"), T("UR")}));
  KM_RETURN_IF_ERROR(db->Insert("PARTICIPATION", {T("pt2"), T("Rx1"), T("UTN")}));
  KM_RETURN_IF_ERROR(db->Insert("PARTICIPATION", {T("pt3"), T("Rt1"), T("UM")}));
  return Status::OK();
}

}  // namespace

StatusOr<Database> BuildUniversityDatabase(const UniversityOptions& options) {
  Database db("university");
  KM_RETURN_IF_ERROR(CreateSchema(&db));
  KM_RETURN_IF_ERROR(InsertFigureTuples(&db));

  Rng rng(options.seed);
  auto T = [](const std::string& s) { return Value::Text(s); };

  // Extra universities.
  std::vector<std::string> uni_names = {"MIT", "UR", "UTN", "SU", "UM"};
  for (size_t i = 0; i < options.extra_universities; ++i) {
    std::string name = "U" + std::to_string(i + 10);
    const CountryInfo& c = rng.Pick(Countries());
    KM_RETURN_IF_ERROR(
        db.Insert("UNIVERSITY", {T(name), T(rng.Pick(RealCities())), T(c.code)}));
    uni_names.push_back(name);
  }

  // Extra people.
  std::vector<std::string> people_ids = {"p1", "p2", "p3", "p122", "p54", "p432"};
  for (size_t i = 0; i < options.extra_people; ++i) {
    std::string id = "q" + std::to_string(i + 1);
    std::string name = MakePersonName(&rng);
    const CountryInfo& c = rng.Pick(Countries());
    KM_RETURN_IF_ERROR(db.Insert("PEOPLE", {T(id), T(name), T(MakePhone(&rng)),
                                            T(c.code), T(MakeEmail(name, &rng))}));
    people_ids.push_back(id);
  }

  // Extra departments.
  static const char* kDeptNames[] = {"Math", "Physics", "Biology", "Chemistry",
                                     "Economics", "Law", "History", "Philosophy",
                                     "Medicine", "Engineering", "Statistics",
                                     "Linguistics"};
  std::vector<std::string> dept_ids = {"x123", "cs34", "ee67"};
  for (size_t i = 0; i < options.extra_departments; ++i) {
    std::string id = "d" + std::to_string(i + 100);
    KM_RETURN_IF_ERROR(db.Insert(
        "DEPARTMENT",
        {T(id), T(kDeptNames[i % (sizeof(kDeptNames) / sizeof(kDeptNames[0]))]),
         T(MakeAddress(&rng)), T(rng.Pick(uni_names)), T(rng.Pick(people_ids))}));
    dept_ids.push_back(id);
  }

  // Extra projects plus membership/participation fabric.
  std::vector<std::string> project_ids = {"Rx1", "Rt1"};
  for (size_t i = 0; i < options.extra_projects; ++i) {
    std::string id = "Pr" + std::to_string(i + 1);
    KM_RETURN_IF_ERROR(db.Insert(
        "PROJECT", {T(id), T(MakePaperTitle(&rng)),
                    Value::Int(static_cast<int64_t>(2005 + rng.Uniform(18))),
                    T(rng.Pick(TitleNouns()))}));
    project_ids.push_back(id);
  }
  size_t link = 0;
  for (const std::string& pid : people_ids) {
    if (!rng.Bernoulli(0.7)) continue;
    KM_RETURN_IF_ERROR(db.Insert(
        "AFFILIATED", {T("a" + std::to_string(100 + link)), T(pid),
                       T(rng.Pick(dept_ids)),
                       Value::Int(static_cast<int64_t>(2000 + rng.Uniform(23)))}));
    ++link;
    if (rng.Bernoulli(0.5)) {
      std::string month = std::to_string(1 + rng.Uniform(12));
      if (month.size() == 1) month = "0" + month;
      std::string day = std::to_string(1 + rng.Uniform(28));
      if (day.size() == 1) day = "0" + day;
      KM_RETURN_IF_ERROR(db.Insert(
          "MEMBEROF",
          {T("m" + std::to_string(100 + link)), T(pid), T(rng.Pick(project_ids)),
           Value::Date(std::to_string(2010 + rng.Uniform(13)) + "-" + month + "-" +
                       day)}));
    }
  }
  for (size_t i = 0; i < project_ids.size(); ++i) {
    KM_RETURN_IF_ERROR(db.Insert("PARTICIPATION",
                                 {T("pt" + std::to_string(100 + i)),
                                  T(project_ids[i]), T(rng.Pick(uni_names))}));
  }

  KM_RETURN_IF_ERROR(db.CheckIntegrity());
  return db;
}

}  // namespace km
