#include "datasets/namepools.h"

#include "common/strings.h"

namespace km {

const std::vector<CountryInfo>& Countries() {
  static const std::vector<CountryInfo>* kCountries = new std::vector<CountryInfo>{
      {"United States", "US", "America"}, {"Italy", "IT", "Europe"},
      {"Spain", "ES", "Europe"},          {"France", "FR", "Europe"},
      {"Germany", "DE", "Europe"},        {"United Kingdom", "GB", "Europe"},
      {"Ireland", "IE", "Europe"},        {"Portugal", "PT", "Europe"},
      {"Netherlands", "NL", "Europe"},    {"Belgium", "BE", "Europe"},
      {"Switzerland", "CH", "Europe"},    {"Austria", "AT", "Europe"},
      {"Greece", "GR", "Europe"},         {"Sweden", "SE", "Europe"},
      {"Norway", "NO", "Europe"},         {"Finland", "FI", "Europe"},
      {"Denmark", "DK", "Europe"},        {"Poland", "PL", "Europe"},
      {"Czechia", "CZ", "Europe"},        {"Hungary", "HU", "Europe"},
      {"Romania", "RO", "Europe"},        {"Bulgaria", "BG", "Europe"},
      {"Croatia", "HR", "Europe"},        {"Serbia", "RS", "Europe"},
      {"Slovenia", "SI", "Europe"},       {"Slovakia", "SK", "Europe"},
      {"Ukraine", "UA", "Europe"},        {"Turkey", "TR", "Asia"},
      {"Russia", "RU", "Asia"},           {"China", "CN", "Asia"},
      {"Japan", "JP", "Asia"},            {"India", "IN", "Asia"},
      {"South Korea", "KR", "Asia"},      {"Vietnam", "VN", "Asia"},
      {"Thailand", "TH", "Asia"},         {"Indonesia", "ID", "Asia"},
      {"Malaysia", "MY", "Asia"},         {"Singapore", "SG", "Asia"},
      {"Israel", "IL", "Asia"},           {"Saudi Arabia", "SA", "Asia"},
      {"Iran", "IR", "Asia"},             {"Pakistan", "PK", "Asia"},
      {"Canada", "CA", "America"},        {"Mexico", "MX", "America"},
      {"Brazil", "BR", "America"},        {"Argentina", "AR", "America"},
      {"Chile", "CL", "America"},         {"Colombia", "CO", "America"},
      {"Peru", "PE", "America"},          {"Uruguay", "UY", "America"},
      {"Egypt", "EG", "Africa"},          {"Morocco", "MA", "Africa"},
      {"Nigeria", "NG", "Africa"},        {"Kenya", "KE", "Africa"},
      {"Ethiopia", "ET", "Africa"},       {"South Africa", "ZA", "Africa"},
      {"Tunisia", "TN", "Africa"},        {"Ghana", "GH", "Africa"},
      {"Australia", "AU", "Oceania"},     {"New Zealand", "NZ", "Oceania"},
  };
  return *kCountries;
}

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "James",   "Mary",    "Robert",  "Patricia", "John",    "Jennifer",
      "Michael", "Linda",   "David",   "Elizabeth","William", "Barbara",
      "Richard", "Susan",   "Joseph",  "Jessica",  "Thomas",  "Sarah",
      "Charles", "Karen",   "Daniel",  "Lisa",     "Matthew", "Nancy",
      "Anthony", "Betty",   "Mark",    "Margaret", "Paul",    "Sandra",
      "Steven",  "Ashley",  "Andrew",  "Kimberly", "Kenneth", "Emily",
      "Joshua",  "Donna",   "Kevin",   "Michelle", "Brian",   "Carol",
      "George",  "Amanda",  "Edward",  "Dorothy",  "Ronald",  "Melissa",
      "Timothy", "Deborah", "Jason",   "Stephanie","Jeffrey", "Rebecca",
      "Ryan",    "Sharon",  "Jacob",   "Laura",    "Gary",    "Cynthia",
      "Sonia",   "Francesco","Matteo", "Raquel",   "Yannis",  "Giovanni",
      "Elena",   "Marco",   "Lucia",   "Andrea",   "Paolo",   "Chiara",
      "Hans",    "Ingrid",  "Pierre",  "Camille",  "Akira",   "Yuki",
      "Wei",     "Mei",     "Ivan",    "Olga",     "Pedro",   "Ines",
  };
  return *kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string>* kNames = new std::vector<std::string>{
      "Smith",     "Johnson",   "Williams",  "Brown",    "Jones",    "Garcia",
      "Miller",    "Davis",     "Rodriguez", "Martinez", "Hernandez","Lopez",
      "Gonzalez",  "Wilson",    "Anderson",  "Thomas",   "Taylor",   "Moore",
      "Jackson",   "Martin",    "Lee",       "Perez",    "Thompson", "White",
      "Harris",    "Sanchez",   "Clark",     "Ramirez",  "Lewis",    "Robinson",
      "Walker",    "Young",     "Allen",     "King",     "Wright",   "Scott",
      "Torres",    "Nguyen",    "Hill",      "Flores",   "Green",    "Adams",
      "Nelson",    "Baker",     "Hall",      "Rivera",   "Campbell", "Mitchell",
      "Carter",    "Roberts",   "Rossi",     "Russo",    "Ferrari",  "Esposito",
      "Bianchi",   "Romano",    "Colombo",   "Ricci",    "Marino",   "Greco",
      "Bruno",     "Gallo",     "Conti",     "Costa",    "Giordano", "Mancini",
      "Rizzo",     "Lombardi",  "Moretti",   "Mueller",  "Schmidt",  "Schneider",
      "Fischer",   "Weber",     "Meyer",     "Wagner",   "Becker",   "Schulz",
      "Hoffmann",  "Koch",      "Dubois",    "Moreau",   "Laurent",  "Simon",
      "Michel",    "Leroy",     "Tanaka",    "Suzuki",   "Takahashi","Watanabe",
      "Ito",       "Yamamoto",  "Chen",      "Wang",     "Zhang",    "Liu",
      "Yang",      "Huang",     "Kim",       "Park",     "Choi",     "Singh",
      "Kumar",     "Sharma",    "Patel",     "Gupta",    "Silva",    "Santos",
      "Oliveira",  "Souza",     "Pereira",   "Ivanov",   "Petrov",   "Volkov",
      "Bergamaschi","Guerra",   "Interlandi","Velegrakis","Trillo",  "Domnori",
  };
  return *kNames;
}

const std::vector<std::string>& RealCities() {
  static const std::vector<std::string>* kCities = new std::vector<std::string>{
      "Rome",      "Milan",     "Trento",     "Modena",   "Naples",   "Turin",
      "Madrid",    "Barcelona", "Zaragoza",   "Seville",  "Valencia", "Paris",
      "Lyon",      "Marseille", "Berlin",     "Munich",   "Hamburg",  "London",
      "Manchester","Edinburgh", "Dublin",     "Lisbon",   "Porto",    "Amsterdam",
      "Brussels",  "Zurich",    "Geneva",     "Vienna",   "Athens",   "Stockholm",
      "Oslo",      "Helsinki",  "Copenhagen", "Warsaw",   "Prague",   "Budapest",
      "Bucharest", "Sofia",     "Zagreb",     "Belgrade", "Ljubljana","Kiev",
      "Istanbul",  "Ankara",    "Moscow",     "Beijing",  "Shanghai", "Tokyo",
      "Osaka",     "Delhi",     "Mumbai",     "Seoul",    "Hanoi",    "Bangkok",
      "Jakarta",   "Singapore", "Tel Aviv",   "Riyadh",   "Tehran",   "Karachi",
      "Toronto",   "Vancouver", "Mexico City","Sao Paulo","Buenos Aires","Santiago",
      "Bogota",    "Lima",      "Montevideo", "Cairo",    "Casablanca","Lagos",
      "Nairobi",   "Cape Town", "Tunis",      "Accra",    "Sydney",   "Melbourne",
      "Auckland",  "New York",  "Boston",     "Chicago",  "Stanford", "Cambridge",
  };
  return *kCities;
}

const std::vector<std::string>& TitleAdjectives() {
  static const std::vector<std::string>* kWords = new std::vector<std::string>{
      "Efficient", "Scalable",  "Adaptive",   "Robust",    "Incremental",
      "Parallel",  "Distributed","Approximate","Effective", "Principled",
      "Fast",      "Interactive","Semantic",   "Probabilistic","Declarative",
      "Unified",   "Holistic",  "Dynamic",    "Learned",   "Hybrid",
  };
  return *kWords;
}

const std::vector<std::string>& TitleNouns() {
  static const std::vector<std::string>* kWords = new std::vector<std::string>{
      "Keyword Search", "Query Processing", "Join Optimization", "Indexing",
      "Data Integration", "Schema Matching", "Entity Resolution", "Ranking",
      "Query Answering", "Data Cleaning",  "Sampling",          "Caching",
      "Summarization",  "Partitioning",    "Compression",       "Provenance",
      "Top-k Retrieval","View Selection",  "Cardinality Estimation", "Sketching",
  };
  return *kWords;
}

const std::vector<std::string>& TitleDomains() {
  static const std::vector<std::string>* kWords = new std::vector<std::string>{
      "Relational Databases", "Data Streams",  "Graph Data",      "the Deep Web",
      "Column Stores",        "Key-Value Stores","Social Networks","XML Repositories",
      "Federated Systems",    "Sensor Networks","Spatial Data",   "Temporal Databases",
      "Probabilistic Data",   "Crowdsourced Data","Scientific Workflows","Main Memory",
  };
  return *kWords;
}

const std::vector<std::string>& ConferenceAcronyms() {
  static const std::vector<std::string>* kWords = new std::vector<std::string>{
      "SIGMOD", "VLDB",  "ICDE",  "EDBT",  "CIKM",  "KDD",   "WWW",
      "ICDT",   "PODS",  "WSDM",  "SIGIR", "ISWC",  "ESWC",  "ER",
      "DASFAA", "SSDBM", "TREC",  "ECIR",  "ICML",  "SDM",
  };
  return *kWords;
}

std::string MakePersonName(Rng* rng) {
  std::string name = rng->Pick(FirstNames());
  if (rng->Bernoulli(0.12)) {
    name += " ";
    name += static_cast<char>('A' + rng->Uniform(26));
    name += ".";
  }
  name += " " + rng->Pick(LastNames());
  return name;
}

std::string MakePlaceName(Rng* rng) {
  static const std::vector<std::string>* kPrefix = new std::vector<std::string>{
      "North", "South", "East", "West", "New", "Old", "Upper", "Lower", "Port",
      "Lake", "Mount", "Saint"};
  static const std::vector<std::string>* kStem = new std::vector<std::string>{
      "Veleth", "Karuna", "Doria",  "Maren",  "Tolva", "Ebris",  "Canda",
      "Soria",  "Ilmar",  "Vesta",  "Orlen",  "Tarvi", "Belmor", "Quira",
      "Zerin",  "Aldana", "Feria",  "Goran",  "Halden","Istria", "Jurno",
      "Kelva",  "Lorin",  "Mirel",  "Nersa",  "Ovana", "Pelda",  "Rovan",
      "Selka",  "Tirane", "Umbra",  "Varga",  "Welda", "Ylva",   "Zoric"};
  static const std::vector<std::string>* kSuffix = new std::vector<std::string>{
      "", "", "", " Bay", " Falls", " Hills", " Valley", " Springs", "ia",
      "ville", "burg", "ton"};
  std::string name;
  if (rng->Bernoulli(0.35)) name += rng->Pick(*kPrefix) + " ";
  std::string stem = rng->Pick(*kStem);
  std::string suffix = rng->Pick(*kSuffix);
  if (!suffix.empty() && suffix[0] != ' ') {
    // Gluing suffixes lowers the stem ending naturally.
    name += stem + suffix;
  } else {
    name += stem + suffix;
  }
  return name;
}

std::string MakePaperTitle(Rng* rng) {
  std::string title = rng->Pick(TitleAdjectives()) + " " + rng->Pick(TitleNouns()) +
                      " over " + rng->Pick(TitleDomains());
  return title;
}

std::string MakePhone(Rng* rng) {
  std::string phone;
  phone += static_cast<char>('1' + rng->Uniform(9));
  for (int i = 0; i < 6; ++i) phone += static_cast<char>('0' + rng->Uniform(10));
  return phone;
}

std::string MakeEmail(const std::string& person_name, Rng* rng) {
  static const std::vector<std::string>* kDomains = new std::vector<std::string>{
      "example.edu", "mail.org", "univ.edu", "research.net", "dept.edu"};
  std::string user;
  for (char c : ToLower(person_name)) {
    if (c == ' ') {
      user += '.';
    } else if (c != '.') {
      user += c;
    }
  }
  return user + "@" + rng->Pick(*kDomains);
}

std::string MakeAddress(Rng* rng) {
  static const std::vector<std::string>* kStreets = new std::vector<std::string>{
      "Maple Street", "Oak Avenue", "Main Street", "Hill Road", "Park Lane",
      "River Drive",  "Elm Street", "Church Road", "Mill Lane", "Station Road",
      "Blicker",      "Tribeca",    "West Ocean",  "High Street", "College Avenue"};
  return std::to_string(1 + rng->Uniform(99)) + " " + rng->Pick(*kStreets);
}

}  // namespace km
