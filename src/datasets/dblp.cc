#include "datasets/dblp.h"

#include <unordered_set>

#include "common/rng.h"
#include "datasets/namepools.h"

namespace km {

namespace {

Status CreateSchema(Database* db) {
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PERSON", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                 {"Name", DataType::kText, DomainTag::kPersonName},
                 {"Homepage", DataType::kText, DomainTag::kUrl}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "JOURNAL", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                  {"Name", DataType::kText, DomainTag::kFreeText},
                  {"Publisher", DataType::kText, DomainTag::kIdentifier}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "CONFERENCE", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                     {"Name", DataType::kText, DomainTag::kFreeText},
                     {"Acronym", DataType::kText, DomainTag::kProperNoun}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PUBLISHER", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                    {"Name", DataType::kText, DomainTag::kProperNoun},
                    {"Headquarters", DataType::kText, DomainTag::kCityName}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "SERIES", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                 {"Name", DataType::kText, DomainTag::kFreeText}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PROCEEDINGS", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                      {"Title", DataType::kText, DomainTag::kFreeText},
                      {"Conference", DataType::kText, DomainTag::kIdentifier},
                      {"Year", DataType::kInt, DomainTag::kYear},
                      {"Publisher", DataType::kText, DomainTag::kIdentifier}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PROCEEDINGS_SERIES",
      {{"Id", DataType::kText, DomainTag::kIdentifier, true},
       {"Proceedings", DataType::kText, DomainTag::kIdentifier},
       {"Series", DataType::kText, DomainTag::kIdentifier},
       {"Volume", DataType::kInt, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "ARTICLE", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                  {"Title", DataType::kText, DomainTag::kFreeText},
                  {"Journal", DataType::kText, DomainTag::kIdentifier},
                  {"Year", DataType::kInt, DomainTag::kYear},
                  {"Volume", DataType::kInt, DomainTag::kQuantity},
                  {"Pages", DataType::kText, DomainTag::kNone}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "INPROCEEDINGS", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                        {"Title", DataType::kText, DomainTag::kFreeText},
                        {"Proceedings", DataType::kText, DomainTag::kIdentifier},
                        {"Year", DataType::kInt, DomainTag::kYear},
                        {"Pages", DataType::kText, DomainTag::kNone}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "AUTHOR_ARTICLE", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                         {"Person", DataType::kText, DomainTag::kIdentifier},
                         {"Article", DataType::kText, DomainTag::kIdentifier},
                         {"Position", DataType::kInt, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "AUTHOR_INPROCEEDINGS",
      {{"Id", DataType::kText, DomainTag::kIdentifier, true},
       {"Person", DataType::kText, DomainTag::kIdentifier},
       {"Inproceedings", DataType::kText, DomainTag::kIdentifier},
       {"Position", DataType::kInt, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "EDITOR", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                 {"Person", DataType::kText, DomainTag::kIdentifier},
                 {"Proceedings", DataType::kText, DomainTag::kIdentifier}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PHDTHESIS", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                    {"Title", DataType::kText, DomainTag::kFreeText},
                    {"Person", DataType::kText, DomainTag::kIdentifier},
                    {"School", DataType::kText, DomainTag::kProperNoun},
                    {"Year", DataType::kInt, DomainTag::kYear}})));

  KM_RETURN_IF_ERROR(db->AddForeignKey({"JOURNAL", "Publisher", "PUBLISHER", "Id"}));
  KM_RETURN_IF_ERROR(
      db->AddForeignKey({"PROCEEDINGS", "Conference", "CONFERENCE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"PROCEEDINGS", "Publisher", "PUBLISHER", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey(
      {"PROCEEDINGS_SERIES", "Proceedings", "PROCEEDINGS", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"PROCEEDINGS_SERIES", "Series", "SERIES", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"ARTICLE", "Journal", "JOURNAL", "Id"}));
  KM_RETURN_IF_ERROR(
      db->AddForeignKey({"INPROCEEDINGS", "Proceedings", "PROCEEDINGS", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"AUTHOR_ARTICLE", "Person", "PERSON", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"AUTHOR_ARTICLE", "Article", "ARTICLE", "Id"}));
  KM_RETURN_IF_ERROR(
      db->AddForeignKey({"AUTHOR_INPROCEEDINGS", "Person", "PERSON", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey(
      {"AUTHOR_INPROCEEDINGS", "Inproceedings", "INPROCEEDINGS", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"EDITOR", "Person", "PERSON", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"EDITOR", "Proceedings", "PROCEEDINGS", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"PHDTHESIS", "Person", "PERSON", "Id"}));
  return Status::OK();
}

}  // namespace

StatusOr<Database> BuildDblpDatabase(const DblpOptions& options) {
  Database db("dblp");
  KM_RETURN_IF_ERROR(CreateSchema(&db));
  Rng rng(options.seed);
  auto T = [](const std::string& s) { return Value::Text(s); };
  auto I = [](int64_t v) { return Value::Int(v); };

  // Publishers.
  const char* kPublishers[] = {"ACM", "IEEE", "Springer", "Elsevier", "Morgan Kaufmann",
                               "Wiley", "MIT Press", "Cambridge Press", "Oxford Press",
                               "CRC Press", "Now Publishers", "IOS Press",
                               "World Scientific", "De Gruyter", "SIAM"};
  std::vector<std::string> publisher_ids;
  for (size_t i = 0; i < options.publishers && i < 15; ++i) {
    std::string id = "pub" + std::to_string(i);
    KM_RETURN_IF_ERROR(
        db.Insert("PUBLISHER", {T(id), T(kPublishers[i]), T(rng.Pick(RealCities()))}));
    publisher_ids.push_back(id);
  }

  // Journals.
  std::vector<std::string> journal_ids;
  for (size_t i = 0; i < options.journals; ++i) {
    std::string id = "j" + std::to_string(i);
    std::string name = "Journal of " + rng.Pick(TitleNouns());
    if (i % 3 == 0) name = "Transactions on " + rng.Pick(TitleNouns());
    KM_RETURN_IF_ERROR(db.Insert("JOURNAL", {T(id), T(name), T(rng.Pick(publisher_ids))}));
    journal_ids.push_back(id);
  }

  // Conferences and proceedings.
  std::vector<std::string> conference_ids, proceedings_ids;
  const auto& acronyms = ConferenceAcronyms();
  for (size_t i = 0; i < options.conferences && i < acronyms.size(); ++i) {
    std::string id = "conf" + std::to_string(i);
    KM_RETURN_IF_ERROR(db.Insert(
        "CONFERENCE",
        {T(id), T("International Conference on " + TitleNouns()[i % TitleNouns().size()]),
         T(acronyms[i])}));
    conference_ids.push_back(id);
    for (size_t y = 0; y < options.years_of_proceedings; ++y) {
      int64_t year = 2023 - static_cast<int64_t>(y);
      std::string pid = "proc_" + acronyms[i] + "_" + std::to_string(year);
      KM_RETURN_IF_ERROR(db.Insert(
          "PROCEEDINGS",
          {T(pid), T("Proceedings of " + acronyms[i] + " " + std::to_string(year)),
           T(id), I(year), T(rng.Pick(publisher_ids))}));
      proceedings_ids.push_back(pid);
    }
  }

  // Series.
  std::vector<std::string> series_ids;
  const char* kSeries[] = {"LNCS", "LNAI", "CEUR Workshop Proceedings",
                           "ACM International Conference Proceeding Series",
                           "Advances in Database Technology"};
  for (size_t i = 0; i < 5; ++i) {
    std::string id = "ser" + std::to_string(i);
    KM_RETURN_IF_ERROR(db.Insert("SERIES", {T(id), T(kSeries[i])}));
    series_ids.push_back(id);
  }
  for (size_t i = 0; i < proceedings_ids.size(); ++i) {
    if (!rng.Bernoulli(0.6)) continue;
    KM_RETURN_IF_ERROR(db.Insert(
        "PROCEEDINGS_SERIES",
        {T("ps" + std::to_string(i)), T(proceedings_ids[i]), T(rng.Pick(series_ids)),
         I(static_cast<int64_t>(1 + rng.Uniform(14000)))}));
  }

  // People. Names may repeat in reality, but unique names keep gold labels
  // unambiguous for the workload generator.
  std::vector<std::string> person_ids;
  std::unordered_set<std::string> used_names;
  for (size_t i = 0; i < options.persons; ++i) {
    std::string name;
    for (int attempt = 0; attempt < 20; ++attempt) {
      name = MakePersonName(&rng);
      if (used_names.insert(name).second) break;
      name.clear();
    }
    if (name.empty()) {
      name = MakePersonName(&rng) + " " + std::to_string(i);
      used_names.insert(name);
    }
    std::string id = "prs" + std::to_string(i);
    KM_RETURN_IF_ERROR(db.Insert(
        "PERSON", {T(id), T(name),
                   rng.Bernoulli(0.3)
                       ? T("https://people.example.org/" + std::to_string(i))
                       : Value::Null()}));
    person_ids.push_back(id);
  }

  // Articles.
  ZipfSampler person_zipf(person_ids.size(), 1.05);
  std::vector<std::string> article_ids;
  size_t author_seq = 0;
  for (size_t i = 0; i < options.articles; ++i) {
    std::string id = "art" + std::to_string(i);
    KM_RETURN_IF_ERROR(db.Insert(
        "ARTICLE", {T(id), T(MakePaperTitle(&rng)), T(rng.Pick(journal_ids)),
                    I(static_cast<int64_t>(1995 + rng.Uniform(29))),
                    I(static_cast<int64_t>(1 + rng.Uniform(60))),
                    T(std::to_string(1 + rng.Uniform(800)) + "-" +
                      std::to_string(801 + rng.Uniform(100)))}));
    article_ids.push_back(id);
    size_t num_authors =
        1 + rng.Uniform(static_cast<uint64_t>(2 * options.authors_per_paper_mean));
    std::unordered_set<size_t> chosen;
    for (size_t a = 0; a < num_authors; ++a) {
      size_t p = person_zipf.Sample(&rng);
      if (!chosen.insert(p).second) continue;
      KM_RETURN_IF_ERROR(db.Insert(
          "AUTHOR_ARTICLE", {T("aa" + std::to_string(author_seq++)), T(person_ids[p]),
                             T(id), I(static_cast<int64_t>(a + 1))}));
    }
  }

  // Inproceedings.
  std::vector<std::string> inproc_ids;
  for (size_t i = 0; i < options.inproceedings; ++i) {
    std::string id = "inp" + std::to_string(i);
    const std::string& proc = rng.Pick(proceedings_ids);
    // Year must match the proceedings year for realism; re-derive it.
    int64_t year = 2023;
    {
      const Table* t = db.FindTable("PROCEEDINGS");
      auto row = t->LookupByKey(Value::Text(proc));
      if (row) year = t->rows()[*row][3].AsInt();
    }
    KM_RETURN_IF_ERROR(db.Insert(
        "INPROCEEDINGS", {T(id), T(MakePaperTitle(&rng)), T(proc), I(year),
                          T(std::to_string(1 + rng.Uniform(900)) + "-" +
                            std::to_string(901 + rng.Uniform(20)))}));
    inproc_ids.push_back(id);
    size_t num_authors =
        1 + rng.Uniform(static_cast<uint64_t>(2 * options.authors_per_paper_mean));
    std::unordered_set<size_t> chosen;
    for (size_t a = 0; a < num_authors; ++a) {
      size_t p = person_zipf.Sample(&rng);
      if (!chosen.insert(p).second) continue;
      KM_RETURN_IF_ERROR(db.Insert(
          "AUTHOR_INPROCEEDINGS",
          {T("ai" + std::to_string(author_seq++)), T(person_ids[p]), T(id),
           I(static_cast<int64_t>(a + 1))}));
    }
  }

  // Editors.
  size_t ed_seq = 0;
  for (const std::string& proc : proceedings_ids) {
    size_t n = 1 + rng.Uniform(3);
    std::unordered_set<size_t> chosen;
    for (size_t e = 0; e < n; ++e) {
      size_t p = person_zipf.Sample(&rng);
      if (!chosen.insert(p).second) continue;
      KM_RETURN_IF_ERROR(db.Insert(
          "EDITOR", {T("ed" + std::to_string(ed_seq++)), T(person_ids[p]), T(proc)}));
    }
  }

  // PhD theses.
  for (size_t i = 0; i < options.phd_theses; ++i) {
    KM_RETURN_IF_ERROR(db.Insert(
        "PHDTHESIS",
        {T("phd" + std::to_string(i)), T(MakePaperTitle(&rng)),
         T(person_ids[rng.Uniform(person_ids.size())]),
         T(rng.Pick(RealCities()) + " University"),
         I(static_cast<int64_t>(1995 + rng.Uniform(29)))}));
  }

  KM_RETURN_IF_ERROR(db.CheckIntegrity());
  return db;
}

}  // namespace km
