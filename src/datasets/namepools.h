// Shared name pools for the synthetic dataset generators.
//
// Realistic-looking surface strings matter here: the forward step matches
// keywords against schema names and value shapes, so the generators draw
// from curated pools (real country names/codes, plausible person and city
// names, research-paper title vocabulary) instead of random strings.

#ifndef KM_DATASETS_NAMEPOOLS_H_
#define KM_DATASETS_NAMEPOOLS_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace km {

/// A country with its ISO-like alpha-2 code and continent.
struct CountryInfo {
  const char* name;
  const char* code;
  const char* continent;
};

/// ~60 real countries (name, code, continent).
const std::vector<CountryInfo>& Countries();

/// Common given names (~80).
const std::vector<std::string>& FirstNames();

/// Common family names (~120).
const std::vector<std::string>& LastNames();

/// Real large-city names (~70), used as anchors in the geo dataset.
const std::vector<std::string>& RealCities();

/// Words used to synthesize research-paper titles.
const std::vector<std::string>& TitleAdjectives();
const std::vector<std::string>& TitleNouns();
const std::vector<std::string>& TitleDomains();

/// Conference acronym pool ("SIGMOD", "VLDB", ...).
const std::vector<std::string>& ConferenceAcronyms();

/// Draws "First Last" with an optional middle initial.
std::string MakePersonName(Rng* rng);

/// Synthesizes a plausible place name ("North Veleth", "Karuna Bay", ...).
std::string MakePlaceName(Rng* rng);

/// Synthesizes a paper title ("Efficient Keyword Search over Streaming
/// Graphs").
std::string MakePaperTitle(Rng* rng);

/// Synthesizes a phone number string of 7 digits.
std::string MakePhone(Rng* rng);

/// Synthesizes an e-mail for a person name at one of a few domains.
std::string MakeEmail(const std::string& person_name, Rng* rng);

/// Synthesizes a street address ("17 Maple Street").
std::string MakeAddress(Rng* rng);

}  // namespace km

#endif  // KM_DATASETS_NAMEPOOLS_H_
