#include "datasets/mondial.h"

#include <unordered_set>

#include "common/rng.h"
#include "datasets/namepools.h"

namespace km {

namespace {

Status CreateSchema(Database* db) {
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "COUNTRY", {{"Code", DataType::kText, DomainTag::kCountryCode, true},
                  {"Name", DataType::kText, DomainTag::kCountryName},
                  {"Capital", DataType::kText, DomainTag::kCityName},
                  {"Population", DataType::kInt, DomainTag::kQuantity},
                  {"Area", DataType::kReal, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "CONTINENT", {{"Name", DataType::kText, DomainTag::kProperNoun, true},
                    {"Area", DataType::kReal, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "ENCOMPASSES", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                      {"Country", DataType::kText, DomainTag::kCountryCode},
                      {"Continent", DataType::kText, DomainTag::kProperNoun},
                      {"Percentage", DataType::kReal, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PROVINCE", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                   {"Name", DataType::kText, DomainTag::kProperNoun},
                   {"Country", DataType::kText, DomainTag::kCountryCode},
                   {"Population", DataType::kInt, DomainTag::kQuantity},
                   {"Area", DataType::kReal, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "CITY", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
               {"Name", DataType::kText, DomainTag::kCityName},
               {"Country", DataType::kText, DomainTag::kCountryCode},
               {"Province", DataType::kText, DomainTag::kIdentifier},
               {"Population", DataType::kInt, DomainTag::kQuantity}})));

  // Physical features plus their located-in link tables.
  const struct {
    const char* feature;
    const char* link;
    const char* metric;
  } kFeatures[] = {
      {"RIVER", "GEO_RIVER", "Length"},     {"LAKE", "GEO_LAKE", "Area"},
      {"MOUNTAIN", "GEO_MOUNTAIN", "Elevation"}, {"SEA", "GEO_SEA", "Depth"},
      {"ISLAND", "GEO_ISLAND", "Area"},     {"DESERT", "GEO_DESERT", "Area"},
  };
  for (const auto& f : kFeatures) {
    KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
        f.feature, {{"Name", DataType::kText, DomainTag::kProperNoun, true},
                    {f.metric, DataType::kReal, DomainTag::kQuantity}})));
    KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
        f.link, {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                 {"Feature", DataType::kText, DomainTag::kProperNoun},
                 {"Country", DataType::kText, DomainTag::kCountryCode},
                 {"Province", DataType::kText, DomainTag::kIdentifier}})));
    KM_RETURN_IF_ERROR(db->AddForeignKey({f.link, "Feature", f.feature, "Name"}));
    KM_RETURN_IF_ERROR(db->AddForeignKey({f.link, "Country", "COUNTRY", "Code"}));
    KM_RETURN_IF_ERROR(db->AddForeignKey({f.link, "Province", "PROVINCE", "Id"}));
  }

  const struct {
    const char* rel;
  } kDemographics[] = {{"LANGUAGE"}, {"RELIGION"}, {"ETHNICGROUP"}};
  for (const auto& d : kDemographics) {
    KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
        d.rel, {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                {"Country", DataType::kText, DomainTag::kCountryCode},
                {"Name", DataType::kText, DomainTag::kProperNoun},
                {"Percentage", DataType::kReal, DomainTag::kQuantity}})));
    KM_RETURN_IF_ERROR(db->AddForeignKey({d.rel, "Country", "COUNTRY", "Code"}));
  }

  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "BORDERS", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                  {"Country1", DataType::kText, DomainTag::kCountryCode},
                  {"Country2", DataType::kText, DomainTag::kCountryCode},
                  {"Length", DataType::kReal, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "ORGANIZATION", {{"Abbreviation", DataType::kText, DomainTag::kProperNoun, true},
                       {"Name", DataType::kText, DomainTag::kFreeText},
                       {"City", DataType::kText, DomainTag::kIdentifier},
                       {"Established", DataType::kInt, DomainTag::kYear}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "ISMEMBER", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                   {"Country", DataType::kText, DomainTag::kCountryCode},
                   {"Organization", DataType::kText, DomainTag::kProperNoun},
                   {"Type", DataType::kText, DomainTag::kNone}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "ECONOMY", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                  {"Country", DataType::kText, DomainTag::kCountryCode},
                  {"GDP", DataType::kReal, DomainTag::kMoney},
                  {"Inflation", DataType::kReal, DomainTag::kQuantity},
                  {"Currency", DataType::kText, DomainTag::kProperNoun}})));

  KM_RETURN_IF_ERROR(db->AddForeignKey({"ENCOMPASSES", "Country", "COUNTRY", "Code"}));
  KM_RETURN_IF_ERROR(
      db->AddForeignKey({"ENCOMPASSES", "Continent", "CONTINENT", "Name"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"PROVINCE", "Country", "COUNTRY", "Code"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"CITY", "Country", "COUNTRY", "Code"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"CITY", "Province", "PROVINCE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"BORDERS", "Country1", "COUNTRY", "Code"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"BORDERS", "Country2", "COUNTRY", "Code"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"ORGANIZATION", "City", "CITY", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"ISMEMBER", "Country", "COUNTRY", "Code"}));
  KM_RETURN_IF_ERROR(
      db->AddForeignKey({"ISMEMBER", "Organization", "ORGANIZATION", "Abbreviation"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"ECONOMY", "Country", "COUNTRY", "Code"}));
  return Status::OK();
}

// Real capitals for the countries of the name pool; countries not listed
// get a drawn city name.
const char* RealCapital(const std::string& code) {
  static const std::unordered_map<std::string, const char*>* kCapitals =
      new std::unordered_map<std::string, const char*>{
          {"US", "Washington"},  {"IT", "Rome"},      {"ES", "Madrid"},
          {"FR", "Paris"},       {"DE", "Berlin"},    {"GB", "London"},
          {"IE", "Dublin"},      {"PT", "Lisbon"},    {"NL", "Amsterdam"},
          {"BE", "Brussels"},    {"CH", "Bern"},      {"AT", "Vienna"},
          {"GR", "Athens"},      {"SE", "Stockholm"}, {"NO", "Oslo"},
          {"FI", "Helsinki"},    {"DK", "Copenhagen"},{"PL", "Warsaw"},
          {"CZ", "Prague"},      {"HU", "Budapest"},  {"RO", "Bucharest"},
          {"BG", "Sofia"},       {"HR", "Zagreb"},    {"RS", "Belgrade"},
          {"SI", "Ljubljana"},   {"UA", "Kiev"},      {"TR", "Ankara"},
          {"RU", "Moscow"},      {"CN", "Beijing"},   {"JP", "Tokyo"},
          {"IN", "Delhi"},       {"KR", "Seoul"},     {"VN", "Hanoi"},
          {"TH", "Bangkok"},     {"ID", "Jakarta"},   {"SG", "Singapore"},
          {"IL", "Jerusalem"},   {"SA", "Riyadh"},    {"IR", "Tehran"},
          {"CA", "Ottawa"},      {"MX", "Mexico City"},{"BR", "Brasilia"},
          {"AR", "Buenos Aires"},{"CL", "Santiago"},  {"CO", "Bogota"},
          {"PE", "Lima"},        {"UY", "Montevideo"},{"EG", "Cairo"},
          {"MA", "Rabat"},       {"NG", "Abuja"},     {"KE", "Nairobi"},
          {"ZA", "Pretoria"},    {"TN", "Tunis"},     {"GH", "Accra"},
          {"AU", "Canberra"},    {"NZ", "Wellington"},
      };
  auto it = kCapitals->find(code);
  return it == kCapitals->end() ? nullptr : it->second;
}

}  // namespace

StatusOr<Database> BuildMondialDatabase(const MondialOptions& options) {
  Database db("mondial");
  KM_RETURN_IF_ERROR(CreateSchema(&db));
  Rng rng(options.seed);
  auto T = [](const std::string& s) { return Value::Text(s); };
  auto I = [](int64_t v) { return Value::Int(v); };
  auto R = [](double v) { return Value::Real(v); };

  // Continents.
  const char* kContinents[] = {"Europe", "Asia", "America", "Africa", "Oceania"};
  for (const char* c : kContinents) {
    KM_RETURN_IF_ERROR(
        db.Insert("CONTINENT", {T(c), R(5e6 + rng.UniformDouble() * 4e7)}));
  }

  // Countries with provinces and cities; real city names are used first,
  // synthesized ones afterwards.
  std::vector<std::string> city_ids;
  std::vector<std::string> province_ids;
  size_t city_seq = 0, prov_seq = 0, enc_seq = 0;
  std::vector<std::string> unused_cities = RealCities();
  rng.Shuffle(&unused_cities);
  size_t real_city_next = 0;

  for (const CountryInfo& c : Countries()) {
    const char* real_capital = RealCapital(c.code);
    std::string capital =
        real_capital != nullptr ? real_capital
        : real_city_next < unused_cities.size() ? unused_cities[real_city_next++]
                                                : MakePlaceName(&rng);
    KM_RETURN_IF_ERROR(db.Insert(
        "COUNTRY", {T(c.code), T(c.name), T(capital),
                    I(static_cast<int64_t>(1 + rng.Uniform(1400)) * 1000000),
                    R(1e4 + rng.UniformDouble() * 9e6)}));
    KM_RETURN_IF_ERROR(db.Insert(
        "ENCOMPASSES", {T("e" + std::to_string(enc_seq++)), T(c.code),
                        T(c.continent), R(100.0)}));

    size_t num_prov = 2 + rng.Uniform(options.provinces_per_country_max - 1);
    for (size_t p = 0; p < num_prov; ++p) {
      std::string prov_id = "prov" + std::to_string(prov_seq++);
      KM_RETURN_IF_ERROR(db.Insert(
          "PROVINCE", {T(prov_id), T(MakePlaceName(&rng)), T(c.code),
                       I(static_cast<int64_t>(1 + rng.Uniform(40)) * 100000),
                       R(1e3 + rng.UniformDouble() * 2e5)}));
      province_ids.push_back(prov_id);

      size_t num_cities = 1 + rng.Uniform(options.cities_per_province_max);
      for (size_t ci = 0; ci < num_cities; ++ci) {
        std::string city_id = "city" + std::to_string(city_seq++);
        std::string name = (p == 0 && ci == 0) ? capital
                           : (real_city_next < unused_cities.size() &&
                              rng.Bernoulli(0.25))
                               ? unused_cities[real_city_next++]
                               : MakePlaceName(&rng);
        KM_RETURN_IF_ERROR(db.Insert(
            "CITY", {T(city_id), T(name), T(c.code), T(prov_id),
                     I(static_cast<int64_t>(1 + rng.Uniform(9000)) * 1000)}));
        city_ids.push_back(city_id);
      }
    }
  }

  // Physical features.
  const struct {
    const char* feature;
    const char* link;
    size_t count;
    double metric_lo, metric_hi;
  } kFeatures[] = {
      {"RIVER", "GEO_RIVER", options.num_rivers, 100, 6500},
      {"LAKE", "GEO_LAKE", options.num_lakes, 10, 80000},
      {"MOUNTAIN", "GEO_MOUNTAIN", options.num_mountains, 800, 8800},
      {"SEA", "GEO_SEA", options.num_seas, 100, 11000},
      {"ISLAND", "GEO_ISLAND", options.num_islands, 5, 500000},
      {"DESERT", "GEO_DESERT", options.num_deserts, 1000, 9000000},
  };
  size_t geo_seq = 0;
  for (const auto& f : kFeatures) {
    std::unordered_set<std::string> used;
    for (size_t i = 0; i < f.count; ++i) {
      std::string name = MakePlaceName(&rng);
      if (!used.insert(name).second) continue;  // skip duplicate names
      KM_RETURN_IF_ERROR(db.Insert(
          f.feature,
          {T(name), R(f.metric_lo + rng.UniformDouble() * (f.metric_hi - f.metric_lo))}));
      // Each feature is located in 1–3 countries (subject to coverage).
      if (!rng.Bernoulli(options.link_coverage)) continue;
      size_t spans = 1 + rng.Uniform(3);
      std::unordered_set<std::string> in;
      for (size_t s = 0; s < spans; ++s) {
        const CountryInfo& c = rng.Pick(Countries());
        if (!in.insert(c.code).second) continue;
        KM_RETURN_IF_ERROR(db.Insert(
            f.link, {T("g" + std::to_string(geo_seq++)), T(name), T(c.code),
                     T(rng.Pick(province_ids))}));
      }
    }
  }

  // Demographics.
  const char* kLanguages[] = {"English", "Spanish", "French",  "German",  "Italian",
                              "Mandarin", "Hindi",  "Arabic",  "Russian", "Japanese",
                              "Portuguese", "Dutch", "Greek",  "Turkish", "Korean"};
  const char* kReligions[] = {"Christianity", "Islam", "Hinduism", "Buddhism",
                              "Judaism", "Taoism", "Shinto", "Sikhism"};
  const char* kEthnic[] = {"Latin", "Slavic", "Germanic", "Celtic", "Arab",
                           "Han", "Bantu", "Turkic", "Persian", "Malay"};
  size_t demo_seq = 0;
  for (const CountryInfo& c : Countries()) {
    size_t nl = 1 + rng.Uniform(3);
    for (size_t i = 0; i < nl; ++i) {
      KM_RETURN_IF_ERROR(db.Insert(
          "LANGUAGE", {T("l" + std::to_string(demo_seq++)), T(c.code),
                       T(kLanguages[rng.Uniform(15)]), R(rng.UniformDouble() * 100)}));
    }
    KM_RETURN_IF_ERROR(db.Insert(
        "RELIGION", {T("r" + std::to_string(demo_seq++)), T(c.code),
                     T(kReligions[rng.Uniform(8)]), R(rng.UniformDouble() * 100)}));
    KM_RETURN_IF_ERROR(db.Insert(
        "ETHNICGROUP", {T("eg" + std::to_string(demo_seq++)), T(c.code),
                        T(kEthnic[rng.Uniform(10)]), R(rng.UniformDouble() * 100)}));
    KM_RETURN_IF_ERROR(db.Insert(
        "ECONOMY", {T("ec" + std::to_string(demo_seq++)), T(c.code),
                    R(1e9 + rng.UniformDouble() * 2e13), R(rng.UniformDouble() * 15),
                    T(std::string(c.code) + "D")}));
  }

  // Borders among countries of the same continent.
  size_t border_seq = 0;
  const auto& countries = Countries();
  for (size_t i = 0; i < countries.size(); ++i) {
    for (size_t j = i + 1; j < countries.size(); ++j) {
      if (std::string(countries[i].continent) != countries[j].continent) continue;
      if (!rng.Bernoulli(0.12)) continue;
      KM_RETURN_IF_ERROR(db.Insert(
          "BORDERS", {T("b" + std::to_string(border_seq++)), T(countries[i].code),
                      T(countries[j].code), R(10 + rng.UniformDouble() * 4000)}));
    }
  }

  // Organizations and memberships.
  const char* kOrgs[] = {"UN",   "EU",    "NATO", "OECD", "WTO",  "IMF",  "WHO",
                         "OPEC", "ASEAN", "AU",   "OAS",  "G7",   "G20",  "APEC",
                         "EFTA", "CERN",  "ESA",  "FAO",  "ILO",  "UNESCO"};
  std::vector<std::string> org_names;
  for (size_t i = 0; i < options.num_organizations && i < 20; ++i) {
    KM_RETURN_IF_ERROR(db.Insert(
        "ORGANIZATION",
        {T(kOrgs[i]), T(std::string("The ") + kOrgs[i] + " international organization"),
         T(rng.Pick(city_ids)), I(static_cast<int64_t>(1900 + rng.Uniform(100)))}));
    org_names.push_back(kOrgs[i]);
  }
  size_t mem_seq = 0;
  for (const CountryInfo& c : Countries()) {
    if (!rng.Bernoulli(options.link_coverage)) continue;
    size_t n = 1 + rng.Uniform(5);
    std::unordered_set<std::string> in;
    for (size_t i = 0; i < n; ++i) {
      const std::string& org = rng.Pick(org_names);
      if (!in.insert(org).second) continue;
      KM_RETURN_IF_ERROR(db.Insert(
          "ISMEMBER", {T("im" + std::to_string(mem_seq++)), T(c.code), T(org),
                       T(rng.Bernoulli(0.8) ? "member" : "observer")}));
    }
  }

  KM_RETURN_IF_ERROR(db.CheckIntegrity());
  return db;
}

}  // namespace km
