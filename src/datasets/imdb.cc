#include "datasets/imdb.h"

#include <unordered_set>

#include "common/rng.h"
#include "common/strings.h"
#include "datasets/namepools.h"

namespace km {

namespace {

Status CreateSchema(Database* db) {
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "MOVIE", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                {"Title", DataType::kText, DomainTag::kFreeText},
                {"Year", DataType::kInt, DomainTag::kYear},
                {"Runtime", DataType::kInt, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PERSON", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                 {"Name", DataType::kText, DomainTag::kPersonName},
                 {"BirthYear", DataType::kInt, DomainTag::kYear}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "CASTING", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                  {"Movie", DataType::kText, DomainTag::kIdentifier},
                  {"Person", DataType::kText, DomainTag::kIdentifier},
                  {"Character", DataType::kText, DomainTag::kPersonName}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "DIRECTS", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                  {"Movie", DataType::kText, DomainTag::kIdentifier},
                  {"Person", DataType::kText, DomainTag::kIdentifier}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "GENRE", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                {"Name", DataType::kText, DomainTag::kProperNoun}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "MOVIE_GENRE", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                      {"Movie", DataType::kText, DomainTag::kIdentifier},
                      {"Genre", DataType::kText, DomainTag::kIdentifier}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "COMPANY", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                  {"Name", DataType::kText, DomainTag::kProperNoun},
                  {"Country", DataType::kText, DomainTag::kCountryCode}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "PRODUCED_BY", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                      {"Movie", DataType::kText, DomainTag::kIdentifier},
                      {"Company", DataType::kText, DomainTag::kIdentifier}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "RATING", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                 {"Movie", DataType::kText, DomainTag::kIdentifier},
                 {"Score", DataType::kReal, DomainTag::kQuantity},
                 {"Votes", DataType::kInt, DomainTag::kQuantity}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "KEYWORD", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                  {"Word", DataType::kText, DomainTag::kFreeText}})));
  KM_RETURN_IF_ERROR(db->CreateRelation(RelationSchema(
      "MOVIE_KEYWORD", {{"Id", DataType::kText, DomainTag::kIdentifier, true},
                        {"Movie", DataType::kText, DomainTag::kIdentifier},
                        {"Keyword", DataType::kText, DomainTag::kIdentifier}})));

  KM_RETURN_IF_ERROR(db->AddForeignKey({"CASTING", "Movie", "MOVIE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"CASTING", "Person", "PERSON", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"DIRECTS", "Movie", "MOVIE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"DIRECTS", "Person", "PERSON", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"MOVIE_GENRE", "Movie", "MOVIE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"MOVIE_GENRE", "Genre", "GENRE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"PRODUCED_BY", "Movie", "MOVIE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"PRODUCED_BY", "Company", "COMPANY", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"RATING", "Movie", "MOVIE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"MOVIE_KEYWORD", "Movie", "MOVIE", "Id"}));
  KM_RETURN_IF_ERROR(db->AddForeignKey({"MOVIE_KEYWORD", "Keyword", "KEYWORD", "Id"}));
  return Status::OK();
}

std::string MakeMovieTitle(Rng* rng) {
  static const std::vector<std::string>* kAdj = new std::vector<std::string>{
      "Silent",  "Crimson", "Hidden",  "Broken",  "Golden", "Midnight",
      "Eternal", "Savage",  "Gentle",  "Frozen",  "Burning","Lost",
      "Final",   "Distant", "Electric","Hollow",  "Iron",   "Wild"};
  static const std::vector<std::string>* kNoun = new std::vector<std::string>{
      "Valley",  "Horizon", "Empire",  "River",  "Garden",  "Station",
      "Harbor",  "Mirror",  "Shadow",  "Voyage", "Kingdom", "Letter",
      "Winter",  "Promise", "Road",    "Island", "Tide",    "Echo"};
  std::string title;
  if (rng->Bernoulli(0.5)) title += "The ";
  title += rng->Pick(*kAdj) + " " + rng->Pick(*kNoun);
  if (rng->Bernoulli(0.12)) title += " II";
  return title;
}

}  // namespace

StatusOr<Database> BuildImdbDatabase(const ImdbOptions& options) {
  Database db("imdb");
  KM_RETURN_IF_ERROR(CreateSchema(&db));
  Rng rng(options.seed);
  auto T = [](const std::string& s) { return Value::Text(s); };
  auto I = [](int64_t v) { return Value::Int(v); };

  // Genres.
  const char* kGenres[] = {"Drama",   "Comedy",  "Thriller", "Horror",
                           "Romance", "Action",  "Adventure","Documentary",
                           "Animation","Fantasy","Crime",    "Western"};
  std::vector<std::string> genre_ids;
  for (size_t i = 0; i < 12; ++i) {
    std::string id = "g" + std::to_string(i);
    KM_RETURN_IF_ERROR(db.Insert("GENRE", {T(id), T(kGenres[i])}));
    genre_ids.push_back(id);
  }

  // Companies.
  std::vector<std::string> company_ids;
  for (size_t i = 0; i < options.companies; ++i) {
    std::string id = "c" + std::to_string(i);
    std::string name = rng.Pick(LastNames()) + " " +
                       (rng.Bernoulli(0.5) ? "Pictures" : "Studios");
    KM_RETURN_IF_ERROR(db.Insert(
        "COMPANY", {T(id), T(name), T(rng.Pick(Countries()).code)}));
    company_ids.push_back(id);
  }

  // Keywords.
  std::vector<std::string> keyword_ids;
  for (size_t i = 0; i < options.keywords; ++i) {
    std::string id = "k" + std::to_string(i);
    KM_RETURN_IF_ERROR(db.Insert(
        "KEYWORD", {T(id), T(ToLower(rng.Pick(TitleNouns())) + "-" +
                             std::to_string(i % 17))}));
    keyword_ids.push_back(id);
  }

  // People.
  std::vector<std::string> person_ids;
  std::unordered_set<std::string> used_names;
  for (size_t i = 0; i < options.persons; ++i) {
    std::string name;
    for (int attempt = 0; attempt < 20; ++attempt) {
      name = MakePersonName(&rng);
      if (used_names.insert(name).second) break;
      name.clear();
    }
    if (name.empty()) {
      name = MakePersonName(&rng) + " " + std::to_string(i);
      used_names.insert(name);
    }
    std::string id = "p" + std::to_string(i);
    KM_RETURN_IF_ERROR(db.Insert(
        "PERSON", {T(id), T(name), I(static_cast<int64_t>(1930 + rng.Uniform(75)))}));
    person_ids.push_back(id);
  }

  // Movies with castings, directors, genres, producers, ratings, keywords.
  ZipfSampler person_zipf(person_ids.size(), 1.1);
  size_t link_seq = 0;
  for (size_t i = 0; i < options.movies; ++i) {
    std::string id = "m" + std::to_string(i);
    KM_RETURN_IF_ERROR(db.Insert(
        "MOVIE", {T(id), T(MakeMovieTitle(&rng)),
                  I(static_cast<int64_t>(1950 + rng.Uniform(74))),
                  I(static_cast<int64_t>(70 + rng.Uniform(120)))}));
    size_t cast_n =
        1 + rng.Uniform(static_cast<uint64_t>(2 * options.cast_per_movie_mean));
    std::unordered_set<size_t> chosen;
    for (size_t c = 0; c < cast_n; ++c) {
      size_t p = person_zipf.Sample(&rng);
      if (!chosen.insert(p).second) continue;
      KM_RETURN_IF_ERROR(db.Insert(
          "CASTING", {T("cast" + std::to_string(link_seq++)), T(id),
                      T(person_ids[p]), T(MakePersonName(&rng))}));
    }
    KM_RETURN_IF_ERROR(db.Insert(
        "DIRECTS", {T("dir" + std::to_string(link_seq++)), T(id),
                    T(person_ids[person_zipf.Sample(&rng)])}));
    size_t genres = 1 + rng.Uniform(3);
    std::unordered_set<std::string> gset;
    for (size_t g = 0; g < genres; ++g) {
      const std::string& gid = rng.Pick(genre_ids);
      if (!gset.insert(gid).second) continue;
      KM_RETURN_IF_ERROR(db.Insert(
          "MOVIE_GENRE", {T("mg" + std::to_string(link_seq++)), T(id), T(gid)}));
    }
    KM_RETURN_IF_ERROR(db.Insert(
        "PRODUCED_BY", {T("pb" + std::to_string(link_seq++)), T(id),
                        T(rng.Pick(company_ids))}));
    KM_RETURN_IF_ERROR(db.Insert(
        "RATING", {T("r" + std::to_string(link_seq++)), T(id),
                   Value::Real(1.0 + rng.UniformDouble() * 9.0),
                   I(static_cast<int64_t>(10 + rng.Uniform(500000)))}));
    size_t kws = rng.Uniform(4);
    std::unordered_set<std::string> kwset;
    for (size_t k = 0; k < kws; ++k) {
      const std::string& kid = rng.Pick(keyword_ids);
      if (!kwset.insert(kid).second) continue;
      KM_RETURN_IF_ERROR(db.Insert(
          "MOVIE_KEYWORD", {T("mk" + std::to_string(link_seq++)), T(id), T(kid)}));
    }
  }

  KM_RETURN_IF_ERROR(db.CheckIntegrity());
  return db;
}

}  // namespace km
