#include "datasets/scaling.h"

#include "common/rng.h"
#include "datasets/namepools.h"

namespace km {

StatusOr<Database> BuildScalingDatabase(const ScalingOptions& options) {
  if (options.num_relations == 0 || options.attributes_per_relation < 2) {
    return Status::InvalidArgument("scaling database needs >=1 relation and >=2 attrs");
  }
  Database db("scaling");
  Rng rng(options.seed);

  static const char* kPayloadNames[] = {"Name",  "Title",  "City",   "Country",
                                        "Email", "Phone",  "Year",   "Amount",
                                        "Label", "Status", "Code",   "Owner"};
  static const DomainTag kPayloadTags[] = {
      DomainTag::kPersonName, DomainTag::kFreeText, DomainTag::kCityName,
      DomainTag::kCountryCode, DomainTag::kEmail,   DomainTag::kPhone,
      DomainTag::kYear,        DomainTag::kQuantity, DomainTag::kProperNoun,
      DomainTag::kNone,        DomainTag::kIdentifier, DomainTag::kPersonName};

  // Relations REL0..RELn-1: PK "Id", FK "Prev" to the previous relation
  // (except REL0), payload attributes cycling through the pools.
  for (size_t r = 0; r < options.num_relations; ++r) {
    std::vector<AttributeDef> attrs;
    attrs.push_back({"Id", DataType::kText, DomainTag::kIdentifier, true});
    size_t payload = options.attributes_per_relation - 1;
    bool has_fk = r > 0;
    if (has_fk && payload > 0) --payload;
    if (has_fk) attrs.push_back({"Prev", DataType::kText, DomainTag::kIdentifier});
    for (size_t a = 0; a < payload; ++a) {
      size_t pick = (r + a) % 12;
      DataType type = kPayloadTags[pick] == DomainTag::kYear ||
                              kPayloadTags[pick] == DomainTag::kQuantity
                          ? DataType::kInt
                          : DataType::kText;
      std::string name = kPayloadNames[pick];
      if (a >= 12) name += std::to_string(a / 12);
      attrs.push_back({name, type, kPayloadTags[pick]});
    }
    KM_RETURN_IF_ERROR(
        db.CreateRelation(RelationSchema("REL" + std::to_string(r), attrs)));
  }
  for (size_t r = 1; r < options.num_relations; ++r) {
    KM_RETURN_IF_ERROR(db.AddForeignKey({"REL" + std::to_string(r), "Prev",
                                         "REL" + std::to_string(r - 1), "Id"}));
  }
  // Chord foreign keys for join-path multiplicity: RELr gets an extra FK
  // column referencing a random earlier relation.
  size_t chords =
      static_cast<size_t>(options.extra_fk_fraction * options.num_relations);
  for (size_t c = 0; c < chords; ++c) {
    size_t r = 2 + rng.Uniform(options.num_relations > 2 ? options.num_relations - 2 : 1);
    if (r >= options.num_relations) continue;
    size_t target = rng.Uniform(r - 1);
    // Chords are realized as link relations to keep schemas valid (an ALTER
    // would require rebuilding the table).
    std::string link = "LINK" + std::to_string(c);
    if (db.schema().FindRelation(link) != nullptr) continue;
    KM_RETURN_IF_ERROR(db.CreateRelation(RelationSchema(
        link, {{"Id", DataType::kText, DomainTag::kIdentifier, true},
               {"A", DataType::kText, DomainTag::kIdentifier},
               {"B", DataType::kText, DomainTag::kIdentifier}})));
    KM_RETURN_IF_ERROR(
        db.AddForeignKey({link, "A", "REL" + std::to_string(r), "Id"}));
    KM_RETURN_IF_ERROR(
        db.AddForeignKey({link, "B", "REL" + std::to_string(target), "Id"}));
  }

  // Rows.
  auto T = [](const std::string& s) { return Value::Text(s); };
  for (size_t r = 0; r < options.num_relations; ++r) {
    const RelationSchema* rel = db.schema().FindRelation("REL" + std::to_string(r));
    for (size_t i = 0; i < options.rows_per_relation; ++i) {
      Row row;
      for (const AttributeDef& a : rel->attributes()) {
        if (a.name == "Id") {
          row.push_back(T("r" + std::to_string(r) + "_" + std::to_string(i)));
        } else if (a.name == "Prev") {
          row.push_back(T("r" + std::to_string(r - 1) + "_" +
                          std::to_string(rng.Uniform(options.rows_per_relation))));
        } else if (a.type == DataType::kInt) {
          row.push_back(Value::Int(static_cast<int64_t>(
              a.tag == DomainTag::kYear ? 1990 + rng.Uniform(34) : rng.Uniform(1000))));
        } else {
          switch (a.tag) {
            case DomainTag::kPersonName:
              row.push_back(T(MakePersonName(&rng)));
              break;
            case DomainTag::kCityName:
              row.push_back(T(rng.Pick(RealCities())));
              break;
            case DomainTag::kCountryCode:
              row.push_back(T(rng.Pick(Countries()).code));
              break;
            case DomainTag::kEmail:
              row.push_back(T(MakeEmail("user" + std::to_string(i), &rng)));
              break;
            case DomainTag::kPhone:
              row.push_back(T(MakePhone(&rng)));
              break;
            case DomainTag::kFreeText:
              row.push_back(T(MakePaperTitle(&rng)));
              break;
            default:
              row.push_back(T("v" + std::to_string(rng.Uniform(100))));
          }
        }
      }
      KM_RETURN_IF_ERROR(db.Insert(rel->name(), std::move(row)));
    }
  }
  for (size_t c = 0;; ++c) {
    const RelationSchema* rel = db.schema().FindRelation("LINK" + std::to_string(c));
    if (rel == nullptr) break;
    // Link rows: resolve the FK targets from the schema's foreign keys.
    std::string ra, rb;
    for (const ForeignKey& fk : db.schema().foreign_keys()) {
      if (fk.from_relation != rel->name()) continue;
      if (fk.from_attribute == "A") ra = fk.to_relation;
      if (fk.from_attribute == "B") rb = fk.to_relation;
    }
    for (size_t i = 0; i < options.rows_per_relation / 2; ++i) {
      KM_RETURN_IF_ERROR(db.Insert(
          rel->name(),
          {T("l" + std::to_string(c) + "_" + std::to_string(i)),
           T("r" + ra.substr(3) + "_" + std::to_string(rng.Uniform(options.rows_per_relation))),
           T("r" + rb.substr(3) + "_" +
             std::to_string(rng.Uniform(options.rows_per_relation)))}));
    }
  }

  KM_RETURN_IF_ERROR(db.CheckIntegrity());
  return db;
}

}  // namespace km
