// A Mondial-like geography database: many relations, rich foreign-key
// fabric, multiple join paths between most relation pairs — the "complex
// schema" pole of the paper's evaluation.
//
// 24 relations: COUNTRY, CONTINENT, ENCOMPASSES, PROVINCE, CITY, RIVER,
// LAKE, MOUNTAIN, SEA, ISLAND, DESERT, GEO_RIVER, GEO_LAKE, GEO_MOUNTAIN,
// GEO_SEA, GEO_ISLAND, GEO_DESERT, LANGUAGE, RELIGION, ETHNICGROUP,
// BORDERS, ORGANIZATION, ISMEMBER, ECONOMY.

#ifndef KM_DATASETS_MONDIAL_H_
#define KM_DATASETS_MONDIAL_H_

#include <cstdint>

#include "common/status.h"
#include "relational/database.h"

namespace km {

/// Instance-size knobs (defaults give a Mondial-scale instance: a few
/// thousand cities, hundreds of everything else).
struct MondialOptions {
  size_t provinces_per_country_max = 6;
  size_t cities_per_province_max = 4;
  size_t num_rivers = 120;
  size_t num_lakes = 80;
  size_t num_mountains = 100;
  size_t num_seas = 30;
  size_t num_islands = 60;
  size_t num_deserts = 30;
  size_t num_organizations = 40;
  /// Fraction of feature/membership link rows actually inserted. 1.0 gives
  /// densely populated foreign keys; low values simulate sparse joins
  /// (most features located nowhere), the regime where mutual-information
  /// edge weights earn their keep.
  double link_coverage = 1.0;
  uint64_t seed = 7;
};

/// Builds the geography database over the ~60 real countries of the name
/// pool.
StatusOr<Database> BuildMondialDatabase(const MondialOptions& options = {});

}  // namespace km

#endif  // KM_DATASETS_MONDIAL_H_
