#include "matching/munkres.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace km {

namespace {
// Large finite cost standing in for "forbidden" so potential arithmetic
// never overflows.
constexpr double kBigCost = 1e15;
}  // namespace

StatusOr<Assignment> MaxWeightAssignment(const Matrix& weights) {
  const size_t n = weights.rows();
  const size_t m = weights.cols();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("assignment matrix must be non-empty");
  }
  if (n > m) {
    return Status::InvalidArgument("assignment requires rows <= cols (" +
                                   std::to_string(n) + " > " + std::to_string(m) + ")");
  }

  // Min-cost transformation: cost = -weight, forbidden pairs get kBigCost.
  auto cost = [&](size_t r, size_t c) -> double {
    double w = weights.At(r, c);
    if (w <= kForbidden) return kBigCost;
    return -w;
  };

  // Potential-based Hungarian algorithm (rows 1..n, cols 1..m; index 0 is
  // the virtual root).
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0);    // p[j]: row matched to column j
  std::vector<size_t> way(m + 1, 0);  // way[j]: previous column on the path

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(m + 1, std::numeric_limits<double>::infinity());
    std::vector<bool> used(m + 1, false);
    // km-lint: bounded — each pass marks one more column used, so the
    // Dijkstra-like scan runs at most m+1 times.
    do {
      used[j0] = true;
      size_t i0 = p[j0], j1 = 0;
      double delta = std::numeric_limits<double>::infinity();
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the path. km-lint: bounded — the path visits each
    // column at most once, so this walk takes at most m steps.
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  Assignment out;
  out.col_for_row.assign(n, -1);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] == 0) continue;
    size_t row = p[j] - 1;
    KM_BOUNDS(row, n);
    size_t col = j - 1;
    if (weights.At(row, col) <= kForbidden) continue;  // forced onto forbidden
    out.col_for_row[row] = static_cast<int>(col);
    out.total_weight += weights.At(row, col);
  }
  // The augmenting-path construction matches each column at most once, so
  // the keyword→term mapping must come out injective.
  KM_DCHECK([&out] {
    std::vector<int> cols = out.col_for_row;
    std::sort(cols.begin(), cols.end());
    return std::adjacent_find(cols.begin(), cols.end(),
                              [](int a, int b) { return a >= 0 && a == b; }) ==
           cols.end();
  }());
  return out;
}

}  // namespace km
