// Top-k enumeration of bipartite assignments (Murty's algorithm).
//
// The paper needs not just the best configuration but a ranked list of the
// k best ones. Murty's partitioning scheme enumerates assignments in
// non-increasing weight order: each solved node of the search tree is split
// into subproblems that respectively forbid one edge of the solution and
// force all preceding edges.

#ifndef KM_MATCHING_MURTY_H_
#define KM_MATCHING_MURTY_H_

#include <vector>

#include "common/matrix.h"
#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "matching/munkres.h"

namespace km {

/// Result of a top-k assignment enumeration. Running out of feasible
/// assignments (or out of budget) is not an error: the list holds whatever
/// was enumerated, flagged so callers can tell a full answer from a cut.
struct AssignmentList {
  /// Complete assignments in non-increasing total-weight order.
  std::vector<Assignment> assignments;
  /// True when fewer than the requested k feasible assignments exist.
  bool truncated = false;
  /// True when the QueryContext budget/deadline stopped the enumeration
  /// early (implies truncated).
  bool budget_exhausted = false;

  /// Container conveniences: the list reads like the vector it wraps.
  size_t size() const { return assignments.size(); }
  bool empty() const { return assignments.empty(); }
  const Assignment& operator[](size_t i) const { return assignments[i]; }
  std::vector<Assignment>::const_iterator begin() const { return assignments.begin(); }
  std::vector<Assignment>::const_iterator end() const { return assignments.end(); }
};

/// Enumerates up to `k` complete assignments, best first. `ctx` (optional)
/// is polled once per Murty subproblem; on exhaustion the assignments found
/// so far are returned with budget_exhausted set. The optimal assignment is
/// always included when one exists, even under an already-spent budget.
/// `pool` (optional) parallelizes the O(rows) independent child re-solves
/// of each popped node; the enumeration order and output are identical to
/// the serial run. `parent` (optional) hosts a "forward.murty" span
/// counting popped nodes and child solves.
StatusOr<AssignmentList> TopKAssignments(const Matrix& weights, size_t k,
                                         QueryContext* ctx = nullptr,
                                         ThreadPool* pool = nullptr,
                                         TraceNode* parent = nullptr);

}  // namespace km

#endif  // KM_MATCHING_MURTY_H_
