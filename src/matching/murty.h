// Top-k enumeration of bipartite assignments (Murty's algorithm).
//
// The paper needs not just the best configuration but a ranked list of the
// k best ones. Murty's partitioning scheme enumerates assignments in
// non-increasing weight order: each solved node of the search tree is split
// into subproblems that respectively forbid one edge of the solution and
// force all preceding edges.

#ifndef KM_MATCHING_MURTY_H_
#define KM_MATCHING_MURTY_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "matching/munkres.h"

namespace km {

/// Returns up to `k` complete assignments in non-increasing total-weight
/// order. Fewer are returned when fewer complete assignments exist.
StatusOr<std::vector<Assignment>> TopKAssignments(const Matrix& weights, size_t k);

}  // namespace km

#endif  // KM_MATCHING_MURTY_H_
