#include "matching/config_gen.h"

#include <algorithm>

#include "common/check.h"
#include "common/failpoint.h"
#include "matching/munkres.h"
#include "matching/murty.h"

namespace km {

ConfigurationGenerator::ConfigurationGenerator(const Terminology& terminology,
                                               const DatabaseSchema& schema,
                                               const WeightMatrixBuilder& weights,
                                               ConfigGenOptions options)
    : terminology_(terminology),
      weights_(weights),
      contextualizer_(terminology, schema, options.contextualize),
      options_(options) {}

StatusOr<std::vector<Configuration>> ConfigurationGenerator::Generate(
    const std::vector<std::string>& keywords, size_t k, QueryContext* ctx,
    ForwardReport* report, TraceNode* parent) const {
  if (keywords.empty()) {
    return Status::InvalidArgument("keyword query is empty");
  }
  if (keywords.size() > terminology_.size()) {
    return Status::InvalidArgument(
        "more keywords than database terms; no injective configuration exists");
  }
  Matrix intrinsic = weights_.Build(keywords, ctx, parent);
  return GenerateFromMatrix(intrinsic, k, ctx, report, parent);
}

StatusOr<Configuration> ConfigurationGenerator::HungarianOptimum(
    const Matrix& intrinsic) const {
  KM_ASSIGN_OR_RETURN(Assignment sol, MaxWeightAssignment(intrinsic));
  if (!sol.complete()) {
    return Status::FailedPrecondition("no complete assignment exists");
  }
  Configuration c;
  c.term_for_keyword.reserve(sol.col_for_row.size());
  for (int col : sol.col_for_row) {
    c.term_for_keyword.push_back(static_cast<size_t>(col));
  }
  c.score = options_.mode == ConfigGenMode::kIntrinsicOnly
                ? sol.total_weight
                : contextualizer_.ScoreSequence(intrinsic, c.term_for_keyword);
  KM_DCHECK(c.IsInjective());
  return c;
}

StatusOr<std::vector<Configuration>> ConfigurationGenerator::GenerateFromMatrix(
    const Matrix& intrinsic, size_t k, QueryContext* ctx,
    ForwardReport* report, TraceNode* parent) const {
  ForwardReport local_report;
  if (report == nullptr) report = &local_report;
  if (k == 0) return std::vector<Configuration>{};

  const size_t pool =
      options_.mode == ConfigGenMode::kIntrinsicOnly
          ? k
          : std::max(k, options_.candidate_pool);

  auto enumerated = TopKAssignments(intrinsic, pool, ctx, options_.pool, parent);
  std::vector<Assignment> candidates;
  if (enumerated.ok()) {
    report->truncated = enumerated->truncated;
    report->budget_exhausted = enumerated->budget_exhausted;
    candidates = std::move(enumerated->assignments);
  }
  if (candidates.empty()) {
    // Forward floor: Murty found nothing (infeasible, failed, or stopped
    // before its first solution) — fall back to the single optimum, which
    // is one bounded Hungarian solve and runs even past the deadline.
    KM_SPAN(floor_span, parent, "forward.floor");
    auto floor = HungarianOptimum(intrinsic);
    if (!floor.ok()) {
      // Genuinely infeasible (or the matrix itself is bad): report the
      // original enumeration error when there was one.
      return enumerated.ok() ? std::vector<Configuration>{}
                             : StatusOr<std::vector<Configuration>>(
                                   enumerated.status());
    }
    report->fell_back = true;
    report->truncated = k > 1;
    return std::vector<Configuration>{std::move(*floor)};
  }

  std::vector<Configuration> configs;
  configs.reserve(candidates.size());
  for (const Assignment& a : candidates) {
    Configuration c;
    c.term_for_keyword.reserve(a.col_for_row.size());
    bool valid = true;
    for (int col : a.col_for_row) {
      if (col < 0) {
        valid = false;
        break;
      }
      c.term_for_keyword.push_back(static_cast<size_t>(col));
    }
    if (!valid) continue;
    c.score = a.total_weight;
    // Murty emits injective assignments; configurations inherit that.
    KM_DCHECK(c.IsInjective());
    configs.push_back(std::move(c));
  }

  if (options_.mode == ConfigGenMode::kIntrinsicOnly) {
    if (configs.size() > k) configs.resize(k);
    return configs;
  }

  KM_FAILPOINT("forward.rerank.fail");

  // Contextual re-ranking: score every candidate sequentially. The first
  // candidate is always scored (so a budget-starved query still gets one
  // comparable configuration); when the budget runs out mid-pool the
  // remaining candidates are dropped — their intrinsic scores live on a
  // different scale and must not be mixed into the ranking.
  size_t scored = 0;
  {
    KM_SPAN(rerank_span, parent, "forward.rerank");
    for (Configuration& c : configs) {
      if (scored > 0 && ctx != nullptr &&
          ctx->CheckPoint(QueryStage::kForward)) {
        report->rerank_cut = true;
        break;
      }
      c.score = contextualizer_.ScoreSequence(intrinsic, c.term_for_keyword);
      ++scored;
    }
    rerank_span.Add("candidates_scored", scored);
  }
  if (report->rerank_cut) configs.resize(scored);

  if (options_.mode == ConfigGenMode::kGreedyExtended &&
      (ctx == nullptr || !ctx->Exhausted())) {
    KM_SPAN(greedy_span, parent, "forward.greedy");
    auto greedy = GreedyExtended(intrinsic);
    if (greedy.ok()) {
      // Put the greedy solution first if it is not already in the pool.
      auto it = std::find(configs.begin(), configs.end(), *greedy);
      if (it == configs.end()) {
        configs.push_back(std::move(*greedy));
      } else {
        it->score = std::max(it->score, greedy->score);
      }
    }
  } else if (options_.mode == ConfigGenMode::kGreedyExtended) {
    report->rerank_cut = true;  // greedy extension skipped under budget
  }

  std::stable_sort(configs.begin(), configs.end(),
                   [](const Configuration& a, const Configuration& b) {
                     return a.score > b.score;
                   });
  if (configs.size() > k) configs.resize(k);
  return configs;
}

StatusOr<Configuration> ConfigurationGenerator::GreedyExtended(
    const Matrix& intrinsic) const {
  const size_t n = intrinsic.rows();
  const size_t m = intrinsic.cols();
  Matrix factors(n, m, 1.0);
  std::vector<bool> done(n, false);
  std::vector<size_t> chosen(n, 0);
  std::vector<bool> used_col(m, false);
  double total = 0;

  for (size_t step = 0; step < n; ++step) {
    // Effective weights: intrinsic × contextual factor, with committed rows
    // frozen to their choice and committed columns excluded.
    Matrix w(n, m, kForbidden);
    for (size_t r = 0; r < n; ++r) {
      if (done[r]) {
        w.At(r, chosen[r]) = intrinsic.At(r, chosen[r]) * factors.At(r, chosen[r]);
        continue;
      }
      for (size_t c = 0; c < m; ++c) {
        if (!used_col[c]) w.At(r, c) = intrinsic.At(r, c) * factors.At(r, c);
      }
    }
    KM_ASSIGN_OR_RETURN(Assignment sol, MaxWeightAssignment(w));
    if (!sol.complete()) {
      return Status::FailedPrecondition("no complete assignment under constraints");
    }
    // Commit the pending row with the highest current weight.
    double best = -1;
    size_t best_row = 0;
    for (size_t r = 0; r < n; ++r) {
      if (done[r]) continue;
      double v = w.At(r, static_cast<size_t>(sol.col_for_row[r]));
      if (v > best) {
        best = v;
        best_row = r;
      }
    }
    size_t col = static_cast<size_t>(sol.col_for_row[best_row]);
    done[best_row] = true;
    chosen[best_row] = col;
    used_col[col] = true;
    total += best;
    // Contextualize the remaining rows.
    std::vector<size_t> pending;
    for (size_t r = 0; r < n; ++r) {
      if (!done[r]) pending.push_back(r);
    }
    if (!pending.empty()) {
      contextualizer_.Apply(best_row, col, pending, &factors);
    }
  }

  Configuration out;
  out.term_for_keyword = std::move(chosen);
  out.score = total;
  // Each committed column is excluded from later rounds, so the greedy
  // extension also yields an injective mapping.
  KM_DCHECK(out.IsInjective());
  return out;
}

}  // namespace km
