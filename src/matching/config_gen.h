// Configuration discovery: the forward analysis step.
//
// Combines the intrinsic weight matrix, the contextualization rules and
// the assignment machinery into ranked configurations. Three operating
// modes are provided:
//
//  * kIntrinsicOnly     — Murty top-k directly on the intrinsic weights
//                         (no contextualization; an ablation baseline).
//  * kContextualRerank  — enumerate a candidate pool of assignments on the
//                         intrinsic weights, then re-score each candidate
//                         sequentially with the contextualization rules and
//                         keep the best k (the default; mirrors the paper's
//                         extended bipartite matching in a generate+re-rank
//                         formulation).
//  * kGreedyExtended    — the iterative extended Hungarian: solve, commit
//                         the single most confident pair, re-contextualize
//                         the remaining rows, repeat. Produces the paper's
//                         greedy best configuration first and fills the
//                         rest of the top-k from the re-ranked pool.

#ifndef KM_MATCHING_CONFIG_GEN_H_
#define KM_MATCHING_CONFIG_GEN_H_

#include <string>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "metadata/configuration.h"
#include "metadata/contextualize.h"
#include "metadata/weights.h"

namespace km {

/// Operating mode of the generator.
enum class ConfigGenMode {
  kIntrinsicOnly = 0,
  kContextualRerank = 1,
  kGreedyExtended = 2,
};

/// Options of the configuration generator.
struct ConfigGenOptions {
  ConfigGenMode mode = ConfigGenMode::kContextualRerank;
  /// Size of the intrinsic candidate pool enumerated before re-ranking
  /// (must be >= the requested k; larger pools trade time for recall).
  size_t candidate_pool = 50;
  ContextualizeOptions contextualize;
  /// Worker pool for the Murty child re-solves (not owned, may be null =
  /// serial). Output is identical either way.
  ThreadPool* pool = nullptr;
};

/// How a Generate() call fared under its budget: which rungs of the
/// forward degradation ladder were engaged, if any.
struct ForwardReport {
  /// Fewer candidates were enumerated than requested.
  bool truncated = false;
  /// The QueryContext deadline/budget stopped the Murty enumeration.
  bool budget_exhausted = false;
  /// Murty produced nothing (budget or failure) and the single Hungarian
  /// optimum was substituted — the ladder's forward floor.
  bool fell_back = false;
  /// Contextual re-ranking (or the greedy extension) was skipped or cut
  /// short for part of the pool; affected candidates were dropped to keep
  /// scores comparable.
  bool rerank_cut = false;

  bool degraded() const {
    return truncated || budget_exhausted || fell_back || rerank_cut;
  }
};

/// Generates ranked configurations for keyword queries.
class ConfigurationGenerator {
 public:
  ConfigurationGenerator(const Terminology& terminology, const DatabaseSchema& schema,
                         const WeightMatrixBuilder& weights,
                         ConfigGenOptions options = {});

  /// Top-k configurations for `keywords`, best first. Scores are the
  /// (contextualized) total assignment weights. `ctx` (optional) bounds
  /// the enumeration: on exhaustion the generator degrades — first to the
  /// candidates found so far, then to the single Hungarian optimum — and
  /// records what happened in `report` (optional).
  /// `parent` (optional) hosts the forward-stage spans (weights.build,
  /// forward.murty, forward.rerank, forward.greedy).
  StatusOr<std::vector<Configuration>> Generate(
      const std::vector<std::string>& keywords, size_t k,
      QueryContext* ctx = nullptr, ForwardReport* report = nullptr,
      TraceNode* parent = nullptr) const;

  /// Same, starting from a prebuilt intrinsic matrix (used by tests, the
  /// HMM comparison and the benchmarks).
  StatusOr<std::vector<Configuration>> GenerateFromMatrix(
      const Matrix& intrinsic, size_t k, QueryContext* ctx = nullptr,
      ForwardReport* report = nullptr, TraceNode* parent = nullptr) const;

  const ConfigGenOptions& options() const { return options_; }
  const Contextualizer& contextualizer() const { return contextualizer_; }

 private:
  StatusOr<Configuration> GreedyExtended(const Matrix& intrinsic) const;

  /// Forward floor: the single optimum assignment, contextually scored.
  /// Cheap (one Hungarian solve) and run even past the deadline so a
  /// budget-starved query still gets its best configuration.
  StatusOr<Configuration> HungarianOptimum(const Matrix& intrinsic) const;

  const Terminology& terminology_;
  const WeightMatrixBuilder& weights_;
  Contextualizer contextualizer_;
  ConfigGenOptions options_;
};

}  // namespace km

#endif  // KM_MATCHING_CONFIG_GEN_H_
