#include "matching/murty.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"

namespace km {

namespace {

// A search-tree node: the base matrix with some pairs forbidden and some
// rows forced to specific columns, together with its optimal solution.
struct Node {
  // (row, col) pairs excluded in this subproblem.
  std::vector<std::pair<size_t, size_t>> forbidden;
  // col forced for row r (or -1). Forcing is encoded by forbidding every
  // other column of the row.
  std::vector<int> forced;
  Assignment solution;

  bool operator<(const Node& other) const {
    // max-heap by solution weight
    return solution.total_weight < other.solution.total_weight;
  }
};

Matrix ApplyConstraints(const Matrix& base, const Node& node) {
  KM_CHECK_EQ(node.forced.size(), base.rows());
  Matrix w = base;
  for (const auto& [r, c] : node.forbidden) {
    KM_BOUNDS(r, w.rows());
    KM_BOUNDS(c, w.cols());
    w.At(r, c) = kForbidden;
  }
  for (size_t r = 0; r < w.rows(); ++r) {
    if (node.forced[r] < 0) continue;
    for (size_t c = 0; c < w.cols(); ++c) {
      if (c != static_cast<size_t>(node.forced[r])) w.At(r, c) = kForbidden;
    }
  }
  return w;
}

}  // namespace

StatusOr<AssignmentList> TopKAssignments(const Matrix& weights, size_t k,
                                         QueryContext* ctx) {
  AssignmentList out;
  if (k == 0) return out;

  KM_FAILPOINT("forward.murty.alloc");

  Node root;
  root.forced.assign(weights.rows(), -1);
  {
    auto sol = MaxWeightAssignment(weights);
    if (!sol.ok()) return sol.status();
    if (!sol->complete()) {
      // No complete assignment at all: an empty (fully truncated) list.
      out.truncated = true;
      return out;
    }
    root.solution = std::move(*sol);
  }

  std::vector<Assignment>& results = out.assignments;
  std::priority_queue<Node> queue;
  queue.push(std::move(root));
  // Deduplicate assignments (different constraint sets can yield the same
  // solution when weights tie).
  std::set<std::vector<int>> seen;

  while (!queue.empty() && results.size() < k) {
    // Each iteration solves O(rows) assignment subproblems; charge the
    // forward budget one unit per popped node and stop — keeping what was
    // already enumerated — when the budget or deadline runs out. The root
    // optimum is exempt: it is already solved, so even a spent budget
    // returns at least the single best assignment.
    if (ctx != nullptr && ctx->CheckPoint(QueryStage::kForward) &&
        !results.empty()) {
      out.budget_exhausted = true;
      break;
    }
    KM_FAILPOINT_CTX("forward.murty.timeout", ctx);
    Node best = queue.top();
    queue.pop();
    if (!seen.insert(best.solution.col_for_row).second) continue;
    results.push_back(best.solution);
    if (results.size() >= k) break;

    // Partition: child i forbids edge i of the solution and forces edges
    // 0..i-1.
    Node child_base = best;
    for (size_t r = 0; r < best.solution.col_for_row.size(); ++r) {
      int col = best.solution.col_for_row[r];
      if (col < 0) continue;
      if (child_base.forced[r] >= 0) continue;  // already forced; cannot vary
      Node child = child_base;
      child.forbidden.emplace_back(r, static_cast<size_t>(col));
      Matrix constrained = ApplyConstraints(weights, child);
      auto sol = MaxWeightAssignment(constrained);
      if (sol.ok() && sol->complete()) {
        // Recompute total on the *original* weights (constraints only
        // selected the support, weights are unchanged for allowed pairs).
        child.solution = std::move(*sol);
        queue.push(std::move(child));
      }
      // Force this row's edge for subsequent children.
      child_base.forced[r] = col;
    }
  }
  out.truncated = out.budget_exhausted || results.size() < k;
  // Murty's partitioning pops solutions best-first, so the emitted list
  // must be non-increasing in total weight — up to rounding: tied solutions
  // sum the same weights in different orders and can differ by a few ulps.
  KM_DCHECK([&results] {
    for (size_t i = 1; i < results.size(); ++i) {
      double prev = results[i - 1].total_weight;
      double cur = results[i].total_weight;
      double tol = 1e-9 * std::max({1.0, std::fabs(prev), std::fabs(cur)});
      if (cur > prev + tol) return false;
    }
    return true;
  }());
  return out;
}

}  // namespace km
