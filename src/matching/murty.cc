#include "matching/murty.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <queue>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/failpoint.h"
#include "common/thread_pool.h"

namespace km {

namespace {

// A search-tree node: the base matrix with some pairs forbidden and some
// rows forced to specific columns, together with its optimal solution.
struct Node {
  // (row, col) pairs excluded in this subproblem.
  std::vector<std::pair<size_t, size_t>> forbidden;
  // col forced for row r (or -1). Forcing is encoded by forbidding every
  // other column of the row.
  std::vector<int> forced;
  Assignment solution;

  bool operator<(const Node& other) const {
    // max-heap by solution weight
    return solution.total_weight < other.solution.total_weight;
  }
};

Matrix ApplyConstraints(const Matrix& base, const Node& node) {
  KM_CHECK_EQ(node.forced.size(), base.rows());
  Matrix w = base;
  for (const auto& [r, c] : node.forbidden) {
    KM_BOUNDS(r, w.rows());
    KM_BOUNDS(c, w.cols());
    w.At(r, c) = kForbidden;
  }
  for (size_t r = 0; r < w.rows(); ++r) {
    if (node.forced[r] < 0) continue;
    for (size_t c = 0; c < w.cols(); ++c) {
      if (c != static_cast<size_t>(node.forced[r])) w.At(r, c) = kForbidden;
    }
  }
  return w;
}

// Forbids every column of row `r` except `keep` (encodes forcing r → keep).
void ForceRow(Matrix* m, size_t r, size_t keep) {
  for (size_t c = 0; c < m->cols(); ++c) {
    if (c != keep) m->At(r, c) = kForbidden;
  }
}

// True when `sol` sums the base weights of its support (the partitioning
// only removes support; it never changes the weight of an allowed pair, so
// a child's reported total must already be a plain sum over `weights`).
bool TotalMatchesBase(const Matrix& weights, const Assignment& sol) {
  double total = 0;
  for (size_t r = 0; r < sol.col_for_row.size(); ++r) {
    if (sol.col_for_row[r] < 0) return false;
    total += weights.At(r, static_cast<size_t>(sol.col_for_row[r]));
  }
  double tol = 1e-9 * std::max({1.0, std::fabs(total), std::fabs(sol.total_weight)});
  return std::fabs(total - sol.total_weight) <= tol;
}

}  // namespace

StatusOr<AssignmentList> TopKAssignments(const Matrix& weights, size_t k,
                                         QueryContext* ctx, ThreadPool* pool,
                                         TraceNode* parent) {
  KM_SPAN(span, parent, "forward.murty");
  AssignmentList out;
  if (k == 0) return out;

  KM_FAILPOINT("forward.murty.alloc");

  Node root;
  root.forced.assign(weights.rows(), -1);
  {
    auto sol = MaxWeightAssignment(weights);
    if (!sol.ok()) return sol.status();
    if (!sol->complete()) {
      // No complete assignment at all: an empty (fully truncated) list.
      out.truncated = true;
      return out;
    }
    root.solution = std::move(*sol);
  }

  std::vector<Assignment>& results = out.assignments;
  std::priority_queue<Node> queue;
  queue.push(std::move(root));
  // Deduplicate assignments (different constraint sets can yield the same
  // solution when weights tie).
  std::set<std::vector<int>> seen;

  while (!queue.empty() && results.size() < k) {
    // Each iteration solves O(rows) assignment subproblems; charge the
    // forward budget one unit per popped node and stop — keeping what was
    // already enumerated — when the budget or deadline runs out. The root
    // optimum is exempt: it is already solved, so even a spent budget
    // returns at least the single best assignment.
    if (ctx != nullptr && ctx->CheckPoint(QueryStage::kForward) &&
        !results.empty()) {
      out.budget_exhausted = true;
      break;
    }
    KM_FAILPOINT_CTX("forward.murty.timeout", ctx);
    span.Add("nodes_popped");
    Node best = queue.top();
    queue.pop();
    if (!seen.insert(best.solution.col_for_row).second) continue;
    results.push_back(best.solution);
    if (results.size() >= k) break;

    // Partition: child i forbids edge i of the solution and forces edges
    // 0..i-1 (restricted to the rows that can still vary).
    std::vector<std::pair<size_t, size_t>> expand;  // (row, col) per child
    for (size_t r = 0; r < best.solution.col_for_row.size(); ++r) {
      int col = best.solution.col_for_row[r];
      if (col < 0) continue;
      if (best.forced[r] >= 0) continue;  // already forced; cannot vary
      expand.emplace_back(r, static_cast<size_t>(col));
    }
    if (expand.empty()) continue;

    // One scratch matrix carries the popped node's constraints; children
    // are derived from it in place (single-cell forbid + undo, then a
    // persistent row-force for the next child) instead of copying the full
    // base matrix and constraint lists per child. Node copies are built
    // only for the children that turn out feasible.
    Matrix scratch = ApplyConstraints(weights, best);
    std::vector<std::optional<Assignment>> child_sols(expand.size());
    span.Add("child_solves", expand.size());

    if (pool == nullptr || pool->size() <= 1 || expand.size() <= 1) {
      for (size_t i = 0; i < expand.size(); ++i) {
        const auto [r, c] = expand[i];
        const double saved = scratch.At(r, c);
        scratch.At(r, c) = kForbidden;
        auto sol = MaxWeightAssignment(scratch);
        if (sol.ok() && sol->complete()) child_sols[i] = std::move(*sol);
        scratch.At(r, c) = saved;
        ForceRow(&scratch, r, c);  // persists for children i+1..
      }
    } else {
      // Parallel child re-solves: the O(rows) subproblems of one popped
      // node are independent. Each worker rebuilds its child's constraints
      // from the shared scratch (one matrix copy — cheap next to the
      // Hungarian solve) and writes only its own slot, so the merge below
      // is byte-identical to the serial loop.
      ParallelFor(pool, expand.size(), [&](size_t i) {
        Matrix m = scratch;
        for (size_t j = 0; j < i; ++j) ForceRow(&m, expand[j].first, expand[j].second);
        m.At(expand[i].first, expand[i].second) = kForbidden;
        auto sol = MaxWeightAssignment(m);
        if (sol.ok() && sol->complete()) child_sols[i] = std::move(*sol);
      });
    }

    for (size_t i = 0; i < expand.size(); ++i) {
      if (!child_sols[i].has_value()) continue;  // infeasible: no Node built
      Node child;
      child.forbidden = best.forbidden;
      child.forbidden.push_back(expand[i]);
      child.forced = best.forced;
      for (size_t j = 0; j < i; ++j) {
        child.forced[expand[j].first] = static_cast<int>(expand[j].second);
      }
      child.solution = std::move(*child_sols[i]);
      // Constraints only selected the support; allowed-pair weights are
      // unchanged by construction, so the child total is already the sum
      // over the original matrix.
      KM_DCHECK(TotalMatchesBase(weights, child.solution));
      queue.push(std::move(child));
    }
  }
  out.truncated = out.budget_exhausted || results.size() < k;
  span.Add("assignments", results.size());
  // Murty's partitioning pops solutions best-first, so the emitted list
  // must be non-increasing in total weight — up to rounding: tied solutions
  // sum the same weights in different orders and can differ by a few ulps.
  KM_DCHECK([&results] {
    for (size_t i = 1; i < results.size(); ++i) {
      double prev = results[i - 1].total_weight;
      double cur = results[i].total_weight;
      double tol = 1e-9 * std::max({1.0, std::fabs(prev), std::fabs(cur)});
      if (cur > prev + tol) return false;
    }
    return true;
  }());
  return out;
}

}  // namespace km
