// Maximal-weight bipartite assignment (Hungarian / Munkres algorithm).
//
// The forward step of the paper selects the best configuration as a
// maximal-weight assignment of keywords (rows) to database terms (columns).
// This implementation is the O(n²·m) potential-based Hungarian algorithm on
// rectangular matrices with rows ≤ cols.

#ifndef KM_MATCHING_MUNKRES_H_
#define KM_MATCHING_MUNKRES_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace km {

/// Result of an assignment problem.
struct Assignment {
  /// column chosen for each row; -1 for rows that could not be assigned
  /// (only when every available column has weight kForbidden).
  std::vector<int> col_for_row;
  /// Sum of the chosen weights.
  double total_weight = 0.0;

  bool complete() const {
    for (int c : col_for_row) {
      if (c < 0) return false;
    }
    return true;
  }
};

/// Sentinel weight marking a (row, col) pair as forbidden. Any pair with a
/// weight at or below this value will never be selected; if a row has only
/// forbidden columns the returned assignment is incomplete.
inline constexpr double kForbidden = -1e18;

/// Solves max-weight assignment for `weights` (rows ≤ cols required).
///
/// Returns InvalidArgument when rows > cols or the matrix is empty.
StatusOr<Assignment> MaxWeightAssignment(const Matrix& weights);

}  // namespace km

#endif  // KM_MATCHING_MUNKRES_H_
