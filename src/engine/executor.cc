#include "engine/executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/failpoint.h"
#include "common/strings.h"

namespace km {

namespace {

// Hash key of one (relation, attribute) pair; '\0' cannot occur in
// identifiers, so the concatenation is collision-free.
std::string ColumnKey(const std::string& relation, const std::string& attribute) {
  std::string key;
  key.reserve(relation.size() + attribute.size() + 1);
  key += relation;
  key += '\0';
  key += attribute;
  return key;
}

}  // namespace

std::optional<size_t> ResultSet::ColumnIndex(const std::string& relation,
                                             const std::string& attribute) const {
  if (column_index_.empty() && !header.empty()) {
    column_index_.reserve(header.size());
    for (size_t i = 0; i < header.size(); ++i) {
      column_index_.emplace(ColumnKey(header[i].relation, header[i].attribute), i);
    }
  }
  auto it = column_index_.find(ColumnKey(relation, attribute));
  if (it == column_index_.end()) return std::nullopt;
  return it->second;
}

bool EvalPredicateOp(const Value& value, PredicateOp op, const Value& literal) {
  if (value.is_null()) return false;  // SQL three-valued logic: NULL never matches.
  switch (op) {
    case PredicateOp::kEq:
      if (value.is_text() && literal.is_text()) {
        return ToLower(value.AsText()) == ToLower(literal.AsText());
      }
      return value == literal;
    case PredicateOp::kNe:
      return !EvalPredicateOp(value, PredicateOp::kEq, literal);
    case PredicateOp::kLt:
      return value < literal;
    case PredicateOp::kLe:
      return value < literal || value == literal;
    case PredicateOp::kGt:
      return literal < value;
    case PredicateOp::kGe:
      return literal < value || value == literal;
    case PredicateOp::kContains: {
      if (!value.is_text() || !literal.is_text()) return false;
      return Contains(ToLower(value.AsText()), ToLower(literal.AsText()));
    }
  }
  return false;
}

namespace {

// Intermediate tuples: concatenation of rows of the relations joined so
// far, with a column map from (relation, attribute) to position. The map
// is a hash index rebuilt once per header change (scan or join), so the
// Col() lookups inside the join/predicate loops are O(1) instead of a
// linear header scan.
struct Intermediate {
  std::vector<AttributeRef> header;
  std::vector<Row> rows;
  std::unordered_map<std::string, size_t> col_index;

  // Must be called whenever `header` is (re)built.
  void ReindexHeader() {
    col_index.clear();
    col_index.reserve(header.size());
    for (size_t i = 0; i < header.size(); ++i) {
      col_index.emplace(ColumnKey(header[i].relation, header[i].attribute), i);
    }
  }

  std::optional<size_t> Col(const AttributeRef& a) const {
    auto it = col_index.find(ColumnKey(a.relation, a.attribute));
    if (it == col_index.end()) return std::nullopt;
    return it->second;
  }
};

// Scans a base table applying its local predicates.
Intermediate ScanRelation(const Table& table,
                          const std::vector<Predicate>& predicates) {
  Intermediate out;
  const RelationSchema& rs = table.schema();
  out.header.reserve(rs.arity());
  for (size_t i = 0; i < rs.arity(); ++i) {
    out.header.push_back({rs.name(), rs.attribute(i).name});
  }
  out.ReindexHeader();
  std::vector<std::pair<size_t, const Predicate*>> local;
  for (const Predicate& p : predicates) {
    if (p.attr.relation != rs.name()) continue;
    auto idx = rs.AttributeIndex(p.attr.attribute);
    if (idx) local.push_back({*idx, &p});
  }
  for (const Row& row : table.rows()) {
    bool pass = true;
    for (const auto& [idx, p] : local) {
      if (!EvalPredicateOp(row[idx], p->op, p->value)) {
        pass = false;
        break;
      }
    }
    if (pass) out.rows.push_back(row);
  }
  return out;
}

}  // namespace

StatusOr<ResultSet> Executor::Execute(const SpjQuery& query, QueryContext* ctx,
                                      TraceNode* parent) const {
  return GatedExecute(query, /*project=*/true, ctx, parent);
}

StatusOr<size_t> Executor::Count(const SpjQuery& query, QueryContext* ctx,
                                 TraceNode* parent) const {
  auto rs = GatedExecute(query, /*project=*/false, ctx, parent);
  if (!rs.ok()) return rs.status();
  return rs->rows.size();
}

StatusOr<ResultSet> Executor::GatedExecute(const SpjQuery& query, bool project,
                                           QueryContext* ctx,
                                           TraceNode* parent) const {
  if (gate_ == nullptr) {
    return ExecuteInternal(query, project, ctx, parent);
  }
  // Ticketed admit/record pair: the ticket lets a stateful gate attribute
  // this call's outcome to the state that admitted it, even if the gate
  // changed state while the query ran.
  StatusOr<ExecutionGate::Ticket> ticket = gate_->AdmitTicket();
  if (!ticket.ok()) return ticket.status();
  auto rs = ExecuteInternal(query, project, ctx, parent);
  gate_->RecordOutcome(*ticket, rs.ok() ? Status::OK() : rs.status());
  return rs;
}

StatusOr<ResultSet> Executor::ExecuteInternal(const SpjQuery& query,
                                              bool project, QueryContext* ctx,
                                              TraceNode* parent) const {
  KM_SPAN(span, parent, "execute.query");
  span.Add("relations", query.relations.size());
  span.Add("joins", query.joins.size());
  KM_FAILPOINT("executor.join.fail");
  if (query.relations.empty()) {
    return Status::InvalidArgument("query has no relations");
  }
  // Validate relations and attribute references up front.
  std::unordered_set<std::string> rel_set;
  for (const auto& r : query.relations) {
    if (db_.FindTable(r) == nullptr) {
      return Status::NotFound("relation '" + r + "' does not exist");
    }
    if (!rel_set.insert(r).second) {
      return Status::InvalidArgument("relation '" + r + "' listed twice (self-joins are "
                                     "not supported)");
    }
  }
  auto check_attr = [&](const AttributeRef& a) -> Status {
    if (rel_set.count(a.relation) == 0) {
      return Status::InvalidArgument("attribute " + a.ToString() +
                                     " references a relation not in FROM");
    }
    const Table* t = db_.FindTable(a.relation);
    if (!t->schema().AttributeIndex(a.attribute)) {
      return Status::NotFound("attribute " + a.ToString() + " does not exist");
    }
    return Status::OK();
  };
  for (const auto& j : query.joins) {
    KM_RETURN_IF_ERROR(check_attr(j.left));
    KM_RETURN_IF_ERROR(check_attr(j.right));
  }
  for (const auto& p : query.predicates) KM_RETURN_IF_ERROR(check_attr(p.attr));
  for (const auto& s : query.select) KM_RETURN_IF_ERROR(check_attr(s));

  // Selectivity-aware greedy join order: scan every relation once (with its
  // local predicates pushed down), start from the smallest filtered scan and
  // repeatedly hash-join the smallest relation connected to the current
  // intermediate. This keeps intermediates small when one relation carries
  // a highly selective predicate.
  std::unordered_map<std::string, size_t> scan_size;
  for (const auto& r : query.relations) {
    const Table* t = db_.FindTable(r);
    size_t filtered = t->size();
    for (const Predicate& p : query.predicates) {
      if (p.attr.relation == r) {
        // Count the filtered cardinality exactly (cheap single scan).
        Intermediate scanned = ScanRelation(*t, query.predicates);
        filtered = scanned.rows.size();
        break;
      }
    }
    scan_size[r] = filtered;
  }
  std::string start = query.relations[0];
  for (const auto& r : query.relations) {
    if (scan_size[r] < scan_size[start]) start = r;
  }

  std::unordered_set<std::string> joined;
  Intermediate acc = ScanRelation(*db_.FindTable(start), query.predicates);
  joined.insert(start);
  std::vector<bool> used(query.joins.size(), false);

  // Budget observation: one unit per intermediate row emitted. When the
  // budget runs out the *current* join stops growing its intermediate; the
  // remaining joins still run to completion over that bounded intermediate
  // (exhaustion is sticky, so cutting them too would empty the result).
  // Every returned row is thus a genuine result row — a subset of the full
  // result, flagged truncated.
  bool truncated = false;
  auto out_of_budget = [&]() {
    if (truncated) return false;  // already cut once; finish what remains
    if (ctx != nullptr && ctx->CheckPoint(QueryStage::kExecute)) {
      truncated = true;
      return true;
    }
    return false;
  };

  while (joined.size() < query.relations.size()) {
    // Find the unused join edge with exactly one side joined whose fresh
    // relation has the smallest filtered scan.
    ssize_t pick = -1;
    bool fresh_is_left = false;
    size_t best_size = 0;
    for (size_t j = 0; j < query.joins.size(); ++j) {
      if (used[j]) continue;
      bool l_in = joined.count(query.joins[j].left.relation) != 0;
      bool r_in = joined.count(query.joins[j].right.relation) != 0;
      if (l_in != r_in) {
        const std::string& fresh_rel =
            l_in ? query.joins[j].right.relation : query.joins[j].left.relation;
        size_t sz = scan_size[fresh_rel];
        if (pick < 0 || sz < best_size) {
          pick = static_cast<ssize_t>(j);
          fresh_is_left = !l_in;
          best_size = sz;
        }
      }
    }
    if (pick < 0) {
      // Disconnected query: cross-join the next unjoined relation.
      std::string fresh;
      for (const auto& r : query.relations) {
        if (joined.count(r) == 0) {
          fresh = r;
          break;
        }
      }
      Intermediate side = ScanRelation(*db_.FindTable(fresh), query.predicates);
      Intermediate next;
      next.header = acc.header;
      next.header.insert(next.header.end(), side.header.begin(), side.header.end());
      next.ReindexHeader();
      next.rows.reserve(acc.rows.size() * side.rows.size());
      bool cut = false;
      for (const Row& a : acc.rows) {
        if (cut) break;
        for (const Row& b : side.rows) {
          if ((cut = out_of_budget())) break;
          Row merged = a;
          merged.insert(merged.end(), b.begin(), b.end());
          next.rows.push_back(std::move(merged));
        }
      }
      acc = std::move(next);
      joined.insert(fresh);
      continue;
    }

    const JoinEdge& e = query.joins[static_cast<size_t>(pick)];
    const AttributeRef& fresh_attr = fresh_is_left ? e.left : e.right;
    const AttributeRef& acc_attr = fresh_is_left ? e.right : e.left;
    const std::string& fresh = fresh_attr.relation;

    Intermediate side = ScanRelation(*db_.FindTable(fresh), query.predicates);
    auto side_col = side.Col(fresh_attr);
    auto acc_col = acc.Col(acc_attr);
    if (!side_col || !acc_col) return Status::Internal("join column resolution failed");

    // Build hash table on the smaller side (the fresh scan).
    std::unordered_map<Value, std::vector<size_t>, ValueHash> hash;
    for (size_t i = 0; i < side.rows.size(); ++i) {
      const Value& key = side.rows[i][*side_col];
      if (key.is_null()) continue;  // NULLs never join.
      hash[key].push_back(i);
    }

    Intermediate next;
    next.header = acc.header;
    next.header.insert(next.header.end(), side.header.begin(), side.header.end());
    next.ReindexHeader();
    bool cut = false;
    for (const Row& a : acc.rows) {
      if (cut) break;
      const Value& key = a[*acc_col];
      if (key.is_null()) continue;
      auto it = hash.find(key);
      if (it == hash.end()) continue;
      for (size_t i : it->second) {
        if ((cut = out_of_budget())) break;
        Row merged = a;
        merged.insert(merged.end(), side.rows[i].begin(), side.rows[i].end());
        next.rows.push_back(std::move(merged));
      }
    }
    acc = std::move(next);
    joined.insert(fresh);
    used[static_cast<size_t>(pick)] = true;

    // Apply any other now-evaluable join edges (cycle edges) as filters.
    for (size_t j = 0; j < query.joins.size(); ++j) {
      if (used[j]) continue;
      auto lc = acc.Col(query.joins[j].left);
      auto rc = acc.Col(query.joins[j].right);
      if (lc && rc) {
        std::vector<Row> kept;
        kept.reserve(acc.rows.size());
        for (Row& row : acc.rows) {
          if (!row[*lc].is_null() && row[*lc] == row[*rc]) kept.push_back(std::move(row));
        }
        acc.rows = std::move(kept);
        used[j] = true;
      }
    }
  }

  ResultSet result;
  result.truncated = truncated;
  span.Add("result_rows", acc.rows.size());
  if (!project || query.select.empty()) {
    result.header = std::move(acc.header);
    result.rows = std::move(acc.rows);
    return result;
  }
  // Project.
  std::vector<size_t> cols;
  cols.reserve(query.select.size());
  for (const auto& s : query.select) {
    auto c = acc.Col(s);
    if (!c) return Status::Internal("projection column resolution failed");
    cols.push_back(*c);
  }
  result.header = query.select;
  result.rows.reserve(acc.rows.size());
  for (const Row& row : acc.rows) {
    Row out;
    out.reserve(cols.size());
    for (size_t c : cols) out.push_back(row[c]);
    result.rows.push_back(std::move(out));
  }
  return result;
}

}  // namespace km
