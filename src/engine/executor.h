// In-memory execution of SPJ queries.
//
// The executor lets the reproduction actually *run* the SQL explanations
// that the keymantic pipeline generates (the paper executes them on MySQL),
// and supplies the joint distributions needed by the mutual-information
// edge weights of the backward step.

#ifndef KM_ENGINE_EXECUTOR_H_
#define KM_ENGINE_EXECUTOR_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/query_context.h"
#include "common/status.h"
#include "common/trace.h"
#include "engine/query.h"
#include "relational/database.h"

namespace km {

/// A materialized query result: a header naming each output column and the
/// result rows.
struct ResultSet {
  std::vector<AttributeRef> header;
  std::vector<Row> rows;
  /// True when a QueryContext budget stopped execution early: `rows` holds
  /// a correct subset of the full result, not all of it.
  bool truncated = false;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  /// Index of the named output column, or nullopt. The first call builds a
  /// hash index over the header (O(columns) once), so per-row loops may
  /// call this freely. Not thread-safe with concurrent first calls; a
  /// ResultSet is a single-consumer object.
  std::optional<size_t> ColumnIndex(const std::string& relation,
                                    const std::string& attribute) const;

 private:
  mutable std::unordered_map<std::string, size_t> column_index_;
};

/// Admission hook in front of SQL execution. The serving layer implements
/// this with a circuit breaker (serve/circuit_breaker.h): when the backend
/// is failing, Admit() returns kUnavailable and the executor is never
/// entered, so result probing fails fast instead of hammering a dead
/// backend. The interface lives here so km_engine needs no dependency on
/// the serving layer.
class ExecutionGate {
 public:
  /// Opaque admission receipt. A stateful gate stamps it with the epoch of
  /// the state that admitted the call, so a slow call's outcome arriving
  /// after the gate has changed state can be recognized as stale instead of
  /// being charged to the current state (see CircuitBreaker's half-open
  /// probe accounting).
  struct Ticket {
    uint64_t epoch = 0;
  };

  virtual ~ExecutionGate() = default;
  /// OK to proceed, or a non-OK Status (typically kUnavailable with a
  /// retry-after hint) the executor returns verbatim.
  virtual Status Admit() = 0;
  /// Outcome report of one admitted execution: OK, or the failure Status.
  virtual void Record(const Status& result) = 0;

  /// Ticketed admission: like Admit(), but on success returns a Ticket to
  /// hand back to RecordOutcome(). The executor uses this pair; the
  /// defaults delegate to Admit()/Record() so gates without admission
  /// epochs implement only the legacy two methods.
  virtual StatusOr<Ticket> AdmitTicket() {
    Status admit = Admit();
    if (!admit.ok()) return admit;
    return Ticket{};
  }
  /// Outcome report matched to its admission via `ticket`.
  virtual void RecordOutcome(const Ticket& ticket, const Status& result) {
    (void)ticket;
    Record(result);
  }
};

/// Executes SPJ queries against an in-memory Database.
///
/// Join processing is hash-based: the plan greedily joins one relation at a
/// time, always picking a relation connected by at least one join edge to
/// the tuples built so far (cross products are only used when a query has
/// disconnected relations). Selection predicates are applied as early as
/// possible (pushed to the scan of their relation).
class Executor {
 public:
  explicit Executor(const Database& db) : db_(db) {}

  /// Installs the (non-owning, nullable) admission gate consulted by every
  /// Execute()/Count() call. The gate must outlive the executor.
  void set_gate(ExecutionGate* gate) { gate_ = gate; }

  /// Runs the query and materializes the full result. `ctx` (optional) is
  /// polled inside every join loop (one unit per intermediate row); on
  /// exhaustion the result built so far is returned with `truncated` set.
  /// `parent` (optional) hosts an "execute.query" span with row counters.
  StatusOr<ResultSet> Execute(const SpjQuery& query, QueryContext* ctx = nullptr,
                              TraceNode* parent = nullptr) const;

  /// Runs the query and returns only the result cardinality (still executes
  /// fully, but avoids materializing projections). Under an exhausted
  /// budget the count is a lower bound (the truncation is not visible in a
  /// bare size_t — use Execute() when the distinction matters).
  StatusOr<size_t> Count(const SpjQuery& query, QueryContext* ctx = nullptr,
                         TraceNode* parent = nullptr) const;

 private:
  StatusOr<ResultSet> ExecuteInternal(const SpjQuery& query, bool project,
                                      QueryContext* ctx,
                                      TraceNode* parent) const;

  /// ExecuteInternal behind the gate: Admit() first (a rejection is
  /// returned without touching the backend and without a Record() call),
  /// then exactly one Record() with the execution outcome.
  StatusOr<ResultSet> GatedExecute(const SpjQuery& query, bool project,
                                   QueryContext* ctx, TraceNode* parent) const;

  const Database& db_;
  ExecutionGate* gate_ = nullptr;
};

/// Evaluates `value op literal` (used by the executor and tests).
bool EvalPredicateOp(const Value& value, PredicateOp op, const Value& literal);

}  // namespace km

#endif  // KM_ENGINE_EXECUTOR_H_
