// In-memory execution of SPJ queries.
//
// The executor lets the reproduction actually *run* the SQL explanations
// that the keymantic pipeline generates (the paper executes them on MySQL),
// and supplies the joint distributions needed by the mutual-information
// edge weights of the backward step.

#ifndef KM_ENGINE_EXECUTOR_H_
#define KM_ENGINE_EXECUTOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/query.h"
#include "relational/database.h"

namespace km {

/// A materialized query result: a header naming each output column and the
/// result rows.
struct ResultSet {
  std::vector<AttributeRef> header;
  std::vector<Row> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }

  /// Index of the named output column, or nullopt.
  std::optional<size_t> ColumnIndex(const std::string& relation,
                                    const std::string& attribute) const;
};

/// Executes SPJ queries against an in-memory Database.
///
/// Join processing is hash-based: the plan greedily joins one relation at a
/// time, always picking a relation connected by at least one join edge to
/// the tuples built so far (cross products are only used when a query has
/// disconnected relations). Selection predicates are applied as early as
/// possible (pushed to the scan of their relation).
class Executor {
 public:
  explicit Executor(const Database& db) : db_(db) {}

  /// Runs the query and materializes the full result.
  StatusOr<ResultSet> Execute(const SpjQuery& query) const;

  /// Runs the query and returns only the result cardinality (still executes
  /// fully, but avoids materializing projections).
  StatusOr<size_t> Count(const SpjQuery& query) const;

 private:
  StatusOr<ResultSet> ExecuteInternal(const SpjQuery& query, bool project) const;

  const Database& db_;
};

/// Evaluates `value op literal` (used by the executor and tests).
bool EvalPredicateOp(const Value& value, PredicateOp op, const Value& literal);

}  // namespace km

#endif  // KM_ENGINE_EXECUTOR_H_
