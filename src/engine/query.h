// Select-project-join query representation and SQL rendering.
//
// Explanations produced by the keymantic pipeline are SpjQuery values;
// ToSql() renders them as standard SQL text and CanonicalSignature()
// produces an order-insensitive normal form used to compare a generated
// explanation against a gold standard.

#ifndef KM_ENGINE_QUERY_H_
#define KM_ENGINE_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace km {

/// A reference to `relation.attribute`.
struct AttributeRef {
  std::string relation;
  std::string attribute;

  bool operator==(const AttributeRef& o) const {
    return relation == o.relation && attribute == o.attribute;
  }
  std::string ToString() const { return relation + "." + attribute; }
};

/// An equi-join condition `left = right`.
struct JoinEdge {
  AttributeRef left;
  AttributeRef right;

  bool operator==(const JoinEdge& o) const {
    return (left == o.left && right == o.right) ||
           (left == o.right && right == o.left);
  }
};

/// Comparison operators supported in WHERE predicates.
enum class PredicateOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,  ///< Case-insensitive substring match on text.
};

/// Rendering of a predicate operator ("=", "<>", "LIKE", ...).
const char* PredicateOpSql(PredicateOp op);

/// A selection predicate `attr op value`.
struct Predicate {
  AttributeRef attr;
  PredicateOp op = PredicateOp::kEq;
  Value value;

  bool operator==(const Predicate& o) const {
    return attr == o.attr && op == o.op && value == o.value;
  }
};

/// A select-project-join query.
///
/// `relations` is the FROM list; `joins` the equi-join conditions;
/// `predicates` the WHERE conditions; `select` the projection (empty means
/// SELECT * over all listed relations).
struct SpjQuery {
  std::vector<std::string> relations;
  std::vector<JoinEdge> joins;
  std::vector<Predicate> predicates;
  std::vector<AttributeRef> select;

  /// Renders standard SQL text.
  std::string ToSql() const;

  /// Order-insensitive normal form: relations, joins and predicates are
  /// each sorted and joined into a single string. Two queries with the same
  /// signature retrieve the same tuples (projection differences included in
  /// the signature only when explicitly selected).
  std::string CanonicalSignature() const;

  /// True iff both queries have the same canonical signature.
  bool EquivalentTo(const SpjQuery& other) const {
    return CanonicalSignature() == other.CanonicalSignature();
  }
};

}  // namespace km

#endif  // KM_ENGINE_QUERY_H_
