#include "engine/query.h"

#include <algorithm>

#include "common/strings.h"

namespace km {

namespace {

// Renders the literal of a predicate; CONTAINS predicates become LIKE
// patterns.
std::string RenderLiteral(const Predicate& p) {
  if (p.op != PredicateOp::kContains) return p.value.ToSqlLiteral();
  std::string pattern = "%";
  pattern += p.value.ToString();
  pattern += "%";
  return Value::Text(pattern).ToSqlLiteral();
}

}  // namespace

const char* PredicateOpSql(PredicateOp op) {
  switch (op) {
    case PredicateOp::kEq: return "=";
    case PredicateOp::kNe: return "<>";
    case PredicateOp::kLt: return "<";
    case PredicateOp::kLe: return "<=";
    case PredicateOp::kGt: return ">";
    case PredicateOp::kGe: return ">=";
    case PredicateOp::kContains: return "LIKE";
  }
  return "?";
}

std::string SpjQuery::ToSql() const {
  std::string sql = "SELECT ";
  if (select.empty()) {
    std::vector<std::string> stars;
    stars.reserve(relations.size());
    for (const auto& r : relations) stars.push_back(r + ".*");
    sql += Join(stars, ", ");
  } else {
    std::vector<std::string> cols;
    cols.reserve(select.size());
    for (const auto& a : select) cols.push_back(a.ToString());
    sql += Join(cols, ", ");
  }
  sql += "\nFROM ";
  if (relations.empty()) {
    sql += "<empty>";
  } else if (joins.empty()) {
    sql += Join(relations, ", ");
  } else {
    // Render as R1 JOIN R2 ON ... JOIN R3 ON ... following the order in
    // which joins connect new relations.
    std::vector<std::string> joined;
    joined.push_back(relations[0]);
    sql += relations[0];
    std::vector<bool> used(joins.size(), false);
    bool progress = true;
    while (progress) {
      progress = false;
      for (size_t j = 0; j < joins.size(); ++j) {
        if (used[j]) continue;
        const JoinEdge& e = joins[j];
        bool l_in = std::find(joined.begin(), joined.end(), e.left.relation) != joined.end();
        bool r_in = std::find(joined.begin(), joined.end(), e.right.relation) != joined.end();
        if (l_in == r_in) {
          if (l_in) {
            // Both already joined: extra join condition, render as ON later
            // via WHERE-style condition appended to the last JOIN; simplest
            // correct form is to keep it in the WHERE clause text.
            continue;
          }
          continue;
        }
        const std::string& fresh = l_in ? e.right.relation : e.left.relation;
        sql += "\n  JOIN " + fresh + " ON " + e.left.ToString() + " = " + e.right.ToString();
        joined.push_back(fresh);
        used[j] = true;
        progress = true;
      }
    }
    // Relations never reached by a join edge are cross-joined.
    for (const auto& r : relations) {
      if (std::find(joined.begin(), joined.end(), r) == joined.end()) {
        sql += "\n  CROSS JOIN " + r;
        joined.push_back(r);
      }
    }
    // Remaining (cycle-closing) join conditions.
    std::vector<std::string> extra;
    for (size_t j = 0; j < joins.size(); ++j) {
      if (!used[j]) {
        extra.push_back(joins[j].left.ToString() + " = " + joins[j].right.ToString());
      }
    }
    if (!extra.empty()) {
      sql += "\nWHERE ";
      sql += Join(extra, " AND ");
      if (!predicates.empty()) sql += " AND ";
      std::vector<std::string> preds;
      for (const auto& p : predicates) {
        preds.push_back(p.attr.ToString() + " " + PredicateOpSql(p.op) + " " +
                        RenderLiteral(p));
      }
      sql += Join(preds, " AND ");
      sql += ";";
      return sql;
    }
  }
  if (!predicates.empty()) {
    std::vector<std::string> preds;
    preds.reserve(predicates.size());
    for (const auto& p : predicates) {
      preds.push_back(p.attr.ToString() + " " + PredicateOpSql(p.op) + " " +
                      RenderLiteral(p));
    }
    sql += "\nWHERE ";
    sql += Join(preds, " AND ");
  }
  sql += ";";
  return sql;
}

std::string SpjQuery::CanonicalSignature() const {
  std::vector<std::string> rels = relations;
  std::sort(rels.begin(), rels.end());

  std::vector<std::string> join_sigs;
  join_sigs.reserve(joins.size());
  for (const auto& j : joins) {
    std::string a = j.left.ToString();
    std::string b = j.right.ToString();
    if (b < a) std::swap(a, b);
    join_sigs.push_back(a + "=" + b);
  }
  std::sort(join_sigs.begin(), join_sigs.end());

  std::vector<std::string> pred_sigs;
  pred_sigs.reserve(predicates.size());
  for (const auto& p : predicates) {
    pred_sigs.push_back(p.attr.ToString() + PredicateOpSql(p.op) +
                        ToLower(p.value.ToString()));
  }
  std::sort(pred_sigs.begin(), pred_sigs.end());

  std::vector<std::string> sel_sigs;
  sel_sigs.reserve(select.size());
  for (const auto& a : select) sel_sigs.push_back(a.ToString());
  std::sort(sel_sigs.begin(), sel_sigs.end());

  return "R[" + Join(rels, ",") + "]J[" + Join(join_sigs, ",") + "]P[" +
         Join(pred_sigs, ",") + "]S[" + Join(sel_sigs, ",") + "]";
}

}  // namespace km
