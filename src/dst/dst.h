// Dempster–Shafer evidence combination for merging ranked lists.
//
// Two points of the pipeline merge ranked lists whose scores come from
// different processes: (1) the two forward-analysis implementations, and
// (2) the configuration ranking with the interpretation ranking. DST models
// each list as a mass function over the candidate universe — normalized
// scores scaled by the list's confidence, with the residual mass assigned
// to the whole universe (ignorance) — and combines them with Dempster's
// rule, renormalizing by the conflict mass K.

#ifndef KM_DST_DST_H_
#define KM_DST_DST_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace km {

/// A mass function whose focal elements are singletons {id} plus the
/// universe U. Masses are non-negative and sum to 1.
class MassFunction {
 public:
  MassFunction() : uncertainty_(1.0) {}

  /// Builds a mass function from (id, score) evidence. Scores are shifted
  /// to be non-negative if needed, normalized to sum 1, and scaled by
  /// `confidence` ∈ [0,1]; mass 1 − confidence goes to the universe.
  /// An empty list yields total ignorance (all mass on U).
  static MassFunction FromScores(const std::vector<std::pair<size_t, double>>& scores,
                                 double confidence);

  /// Mass on the singleton {id} (0 when not focal).
  double MassOf(size_t id) const;

  /// Mass on the universe (ignorance).
  double uncertainty() const { return uncertainty_; }

  /// Ids with non-zero singleton mass.
  std::vector<size_t> FocalIds() const;

  /// Sum of all masses (should be 1; exposed for tests).
  double TotalMass() const;

  /// Dempster's rule of combination. Returns FailedPrecondition when the
  /// conflict mass K is 1 (totally conflicting evidence).
  static StatusOr<MassFunction> Combine(const MassFunction& a, const MassFunction& b);

  /// Conflict mass K of a combination (diagnostic; 0 when any side is
  /// vacuous).
  static double ConflictMass(const MassFunction& a, const MassFunction& b);

  /// Final ranking: ids by descending combined singleton mass.
  std::vector<std::pair<size_t, double>> Ranked() const;

 private:
  std::unordered_map<size_t, double> singleton_;
  double uncertainty_;
};

}  // namespace km

#endif  // KM_DST_DST_H_
