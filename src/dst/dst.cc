#include "dst/dst.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace km {

namespace {

// Debug validation shared by the mass-function producers: masses must be
// non-negative and total 1 (within floating-point tolerance).
bool IsValidMassFunction(const MassFunction& m) {
  if (!std::isfinite(m.uncertainty()) || m.uncertainty() < 0.0) return false;
  for (size_t id : m.FocalIds()) {
    double mass = m.MassOf(id);
    if (!std::isfinite(mass) || mass < 0.0) return false;
  }
  return std::fabs(m.TotalMass() - 1.0) <= 1e-7;
}

}  // namespace

MassFunction MassFunction::FromScores(
    const std::vector<std::pair<size_t, double>>& scores, double confidence) {
  MassFunction m;
  if (scores.empty()) return m;
  confidence = std::clamp(confidence, 0.0, 1.0);

  // Shift scores to non-negative (scores may be log-probabilities).
  double min_score = scores[0].second;
  for (const auto& [id, s] : scores) min_score = std::min(min_score, s);
  double shift = min_score < 0 ? -min_score : 0.0;

  double total = 0;
  for (const auto& [id, s] : scores) total += s + shift;
  if (total <= 0) {
    // All scores equal (possibly all zero): uniform masses.
    double each = confidence / static_cast<double>(scores.size());
    for (const auto& [id, s] : scores) m.singleton_[id] += each;
    m.uncertainty_ = 1.0 - confidence;
    KM_DCHECK(IsValidMassFunction(m));
    return m;
  }
  for (const auto& [id, s] : scores) {
    m.singleton_[id] += confidence * (s + shift) / total;
  }
  m.uncertainty_ = 1.0 - confidence;
  KM_DCHECK(IsValidMassFunction(m));
  return m;
}

double MassFunction::MassOf(size_t id) const {
  auto it = singleton_.find(id);
  return it == singleton_.end() ? 0.0 : it->second;
}

std::vector<size_t> MassFunction::FocalIds() const {
  std::vector<size_t> ids;
  ids.reserve(singleton_.size());
  for (const auto& [id, mass] : singleton_) {
    if (mass > 0) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

double MassFunction::TotalMass() const {
  double t = uncertainty_;
  for (const auto& [id, mass] : singleton_) t += mass;
  return t;
}

double MassFunction::ConflictMass(const MassFunction& a, const MassFunction& b) {
  // K = Σ_{A∩B=∅} m1(A) m2(B); with singleton/universe focal elements the
  // only empty intersections are distinct singletons.
  double k = 0;
  for (const auto& [ida, ma] : a.singleton_) {
    for (const auto& [idb, mb] : b.singleton_) {
      if (ida != idb) k += ma * mb;
    }
  }
  return k;
}

StatusOr<MassFunction> MassFunction::Combine(const MassFunction& a,
                                             const MassFunction& b) {
  double k = ConflictMass(a, b);
  if (k >= 1.0 - 1e-12) {
    return Status::FailedPrecondition("totally conflicting evidence (K = 1)");
  }
  double z = 1.0 / (1.0 - k);

  MassFunction out;
  out.uncertainty_ = z * a.uncertainty_ * b.uncertainty_;
  // {x}∩{x}, {x}∩U, U∩{x}
  for (const auto& [id, ma] : a.singleton_) {
    double combined = ma * b.MassOf(id) + ma * b.uncertainty_;
    if (combined > 0) out.singleton_[id] += z * combined;
  }
  for (const auto& [id, mb] : b.singleton_) {
    double combined = mb * a.uncertainty_;
    if (combined > 0) out.singleton_[id] += z * combined;
  }
  // Dempster's rule renormalizes by 1 − K, so the combination is again a
  // valid mass function.
  KM_DCHECK(IsValidMassFunction(out));
  return out;
}

std::vector<std::pair<size_t, double>> MassFunction::Ranked() const {
  std::vector<std::pair<size_t, double>> out(singleton_.begin(), singleton_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace km
