// Process-wide metrics: counters, gauges, and fixed-bucket histograms.
//
// The registry is pull-style: instruments are cheap lock-free atomics on
// the write path, and a reader calls MetricsRegistry::Default().Snapshot()
// to get a consistent point-in-time MetricsSnapshot, rendered as
// Prometheus-like text (ToText) or JSON (ToJson).
//
// Two ways for a subsystem to publish:
//
//  1. Push — grab a stable instrument reference once and bump it:
//       static Counter& trips = MetricsRegistry::Default().CounterRef(
//           "km.failpoint.trips");
//       trips.Increment();
//     References stay valid for the process lifetime (instruments are
//     never destroyed, only reset by ResetForTest()).
//
//  2. Collect — for state that lives inside an object (e.g. an engine's
//     cache counters), register a collector; Snapshot() invokes it and the
//     collector *adds* its values into the snapshot. Additive merging
//     means several live engines publishing "km.cache.*" compose instead
//     of overwriting each other. Collectors must unregister (RemoveCollector)
//     before their captured state dies.
//
// Metric naming: dot-separated "km.<subsystem>.<what>", e.g.
// "km.cache.keyword_row.hits", "km.stage_spend.forward",
// "km.answers.quality.complete". (Rendered as-is; the text exposition is
// Prometheus-*like*, not strict promtext.)

#ifndef KM_COMMON_METRICS_H_
#define KM_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace km {

/// Monotonically increasing count. Write path is one relaxed atomic add.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written point-in-time value (e.g. current cache entry count).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram: explicit upper bounds plus an implicit overflow
/// bucket. Observe() is a binary search + one relaxed add per observation.
/// Invariant (checked by the property suite): sum of bucket counts ==
/// Count().
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;
  /// Upper bounds, one per finite bucket (the overflow bucket is implied).
  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

 private:
  std::vector<double> bounds_;  // ascending, immutable after construction
  std::vector<std::atomic<uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  // Sum as fixed-point micro-units so it stays a lock-free atomic.
  std::atomic<int64_t> sum_micro_{0};
};

/// Default latency buckets (milliseconds): 0.25ms .. 8s, roughly 2x apart.
const std::vector<double>& DefaultLatencyBucketsMs();

/// One rendered metric in a snapshot.
struct MetricValue {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  double value = 0;  // counter/gauge value
  // Histogram payload (kind == kHistogram):
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  // bounds.size() + 1, last = overflow
  uint64_t count = 0;
  double sum = 0;
};

/// Point-in-time view of every instrument plus collector contributions.
class MetricsSnapshot {
 public:
  /// Adds `delta` into the named counter-like value (creates it at 0).
  /// Collectors use this; additive so concurrent publishers compose.
  void AddCounter(const std::string& name, double delta);
  /// Adds `delta` into the named gauge-like value (creates it at 0).
  void AddGauge(const std::string& name, double delta);

  const std::map<std::string, MetricValue>& values() const { return values_; }
  /// Value of a counter/gauge by name; 0 when absent.
  double value(const std::string& name) const;
  bool has(const std::string& name) const { return values_.count(name) > 0; }

  /// Prometheus-like text exposition:
  ///   km.cache.keyword_row.hits 42
  ///   km.answer.latency_ms{le="0.25"} 3
  ///   km.answer.latency_ms{le="+Inf"} 9
  ///   km.answer.latency_ms.sum 17.5
  ///   km.answer.latency_ms.count 9
  std::string ToText() const;
  /// JSON object keyed by metric name.
  std::string ToJson() const;

 private:
  friend class MetricsRegistry;
  std::map<std::string, MetricValue> values_;
};

/// Registry of named instruments + snapshot-time collectors. Production
/// code shares Default(); isolated instances are constructible for tests.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  /// The process-wide registry.
  static MetricsRegistry& Default();

  /// Stable reference to the named instrument, created on first use.
  /// Same name → same instrument; kind mismatches are a programming error
  /// (checked). References remain valid forever. Names must be registered
  /// in common/metric_names.h (tools/km_lint.py rule R5).
  Counter& CounterRef(const std::string& name) KM_EXCLUDES(mu_);
  Gauge& GaugeRef(const std::string& name) KM_EXCLUDES(mu_);
  /// `bounds` only matters on first creation.
  Histogram& HistogramRef(const std::string& name,
                          const std::vector<double>& bounds) KM_EXCLUDES(mu_);

  /// Registers a snapshot-time collector; returns an id for RemoveCollector.
  /// Collectors run under the registry lock — keep them cheap and never
  /// call back into the registry.
  int64_t AddCollector(std::function<void(MetricsSnapshot*)> collector)
      KM_EXCLUDES(mu_);
  void RemoveCollector(int64_t id) KM_EXCLUDES(mu_);

  /// Consistent point-in-time view: all instruments + collector output.
  MetricsSnapshot Snapshot() KM_EXCLUDES(mu_);

  /// Zeroes every instrument (references stay valid). Collectors are kept;
  /// tests that need isolation should diff two snapshots instead when
  /// engines are live.
  void ResetForTest() KM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ KM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ KM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      KM_GUARDED_BY(mu_);
  int64_t next_collector_id_ KM_GUARDED_BY(mu_) = 1;
  std::vector<std::pair<int64_t, std::function<void(MetricsSnapshot*)>>>
      collectors_ KM_GUARDED_BY(mu_);
};

}  // namespace km

#endif  // KM_COMMON_METRICS_H_
