// Per-query span tracing and the library's single clock abstraction.
//
// A *span* measures one pipeline component over one query: its wall-clock
// and thread-CPU time, a handful of named counters, and its children.
// Spans form a tree rooted at the Answer() call; the tree is the EXPLAIN
// answer (AnswerResult::Explain()) and exports as Chrome trace_event JSON
// loadable in about:tracing.
//
// Tracing is *zero-cost when disabled*: every instrumented function takes
// a nullable `TraceNode* parent`, and a null parent makes the RAII span a
// no-op (one pointer test, no allocation, no clock read). The engine only
// allocates a root when EngineOptions::trace is set, so the default
// (Release, tracing off) pipeline byte-identically matches the pre-tracing
// one.
//
// Thread model: span *creation* is thread-safe — ParallelFor workers open
// children of a shared parent concurrently. Determinism under parallelism
// comes from *slots*: a parallel call site passes its loop index as the
// child's slot, a serial call site lets the parent assign the next slot in
// program order, and End() sorts children by slot. A serial and a
// threads=N run of the same query therefore produce identical trees (the
// golden-trace suite locks this down). Counters on one span may be bumped
// from several workers; they are merged under the span's mutex.
//
// This header is also the home of the one steady/CPU clock source
// (MonotonicClock / MonotonicNowNs / ThreadCpuNowNs). QueryContext
// deadlines, Stopwatch and span timings all read the same clock, so they
// can never disagree about elapsed time.

#ifndef KM_COMMON_TRACE_H_
#define KM_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace km {

// ------------------------------------------------------------------ clocks

/// The library's single monotonic clock (immune to system-time jumps).
/// QueryContext deadlines, Stopwatch and span wall times all use it.
using MonotonicClock = std::chrono::steady_clock;

/// Nanoseconds on the monotonic clock (arbitrary epoch).
int64_t MonotonicNowNs();

/// Nanoseconds of CPU time consumed by the calling thread, or 0 where the
/// platform offers no thread CPU clock.
int64_t ThreadCpuNowNs();

/// Measures elapsed wall-clock time from construction or the last Reset().
/// (Absorbed from the former common/stopwatch.h; same API, same clock as
/// the tracer and QueryContext.)
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicClock::now()) {}

  /// Restarts the measurement.
  void Reset() { start_ = MonotonicClock::now(); }

  /// Elapsed seconds since start.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(MonotonicClock::now() - start_).count();
  }

  /// Elapsed milliseconds since start.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds since start.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  MonotonicClock::time_point start_;
};

// ------------------------------------------------------------------- spans

/// One node of a span tree. Created via TraceNode::Root() (the per-query
/// root) and BeginChild() (everything else, usually through ScopedSpan).
/// Nodes are owned by their parent; the root is owned by a shared_ptr that
/// AnswerResult carries, so a trace outlives the engine call that built it.
class TraceNode {
 public:
  /// Sentinel: let the parent assign the next slot in creation order.
  static constexpr size_t kAutoSlot = static_cast<size_t>(-1);

  /// Allocates a root span and starts its clocks.
  static std::shared_ptr<TraceNode> Root(std::string name);

  TraceNode(const TraceNode&) = delete;
  TraceNode& operator=(const TraceNode&) = delete;

  /// Opens a child span (thread-safe). Parallel call sites must pass their
  /// loop index as `slot` so the tree is deterministic under ParallelFor;
  /// serial call sites use kAutoSlot. The child is owned by this node;
  /// the returned pointer stays valid for the tree's lifetime.
  TraceNode* BeginChild(const char* name, size_t slot = kAutoSlot);

  /// Stops the clocks and sorts children by slot. Idempotent; must be
  /// called by the thread that opened the span (ScopedSpan does).
  void End();

  /// Adds `delta` to the named counter (thread-safe; counters of a span
  /// that several workers touch merge deterministically because addition
  /// commutes).
  void Add(const char* counter, uint64_t delta = 1);

  // -- accessors (valid once the span has ended) --
  // children()/counters() read guarded state without the span mutex: the
  // post-End() contract makes the tree immutable and single-reader (End()'s
  // release-exchange on ended_ is the happens-before point), which the
  // analysis cannot express — hence the explicit opt-outs.
  const std::string& name() const { return name_; }
  size_t slot() const { return slot_; }
  double wall_ms() const { return static_cast<double>(wall_ns_) * 1e-6; }
  double cpu_ms() const { return static_cast<double>(cpu_ns_) * 1e-6; }
  /// Start offset from the root span's start, in nanoseconds.
  int64_t start_offset_ns() const { return start_offset_ns_; }
  bool ended() const { return ended_.load(std::memory_order_acquire); }
  const std::vector<std::unique_ptr<TraceNode>>& children() const
      KM_NO_THREAD_SAFETY_ANALYSIS {
    return children_;
  }
  const std::vector<std::pair<std::string, uint64_t>>& counters() const
      KM_NO_THREAD_SAFETY_ANALYSIS {
    return counters_;
  }
  /// Counter value by name (0 when absent).
  uint64_t counter(const std::string& name) const;

  /// Total number of spans in this subtree (including this one).
  size_t SpanCount() const KM_NO_THREAD_SAFETY_ANALYSIS;

  /// Human-readable indented tree. With `timings`, each line carries wall
  /// and CPU milliseconds; without, only names, nesting and counters — the
  /// form the golden-trace suite snapshots.
  std::string TreeString(bool timings = true) const;

  /// Structural snapshot: names + nesting only (no timings, no counter
  /// values — those vary run to run). This is the golden-trace format.
  std::string ShapeString() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}) for about:tracing.
  /// Call on the root after the query finished.
  std::string ChromeTraceJson() const;

 private:
  TraceNode(std::string name, TraceNode* parent, size_t slot);

  // The tree walkers run on ended spans (immutable; see the accessor note).
  void AppendTree(std::string* out, size_t depth, bool timings) const
      KM_NO_THREAD_SAFETY_ANALYSIS;
  void AppendShape(std::string* out, size_t depth) const
      KM_NO_THREAD_SAFETY_ANALYSIS;
  void AppendChromeEvents(std::string* out, bool* first) const
      KM_NO_THREAD_SAFETY_ANALYSIS;
  int SmallThreadId();

  std::string name_;
  TraceNode* parent_ = nullptr;  // null for the root
  TraceNode* root_ = nullptr;    // self for the root
  size_t slot_ = 0;
  int tid_ = 0;  // small per-trace thread ordinal (Chrome export)

  int64_t epoch_ns_ = 0;         // root only: MonotonicNowNs() at start
  int64_t start_offset_ns_ = 0;  // start − root epoch
  int64_t start_wall_ns_ = 0;
  int64_t start_cpu_ns_ = 0;
  int64_t wall_ns_ = 0;
  int64_t cpu_ns_ = 0;
  std::atomic<bool> ended_{false};

  mutable Mutex mu_;  // guards children_, counters_, thread-id map
  std::atomic<size_t> next_slot_{0};
  std::vector<std::unique_ptr<TraceNode>> children_ KM_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, uint64_t>> counters_ KM_GUARDED_BY(mu_);
  // Root only: thread::id hash → small ordinal for the Chrome export.
  std::vector<std::pair<uint64_t, int>> thread_ids_ KM_GUARDED_BY(mu_);
};

/// RAII handle over one span. A null parent (tracing disabled) makes every
/// member a no-op. The usual shape:
///
///   void Stage(..., TraceNode* parent) {
///     KM_SPAN(span, parent, "stage.component");
///     ...
///     span.Add("items", n);
///     Child(..., span.get());
///   }
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceNode* parent, const char* name,
             size_t slot = TraceNode::kAutoSlot)
      : node_(parent != nullptr ? parent->BeginChild(name, slot) : nullptr) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (node_ != nullptr) node_->End();
  }

  /// The underlying span — pass to callees as their parent. Null when
  /// tracing is disabled.
  TraceNode* get() const { return node_; }

  void Add(const char* counter, uint64_t delta = 1) {
    if (node_ != nullptr) node_->Add(counter, delta);
  }

  /// Ends the span before scope exit (idempotent; the destructor then
  /// no-ops). For spans that cannot wrap their region in a block.
  void End() {
    if (node_ != nullptr) node_->End();
  }

  explicit operator bool() const { return node_ != nullptr; }

 private:
  TraceNode* node_ = nullptr;
};

/// Declares a ScopedSpan named `var` under `parent` (nullable).
#define KM_SPAN(var, parent, name) ::km::ScopedSpan var((parent), (name))

/// Same, for parallel loop bodies: `slot` (the loop index) fixes the
/// child's position so serial and parallel runs build identical trees.
#define KM_SPAN_SLOT(var, parent, name, slot) \
  ::km::ScopedSpan var((parent), (name), (slot))

}  // namespace km

#endif  // KM_COMMON_TRACE_H_
