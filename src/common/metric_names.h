// The single registration point for metric names (tools/km_lint.py rule R5).
//
// Every name passed to MetricsRegistry::{CounterRef,GaugeRef,HistogramRef}
// or MetricsSnapshot::{AddCounter,AddGauge} must appear below — either as a
// full name in kMetricNames or under one of the kMetricNamePrefixes (for
// families composed at runtime, e.g. "km.breaker.<name>.trips"). The linter
// parses this header's string literals; a metric bumped anywhere else in
// src/ but missing here fails `tools/km_lint.py`.
//
// Keeping the catalog in one file is what makes it *reviewable*: a PR that
// invents a metric shows up here, dashboards and alerts have one place to
// read, and renames can't silently fork a time series. When you add a name,
// follow the scheme documented in common/metrics.h:
// dot-separated "km.<subsystem>.<what>".

#ifndef KM_COMMON_METRIC_NAMES_H_
#define KM_COMMON_METRIC_NAMES_H_

namespace km {

/// Complete metric names, grouped by subsystem.
inline constexpr const char* kMetricNames[] = {
    // Answer pipeline (core/keymantic.cc).
    "km.answer.latency_ms",
    "km.answers.total",
    "km.answers.quality.complete",
    "km.answers.quality.degraded",
    "km.answers.quality.partial",
    "km.answers.quality.deadline_exceeded",

    // Cross-query caches (core/keymantic.cc collector).
    "km.cache.keyword_row.hits",
    "km.cache.keyword_row.misses",
    "km.cache.keyword_row.evictions",
    "km.cache.keyword_row.entries",
    "km.cache.steiner.hits",
    "km.cache.steiner.misses",
    "km.cache.steiner.evictions",
    "km.cache.steiner.entries",

    // Failpoint trips (common/failpoint.cc).
    "km.failpoint.trips",

    // Per-query budget accounting (core/keymantic.cc).
    "km.query.spend.tokenize",
    "km.query.spend.weights",
    "km.query.spend.forward",
    "km.query.spend.backward",
    "km.query.spend.combine",
    "km.query.spend.execute",
    "km.query.deadline_hits",
    "km.query.budget_hits",
    "km.query.cancellations",

    // Client-side retry governance (common/retry.cc).
    "km.retry.requests",
    "km.retry.retries",
    "km.retry.suppressed.not_retryable",
    "km.retry.suppressed.attempt_cap",
    "km.retry.suppressed.budget",

    // Serving layer (serve/engine_server.cc).
    "km.serve.state",
    "km.serve.submitted",
    "km.serve.admitted",
    "km.serve.shed",
    "km.serve.completed",
    "km.serve.expired_in_queue",
    "km.serve.queue_wait_ms",
    "km.serve.latency_ms",
    "km.serve.queue.depth",
    "km.serve.aimd_limit",
    "km.serve.refused",

    // Forward weight kernel (metadata/weights.cc Build). Candidate/pruned
    // SW cells of the batched kernel; pruned_ratio is per-mille of cells
    // skipped as provably below sw_floor in the most recent build.
    "km.weights.sw.candidates",
    "km.weights.sw.pruned",
    "km.weights.pruned_ratio",

    // Snapshot save/load (snapshot/snapshot_writer.cc, snapshot_loader.cc).
    "km.snapshot.save.total",
    "km.snapshot.save.failures",
    "km.snapshot.save.bytes",
    "km.snapshot.load.total",
    "km.snapshot.load.failures",
    "km.snapshot.load.failures.truncated",
    "km.snapshot.load.failures.checksum_mismatch",
    "km.snapshot.load.failures.version_skew",

    // Snapshot hot-swap ladder (serve/engine_server.cc ReloadSnapshot).
    "km.snapshot.reload.attempts",
    "km.snapshot.reload.swaps",
    "km.snapshot.reload.kept_current",
    "km.snapshot.reload.rebuilds",
    "km.snapshot.reload.refusals",

    // Network front end (net/server.cc).
    "km.net.connections.accepted",
    "km.net.connections.adopted",
    "km.net.connections.open",
    "km.net.disconnects",
    "km.net.frames.in",
    "km.net.frames.out",
    "km.net.bytes.in",
    "km.net.bytes.out",
    "km.net.protocol_errors",
    "km.net.queries",
    "km.net.rejected.capacity",
    "km.net.rejected.unknown_tenant",
    "km.net.idle_timeouts",
    "km.net.hello_timeouts",
    "km.net.evicted_slow",
    "km.net.accept_failures",
    "km.net.write_errors",
    "km.net.replies",
    "km.net.queries_dropped",
    "km.net.outbox.high_water",
    "km.net.drains",
    "km.net.drain.rtry",

    // Network client (net/client.cc).
    "km.net.client.reconnects",
    "km.net.client.duplicates_dropped",

    // Tenant registry (serve/tenant.cc).
    "km.tenants.count",
    "km.tenants.unknown",
};

/// Prefixes of metric families whose full names are composed at runtime.
inline constexpr const char* kMetricNamePrefixes[] = {
    // "km.serve.transitions.<state>" — overload state machine transitions.
    "km.serve.transitions.",
    // "km.breaker.<name>.{state,trips,rejections,stale_outcomes}" and
    // "km.breaker.<name>.transitions.<state>" (serve/circuit_breaker.cc).
    "km.breaker.",
    // "km.tenant.<id>.{submitted,shed,reloads}" — per-tenant serving
    // counters composed from the tenant id (serve/tenant.cc).
    "km.tenant.",
};

}  // namespace km

#endif  // KM_COMMON_METRIC_NAMES_H_
