// Status/StatusOr error model for the keymantic library.
//
// The library does not throw exceptions across its public boundaries
// (RocksDB-style): fallible operations return a Status or a StatusOr<T>.

#ifndef KM_COMMON_STATUS_H_
#define KM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace km {

/// Broad classification of an error. Mirrors the usual canonical codes that
/// database libraries expose; only the codes the library actually produces
/// are defined.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Malformed input (bad query, bad schema, ...).
  kNotFound = 2,          ///< Named relation/attribute/term does not exist.
  kAlreadyExists = 3,     ///< Duplicate relation/attribute/constraint.
  kFailedPrecondition = 4,///< Operation not valid in the current state.
  kOutOfRange = 5,        ///< Index or parameter outside the valid range.
  kInternal = 6,          ///< Invariant violation inside the library.
  kUnimplemented = 7,     ///< Feature intentionally not supported.
  kDeadlineExceeded = 8,  ///< Wall-clock deadline expired before completion.
  kResourceExhausted = 9, ///< Work budget (or simulated allocation) exhausted.
  kCancelled = 10,        ///< Cooperatively cancelled by the caller.
  kOverloaded = 11,       ///< Shed by admission control; retry after backoff.
  kUnavailable = 12,      ///< Backend unreachable (e.g. circuit breaker open).
  kSnapshotTruncated = 13,        ///< Snapshot file shorter than it claims.
  kSnapshotChecksumMismatch = 14, ///< Snapshot section failed its CRC.
  kSnapshotVersionSkew = 15,      ///< Snapshot format/content incompatible.
  kProtocolError = 16,            ///< Malformed or out-of-contract wire frame.
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a context message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the OK case, which is the common path).
///
/// [[nodiscard]]: silently dropping a Status hides failures; call sites
/// that intentionally ignore one must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per non-OK code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status SnapshotTruncated(std::string msg) {
    return Status(StatusCode::kSnapshotTruncated, std::move(msg));
  }
  static Status SnapshotChecksumMismatch(std::string msg) {
    return Status(StatusCode::kSnapshotChecksumMismatch, std::move(msg));
  }
  static Status SnapshotVersionSkew(std::string msg) {
    return Status(StatusCode::kSnapshotVersionSkew, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }

  /// True iff the status carries no error.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a value (implicit, to allow `return value;`).
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT

  /// Constructs from a non-OK status (implicit, to allow `return status;`).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access to the contained value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the current function.
#define KM_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::km::Status _km_status = (expr);           \
    if (!_km_status.ok()) return _km_status;    \
  } while (0)

#define KM_INTERNAL_CONCAT2(a, b) a##b
#define KM_INTERNAL_CONCAT(a, b) KM_INTERNAL_CONCAT2(a, b)

/// Assigns the value of a StatusOr expression or propagates its error.
#define KM_ASSIGN_OR_RETURN(lhs, expr)                            \
  KM_ASSIGN_OR_RETURN_IMPL(KM_INTERNAL_CONCAT(_km_sor_, __LINE__), lhs, expr)

#define KM_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                             \
  if (!var.ok()) return var.status();            \
  lhs = std::move(var).value()

}  // namespace km

#endif  // KM_COMMON_STATUS_H_
