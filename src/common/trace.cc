#include "common/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>  // clock_gettime, CLOCK_THREAD_CPUTIME_ID
#define KM_HAS_THREAD_CPU_CLOCK 1
#endif

#include "common/check.h"

namespace km {

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             MonotonicClock::now().time_since_epoch())
      .count();
}

int64_t ThreadCpuNowNs() {
#ifdef KM_HAS_THREAD_CPU_CLOCK
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
  }
#endif
  return 0;
}

TraceNode::TraceNode(std::string name, TraceNode* parent, size_t slot)
    : name_(std::move(name)),
      parent_(parent),
      root_(parent != nullptr ? parent->root_ : this) {
  if (parent == nullptr) {
    epoch_ns_ = MonotonicNowNs();
    start_wall_ns_ = epoch_ns_;
    slot_ = 0;
  } else {
    start_wall_ns_ = MonotonicNowNs();
    slot_ = slot;
  }
  start_offset_ns_ = start_wall_ns_ - root_->epoch_ns_;
  start_cpu_ns_ = ThreadCpuNowNs();
  // tid_ is set by the caller (Root / BeginChild): SmallThreadId locks the
  // root's mutex, which BeginChild on the root already holds here.
}

std::shared_ptr<TraceNode> TraceNode::Root(std::string name) {
  // make_shared can't reach the private constructor; the extra allocation
  // is once per traced query.
  auto root = std::shared_ptr<TraceNode>(
      new TraceNode(std::move(name), /*parent=*/nullptr, /*slot=*/0));
  root->tid_ = root->SmallThreadId();
  return root;
}

TraceNode* TraceNode::BeginChild(const char* name, size_t slot) {
  // Children may not be opened on a span that has already ended.
  KM_DCHECK(!ended());
  // Resolved before taking mu_: SmallThreadId locks the root's mutex, and
  // when this node *is* the root that would self-deadlock under the guard.
  const int tid = root_->SmallThreadId();
  MutexLock lock(mu_);
  if (slot == kAutoSlot) {
    slot = next_slot_.fetch_add(1, std::memory_order_relaxed);
  }
  children_.push_back(std::unique_ptr<TraceNode>(new TraceNode(name, this, slot)));
  children_.back()->tid_ = tid;
  return children_.back().get();
}

void TraceNode::End() {
  if (ended_.exchange(true, std::memory_order_acq_rel)) return;
  wall_ns_ = MonotonicNowNs() - start_wall_ns_;
  const int64_t cpu = ThreadCpuNowNs();
  cpu_ns_ = (start_cpu_ns_ > 0 && cpu > 0) ? cpu - start_cpu_ns_ : 0;
  MutexLock lock(mu_);
  // Slot order is program order for serial call sites and loop-index order
  // for parallel ones — either way, deterministic across thread counts.
  std::stable_sort(children_.begin(), children_.end(),
                   [](const std::unique_ptr<TraceNode>& a,
                      const std::unique_ptr<TraceNode>& b) {
                     return a->slot_ < b->slot_;
                   });
}

void TraceNode::Add(const char* counter, uint64_t delta) {
  MutexLock lock(mu_);
  for (auto& [name, value] : counters_) {
    if (name == counter) {
      value += delta;
      return;
    }
  }
  counters_.emplace_back(counter, delta);
}

uint64_t TraceNode::counter(const std::string& name) const {
  MutexLock lock(mu_);
  for (const auto& [counter_name, value] : counters_) {
    if (counter_name == name) return value;
  }
  return 0;
}

size_t TraceNode::SpanCount() const {
  size_t n = 1;
  for (const auto& child : children_) n += child->SpanCount();
  return n;
}

int TraceNode::SmallThreadId() {
  const uint64_t hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  MutexLock lock(root_->mu_);
  auto& ids = root_->thread_ids_;
  for (const auto& [known_hash, ordinal] : ids) {
    if (known_hash == hash) return ordinal;
  }
  ids.emplace_back(hash, static_cast<int>(ids.size()));
  return ids.back().second;
}

namespace {

void AppendIndent(std::string* out, size_t depth) {
  for (size_t i = 0; i < depth; ++i) out->append("  ");
}

// Counters sorted by name so the rendering never depends on which thread
// touched a counter first.
std::vector<std::pair<std::string, uint64_t>> SortedCounters(
    const std::vector<std::pair<std::string, uint64_t>>& counters) {
  auto sorted = counters;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

void TraceNode::AppendTree(std::string* out, size_t depth, bool timings) const {
  AppendIndent(out, depth);
  out->append(name_);
  if (timings) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  wall=%.3fms cpu=%.3fms", wall_ms(),
                  cpu_ms());
    out->append(buf);
  }
  for (const auto& [counter_name, value] : SortedCounters(counters_)) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %s=%" PRIu64, counter_name.c_str(),
                  value);
    out->append(buf);
  }
  out->push_back('\n');
  for (const auto& child : children_) {
    child->AppendTree(out, depth + 1, timings);
  }
}

void TraceNode::AppendShape(std::string* out, size_t depth) const {
  AppendIndent(out, depth);
  out->append(name_);
  // Counter *names* are structural (which code paths ran); values are not.
  const auto sorted = SortedCounters(counters_);
  if (!sorted.empty()) {
    out->append(" [");
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) out->push_back(' ');
      out->append(sorted[i].first);
    }
    out->push_back(']');
  }
  out->push_back('\n');
  for (const auto& child : children_) {
    child->AppendShape(out, depth + 1);
  }
}

std::string TraceNode::TreeString(bool timings) const {
  std::string out;
  AppendTree(&out, 0, timings);
  return out;
}

std::string TraceNode::ShapeString() const {
  std::string out;
  AppendShape(&out, 0);
  return out;
}

void TraceNode::AppendChromeEvents(std::string* out, bool* first) const {
  if (!*first) out->append(",\n");
  *first = false;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"",
                tid_, static_cast<double>(start_offset_ns_) * 1e-3,
                static_cast<double>(wall_ns_) * 1e-3);
  out->append(buf);
  AppendJsonEscaped(out, name_);
  out->append("\",\"args\":{");
  bool first_arg = true;
  for (const auto& [counter_name, value] : SortedCounters(counters_)) {
    if (!first_arg) out->push_back(',');
    first_arg = false;
    out->push_back('"');
    AppendJsonEscaped(out, counter_name);
    std::snprintf(buf, sizeof(buf), "\":%" PRIu64, value);
    out->append(buf);
  }
  out->append("}}");
  for (const auto& child : children_) {
    child->AppendChromeEvents(out, first);
  }
}

std::string TraceNode::ChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  AppendChromeEvents(&out, &first);
  out.append("\n]}\n");
  return out;
}

}  // namespace km
