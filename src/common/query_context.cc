#include "common/query_context.h"

#include <limits>

#include "common/metrics.h"
#include "common/strings.h"

namespace km {

const char* QueryStageName(QueryStage stage) {
  switch (stage) {
    case QueryStage::kTokenize: return "tokenize";
    case QueryStage::kWeights: return "weights";
    case QueryStage::kForward: return "forward";
    case QueryStage::kBackward: return "backward";
    case QueryStage::kCombine: return "combine";
    case QueryStage::kExecute: return "execute";
  }
  return "unknown";
}

const char* ResultQualityName(ResultQuality quality) {
  switch (quality) {
    case ResultQuality::kComplete: return "complete";
    case ResultQuality::kDegraded: return "degraded";
    case ResultQuality::kPartial: return "partial";
    case ResultQuality::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

QueryContext::QueryContext(QueryLimits limits)
    : limits_(limits), start_(Clock::now()) {
  if (limits_.deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ = start_ + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double, std::milli>(
                                 limits_.deadline_ms));
  }
}

QueryContext::~QueryContext() {
  auto& registry = MetricsRegistry::Default();
  for (size_t s = 0; s < kNumQueryStages; ++s) {
    const uint64_t spend = spend_[s].load(std::memory_order_relaxed);
    if (spend == 0) continue;
    static Counter* const spend_counters[kNumQueryStages] = {
        &registry.CounterRef("km.query.spend.tokenize"),
        &registry.CounterRef("km.query.spend.weights"),
        &registry.CounterRef("km.query.spend.forward"),
        &registry.CounterRef("km.query.spend.backward"),
        &registry.CounterRef("km.query.spend.combine"),
        &registry.CounterRef("km.query.spend.execute"),
    };
    spend_counters[s]->Increment(spend);
  }
  if (deadline_hit()) {
    static Counter& deadline_hits =
        registry.CounterRef("km.query.deadline_hits");
    deadline_hits.Increment();
  }
  if (work_budget_hit()) {
    static Counter& budget_hits = registry.CounterRef("km.query.budget_hits");
    budget_hits.Increment();
  }
  if (cancel_requested()) {
    static Counter& cancels = registry.CounterRef("km.query.cancellations");
    cancels.Increment();
  }
}

bool QueryContext::BudgetEmpty(QueryStage stage) const {
  uint64_t cap = 0;
  switch (stage) {
    case QueryStage::kForward: cap = limits_.max_forward_work; break;
    case QueryStage::kBackward: cap = limits_.max_backward_work; break;
    case QueryStage::kExecute: cap = limits_.max_execute_work; break;
    default: return false;  // the cheap stages carry no work budget
  }
  return cap > 0 &&
         spend_[static_cast<size_t>(stage)].load(std::memory_order_relaxed) >= cap;
}

bool QueryContext::Recheck() {
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (cancel_requested()) {
    exhausted_.store(true, std::memory_order_relaxed);
    return true;
  }
  if (has_deadline_ && Clock::now() >= deadline_) {
    exhausted_.store(true, std::memory_order_relaxed);
    deadline_hit_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool QueryContext::CheckPoint(QueryStage stage, uint64_t work) {
  spend_[static_cast<size_t>(stage)].fetch_add(work, std::memory_order_relaxed);
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (BudgetEmpty(stage)) {
    exhausted_.store(true, std::memory_order_relaxed);
    work_budget_hit_.store(true, std::memory_order_relaxed);
    return true;
  }
  // Amortize the clock read; cancellation is a relaxed atomic load and is
  // cheap enough to observe on the same stride. With several workers on one
  // context, each increment still lands the stride on *some* thread, so the
  // clock is polled at least as often as in the serial case.
  if (ticks_.fetch_add(1, std::memory_order_relaxed) % kPollStride !=
      kPollStride - 1) {
    return false;
  }
  return Recheck();
}

bool QueryContext::Exhausted() const {
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (cancel_requested()) return true;
  return has_deadline_ && Clock::now() >= deadline_;
}

void QueryContext::ForceExpire() {
  exhausted_.store(true, std::memory_order_relaxed);
  deadline_hit_.store(true, std::memory_order_relaxed);
}

Status QueryContext::ExhaustionStatus() const {
  if (cancel_requested()) return Status::Cancelled("query cancelled by caller");
  if (deadline_hit() || (has_deadline_ && Clock::now() >= deadline_)) {
    return Status::DeadlineExceeded("query deadline of " +
                                    StrFormat("%.3f", limits_.deadline_ms) +
                                    " ms exceeded");
  }
  if (work_budget_hit_) {
    return Status::ResourceExhausted("query work budget exhausted");
  }
  return Status::OK();
}

double QueryContext::ElapsedMillis() const {
  return std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
}

double QueryContext::RemainingMillis() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  const double rem =
      std::chrono::duration<double, std::milli>(deadline_ - Clock::now()).count();
  return rem > 0 ? rem : 0.0;
}

std::string QueryContext::SpendReport() const {
  std::string out = "elapsed=" + StrFormat("%.3f", ElapsedMillis()) + "ms";
  for (size_t s = 0; s < kNumQueryStages; ++s) {
    const uint64_t spend = spend_[s].load(std::memory_order_relaxed);
    if (spend == 0) continue;
    out += " ";
    out += QueryStageName(static_cast<QueryStage>(s));
    out += "=" + std::to_string(spend);
  }
  if (deadline_hit()) out += " deadline_hit";
  if (work_budget_hit()) out += " budget_hit";
  if (cancel_requested()) out += " cancelled";
  return out;
}

}  // namespace km
