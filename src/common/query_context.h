// Per-query resource governance: deadlines, work budgets and cooperative
// cancellation.
//
// KEYMANTIC's two combinatorial stages — Murty top-k assignment enumeration
// in the forward step and DPBF group Steiner search in the backward step —
// have worst-case costs that explode with keyword count and terminology
// size. A QueryContext bounds one query by wall clock (steady_clock
// deadline) and by work (per-stage operation counters), and carries a
// cancellation token another thread may set. Long-running loops poll the
// context through CheckPoint(), which is amortized: it bumps a counter on
// every call but only reads the clock every kPollStride calls, so polling
// inside hot loops costs roughly one increment and one branch.
//
// Exhaustion is *sticky* and *cooperative*: once the deadline passes, a
// budget empties or a cancel is requested, CheckPoint()/Exhausted() return
// true forever and each stage is expected to wind down, returning whatever
// it has found so far. Nothing is killed; the degradation ladder in the
// engine (see core/keymantic.h) decides what a useful partial answer is.

#ifndef KM_COMMON_QUERY_CONTEXT_H_
#define KM_COMMON_QUERY_CONTEXT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/trace.h"

namespace km {

/// Pipeline stages for per-stage budget accounting and spend reporting.
enum class QueryStage : uint8_t {
  kTokenize = 0,  ///< query text → keywords
  kWeights = 1,   ///< intrinsic weight matrix construction
  kForward = 2,   ///< configuration discovery (Murty / Hungarian / HMM)
  kBackward = 3,  ///< interpretation discovery (Steiner search)
  kCombine = 4,   ///< score combination, translation, ranking
  kExecute = 5,   ///< SPJ execution (join loops)
};
inline constexpr size_t kNumQueryStages = 6;

/// Stable lower-case stage name ("forward", "backward", ...).
const char* QueryStageName(QueryStage stage);

/// Resource limits of one query. Zero means unlimited for every field, so
/// a default-constructed QueryLimits never interferes.
struct QueryLimits {
  /// Wall-clock budget in milliseconds, measured from QueryContext
  /// construction (steady clock; immune to system-time jumps).
  double deadline_ms = 0;
  /// Murty-loop budget: assignment subproblems solved in the forward step.
  uint64_t max_forward_work = 0;
  /// DPBF budget: priority-queue pops in the backward Steiner search.
  uint64_t max_backward_work = 0;
  /// Executor budget: intermediate rows materialized by the join loops.
  uint64_t max_execute_work = 0;

  static QueryLimits Unlimited() { return {}; }
};

/// One query's deadline, budgets, cancellation token and spend counters.
/// Created per query by the caller and threaded (as a nullable pointer)
/// through every pipeline stage. Not copyable; the same object must be
/// observed by all stages so that spend accumulates in one place.
///
/// Thread model: fully thread-safe and *lock-free by design* — no km::Mutex
/// here on purpose. Counters and sticky exhaustion flags are atomics, so
/// one context can be checkpointed concurrently by every worker of a
/// parallel stage (ParallelFor) or a whole AnswerBatch without ever
/// contending a lock in the hot CheckPoint() path, and RequestCancel()
/// from any thread stops them all cooperatively.
class QueryContext {
 public:
  QueryContext() : QueryContext(QueryLimits::Unlimited()) {}
  explicit QueryContext(QueryLimits limits);

  /// Publishes this query's final spend to the process metrics registry
  /// ("km.query.spend.<stage>" counters plus deadline/budget/cancel hit
  /// counts). Destructor-time publication keeps batch accounting exact: a
  /// context shared by a whole AnswerBatch is counted once, not per answer.
  ~QueryContext();

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Requests cooperative cancellation (safe from any thread). The next
  /// CheckPoint()/Exhausted() observes it.
  void RequestCancel() { cancel_requested_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_requested_.load(std::memory_order_relaxed);
  }

  /// Records `work` units against `stage` and returns true when the query
  /// should stop expanding (deadline passed, a budget empty, or cancelled).
  /// Amortized: the clock is read only every kPollStride calls, so this is
  /// safe to call once per loop iteration on hot paths.
  bool CheckPoint(QueryStage stage, uint64_t work = 1);

  /// Non-amortized exhaustion test (reads the clock). Use at stage
  /// boundaries; prefer CheckPoint() inside loops.
  bool Exhausted() const;

  /// Forces immediate exhaustion, as if the deadline had just passed.
  /// Used by the stage-timeout failpoints and by callers that want to turn
  /// an external signal into a deadline event.
  void ForceExpire();

  /// True once the wall-clock deadline has been observed exhausted.
  bool deadline_hit() const { return deadline_hit_.load(std::memory_order_relaxed); }
  /// True once some work budget has been observed exhausted.
  bool work_budget_hit() const {
    return work_budget_hit_.load(std::memory_order_relaxed);
  }

  /// The Status a stage should propagate when it cannot even degrade:
  /// kCancelled, kDeadlineExceeded or kResourceExhausted. OK when not
  /// exhausted.
  Status ExhaustionStatus() const;

  /// Work units recorded against a stage so far.
  uint64_t Spend(QueryStage stage) const {
    return spend_[static_cast<size_t>(stage)].load(std::memory_order_relaxed);
  }

  /// Milliseconds elapsed since construction.
  double ElapsedMillis() const;

  /// Remaining wall-clock budget in milliseconds (infinity when no
  /// deadline is set, never negative).
  double RemainingMillis() const;

  const QueryLimits& limits() const { return limits_; }

  /// One-line spend report: "elapsed=12.3ms forward=450 backward=2048 ...".
  std::string SpendReport() const;

 private:
  // The library-wide monotonic clock (common/trace.h): span timings and
  // deadline checks read the same source and can never disagree.
  using Clock = MonotonicClock;

  // Poll the clock once per this many CheckPoint() calls.
  static constexpr uint64_t kPollStride = 64;

  bool BudgetEmpty(QueryStage stage) const;
  // Slow path: reads the clock, updates sticky flags.
  bool Recheck();

  QueryLimits limits_;
  Clock::time_point start_;
  Clock::time_point deadline_;  // start_ + deadline_ms (when set)
  bool has_deadline_ = false;

  std::array<std::atomic<uint64_t>, kNumQueryStages> spend_{};
  std::atomic<uint64_t> ticks_{0};

  // Sticky exhaustion state. Multi-writer: any worker of a parallel stage
  // may observe exhaustion first; flags only ever flip false → true, so
  // relaxed atomics suffice.
  std::atomic<bool> exhausted_{false};
  std::atomic<bool> deadline_hit_{false};
  std::atomic<bool> work_budget_hit_{false};
  std::atomic<bool> cancel_requested_{false};
};

/// Fidelity of an answer produced under resource governance, ordered by
/// increasing severity. Anything above kComplete means the degradation
/// ladder was engaged; the result is still ranked and usable.
enum class ResultQuality : uint8_t {
  kComplete = 0,          ///< full pipeline ran within budget
  kDegraded = 1,          ///< a cheaper fallback algorithm substituted a stage
  kPartial = 2,           ///< candidate enumeration was cut short
  kDeadlineExceeded = 3,  ///< the wall-clock deadline expired; best-effort floor
};

/// Stable name of a ResultQuality value ("complete", "degraded", ...).
const char* ResultQualityName(ResultQuality quality);

/// max(a, b) under the severity order above.
inline ResultQuality WorseQuality(ResultQuality a, ResultQuality b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

}  // namespace km

#endif  // KM_COMMON_QUERY_CONTEXT_H_
