#include "common/retry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/metrics.h"

namespace km {

namespace {

constexpr const char kRetryAfterKey[] = "retry_after_ms=";

}  // namespace

namespace {

std::string WithRetryAfter(const std::string& what, double retry_after_ms) {
  char hint[64];
  std::snprintf(hint, sizeof(hint), " (%s%.0f)", kRetryAfterKey,
                retry_after_ms < 0 ? 0.0 : retry_after_ms);
  return what + hint;
}

}  // namespace

Status OverloadedStatus(const std::string& what, double retry_after_ms) {
  return Status::Overloaded(WithRetryAfter(what, retry_after_ms));
}

Status UnavailableStatus(const std::string& what, double retry_after_ms) {
  return Status::Unavailable(WithRetryAfter(what, retry_after_ms));
}

double SuggestedRetryAfterMs(const Status& status) {
  const std::string& msg = status.message();
  const size_t pos = msg.find(kRetryAfterKey);
  if (pos == std::string::npos) return 0.0;
  const double value = std::atof(msg.c_str() + pos + sizeof(kRetryAfterKey) - 1);
  return value > 0 ? value : 0.0;
}

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kOverloaded ||
         status.code() == StatusCode::kUnavailable;
}

RetryBudget::RetryBudget(const RetryOptions& options)
    : ratio_milli_(static_cast<int64_t>(options.budget_ratio * 1000.0)),
      cap_milli_(static_cast<int64_t>(options.budget_cap * 1000.0)),
      // The bucket starts full: a cold server tolerates a burst of retries
      // up to the cap before the ratio constraint takes over.
      milli_tokens_(static_cast<int64_t>(options.budget_cap * 1000.0)) {}

void RetryBudget::OnAttempt() {
  int64_t cur = milli_tokens_.load(std::memory_order_relaxed);
  while (true) {
    const int64_t next = std::min(cap_milli_, cur + ratio_milli_);
    if (next == cur) return;
    if (milli_tokens_.compare_exchange_weak(cur, next,
                                            std::memory_order_relaxed)) {
      return;
    }
  }
}

bool RetryBudget::TrySpendRetry() {
  int64_t cur = milli_tokens_.load(std::memory_order_relaxed);
  while (cur >= 1000) {
    if (milli_tokens_.compare_exchange_weak(cur, cur - 1000,
                                            std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

RetrySchedule::RetrySchedule(const RetryOptions& options, uint64_t request_id)
    : options_(options),
      // splitmix64 seeding: mixing the id through one Next() step decorrelates
      // the streams of consecutive request ids.
      rng_(options.seed ^ (request_id * 0xD1B54A32D192ED03ULL)),
      prev_ms_(options.base_backoff_ms) {}

double RetrySchedule::NextBackoffMs(double retry_after_floor_ms) {
  // Decorrelated jitter: sleep = min(cap, uniform[base, 3·prev]). The first
  // delay is uniform in [base, 3·base].
  const double lo = options_.base_backoff_ms;
  const double hi = std::max(lo, prev_ms_ * 3.0);
  double sleep = lo + (hi - lo) * rng_.UniformDouble();
  sleep = std::min(sleep, options_.max_backoff_ms);
  sleep = std::max(sleep, retry_after_floor_ms);
  prev_ms_ = sleep;
  ++retries_;
  return sleep;
}

RetryPolicy::RetryPolicy(RetryOptions options)
    : options_(options), budget_(options) {}

void RetryPolicy::OnRequest() {
  static Counter& requests =
      MetricsRegistry::Default().CounterRef("km.retry.requests");
  requests.Increment();
  budget_.OnAttempt();
}

bool RetryPolicy::ShouldRetry(const Status& status, int attempts_made) {
  auto& registry = MetricsRegistry::Default();
  static Counter& retries = registry.CounterRef("km.retry.retries");
  static Counter& not_retryable =
      registry.CounterRef("km.retry.suppressed.not_retryable");
  static Counter& attempt_cap =
      registry.CounterRef("km.retry.suppressed.attempt_cap");
  static Counter& budget_empty =
      registry.CounterRef("km.retry.suppressed.budget");
  if (!IsRetryableStatus(status)) {
    not_retryable.Increment();
    return false;
  }
  if (attempts_made >= options_.max_attempts) {
    attempt_cap.Increment();
    return false;
  }
  if (!budget_.TrySpendRetry()) {
    budget_empty.Increment();
    return false;
  }
  retries.Increment();
  return true;
}

}  // namespace km
