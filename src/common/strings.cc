#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace km {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    const size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool Contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::vector<std::string> SplitIdentifierWords(std::string_view ident) {
  std::vector<std::string> words;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      words.push_back(current);
      current.clear();
    }
  };
  for (size_t i = 0; i < ident.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(ident[i]);
    if (c == '_' || c == '-' || c == ' ' || c == '.') {
      flush();
      continue;
    }
    if (std::isupper(c)) {
      // A new word starts at an upper-case letter following a lower-case
      // letter or digit ("personName"), or at the last upper-case letter of
      // an acronym run followed by lower case ("HTTPServer" -> http, server).
      const bool prev_lower =
          i > 0 && (std::islower(static_cast<unsigned char>(ident[i - 1])) ||
                    std::isdigit(static_cast<unsigned char>(ident[i - 1])));
      const bool next_lower = i + 1 < ident.size() &&
                              std::islower(static_cast<unsigned char>(ident[i + 1]));
      const bool prev_upper =
          i > 0 && std::isupper(static_cast<unsigned char>(ident[i - 1]));
      if (prev_lower || (prev_upper && next_lower)) flush();
    }
    current += static_cast<char>(std::tolower(c));
  }
  flush();
  return words;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool IsValidUtf8(std::string_view s) {
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    const unsigned char c = static_cast<unsigned char>(s[i]);
    if (c < 0x80) {
      ++i;
      continue;
    }
    size_t len;
    uint32_t cp;
    if ((c & 0xE0) == 0xC0) {
      len = 2;
      cp = c & 0x1Fu;
    } else if ((c & 0xF0) == 0xE0) {
      len = 3;
      cp = c & 0x0Fu;
    } else if ((c & 0xF8) == 0xF0) {
      len = 4;
      cp = c & 0x07u;
    } else {
      return false;  // stray continuation byte or invalid lead byte
    }
    if (i + len > n) return false;  // truncated sequence
    for (size_t j = 1; j < len; ++j) {
      const unsigned char cont = static_cast<unsigned char>(s[i + j]);
      if ((cont & 0xC0) != 0x80) return false;
      cp = (cp << 6) | (cont & 0x3Fu);
    }
    // Overlong encodings, UTF-16 surrogates, out-of-range code points.
    if (len == 2 && cp < 0x80) return false;
    if (len == 3 && cp < 0x800) return false;
    if (len == 4 && cp < 0x10000) return false;
    if (cp >= 0xD800 && cp <= 0xDFFF) return false;
    if (cp > 0x10FFFF) return false;
    i += len;
  }
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace km
