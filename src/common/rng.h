// Deterministic pseudo-random number generation.
//
// All randomized components of the library (dataset generators, workload
// generators, sampling in benchmarks) take an explicit Rng so that every
// experiment is reproducible from its seed.

#ifndef KM_COMMON_RNG_H_
#define KM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace km {

/// A small, fast, deterministic PRNG (splitmix64 core).
///
/// Not cryptographically secure; intended for reproducible synthetic data
/// and workload generation.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound) {
    KM_CHECK_GT(bound, 0u);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    KM_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Zipf-distributed rank in [0, n), exponent `s` (s=0 is uniform).
  ///
  /// Uses inverse-CDF sampling over precomputed weights when called through
  /// ZipfSampler; this convenience form is O(n) per call and fine for
  /// small n.
  size_t Zipf(size_t n, double s);

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    KM_CHECK(!v.empty());
    return v[Uniform(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_;
};

/// Precomputed Zipf sampler for repeated draws over a fixed domain size.
class ZipfSampler {
 public:
  /// Builds a sampler over ranks [0, n) with exponent s >= 0.
  ZipfSampler(size_t n, double s) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      double w = 1.0;
      double base = static_cast<double>(i + 1);
      // pow(base, -s) without <cmath> dependency concerns.
      w = 1.0 / Pow(base, s);
      total += w;
      cdf_[i] = total;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  }

  /// Draws a rank in [0, n).
  size_t Sample(Rng* rng) const {
    double u = rng->UniformDouble();
    size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

  size_t size() const { return cdf_.size(); }

 private:
  static double Pow(double base, double exp) {
    // Simple exp*log implementation to avoid pulling <cmath> into headers
    // would be silly; use the builtin.
    return __builtin_pow(base, exp);
  }

  std::vector<double> cdf_;
};

inline size_t Rng::Zipf(size_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(this);
}

}  // namespace km

#endif  // KM_COMMON_RNG_H_
