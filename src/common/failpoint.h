// Deterministic fault injection for resilience testing.
//
// A *failpoint* is a named hook compiled into a pipeline seam. In normal
// operation a failpoint site is disabled and (in builds without
// KM_FAILPOINTS_ENABLED) costs nothing at all — the macros expand to
// no-ops. Tests script failures through the registry:
//
//   failpoints::EnableError("forward.murty.alloc",
//                           Status::ResourceExhausted("simulated"));
//   ... drive the engine, assert it degrades instead of aborting ...
//   failpoints::DisableAll();
//
// Supported actions: inject an error Status (the site returns it), expire
// the current QueryContext (simulating a stage timeout), or run an
// arbitrary callback against a site-provided payload (e.g. corrupting a
// weight matrix in place). Actions can be armed to skip the first N hits
// and to fire at most M times, which makes multi-call scenarios
// deterministic.
//
// Naming scheme: "<stage>.<component>.<fault>" — e.g. "forward.murty.alloc",
// "backward.steiner.timeout", "executor.join.fail". The full site list
// lives in kFailpointSites below and in DESIGN.md §Resilience.
//
// Build gating: sites are active when KM_FAILPOINTS_ENABLED is defined
// (CMake: -DKM_FAILPOINTS=ON, or any Debug build). The registry functions
// are always compiled so tests link unconditionally; they are inert when
// the sites are compiled out (tests should GTEST_SKIP on
// !failpoints::Enabled()).

#ifndef KM_COMMON_FAILPOINT_H_
#define KM_COMMON_FAILPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace km {

class QueryContext;

namespace failpoints {

/// What an armed failpoint does when its site is hit.
enum class ActionKind : uint8_t {
  kError = 0,          ///< the site returns the configured Status
  kExpireContext = 1,  ///< the site's QueryContext is force-expired
  kCallback = 2,       ///< the callback runs against the site's payload
};

/// A scripted failure. `skip` hits pass through before the action fires;
/// after `limit` firings (when >= 0) the failpoint goes dormant again.
struct Action {
  ActionKind kind = ActionKind::kError;
  Status error = Status::Internal("failpoint");  ///< kError payload
  std::function<void(void*)> callback;           ///< kCallback payload
  int skip = 0;
  int limit = -1;
};

/// True when failpoint sites are compiled into this build.
constexpr bool Enabled() {
#ifdef KM_FAILPOINTS_ENABLED
  return true;
#else
  return false;
#endif
}

/// Arms `name` with `action`. Re-arming replaces the previous action.
void Enable(const std::string& name, Action action);

/// Shorthands for the three action kinds.
void EnableError(const std::string& name, Status error);
void EnableExpire(const std::string& name);
void EnableCallback(const std::string& name, std::function<void(void*)> callback);

/// Disarms one failpoint / all failpoints (hit counters are kept).
void Disable(const std::string& name);
void DisableAll();

/// Resets hit counters (and disarms everything): a clean slate per test.
void Reset();

/// Number of times the named site was *visited* (armed or not) since the
/// last Reset(). Always zero when sites are compiled out.
uint64_t HitCount(const std::string& name);

/// All site names visited at least once since the last Reset().
std::vector<std::string> VisitedSites();

/// The canonical compiled-in site list (kept in sync with the KM_FAILPOINT
/// uses across the pipeline; resilience_test iterates it).
extern const char* const kFailpointSites[];
extern const size_t kNumFailpointSites;

namespace internal {

/// Site implementation: counts the visit and applies the armed action (if
/// any). Returns the injected error for kError, OK otherwise.
Status Hit(const char* name, QueryContext* ctx, void* payload);

}  // namespace internal
}  // namespace failpoints
}  // namespace km

// Site macros. Each names one seam; sites live in Status/StatusOr-returning
// functions (the error action propagates via return) except KM_FAILPOINT_VISIT,
// which discards the status and therefore supports only the kExpireContext
// and kCallback actions (use it in infallible code like matrix builders).
#ifdef KM_FAILPOINTS_ENABLED

#define KM_FAILPOINT(name)                                                   \
  do {                                                                       \
    ::km::Status _km_fp =                                                    \
        ::km::failpoints::internal::Hit((name), nullptr, nullptr);           \
    if (!_km_fp.ok()) return _km_fp;                                         \
  } while (0)

#define KM_FAILPOINT_CTX(name, ctx)                                          \
  do {                                                                       \
    ::km::Status _km_fp =                                                    \
        ::km::failpoints::internal::Hit((name), (ctx), nullptr);             \
    if (!_km_fp.ok()) return _km_fp;                                         \
  } while (0)

#define KM_FAILPOINT_VISIT(name, ctx, payload) \
  ((void)::km::failpoints::internal::Hit((name), (ctx), (payload)))

#else  // !KM_FAILPOINTS_ENABLED

#define KM_FAILPOINT(name) ((void)0)
#define KM_FAILPOINT_CTX(name, ctx) ((void)(ctx))
#define KM_FAILPOINT_VISIT(name, ctx, payload) ((void)(ctx), (void)(payload))

#endif  // KM_FAILPOINTS_ENABLED

#endif  // KM_COMMON_FAILPOINT_H_
