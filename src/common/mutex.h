// Annotated mutex, RAII lock, and condition variable.
//
// km::Mutex / km::MutexLock / km::CondVar are the only synchronization
// primitives the codebase uses directly (tools/km_lint.py rule R1 rejects
// raw std::mutex outside this header). They are thin wrappers over the
// standard primitives whose sole job is to carry Clang Thread Safety
// Analysis capabilities (common/thread_annotations.h): under the
// `thread-safety` preset the compiler proves every KM_GUARDED_BY field is
// only touched with its mutex held and every lock taken is released on all
// paths.
//
// Condition waits are written as explicit loops so the analysis can see
// the guarded reads in the enclosing (lock-holding) function instead of
// inside an opaque predicate lambda:
//
//   MutexLock lock(mu_);
//   while (!stop_ && tasks_.empty()) cv_.Wait(mu_);   // analysis-visible
//
// rather than cv.wait(lock, [&]{ return stop_ || !tasks_.empty(); }).

#ifndef KM_COMMON_MUTEX_H_
#define KM_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace km {

/// A standard exclusive mutex carrying the "mutex" capability. Prefer
/// MutexLock over manual Lock()/Unlock(); the analysis accepts both but
/// RAII cannot leak a lock on an early return.
class KM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() KM_ACQUIRE() { raw_.lock(); }
  void Unlock() KM_RELEASE() { raw_.unlock(); }
  bool TryLock() KM_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;  // Wait() needs the raw handle for std::unique_lock
  std::mutex raw_;
};

/// RAII lock over a km::Mutex (a scoped capability: the constructor
/// acquires, the destructor releases, and the analysis checks the scope).
class KM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) KM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() KM_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to km::Mutex. Wait() atomically releases the
/// mutex, blocks, and re-acquires it — so from the caller's (and the
/// analysis') point of view the mutex is held continuously; KM_REQUIRES
/// expresses exactly that. Spurious wakeups happen: always wait in a
/// `while (!condition)` loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken). `mu` must be held.
  void Wait(Mutex& mu) KM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.raw_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's MutexLock
  }

  /// Blocks up to `timeout_ms`. Returns false on timeout, true when
  /// notified (or spuriously woken) earlier. `mu` must be held.
  bool WaitForMs(Mutex& mu, double timeout_ms) KM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.raw_, std::adopt_lock);
    auto status = cv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(timeout_ms));
    lock.release();
    return status == std::cv_status::no_timeout;
  }

  /// Wakes one / every waiter. May be called with or without the mutex;
  /// calling after releasing it avoids a hurry-up-and-wait wakeup.
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace km

#endif  // KM_COMMON_MUTEX_H_
