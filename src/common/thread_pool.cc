#include "common/thread_pool.h"

#include <memory>
#include <utility>

namespace km {

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Run(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.Wait(mu_);
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

namespace {

// Shared state of one ParallelFor call. Heap-allocated and reference-counted:
// a helper task may start (and immediately find the range drained) after the
// caller has already observed completion and returned, so everything it
// touches — including the callable — must live in here, not on the caller's
// stack.
struct ForState {
  ForState(size_t total, const std::function<void(size_t)>& f) : n(total), fn(f) {}
  const size_t n;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  Mutex mu;
  CondVar cv;
  size_t done KM_GUARDED_BY(mu) = 0;
};

// Claims indices until the range is exhausted. Indices are handed out by an
// atomic counter (dynamic scheduling) but each index writes only its own
// output slot, so results are deterministic regardless of interleaving.
void DrainRange(const std::shared_ptr<ForState>& state) {
  size_t finished = 0;
  for (;;) {
    const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state->n) break;
    state->fn(i);
    ++finished;
  }
  if (finished == 0) return;
  {
    MutexLock lock(state->mu);
    state->done += finished;
  }
  state->cv.NotifyAll();
}

}  // namespace

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t helpers = pool != nullptr ? std::min(pool->size(), n - 1) : 0;
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto state = std::make_shared<ForState>(n, fn);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Run([state] { DrainRange(state); });
  }
  // The caller participates: even when every pool worker is busy elsewhere
  // (nested or concurrent ParallelFor calls), the range still drains.
  DrainRange(state);
  MutexLock lock(state->mu);
  while (state->done != state->n) state->cv.Wait(state->mu);
}

}  // namespace km
