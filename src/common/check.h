// Contract-checking macros for the keymantic library.
//
// Three tiers of checks, from cheapest to most expressive:
//
//   * KM_CHECK(cond) / KM_CHECK_EQ/NE/LT/LE/GT/GE(a, b) — always-on
//     contracts. A failure invokes the installed CheckFailureHandler
//     (the default prints the violated condition and aborts). Use these
//     for invariants whose violation means the process must not continue.
//   * KM_DCHECK(cond) / KM_DCHECK_* / KM_DCHECK_OK(status_expr) —
//     debug-only contracts, compiled out under NDEBUG (the operands are
//     still semantically checked but never evaluated). Use these on hot
//     paths and for expensive whole-structure validation (see
//     analysis/invariants.h).
//   * KM_ENSURE(cond, msg) — a *returnable* contract for library
//     boundaries: evaluates to `return Status::Internal(...)` on failure
//     instead of aborting, so callers see StatusCode::kInternal. Use it
//     in Status/StatusOr-returning functions where a violated invariant
//     should surface as an error value, not a crash.
//
// KM_BOUNDS(i, n) is a named shorthand for the pervasive index check.
//
// The failure handler is pluggable (SetCheckFailureHandler) so tests can
// intercept violations instead of dying; a handler that returns normally
// still aborts the process — a violated KM_CHECK must never fall through.

#ifndef KM_COMMON_CHECK_H_
#define KM_COMMON_CHECK_H_

#include <sstream>
#include <string>

#include "common/status.h"

namespace km {

/// Description of one failed contract check, passed to the handler.
struct CheckFailure {
  const char* file;        ///< Source file of the failing KM_CHECK.
  int line;                ///< Source line of the failing KM_CHECK.
  const char* condition;   ///< Stringified condition, e.g. "rows <= cols".
  std::string detail;      ///< Operand values ("3 vs 2") or extra context.

  /// "file:line: KM_CHECK failed: condition (detail)".
  std::string ToString() const;
};

/// Handler invoked on contract failure. A handler may throw or longjmp to
/// regain control (tests); if it returns normally the process aborts.
using CheckFailureHandler = void (*)(const CheckFailure&);

/// Installs a new failure handler and returns the previous one. Passing
/// nullptr restores the default abort handler. Not thread-safe; intended
/// for test fixtures and process start-up.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

namespace internal {

/// Dispatches a failure to the installed handler; aborts if it returns.
void CheckFailed(const char* file, int line, const char* condition,
                 std::string detail);

/// Renders one operand of a failed binary check.
template <typename T>
std::string CheckOperandString(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// Failure path of KM_CHECK_<OP>: formats both operand values.
template <typename A, typename B>
void CheckOpFailed(const char* file, int line, const char* condition,
                   const A& a, const B& b) {
  CheckFailed(file, line, condition,
              CheckOperandString(a) + " vs " + CheckOperandString(b));
}

}  // namespace internal
}  // namespace km

/// Always-on contract check.
#define KM_CHECK(cond)                                                \
  ((cond) ? (void)0                                                   \
          : ::km::internal::CheckFailed(__FILE__, __LINE__, #cond, ""))

/// Always-on binary contract checks; failures report both values.
#define KM_CHECK_OP_IMPL(a, b, op)                                        \
  do {                                                                    \
    auto&& _km_a = (a);                                                   \
    auto&& _km_b = (b);                                                   \
    if (!(_km_a op _km_b)) {                                              \
      ::km::internal::CheckOpFailed(__FILE__, __LINE__, #a " " #op " " #b, \
                                    _km_a, _km_b);                        \
    }                                                                     \
  } while (0)

#define KM_CHECK_EQ(a, b) KM_CHECK_OP_IMPL(a, b, ==)
#define KM_CHECK_NE(a, b) KM_CHECK_OP_IMPL(a, b, !=)
#define KM_CHECK_LT(a, b) KM_CHECK_OP_IMPL(a, b, <)
#define KM_CHECK_LE(a, b) KM_CHECK_OP_IMPL(a, b, <=)
#define KM_CHECK_GT(a, b) KM_CHECK_OP_IMPL(a, b, >)
#define KM_CHECK_GE(a, b) KM_CHECK_OP_IMPL(a, b, >=)

/// Index bounds contract: 0 <= i < n (for unsigned index types).
#define KM_BOUNDS(i, n) KM_CHECK_OP_IMPL(i, n, <)

/// Always-on check that a Status(-like) expression is ok(); the failure
/// detail carries the status message.
#define KM_CHECK_OK(expr)                                                  \
  do {                                                                     \
    auto _km_st = (expr);                                                  \
    if (!_km_st.ok()) {                                                    \
      ::km::internal::CheckFailed(__FILE__, __LINE__, #expr " is OK",      \
                                  _km_st.ToString());                      \
    }                                                                      \
  } while (0)

// Debug-only variants: compiled out under NDEBUG. The operands stay inside
// an unevaluated sizeof so they are type-checked but never executed (and
// variables used only in checks do not become "unused" in release builds).
#ifndef NDEBUG
#define KM_DCHECK(cond) KM_CHECK(cond)
#define KM_DCHECK_EQ(a, b) KM_CHECK_EQ(a, b)
#define KM_DCHECK_NE(a, b) KM_CHECK_NE(a, b)
#define KM_DCHECK_LT(a, b) KM_CHECK_LT(a, b)
#define KM_DCHECK_LE(a, b) KM_CHECK_LE(a, b)
#define KM_DCHECK_GT(a, b) KM_CHECK_GT(a, b)
#define KM_DCHECK_GE(a, b) KM_CHECK_GE(a, b)
#define KM_DBOUNDS(i, n) KM_BOUNDS(i, n)
#define KM_DCHECK_OK(expr) KM_CHECK_OK(expr)
#else
#define KM_DCHECK(cond) ((void)sizeof(!(cond)))
#define KM_DCHECK_EQ(a, b) ((void)sizeof((a) == (b)))
#define KM_DCHECK_NE(a, b) ((void)sizeof((a) != (b)))
#define KM_DCHECK_LT(a, b) ((void)sizeof((a) < (b)))
#define KM_DCHECK_LE(a, b) ((void)sizeof((a) <= (b)))
#define KM_DCHECK_GT(a, b) ((void)sizeof((a) > (b)))
#define KM_DCHECK_GE(a, b) ((void)sizeof((a) >= (b)))
#define KM_DBOUNDS(i, n) ((void)sizeof((i) < (n)))
#define KM_DCHECK_OK(expr) ((void)sizeof((expr).ok()))
#endif

/// Returnable contract for Status/StatusOr-returning library boundaries:
/// on failure, returns StatusCode::kInternal naming the violated condition.
#define KM_ENSURE(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      return ::km::Status::Internal(std::string("invariant violated: ") + \
                                    #cond + " — " + (msg));               \
    }                                                                     \
  } while (0)

/// Returnable *input* contract: like KM_ENSURE but blames the caller with
/// StatusCode::kInvalidArgument. Use it to reject hostile or malformed
/// input (bad queries, out-of-range parameters) at public entry points —
/// validation failures must surface as error values, never aborts.
#define KM_ENSURE_ARG(cond, msg)                       \
  do {                                                 \
    if (!(cond)) {                                     \
      return ::km::Status::InvalidArgument((msg));     \
    }                                                  \
  } while (0)

#endif  // KM_COMMON_CHECK_H_
