#include "common/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/check.h"

namespace km {

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)), buckets_(bounds_.size() + 1) {
  // Bucket bounds must be ascending for the lower_bound in Observe().
  KM_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_micro_.fetch_add(static_cast<int64_t>(value * 1e6),
                       std::memory_order_relaxed);
}

double Histogram::Sum() const {
  return static_cast<double>(sum_micro_.load(std::memory_order_relaxed)) * 1e-6;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_micro_.store(0, std::memory_order_relaxed);
}

const std::vector<double>& DefaultLatencyBucketsMs() {
  static const std::vector<double> kBuckets = {
      0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192};
  return kBuckets;
}

void MetricsSnapshot::AddCounter(const std::string& name, double delta) {
  auto& value = values_[name];
  value.kind = MetricValue::Kind::kCounter;
  value.value += delta;
}

void MetricsSnapshot::AddGauge(const std::string& name, double delta) {
  auto& value = values_[name];
  value.kind = MetricValue::Kind::kGauge;
  value.value += delta;
}

double MetricsSnapshot::value(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second.value;
}

namespace {

// Renders doubles without trailing zero noise ("3" not "3.000000").
std::string NumberString(double value) {
  char buf[64];
  if (value == static_cast<double>(static_cast<int64_t>(value))) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

}  // namespace

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const auto& [name, metric] : values_) {
    if (metric.kind == MetricValue::Kind::kHistogram) {
      char buf[128];
      for (size_t i = 0; i < metric.buckets.size(); ++i) {
        if (i < metric.bounds.size()) {
          std::snprintf(buf, sizeof(buf), "%s{le=\"%s\"} %" PRIu64 "\n",
                        name.c_str(), NumberString(metric.bounds[i]).c_str(),
                        metric.buckets[i]);
        } else {
          std::snprintf(buf, sizeof(buf), "%s{le=\"+Inf\"} %" PRIu64 "\n",
                        name.c_str(), metric.buckets[i]);
        }
        out.append(buf);
      }
      out.append(name).append(".sum ").append(NumberString(metric.sum));
      out.push_back('\n');
      std::snprintf(buf, sizeof(buf), "%s.count %" PRIu64 "\n", name.c_str(),
                    metric.count);
      out.append(buf);
    } else {
      out.append(name).push_back(' ');
      out.append(NumberString(metric.value));
      out.push_back('\n');
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  bool first = true;
  char buf[128];
  for (const auto& [name, metric] : values_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n  \"").append(name).append("\": ");
    if (metric.kind == MetricValue::Kind::kHistogram) {
      out.append("{\"bounds\": [");
      for (size_t i = 0; i < metric.bounds.size(); ++i) {
        if (i > 0) out.push_back(',');
        out.append(NumberString(metric.bounds[i]));
      }
      out.append("], \"buckets\": [");
      for (size_t i = 0; i < metric.buckets.size(); ++i) {
        if (i > 0) out.push_back(',');
        std::snprintf(buf, sizeof(buf), "%" PRIu64, metric.buckets[i]);
        out.append(buf);
      }
      std::snprintf(buf, sizeof(buf), "], \"count\": %" PRIu64 ", \"sum\": %s}",
                    metric.count, NumberString(metric.sum).c_str());
      out.append(buf);
    } else {
      out.append(NumberString(metric.value));
    }
  }
  out.append("\n}\n");
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::CounterRef(const std::string& name) {
  MutexLock lock(mu_);
  // A name may only ever bind one instrument kind.
  KM_CHECK(gauges_.count(name) == 0 && histograms_.count(name) == 0);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GaugeRef(const std::string& name) {
  MutexLock lock(mu_);
  KM_CHECK(counters_.count(name) == 0 && histograms_.count(name) == 0);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::HistogramRef(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(mu_);
  KM_CHECK(counters_.count(name) == 0 && gauges_.count(name) == 0);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

int64_t MetricsRegistry::AddCollector(
    std::function<void(MetricsSnapshot*)> collector) {
  MutexLock lock(mu_);
  const int64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return id;
}

void MetricsRegistry::RemoveCollector(int64_t id) {
  MutexLock lock(mu_);
  collectors_.erase(
      std::remove_if(collectors_.begin(), collectors_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      collectors_.end());
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    auto& value = snapshot.values_[name];
    value.kind = MetricValue::Kind::kCounter;
    value.value = static_cast<double>(counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    auto& value = snapshot.values_[name];
    value.kind = MetricValue::Kind::kGauge;
    value.value = static_cast<double>(gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    auto& value = snapshot.values_[name];
    value.kind = MetricValue::Kind::kHistogram;
    value.bounds = histogram->bounds();
    value.buckets = histogram->BucketCounts();
    value.count = histogram->Count();
    value.sum = histogram->Sum();
  }
  for (const auto& [id, collector] : collectors_) {
    (void)id;
    collector(&snapshot);
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace km
