#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace km {

std::string CheckFailure::ToString() const {
  std::string out = std::string(file) + ":" + std::to_string(line) +
                    ": KM_CHECK failed: " + condition;
  if (!detail.empty()) {
    out += " (";
    out += detail;
    out += ")";
  }
  return out;
}

namespace {

void DefaultCheckFailureHandler(const CheckFailure& failure) {
  std::fprintf(stderr, "%s\n", failure.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

CheckFailureHandler g_handler = &DefaultCheckFailureHandler;

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  const CheckFailureHandler previous = g_handler;
  g_handler = handler != nullptr ? handler : &DefaultCheckFailureHandler;
  return previous;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* condition,
                 std::string detail) {
  const CheckFailure failure{file, line, condition, std::move(detail)};
  g_handler(failure);
  // A contract violation must never fall through, even under a handler
  // that forgot to throw/longjmp.
  std::fprintf(stderr, "%s\n[check handler returned; aborting]\n",
               failure.ToString().c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace km
