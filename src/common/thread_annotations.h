// Clang Thread Safety Analysis annotations, KM_-prefixed.
//
// These macros let the compiler *prove* lock discipline at build time:
// which mutex guards which field (KM_GUARDED_BY), which lock a method
// expects held (KM_REQUIRES), which calls acquire/release a capability
// (KM_ACQUIRE / KM_RELEASE), and which locks a call must NOT hold
// (KM_EXCLUDES). Under Clang with -Wthread-safety (the `thread-safety`
// CMake preset turns it into -Werror=thread-safety) any access to a
// guarded field without its mutex, any missing unlock on a path out of a
// function, and any lock-order annotation violation is a compile error —
// the static complement to the TSan CI job, which only sees interleavings
// the tests happen to execute.
//
// On every other compiler (the container image ships GCC) the macros
// expand to nothing: annotated code builds identically everywhere, and
// only the dedicated Clang preset enforces the proofs.
//
// Usage, end to end:
//
//   class KM_CAPABILITY("mutex") Mutex { ... };      // common/mutex.h
//
//   class Account {
//    public:
//     void Deposit(int amount) KM_EXCLUDES(mu_) {
//       MutexLock lock(mu_);
//       balance_ += amount;                  // OK: mu_ held via MutexLock
//     }
//    private:
//     void AdjustLocked(int delta) KM_REQUIRES(mu_);  // caller holds mu_
//     Mutex mu_;
//     int balance_ KM_GUARDED_BY(mu_) = 0;   // compile error if accessed
//   };                                       // without mu_ under Clang
//
// The vocabulary follows the Clang documentation
// (clang.llvm.org/docs/ThreadSafetyAnalysis.html); only the spelling is
// project-prefixed so the macros cannot collide with other libraries'.

#ifndef KM_COMMON_THREAD_ANNOTATIONS_H_
#define KM_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define KM_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define KM_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

/// Marks a class as a capability (a lockable resource). The string names
/// the capability kind in diagnostics ("mutex", "role", ...).
#define KM_CAPABILITY(x) KM_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (e.g. MutexLock).
#define KM_SCOPED_CAPABILITY KM_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define KM_GUARDED_BY(x) KM_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x`
/// (the pointer itself is unguarded).
#define KM_PT_GUARDED_BY(x) KM_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-ordering declarations on capability members: this capability must
/// be acquired before/after the listed ones.
#define KM_ACQUIRED_BEFORE(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define KM_ACQUIRED_AFTER(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function annotation: the caller must hold the listed capabilities
/// exclusively (they are NOT acquired or released by the call).
#define KM_REQUIRES(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Same, shared (reader) access suffices.
#define KM_REQUIRES_SHARED(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function annotation: the call acquires the listed capabilities (held on
/// return). With no argument on a capability member function, the
/// capability is the object itself.
#define KM_ACQUIRE(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define KM_ACQUIRE_SHARED(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: the call releases the listed capabilities.
#define KM_RELEASE(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define KM_RELEASE_SHARED(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#define KM_RELEASE_GENERIC(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(release_generic_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the return value equals
/// the first argument (e.g. KM_TRY_ACQUIRE(true) on a bool TryLock()).
#define KM_TRY_ACQUIRE(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#define KM_TRY_ACQUIRE_SHARED(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_shared_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the listed capabilities
/// (deadlock prevention for self-locking methods).
#define KM_EXCLUDES(...) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis: the capability is held here even
/// though the analysis cannot prove it (e.g. handed over across threads).
#define KM_ASSERT_CAPABILITY(x) \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// Function annotation: the function returns a reference to the capability
/// that guards its result.
#define KM_RETURN_CAPABILITY(x) KM_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the discipline holds anyway (e.g.
/// single-threaded access after a happens-before point).
#define KM_NO_THREAD_SAFETY_ANALYSIS \
  KM_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // KM_COMMON_THREAD_ANNOTATIONS_H_
