// Small string utilities shared across the library.

#ifndef KM_COMMON_STRINGS_H_
#define KM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace km {

/// Returns the ASCII lower-case copy of `s`.
std::string ToLower(std::string_view s);

/// Returns the ASCII upper-case copy of `s`.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on any ASCII whitespace run, dropping empty pieces.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// True iff `s` contains `needle`.
bool Contains(std::string_view s, std::string_view needle);

/// Splits an identifier into lower-case word pieces: "personName" and
/// "person_name" and "Person-Name" all yield {"person", "name"}.
std::vector<std::string> SplitIdentifierWords(std::string_view ident);

/// True iff every character of `s` is an ASCII digit (and s is non-empty).
bool IsAllDigits(std::string_view s);

/// True iff `s` is well-formed UTF-8 (ASCII included). Rejects truncated
/// sequences, overlong encodings, surrogates and code points above U+10FFFF
/// — the checks needed to keep hostile query bytes out of the pipeline.
bool IsValidUtf8(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace km

#endif  // KM_COMMON_STRINGS_H_
