// Wall-clock timing helper for benchmarks and instrumentation.

#ifndef KM_COMMON_STOPWATCH_H_
#define KM_COMMON_STOPWATCH_H_

#include <chrono>

namespace km {

/// Measures elapsed wall-clock time from construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since start.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since start.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed microseconds since start.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace km

#endif  // KM_COMMON_STOPWATCH_H_
