// Bounded, sharded, thread-safe LRU cache with hit/miss/eviction counters.
//
// Cross-query caching is the engine's answer to repeated work: the same
// keyword recurs across queries (keyword → weight-row cache) and different
// configurations share their image node set (terminal set → Steiner-tree
// cache). Both caches are read and written concurrently by AnswerBatch
// workers, so the cache is sharded: each shard owns an independent mutex,
// hash map and LRU list, and a key only ever contends with keys of its own
// shard. Values are shared_ptrs to immutable payloads, so a Get() handed
// out stays valid even if the entry is evicted a microsecond later.

#ifndef KM_COMMON_LRU_CACHE_H_
#define KM_COMMON_LRU_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace km {

/// Point-in-time counters of one cache (monotonic over the cache lifetime).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;  ///< current resident entries (not monotonic)

  double HitRate() const {
    uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

/// A fixed-capacity LRU map from Key to shared_ptr<const Value>, split into
/// `Shards` independently locked shards. Capacity is divided evenly across
/// shards, so per-shard LRU order approximates (not exactly equals) global
/// LRU order — the standard trade for lock-free cross-shard scalability.
template <typename Key, typename Value, typename Hash = std::hash<Key>,
          size_t Shards = 8>
class LruCache {
 public:
  using ValuePtr = std::shared_ptr<const Value>;

  static_assert(Shards > 0 && (Shards & (Shards - 1)) == 0,
                "shard count must be a power of two");

  /// `capacity` is the total entry bound (>= Shards recommended; a zero
  /// capacity disables the cache: every Get misses, every Put is dropped).
  explicit LruCache(size_t capacity) : per_shard_(PerShardCapacity(capacity)) {}

  /// Looks `key` up, refreshing its LRU position. Counts a hit or a miss.
  ValuePtr Get(const Key& key) {
    if (per_shard_ == 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the shard's least recently used
  /// entry when the shard is full.
  void Put(const Key& key, ValuePtr value) {
    if (per_shard_ == 0) return;
    Shard& shard = ShardFor(key);
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    if (shard.map.size() >= per_shard_) {
      const auto& victim = shard.order.back();
      shard.map.erase(victim.first);
      shard.order.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.order.emplace_front(key, std::move(value));
    shard.map.emplace(key, shard.order.begin());
  }

  /// Drops every entry (counters are preserved).
  void Clear() {
    for (Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      shard.map.clear();
      shard.order.clear();
    }
  }

  /// Snapshot of the counters plus current occupancy.
  CacheCounters Counters() const {
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      MutexLock lock(shard.mu);
      c.entries += shard.map.size();
    }
    return c;
  }

  size_t capacity() const { return per_shard_ * Shards; }

 private:
  struct Shard {
    mutable Mutex mu;
    /// front = most recent
    std::list<std::pair<Key, ValuePtr>> order KM_GUARDED_BY(mu);
    std::unordered_map<Key, typename std::list<std::pair<Key, ValuePtr>>::iterator,
                       Hash>
        map KM_GUARDED_BY(mu);
  };

  static constexpr size_t PerShardCapacity(size_t capacity) {
    const size_t per_shard = capacity / Shards;
    return (capacity > 0 && per_shard == 0) ? 1 : per_shard;
  }

  Shard& ShardFor(const Key& key) {
    // Mix the hash before taking shard bits: std::hash of integral keys is
    // commonly the identity, which would pile consecutive keys onto shard 0.
    uint64_t h = Hash{}(key);
    h ^= h >> 17;
    h *= 0x9E3779B97F4A7C15ULL;
    return shards_[(h >> 32) & (Shards - 1)];
  }

  const size_t per_shard_;
  std::array<Shard, Shards> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace km

#endif  // KM_COMMON_LRU_CACHE_H_
