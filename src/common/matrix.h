// Minimal dense row-major matrix of doubles.

#ifndef KM_COMMON_MATRIX_H_
#define KM_COMMON_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace km {

/// Dense row-major matrix used for keyword×term weight matrices, HMM
/// parameter matrices and assignment problems.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& At(size_t r, size_t c) {
    KM_DBOUNDS(r, rows_);
    KM_DBOUNDS(c, cols_);
    return data_[r * cols_ + c];
  }
  double At(size_t r, size_t c) const {
    KM_DBOUNDS(r, rows_);
    KM_DBOUNDS(c, cols_);
    return data_[r * cols_ + c];
  }

  double& operator()(size_t r, size_t c) { return At(r, c); }
  double operator()(size_t r, size_t c) const { return At(r, c); }

  /// Largest entry (0 for an empty matrix). Seeded from the first element,
  /// so all-negative matrices report their true (negative) maximum.
  double Max() const {
    if (data_.empty()) return 0.0;
    double m = data_[0];
    for (double v : data_) {
      if (v > m) m = v;
    }
    return m;
  }

  /// Scales every row so it sums to 1 (rows summing to 0 are left as-is).
  void NormalizeRows() {
    for (size_t r = 0; r < rows_; ++r) {
      double sum = 0;
      for (size_t c = 0; c < cols_; ++c) sum += At(r, c);
      if (sum <= 0) continue;
      for (size_t c = 0; c < cols_; ++c) At(r, c) /= sum;
    }
  }

 private:
  size_t rows_, cols_;
  std::vector<double> data_;
};

}  // namespace km

#endif  // KM_COMMON_MATRIX_H_
