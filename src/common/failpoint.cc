#include "common/failpoint.h"

#include <unordered_map>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/query_context.h"
#include "common/thread_annotations.h"

namespace km::failpoints {

const char* const kFailpointSites[] = {
    "engine.tokenize.fail",          // hostile/failed tokenization
    "weights.build.corrupt",         // corrupted intrinsic weight matrix
    "forward.murty.alloc",           // allocation failure in the Murty pool
    "forward.murty.timeout",         // stage timeout inside the Murty loop
    "forward.rerank.fail",           // contextual re-ranking failure
    "backward.steiner.node_missing", // graph node missing at search entry
    "backward.steiner.timeout",      // stage timeout inside DPBF expansion
    "backward.summary.fail",         // summary-graph search failure
    "engine.translate.fail",         // SQL translation failure
    "executor.join.fail",            // join-loop failure in the executor
    "snapshot.write.crash_before_rename",  // crash after fsync, before publish
    "snapshot.load.short_read",      // torn write / partial read of snapshot
    "snapshot.load.bit_flip",        // payload corruption → CRC mismatch
    "snapshot.swap.validate_fail",   // hot-swap validation gate failure
    "net.server.accept_fail",        // accept(2) failure at the front end
    "net.server.short_write",        // partial write(2) on a connection
    "net.server.write_error",        // fatal write(2) error on a connection
};
const size_t kNumFailpointSites =
    sizeof(kFailpointSites) / sizeof(kFailpointSites[0]);

namespace {

struct Armed {
  Action action;
  int hits_fired = 0;
  int hits_seen = 0;
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, Armed> armed KM_GUARDED_BY(mu);
  std::unordered_map<std::string, uint64_t> visits KM_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

void Enable(const std::string& name, Action action) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.armed[name] = Armed{std::move(action), 0, 0};
}

void EnableError(const std::string& name, Status error) {
  Action a;
  a.kind = ActionKind::kError;
  a.error = std::move(error);
  Enable(name, std::move(a));
}

void EnableExpire(const std::string& name) {
  Action a;
  a.kind = ActionKind::kExpireContext;
  Enable(name, std::move(a));
}

void EnableCallback(const std::string& name, std::function<void(void*)> callback) {
  Action a;
  a.kind = ActionKind::kCallback;
  a.callback = std::move(callback);
  Enable(name, std::move(a));
}

void Disable(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.armed.erase(name);
}

void DisableAll() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.armed.clear();
}

void Reset() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.armed.clear();
  r.visits.clear();
}

uint64_t HitCount(const std::string& name) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  const auto it = r.visits.find(name);
  return it == r.visits.end() ? 0 : it->second;
}

std::vector<std::string> VisitedSites() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  std::vector<std::string> out;
  out.reserve(r.visits.size());
  for (const auto& [name, count] : r.visits) {
    if (count > 0) out.push_back(name);
  }
  return out;
}

namespace internal {

Status Hit(const char* name, QueryContext* ctx, void* payload) {
  Registry& r = GetRegistry();
  // Decide under the lock, act outside it (a callback may re-enter the
  // registry or touch arbitrary state).
  Action fire;
  bool should_fire = false;
  {
    MutexLock lock(r.mu);
    ++r.visits[name];
    const auto it = r.armed.find(name);
    if (it != r.armed.end()) {
      Armed& armed = it->second;
      ++armed.hits_seen;
      const bool past_skip = armed.hits_seen > armed.action.skip;
      const bool under_limit =
          armed.action.limit < 0 || armed.hits_fired < armed.action.limit;
      if (past_skip && under_limit) {
        ++armed.hits_fired;
        fire = armed.action;
        should_fire = true;
      }
    }
  }
  if (!should_fire) return Status::OK();
  static Counter& trips =
      MetricsRegistry::Default().CounterRef("km.failpoint.trips");
  trips.Increment();
  switch (fire.kind) {
    case ActionKind::kError:
      return fire.error;
    case ActionKind::kExpireContext:
      if (ctx != nullptr) ctx->ForceExpire();
      return Status::OK();
    case ActionKind::kCallback:
      if (fire.callback) fire.callback(payload);
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace internal
}  // namespace km::failpoints
