// A small fixed-size task pool and a deterministic parallel-for.
//
// KEYMANTIC's hot loops — per-keyword weight rows, the O(rows) child
// re-solves of one Murty node, per-configuration Steiner discovery, and
// whole queries in KeymanticEngine::AnswerBatch — are embarrassingly
// parallel over an index range and write their results into preallocated
// slots. ParallelFor exploits exactly that shape: workers claim indices
// from a shared atomic counter (dynamic scheduling, so unevenly sized
// subproblems balance out) and each index writes only its own slot, so
// the merged output is byte-identical to a serial run regardless of
// thread interleaving.
//
// A null or single-thread pool degrades to a plain serial loop on the
// calling thread; every call site can therefore be written once and serve
// both the serial engine (EngineOptions::threads == 0, the default) and
// the parallel one.

#ifndef KM_COMMON_THREAD_POOL_H_
#define KM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace km {

/// Fixed set of worker threads consuming a FIFO task queue. Tasks must not
/// throw (the library reports failures through Status, never exceptions).
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(size_t threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues one task; runs on some worker thread.
  void Run(std::function<void()> task) KM_EXCLUDES(mu_);

 private:
  void WorkerLoop() KM_EXCLUDES(mu_);

  Mutex mu_;
  CondVar cv_;
  std::queue<std::function<void()>> tasks_ KM_GUARDED_BY(mu_);
  bool stop_ KM_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written once in the constructor
};

/// Runs fn(0) .. fn(n-1), distributing indices over the pool's workers
/// (the calling thread participates too, so a pool of size T applies T+1
/// threads and the pool can be shared by concurrent callers without
/// deadlock). Blocks until every index has completed. With a null pool,
/// n <= 1, or a single-worker pool shared recursively, the loop runs
/// serially on the caller.
///
/// `fn` must be thread-safe across distinct indices and must not throw.
/// Determinism contract: fn(i) writes only state owned by index i, so the
/// overall result does not depend on scheduling.
void ParallelFor(ThreadPool* pool, size_t n, const std::function<void(size_t)>& fn);

}  // namespace km

#endif  // KM_COMMON_THREAD_POOL_H_
