// Deterministic retry/backoff with a global retry budget.
//
// Serving a remote, flaky SQL backend (the deep-web scenario) needs retries,
// but naive retries *amplify* an outage: N clients × M attempts multiplies
// the offered load exactly when the backend can least afford it. This module
// provides the three pieces the serving layer composes:
//
//   * RetrySchedule — a per-request exponential backoff with *decorrelated
//     jitter* (AWS-style: sleep = min(cap, uniform[base, 3·prev])), driven by
//     the seeded common/rng.h so every schedule is reproducible from
//     (seed, request id). A server-supplied retry-after hint (see
//     OverloadedStatus) acts as a floor for the next delay.
//
//   * RetryBudget — a process-wide token bucket shared by all requests:
//     every first attempt deposits a fraction of a token (ratio), every
//     retry spends a whole one. During an outage the bucket empties and
//     retries are suppressed, capping the retry amplification factor at
//     (1 + ratio) regardless of per-request attempt caps. Thread-safe.
//
//   * RetryPolicy — the decision: which Status codes are worth retrying
//     (kOverloaded, kUnavailable — transient server-side conditions; client
//     errors and deadline exhaustion are not), per-request attempt caps, and
//     the budget check. Suppressed retries are counted in the metrics
//     registry ("km.retry.*") so an outage is visible, not silent.

#ifndef KM_COMMON_RETRY_H_
#define KM_COMMON_RETRY_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace km {

/// Tuning knobs of a RetryPolicy. The defaults suit a request that costs a
/// few milliseconds; servers with slower backends should scale the backoff
/// fields together.
struct RetryOptions {
  /// Total tries per request including the first (1 = never retry).
  int max_attempts = 3;
  /// First backoff delay and the cap every later delay is clamped to.
  double base_backoff_ms = 10.0;
  double max_backoff_ms = 2000.0;
  /// Token-bucket retry budget: each first attempt deposits `budget_ratio`
  /// tokens (capped at `budget_cap`), each retry spends 1. A ratio of 0.1
  /// means sustained retries are capped at 10% of offered load.
  double budget_ratio = 0.1;
  double budget_cap = 10.0;
  /// Seed of the jitter streams; request id is mixed in per schedule.
  uint64_t seed = 0x9E3779B97F4A7C15ULL;
};

/// Formats the typed load-shedding Status: admission control answers
/// kOverloaded and embeds a machine-readable suggested retry-after.
Status OverloadedStatus(const std::string& what, double retry_after_ms);

/// Same hint with code kUnavailable: the circuit breaker answers this while
/// open, suggesting the remaining cooldown as the earliest useful retry.
Status UnavailableStatus(const std::string& what, double retry_after_ms);

/// Parses the "retry_after_ms=<n>" hint out of a Status message; 0 when the
/// status carries none.
double SuggestedRetryAfterMs(const Status& status);

/// True for transient server-side conditions worth retrying (kOverloaded,
/// kUnavailable). Client errors, genuine results and budget exhaustion of
/// the *request itself* (deadline/cancel) are not retryable.
bool IsRetryableStatus(const Status& status);

/// Process-wide token bucket bounding total retry volume. All methods are
/// thread-safe; token arithmetic is fixed-point (milli-tokens) so the hot
/// path is a lock-free compare-exchange — no km::Mutex here on purpose
/// (every admitted request touches the bucket).
class RetryBudget {
 public:
  explicit RetryBudget(const RetryOptions& options);

  /// Records one first attempt: deposits `budget_ratio` tokens up to the cap.
  void OnAttempt();

  /// Tries to pay for one retry. False (and nothing is spent) when the
  /// bucket lacks a whole token — the caller must not retry.
  bool TrySpendRetry();

  /// Whole tokens currently in the bucket (rounded down).
  double tokens() const {
    return static_cast<double>(milli_tokens_.load(std::memory_order_relaxed)) /
           1000.0;
  }

 private:
  int64_t ratio_milli_;
  int64_t cap_milli_;
  std::atomic<int64_t> milli_tokens_;
};

/// One request's reproducible backoff sequence. Not thread-safe; a schedule
/// belongs to the single logical request it was made for.
class RetrySchedule {
 public:
  RetrySchedule(const RetryOptions& options, uint64_t request_id);

  /// Delay before the next retry: decorrelated jitter clamped to
  /// [base, max], never below `retry_after_floor_ms` (a server hint).
  double NextBackoffMs(double retry_after_floor_ms = 0.0);

  /// Retries produced so far (excludes the initial attempt).
  int retries() const { return retries_; }

 private:
  RetryOptions options_;
  Rng rng_;
  double prev_ms_;
  int retries_ = 0;
};

/// Policy facade: owns the shared budget, hands out per-request schedules,
/// and makes the retry decision. Thread-safe (the schedule it returns is
/// the per-thread part).
class RetryPolicy {
 public:
  explicit RetryPolicy(RetryOptions options = {});

  const RetryOptions& options() const { return options_; }
  RetryBudget& budget() { return budget_; }

  /// Schedule for one request; `request_id` makes the jitter stream unique
  /// and reproducible (same seed + id → same delays).
  RetrySchedule MakeSchedule(uint64_t request_id) const {
    return RetrySchedule(options_, request_id);
  }

  /// Call once per logical request before its first attempt (feeds the
  /// budget and the attempt counter metric).
  void OnRequest();

  /// Whether a failed attempt should be retried: the status must be
  /// retryable, `attempts_made` (including the failed one) must be below
  /// max_attempts, and the budget must have a token (spent on success).
  /// Suppressions are counted per cause in the metrics registry.
  bool ShouldRetry(const Status& status, int attempts_made);

 private:
  RetryOptions options_;
  RetryBudget budget_;
};

}  // namespace km

#endif  // KM_COMMON_RETRY_H_
