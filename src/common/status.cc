#include "common/status.h"

namespace km {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kSnapshotTruncated:
      return "SnapshotTruncated";
    case StatusCode::kSnapshotChecksumMismatch:
      return "SnapshotChecksumMismatch";
    case StatusCode::kSnapshotVersionSkew:
      return "SnapshotVersionSkew";
    case StatusCode::kProtocolError:
      return "ProtocolError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace km
