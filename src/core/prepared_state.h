// PreparedState: the immutable, shareable prepared state of an engine.
//
// Everything the metadata approach front-loads — terminology, schema graph
// (with MI-rescaled FK weights), summary graph, a-priori HMM, phrase
// vocabulary and the per-domain instance value index — lives here behind a
// shared_ptr<const PreparedState>. Engines are cheap handles over one
// state; the serving layer hot-swaps states RCU-style (in-flight queries
// pin the old state via their engine's shared_ptr until they finish).
//
// Two ways in:
//   * Build()    — scan a live Database (the classic cold start);
//   * Assemble() — adopt sections decoded from a snapshot file
//                  (snapshot/snapshot.h), re-deriving the structural
//                  pieces from the schema and *verifying* the decoded
//                  expectations against them, so a stale or tampered
//                  snapshot that passes its checksums still cannot smuggle
//                  in a terminology or graph the schema does not produce.

#ifndef KM_CORE_PREPARED_STATE_H_
#define KM_CORE_PREPARED_STATE_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/schema_graph.h"
#include "graph/summary.h"
#include "hmm/hmm.h"
#include "metadata/term.h"
#include "metadata/weights.h"
#include "relational/database.h"
#include "text/tokenizer.h"

namespace km {

/// The prepare-time subset of EngineOptions: the switches that change what
/// Build() precomputes (and therefore what a snapshot must record). Query-
/// time options (forward mode, combine mode, tracing, ...) are engine
/// business and deliberately absent.
struct PrepareOptions {
  WeightOptions weights;
  /// Mutual-information weights on FK edges (needs instance access).
  bool use_mi_weights = true;
  /// Multi-word phrase vocabulary from the instance (needs instance access).
  bool build_phrase_vocabulary = true;
};

/// Immutable prepared engine state. Construct via Build() or Assemble();
/// share via shared_ptr<const PreparedState>. Not movable or copyable —
/// the graph chain (schema → terminology → graph → summary) is internally
/// self-referencing.
class PreparedState {
 public:
  /// Builds prepared state by scanning `db` (metadata extraction, graph
  /// construction, MI weighting, value indexing, phrase vocabulary).
  static std::shared_ptr<const PreparedState> Build(const Database& db,
                                                    const PrepareOptions& options);

  /// Decoded summary-graph expectation carried by a snapshot, verified
  /// against the re-derived summary in Assemble().
  struct SummaryExpectation {
    std::vector<std::string> relations;
    struct Edge {
      uint64_t from_rel = 0;
      uint64_t to_rel = 0;
      uint64_t fk_edge = 0;
      double weight = 0;
    };
    std::vector<Edge> edges;
  };

  /// Assembles prepared state from decoded snapshot sections. The schema is
  /// rebuilt through the catalog's own validating API; terminology, graph
  /// structure and summary structure are re-derived from it and compared
  /// element-wise against the decoded expectations (the graph's *weights*
  /// are adopted from the snapshot — they may carry instance-derived MI
  /// rescaling the schema alone cannot reproduce). Any disagreement, or a
  /// non-finite/negative weight, is kSnapshotVersionSkew.
  static StatusOr<std::shared_ptr<const PreparedState>> Assemble(
      DatabaseSchema schema, const std::vector<DatabaseTerm>& expected_terms,
      const std::vector<GraphEdge>& expected_edges,
      const SummaryExpectation& expected_summary, PrepareOptions options,
      std::unordered_set<std::string> phrase_vocabulary,
      std::vector<ValueIndexEntry> value_index);

  PreparedState(const PreparedState&) = delete;
  PreparedState& operator=(const PreparedState&) = delete;

  /// The state's own schema copy (identical in content to the source
  /// database's schema; owning it keeps the state self-contained).
  const DatabaseSchema& schema() const { return schema_; }
  const Terminology& terminology() const { return terminology_; }
  const SchemaGraph& graph() const { return graph_; }
  const SummaryGraph& summary() const { return *summary_; }
  const Hmm& apriori_hmm() const { return apriori_hmm_; }
  /// Tokenizer options with the phrase vocabulary folded in.
  const TokenizerOptions& tokenizer_options() const { return tokenizer_options_; }
  /// Per-domain-term instance value index (empty without instance access).
  const std::vector<ValueIndexEntry>& value_index() const { return value_index_; }
  /// Prepare-time terminology prune index for the batched SW kernel.
  /// Derived from the terminology in Build() and Assemble() alike, so it
  /// needs no snapshot section (and never changes the snapshot format).
  const std::shared_ptr<const TermPruneIndex>& prune_index() const {
    return prune_index_;
  }
  /// The options this state was prepared under (pool/thesaurus pointers
  /// cleared — they are runtime concerns, not state).
  const PrepareOptions& options() const { return options_; }

 private:
  explicit PreparedState(DatabaseSchema schema);

  // Order matters: each member references the ones above it.
  DatabaseSchema schema_;
  Terminology terminology_;   // references nothing (copies strings)
  SchemaGraph graph_;         // holds &terminology_
  Hmm apriori_hmm_;
  std::unique_ptr<const SummaryGraph> summary_;  // holds &graph_; built after
                                                 // the FK weights are final
  TokenizerOptions tokenizer_options_;
  std::vector<ValueIndexEntry> value_index_;
  std::shared_ptr<const TermPruneIndex> prune_index_;  // from terminology_
  PrepareOptions options_;
};

}  // namespace km

#endif  // KM_CORE_PREPARED_STATE_H_
