#include "core/feedback.h"

#include <algorithm>
#include <cmath>

namespace km {

FeedbackManager::FeedbackManager(const Terminology& terminology,
                                 const DatabaseSchema& schema,
                                 FeedbackOptions options)
    : options_(options), trainer_(terminology, schema) {}

void FeedbackManager::Accept(const Configuration& config) {
  trainer_.AddSequence(config.term_for_keyword);
  ++accepted_;
}

void FeedbackManager::Reject() { ++rejected_; }

double FeedbackManager::ConfidenceFeedback() const {
  double conf = options_.initial_confidence +
                options_.gain_per_doubling *
                    std::log2(1.0 + static_cast<double>(accepted_)) -
                options_.rejection_penalty * static_cast<double>(rejected_);
  return std::clamp(conf, 0.0, options_.max_confidence);
}

void FeedbackManager::Configure(EngineOptions* options) const {
  if (accepted_ < options_.combination_threshold) {
    // Cold start: the metadata approach alone is the most reliable ranker.
    options->forward_mode = ForwardMode::kHungarian;
  } else {
    options->forward_mode = ForwardMode::kCombinedDst;
  }
  options->conf_hmm = ConfidenceFeedback();
  options->conf_hungarian = ConfidenceApriori();
}

}  // namespace km
