// User-feedback management: the adaptive part of the framework.
//
// The paper family describes a system that "promptly adapts to different
// working conditions": the confidence placed on the feedback-trained
// forward implementation starts low on a fresh database, grows as users
// accept answers (which double as HMM training data), and drops again when
// answers are rejected. This module implements that loop:
//
//   * accepted configurations are accumulated as supervised training
//     sequences for the HMM forward step;
//   * Conf_fdback follows the amount of accumulated (positive) feedback
//     with a logarithmic saturation, and is damped by recent rejections;
//   * Configure() projects the current state onto EngineOptions — fresh
//     systems run the metadata approach alone, experienced systems run the
//     DST combination with a strong trained-HMM vote.

#ifndef KM_CORE_FEEDBACK_H_
#define KM_CORE_FEEDBACK_H_

#include <cstddef>

#include "core/keymantic.h"
#include "hmm/model_builder.h"
#include "metadata/configuration.h"
#include "metadata/term.h"

namespace km {

/// Tuning of the confidence adaptation.
struct FeedbackOptions {
  /// Confidence in the feedback-trained ranker with zero feedback.
  double initial_confidence = 0.15;
  /// Upper bound the confidence saturates towards.
  double max_confidence = 0.85;
  /// Confidence gained per doubling of accepted answers.
  double gain_per_doubling = 0.1;
  /// Confidence lost per rejection (recovered by further acceptances).
  double rejection_penalty = 0.05;
  /// Number of accepted answers after which the engine switches from
  /// pure-metadata forward mode to the DST combination.
  size_t combination_threshold = 10;
};

/// Accumulates feedback and derives engine configuration from it.
class FeedbackManager {
 public:
  FeedbackManager(const Terminology& terminology, const DatabaseSchema& schema,
                  FeedbackOptions options = {});

  /// Records that the user accepted an answer with this configuration.
  /// The mapping becomes HMM training data.
  void Accept(const Configuration& config);

  /// Records that the user rejected the top answer.
  void Reject();

  size_t accepted() const { return accepted_; }
  size_t rejected() const { return rejected_; }

  /// Current confidence in the feedback-trained ranker, in
  /// [0, max_confidence].
  double ConfidenceFeedback() const;

  /// Complement: confidence in the a-priori/metadata ranker.
  double ConfidenceApriori() const { return 1.0 - ConfidenceFeedback(); }

  /// The HMM trained on everything accepted so far.
  Hmm TrainedModel() const { return trainer_.Train(); }

  /// Projects the current state onto engine options: forward mode and the
  /// DST confidences. Call on a fresh EngineOptions, then rebuild/refresh
  /// the engine and install TrainedModel() via SetTrainedHmm().
  void Configure(EngineOptions* options) const;

 private:
  FeedbackOptions options_;
  HmmTrainer trainer_;
  size_t accepted_ = 0;
  size_t rejected_ = 0;
};

}  // namespace km

#endif  // KM_CORE_FEEDBACK_H_
