#include "core/prepared_state.h"

#include <cmath>
#include <utility>

#include "analysis/invariants.h"
#include "common/check.h"
#include "graph/mi.h"
#include "hmm/model_builder.h"

namespace km {

namespace {

std::string TermLabel(const DatabaseTerm& t) { return t.ToString(); }

}  // namespace

PreparedState::PreparedState(DatabaseSchema schema)
    : schema_(std::move(schema)),
      terminology_(schema_),
      graph_(terminology_, schema_),
      apriori_hmm_(BuildAprioriHmm(terminology_, schema_)),
      // The prune index derives from the terminology alone, so building it
      // here covers Build() and Assemble() alike — snapshots stay format-
      // compatible and still get the batched SW kernel after a load.
      prune_index_(TermPruneIndex::Build(terminology_)) {}

std::shared_ptr<const PreparedState> PreparedState::Build(
    const Database& db, const PrepareOptions& options) {
  std::shared_ptr<PreparedState> state(new PreparedState(db.schema()));
  state->options_ = options;
  // Pool and thesaurus are per-engine runtime wiring; a shared state must
  // not pin either.
  state->options_.weights.pool = nullptr;
  state->options_.weights.thesaurus = nullptr;
  if (options.use_mi_weights) {
    // Best effort: fall back to unit weights when statistics are missing.
    (void)ApplyMiWeights(db, &state->graph_);
  }
  // The graph is immutable from here on (MI only rescales FK weights), so
  // one structural validation covers the state's lifetime.
  KM_DCHECK_OK(ValidateSchemaGraph(state->graph_, state->schema_));
  // The summary graph is built unconditionally: even in kFullGraph mode it
  // is the middle rung of the backward degradation ladder.
  state->summary_ = std::make_unique<SummaryGraph>(state->graph_);
  state->value_index_ = WeightMatrixBuilder::BuildValueIndex(
      state->terminology_, &db, state->options_.weights);
  if (options.build_phrase_vocabulary) {
    for (const auto& [value, entries] : db.BuildVocabulary()) {
      if (value.find(' ') == std::string::npos) continue;
      std::string key = NormalizePhraseKey(value);
      if (key.find(' ') != std::string::npos) {
        state->tokenizer_options_.phrase_vocabulary.insert(std::move(key));
      }
    }
  }
  return state;
}

StatusOr<std::shared_ptr<const PreparedState>> PreparedState::Assemble(
    DatabaseSchema schema, const std::vector<DatabaseTerm>& expected_terms,
    const std::vector<GraphEdge>& expected_edges,
    const SummaryExpectation& expected_summary, PrepareOptions options,
    std::unordered_set<std::string> phrase_vocabulary,
    std::vector<ValueIndexEntry> value_index) {
  std::shared_ptr<PreparedState> state(new PreparedState(std::move(schema)));
  state->options_ = options;
  state->options_.weights.pool = nullptr;
  state->options_.weights.thesaurus = nullptr;

  // Terminology: must be exactly what the schema derives. A mismatch means
  // the snapshot was produced by an incompatible build (or its schema
  // section disagrees with its terminology section despite valid CRCs).
  const Terminology& term = state->terminology_;
  if (term.size() != expected_terms.size()) {
    return Status::SnapshotVersionSkew(
        "terminology size mismatch: schema derives " +
        std::to_string(term.size()) + " terms, snapshot recorded " +
        std::to_string(expected_terms.size()));
  }
  for (size_t i = 0; i < term.size(); ++i) {
    const DatabaseTerm& a = term.term(i);
    const DatabaseTerm& b = expected_terms[i];
    if (a.kind != b.kind || a.relation != b.relation ||
        a.attribute != b.attribute || a.type != b.type || a.tag != b.tag ||
        a.is_foreign_key != b.is_foreign_key) {
      return Status::SnapshotVersionSkew("terminology term " +
                                         std::to_string(i) + " mismatch: " +
                                         TermLabel(a) + " vs " + TermLabel(b));
    }
  }

  // Graph: structure must match the re-derivation; weights are adopted from
  // the snapshot (they may carry instance-derived MI rescaling), after
  // being validated — SetEdgeWeight aborts on negative weights and that
  // contract is for internal invariants, not file contents.
  const std::vector<GraphEdge>& edges = state->graph_.edges();
  if (edges.size() != expected_edges.size()) {
    return Status::SnapshotVersionSkew(
        "schema-graph edge count mismatch: schema derives " +
        std::to_string(edges.size()) + ", snapshot recorded " +
        std::to_string(expected_edges.size()));
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    const GraphEdge& a = edges[e];
    const GraphEdge& b = expected_edges[e];
    if (a.from != b.from || a.to != b.to || a.kind != b.kind ||
        a.fk_index != b.fk_index) {
      return Status::SnapshotVersionSkew("schema-graph edge " +
                                         std::to_string(e) +
                                         " structure mismatch");
    }
    if (!std::isfinite(b.weight) || b.weight < 0.0) {
      return Status::SnapshotVersionSkew(
          "schema-graph edge " + std::to_string(e) +
          " carries an invalid weight (non-finite or negative)");
    }
  }
  for (size_t e = 0; e < edges.size(); ++e) {
    state->graph_.SetEdgeWeight(e, expected_edges[e].weight);
  }
  if (Status v = ValidateSchemaGraph(state->graph_, state->schema_); !v.ok()) {
    return Status::SnapshotVersionSkew("schema graph failed validation: " +
                                       v.message());
  }

  // Summary: re-derive from the (now weighted) graph and verify the
  // snapshot's record of it, weights included — the derivation is
  // deterministic arithmetic over the adopted edge weights, so agreement
  // is bit-exact for a snapshot written by a compatible build.
  state->summary_ = std::make_unique<SummaryGraph>(state->graph_);
  const SummaryGraph& summary = *state->summary_;
  if (summary.relations() != expected_summary.relations) {
    return Status::SnapshotVersionSkew("summary-graph relation list mismatch");
  }
  const auto& meta = summary.meta_edges();
  if (meta.size() != expected_summary.edges.size()) {
    return Status::SnapshotVersionSkew(
        "summary-graph meta-edge count mismatch: derived " +
        std::to_string(meta.size()) + ", snapshot recorded " +
        std::to_string(expected_summary.edges.size()));
  }
  for (size_t e = 0; e < meta.size(); ++e) {
    const SummaryGraph::MetaEdge& a = meta[e];
    const SummaryExpectation::Edge& b = expected_summary.edges[e];
    if (a.from_rel != b.from_rel || a.to_rel != b.to_rel ||
        a.fk_edge != b.fk_edge || a.weight != b.weight) {
      return Status::SnapshotVersionSkew("summary-graph meta-edge " +
                                         std::to_string(e) + " mismatch");
    }
  }

  // Value index: either absent (no instance access at save time) or
  // parallel to the terminology.
  if (!value_index.empty() && value_index.size() != term.size()) {
    return Status::SnapshotVersionSkew(
        "value index has " + std::to_string(value_index.size()) +
        " entries for " + std::to_string(term.size()) + " terms");
  }
  state->value_index_ = std::move(value_index);
  state->tokenizer_options_.phrase_vocabulary = std::move(phrase_vocabulary);
  return std::shared_ptr<const PreparedState>(std::move(state));
}

}  // namespace km
